file(REMOVE_RECURSE
  "CMakeFiles/linformer_test.dir/linformer_test.cpp.o"
  "CMakeFiles/linformer_test.dir/linformer_test.cpp.o.d"
  "linformer_test"
  "linformer_test.pdb"
  "linformer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
