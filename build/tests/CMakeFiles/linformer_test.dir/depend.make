# Empty dependencies file for linformer_test.
# This may be replaced when dependencies are built.
