file(REMOVE_RECURSE
  "CMakeFiles/schedule_plan_test.dir/schedule_plan_test.cpp.o"
  "CMakeFiles/schedule_plan_test.dir/schedule_plan_test.cpp.o.d"
  "schedule_plan_test"
  "schedule_plan_test.pdb"
  "schedule_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
