# Empty compiler generated dependencies file for schedule_plan_test.
# This may be replaced when dependencies are built.
