
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chaos_test.cpp" "tests/CMakeFiles/chaos_test.dir/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/chaos_test.dir/chaos_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/voltage_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/voltage_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/voltage_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/voltage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/voltage_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/transformer/CMakeFiles/voltage_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/voltage_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/voltage_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
