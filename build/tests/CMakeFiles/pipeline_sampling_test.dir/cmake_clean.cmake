file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sampling_test.dir/pipeline_sampling_test.cpp.o"
  "CMakeFiles/pipeline_sampling_test.dir/pipeline_sampling_test.cpp.o.d"
  "pipeline_sampling_test"
  "pipeline_sampling_test.pdb"
  "pipeline_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
