# Empty dependencies file for pipeline_sampling_test.
# This may be replaced when dependencies are built.
