file(REMOVE_RECURSE
  "CMakeFiles/flop_model_test.dir/flop_model_test.cpp.o"
  "CMakeFiles/flop_model_test.dir/flop_model_test.cpp.o.d"
  "flop_model_test"
  "flop_model_test.pdb"
  "flop_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flop_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
