# Empty compiler generated dependencies file for flop_model_test.
# This may be replaced when dependencies are built.
