file(REMOVE_RECURSE
  "CMakeFiles/data_parallel_test.dir/data_parallel_test.cpp.o"
  "CMakeFiles/data_parallel_test.dir/data_parallel_test.cpp.o.d"
  "data_parallel_test"
  "data_parallel_test.pdb"
  "data_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
