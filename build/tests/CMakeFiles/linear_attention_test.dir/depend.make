# Empty dependencies file for linear_attention_test.
# This may be replaced when dependencies are built.
