file(REMOVE_RECURSE
  "CMakeFiles/linear_attention_test.dir/linear_attention_test.cpp.o"
  "CMakeFiles/linear_attention_test.dir/linear_attention_test.cpp.o.d"
  "linear_attention_test"
  "linear_attention_test.pdb"
  "linear_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
