file(REMOVE_RECURSE
  "CMakeFiles/net_collective_test.dir/net_collective_test.cpp.o"
  "CMakeFiles/net_collective_test.dir/net_collective_test.cpp.o.d"
  "net_collective_test"
  "net_collective_test.pdb"
  "net_collective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_collective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
