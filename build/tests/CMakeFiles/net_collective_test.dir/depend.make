# Empty dependencies file for net_collective_test.
# This may be replaced when dependencies are built.
