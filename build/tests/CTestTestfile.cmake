# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/flop_model_test[1]_include.cmake")
include("/root/repo/build/tests/net_collective_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_plan_test[1]_include.cmake")
include("/root/repo/build/tests/linear_attention_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/linformer_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/data_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
