file(REMOVE_RECURSE
  "libvoltage_collective.a"
)
