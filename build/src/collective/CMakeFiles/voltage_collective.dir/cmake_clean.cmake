file(REMOVE_RECURSE
  "CMakeFiles/voltage_collective.dir/collectives.cpp.o"
  "CMakeFiles/voltage_collective.dir/collectives.cpp.o.d"
  "CMakeFiles/voltage_collective.dir/cost.cpp.o"
  "CMakeFiles/voltage_collective.dir/cost.cpp.o.d"
  "libvoltage_collective.a"
  "libvoltage_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
