# Empty dependencies file for voltage_collective.
# This may be replaced when dependencies are built.
