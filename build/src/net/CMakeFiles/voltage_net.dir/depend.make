# Empty dependencies file for voltage_net.
# This may be replaced when dependencies are built.
