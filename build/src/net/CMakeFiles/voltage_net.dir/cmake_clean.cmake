file(REMOVE_RECURSE
  "CMakeFiles/voltage_net.dir/chaos.cpp.o"
  "CMakeFiles/voltage_net.dir/chaos.cpp.o.d"
  "CMakeFiles/voltage_net.dir/fabric.cpp.o"
  "CMakeFiles/voltage_net.dir/fabric.cpp.o.d"
  "CMakeFiles/voltage_net.dir/socket_fabric.cpp.o"
  "CMakeFiles/voltage_net.dir/socket_fabric.cpp.o.d"
  "CMakeFiles/voltage_net.dir/transport.cpp.o"
  "CMakeFiles/voltage_net.dir/transport.cpp.o.d"
  "libvoltage_net.a"
  "libvoltage_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
