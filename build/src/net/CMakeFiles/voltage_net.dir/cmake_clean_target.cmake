file(REMOVE_RECURSE
  "libvoltage_net.a"
)
