# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tensor")
subdirs("transformer")
subdirs("partition")
subdirs("net")
subdirs("collective")
subdirs("sim")
subdirs("parallel")
subdirs("plan")
subdirs("quant")
subdirs("train")
subdirs("runtime")
subdirs("serve")
subdirs("voltage")
