# CMake generated Testfile for 
# Source directory: /root/repo/src/voltage
# Build directory: /root/repo/build/src/voltage
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
