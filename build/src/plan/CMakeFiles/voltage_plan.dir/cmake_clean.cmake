file(REMOVE_RECURSE
  "CMakeFiles/voltage_plan.dir/planner.cpp.o"
  "CMakeFiles/voltage_plan.dir/planner.cpp.o.d"
  "libvoltage_plan.a"
  "libvoltage_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
