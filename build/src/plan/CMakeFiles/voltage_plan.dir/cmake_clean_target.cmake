file(REMOVE_RECURSE
  "libvoltage_plan.a"
)
