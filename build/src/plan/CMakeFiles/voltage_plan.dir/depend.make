# Empty dependencies file for voltage_plan.
# This may be replaced when dependencies are built.
