file(REMOVE_RECURSE
  "libvoltage_tensor.a"
)
