file(REMOVE_RECURSE
  "CMakeFiles/voltage_tensor.dir/archive.cpp.o"
  "CMakeFiles/voltage_tensor.dir/archive.cpp.o.d"
  "CMakeFiles/voltage_tensor.dir/flops.cpp.o"
  "CMakeFiles/voltage_tensor.dir/flops.cpp.o.d"
  "CMakeFiles/voltage_tensor.dir/ops.cpp.o"
  "CMakeFiles/voltage_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/voltage_tensor.dir/rng.cpp.o"
  "CMakeFiles/voltage_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/voltage_tensor.dir/serialize.cpp.o"
  "CMakeFiles/voltage_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/voltage_tensor.dir/tensor.cpp.o"
  "CMakeFiles/voltage_tensor.dir/tensor.cpp.o.d"
  "libvoltage_tensor.a"
  "libvoltage_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
