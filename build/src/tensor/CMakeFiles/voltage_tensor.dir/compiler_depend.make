# Empty compiler generated dependencies file for voltage_tensor.
# This may be replaced when dependencies are built.
