file(REMOVE_RECURSE
  "libvoltage_serve.a"
)
