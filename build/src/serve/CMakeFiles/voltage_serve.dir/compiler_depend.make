# Empty compiler generated dependencies file for voltage_serve.
# This may be replaced when dependencies are built.
