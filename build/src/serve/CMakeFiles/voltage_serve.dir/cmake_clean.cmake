file(REMOVE_RECURSE
  "CMakeFiles/voltage_serve.dir/server.cpp.o"
  "CMakeFiles/voltage_serve.dir/server.cpp.o.d"
  "libvoltage_serve.a"
  "libvoltage_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
