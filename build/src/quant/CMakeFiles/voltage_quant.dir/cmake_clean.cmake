file(REMOVE_RECURSE
  "CMakeFiles/voltage_quant.dir/quantized_layer.cpp.o"
  "CMakeFiles/voltage_quant.dir/quantized_layer.cpp.o.d"
  "CMakeFiles/voltage_quant.dir/quantized_stack.cpp.o"
  "CMakeFiles/voltage_quant.dir/quantized_stack.cpp.o.d"
  "CMakeFiles/voltage_quant.dir/quantized_tensor.cpp.o"
  "CMakeFiles/voltage_quant.dir/quantized_tensor.cpp.o.d"
  "libvoltage_quant.a"
  "libvoltage_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
