# Empty compiler generated dependencies file for voltage_quant.
# This may be replaced when dependencies are built.
