
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/quantized_layer.cpp" "src/quant/CMakeFiles/voltage_quant.dir/quantized_layer.cpp.o" "gcc" "src/quant/CMakeFiles/voltage_quant.dir/quantized_layer.cpp.o.d"
  "/root/repo/src/quant/quantized_stack.cpp" "src/quant/CMakeFiles/voltage_quant.dir/quantized_stack.cpp.o" "gcc" "src/quant/CMakeFiles/voltage_quant.dir/quantized_stack.cpp.o.d"
  "/root/repo/src/quant/quantized_tensor.cpp" "src/quant/CMakeFiles/voltage_quant.dir/quantized_tensor.cpp.o" "gcc" "src/quant/CMakeFiles/voltage_quant.dir/quantized_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/voltage_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/transformer/CMakeFiles/voltage_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/voltage_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
