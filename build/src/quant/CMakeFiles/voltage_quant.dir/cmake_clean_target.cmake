file(REMOVE_RECURSE
  "libvoltage_quant.a"
)
