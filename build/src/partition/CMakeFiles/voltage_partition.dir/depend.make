# Empty dependencies file for voltage_partition.
# This may be replaced when dependencies are built.
