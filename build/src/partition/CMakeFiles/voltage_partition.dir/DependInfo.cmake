
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/flop_model.cpp" "src/partition/CMakeFiles/voltage_partition.dir/flop_model.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/flop_model.cpp.o.d"
  "/root/repo/src/partition/order.cpp" "src/partition/CMakeFiles/voltage_partition.dir/order.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/order.cpp.o.d"
  "/root/repo/src/partition/partitioned_attention.cpp" "src/partition/CMakeFiles/voltage_partition.dir/partitioned_attention.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/partitioned_attention.cpp.o.d"
  "/root/repo/src/partition/partitioned_layer.cpp" "src/partition/CMakeFiles/voltage_partition.dir/partitioned_layer.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/partitioned_layer.cpp.o.d"
  "/root/repo/src/partition/schedule.cpp" "src/partition/CMakeFiles/voltage_partition.dir/schedule.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/schedule.cpp.o.d"
  "/root/repo/src/partition/scheme.cpp" "src/partition/CMakeFiles/voltage_partition.dir/scheme.cpp.o" "gcc" "src/partition/CMakeFiles/voltage_partition.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transformer/CMakeFiles/voltage_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/voltage_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
