file(REMOVE_RECURSE
  "CMakeFiles/voltage_partition.dir/flop_model.cpp.o"
  "CMakeFiles/voltage_partition.dir/flop_model.cpp.o.d"
  "CMakeFiles/voltage_partition.dir/order.cpp.o"
  "CMakeFiles/voltage_partition.dir/order.cpp.o.d"
  "CMakeFiles/voltage_partition.dir/partitioned_attention.cpp.o"
  "CMakeFiles/voltage_partition.dir/partitioned_attention.cpp.o.d"
  "CMakeFiles/voltage_partition.dir/partitioned_layer.cpp.o"
  "CMakeFiles/voltage_partition.dir/partitioned_layer.cpp.o.d"
  "CMakeFiles/voltage_partition.dir/schedule.cpp.o"
  "CMakeFiles/voltage_partition.dir/schedule.cpp.o.d"
  "CMakeFiles/voltage_partition.dir/scheme.cpp.o"
  "CMakeFiles/voltage_partition.dir/scheme.cpp.o.d"
  "libvoltage_partition.a"
  "libvoltage_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
