file(REMOVE_RECURSE
  "libvoltage_partition.a"
)
