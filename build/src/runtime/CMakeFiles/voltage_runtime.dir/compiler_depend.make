# Empty compiler generated dependencies file for voltage_runtime.
# This may be replaced when dependencies are built.
