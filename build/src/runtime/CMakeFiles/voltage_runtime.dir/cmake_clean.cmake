file(REMOVE_RECURSE
  "CMakeFiles/voltage_runtime.dir/pipeline_runtime.cpp.o"
  "CMakeFiles/voltage_runtime.dir/pipeline_runtime.cpp.o.d"
  "CMakeFiles/voltage_runtime.dir/tensor_parallel_runtime.cpp.o"
  "CMakeFiles/voltage_runtime.dir/tensor_parallel_runtime.cpp.o.d"
  "CMakeFiles/voltage_runtime.dir/voltage_runtime.cpp.o"
  "CMakeFiles/voltage_runtime.dir/voltage_runtime.cpp.o.d"
  "libvoltage_runtime.a"
  "libvoltage_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
