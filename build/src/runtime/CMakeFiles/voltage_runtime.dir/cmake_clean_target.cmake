file(REMOVE_RECURSE
  "libvoltage_runtime.a"
)
