file(REMOVE_RECURSE
  "libvoltage_sim.a"
)
