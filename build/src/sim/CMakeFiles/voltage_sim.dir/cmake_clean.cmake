file(REMOVE_RECURSE
  "CMakeFiles/voltage_sim.dir/engine.cpp.o"
  "CMakeFiles/voltage_sim.dir/engine.cpp.o.d"
  "CMakeFiles/voltage_sim.dir/netsim.cpp.o"
  "CMakeFiles/voltage_sim.dir/netsim.cpp.o.d"
  "CMakeFiles/voltage_sim.dir/serving.cpp.o"
  "CMakeFiles/voltage_sim.dir/serving.cpp.o.d"
  "libvoltage_sim.a"
  "libvoltage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
