# Empty dependencies file for voltage_sim.
# This may be replaced when dependencies are built.
