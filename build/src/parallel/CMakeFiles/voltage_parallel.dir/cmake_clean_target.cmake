file(REMOVE_RECURSE
  "libvoltage_parallel.a"
)
