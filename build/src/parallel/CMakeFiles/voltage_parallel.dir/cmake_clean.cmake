file(REMOVE_RECURSE
  "CMakeFiles/voltage_parallel.dir/latency_model.cpp.o"
  "CMakeFiles/voltage_parallel.dir/latency_model.cpp.o.d"
  "CMakeFiles/voltage_parallel.dir/pipeline.cpp.o"
  "CMakeFiles/voltage_parallel.dir/pipeline.cpp.o.d"
  "CMakeFiles/voltage_parallel.dir/profile.cpp.o"
  "CMakeFiles/voltage_parallel.dir/profile.cpp.o.d"
  "libvoltage_parallel.a"
  "libvoltage_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
