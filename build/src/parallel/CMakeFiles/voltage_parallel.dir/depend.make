# Empty dependencies file for voltage_parallel.
# This may be replaced when dependencies are built.
