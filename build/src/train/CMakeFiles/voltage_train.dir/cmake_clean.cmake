file(REMOVE_RECURSE
  "CMakeFiles/voltage_train.dir/backward_ops.cpp.o"
  "CMakeFiles/voltage_train.dir/backward_ops.cpp.o.d"
  "CMakeFiles/voltage_train.dir/comm.cpp.o"
  "CMakeFiles/voltage_train.dir/comm.cpp.o.d"
  "CMakeFiles/voltage_train.dir/data_parallel.cpp.o"
  "CMakeFiles/voltage_train.dir/data_parallel.cpp.o.d"
  "CMakeFiles/voltage_train.dir/layer_backward.cpp.o"
  "CMakeFiles/voltage_train.dir/layer_backward.cpp.o.d"
  "CMakeFiles/voltage_train.dir/loss.cpp.o"
  "CMakeFiles/voltage_train.dir/loss.cpp.o.d"
  "CMakeFiles/voltage_train.dir/sgd.cpp.o"
  "CMakeFiles/voltage_train.dir/sgd.cpp.o.d"
  "CMakeFiles/voltage_train.dir/stack_backward.cpp.o"
  "CMakeFiles/voltage_train.dir/stack_backward.cpp.o.d"
  "libvoltage_train.a"
  "libvoltage_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
