
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/backward_ops.cpp" "src/train/CMakeFiles/voltage_train.dir/backward_ops.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/backward_ops.cpp.o.d"
  "/root/repo/src/train/comm.cpp" "src/train/CMakeFiles/voltage_train.dir/comm.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/comm.cpp.o.d"
  "/root/repo/src/train/data_parallel.cpp" "src/train/CMakeFiles/voltage_train.dir/data_parallel.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/data_parallel.cpp.o.d"
  "/root/repo/src/train/layer_backward.cpp" "src/train/CMakeFiles/voltage_train.dir/layer_backward.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/layer_backward.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/voltage_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/sgd.cpp" "src/train/CMakeFiles/voltage_train.dir/sgd.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/sgd.cpp.o.d"
  "/root/repo/src/train/stack_backward.cpp" "src/train/CMakeFiles/voltage_train.dir/stack_backward.cpp.o" "gcc" "src/train/CMakeFiles/voltage_train.dir/stack_backward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transformer/CMakeFiles/voltage_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/voltage_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/voltage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/voltage_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/voltage_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
