file(REMOVE_RECURSE
  "libvoltage_train.a"
)
