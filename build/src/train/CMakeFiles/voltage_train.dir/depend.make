# Empty dependencies file for voltage_train.
# This may be replaced when dependencies are built.
