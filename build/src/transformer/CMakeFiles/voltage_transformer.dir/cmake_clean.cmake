file(REMOVE_RECURSE
  "CMakeFiles/voltage_transformer.dir/attention.cpp.o"
  "CMakeFiles/voltage_transformer.dir/attention.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/decoder.cpp.o"
  "CMakeFiles/voltage_transformer.dir/decoder.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/embedding.cpp.o"
  "CMakeFiles/voltage_transformer.dir/embedding.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/ffn.cpp.o"
  "CMakeFiles/voltage_transformer.dir/ffn.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/heads.cpp.o"
  "CMakeFiles/voltage_transformer.dir/heads.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/layer.cpp.o"
  "CMakeFiles/voltage_transformer.dir/layer.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/linear_attention.cpp.o"
  "CMakeFiles/voltage_transformer.dir/linear_attention.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/linformer.cpp.o"
  "CMakeFiles/voltage_transformer.dir/linformer.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/model.cpp.o"
  "CMakeFiles/voltage_transformer.dir/model.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/model_io.cpp.o"
  "CMakeFiles/voltage_transformer.dir/model_io.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/sampling.cpp.o"
  "CMakeFiles/voltage_transformer.dir/sampling.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/tokenizer.cpp.o"
  "CMakeFiles/voltage_transformer.dir/tokenizer.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/weights.cpp.o"
  "CMakeFiles/voltage_transformer.dir/weights.cpp.o.d"
  "CMakeFiles/voltage_transformer.dir/zoo.cpp.o"
  "CMakeFiles/voltage_transformer.dir/zoo.cpp.o.d"
  "libvoltage_transformer.a"
  "libvoltage_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
