# Empty dependencies file for voltage_transformer.
# This may be replaced when dependencies are built.
