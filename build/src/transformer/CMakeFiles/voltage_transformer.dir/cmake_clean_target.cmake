file(REMOVE_RECURSE
  "libvoltage_transformer.a"
)
