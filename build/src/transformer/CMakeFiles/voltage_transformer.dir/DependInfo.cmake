
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transformer/attention.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/attention.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/attention.cpp.o.d"
  "/root/repo/src/transformer/decoder.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/decoder.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/decoder.cpp.o.d"
  "/root/repo/src/transformer/embedding.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/embedding.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/embedding.cpp.o.d"
  "/root/repo/src/transformer/ffn.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/ffn.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/ffn.cpp.o.d"
  "/root/repo/src/transformer/heads.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/heads.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/heads.cpp.o.d"
  "/root/repo/src/transformer/layer.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/layer.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/layer.cpp.o.d"
  "/root/repo/src/transformer/linear_attention.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/linear_attention.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/linear_attention.cpp.o.d"
  "/root/repo/src/transformer/linformer.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/linformer.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/linformer.cpp.o.d"
  "/root/repo/src/transformer/model.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/model.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/model.cpp.o.d"
  "/root/repo/src/transformer/model_io.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/model_io.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/model_io.cpp.o.d"
  "/root/repo/src/transformer/sampling.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/sampling.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/sampling.cpp.o.d"
  "/root/repo/src/transformer/tokenizer.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/tokenizer.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/tokenizer.cpp.o.d"
  "/root/repo/src/transformer/weights.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/weights.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/weights.cpp.o.d"
  "/root/repo/src/transformer/zoo.cpp" "src/transformer/CMakeFiles/voltage_transformer.dir/zoo.cpp.o" "gcc" "src/transformer/CMakeFiles/voltage_transformer.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/voltage_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
