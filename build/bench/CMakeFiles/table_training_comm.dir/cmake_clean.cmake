file(REMOVE_RECURSE
  "CMakeFiles/table_training_comm.dir/table_training_comm.cpp.o"
  "CMakeFiles/table_training_comm.dir/table_training_comm.cpp.o.d"
  "table_training_comm"
  "table_training_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_training_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
