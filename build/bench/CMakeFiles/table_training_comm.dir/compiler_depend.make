# Empty compiler generated dependencies file for table_training_comm.
# This may be replaced when dependencies are built.
