# Empty dependencies file for fig6_partition_efficiency.
# This may be replaced when dependencies are built.
