file(REMOVE_RECURSE
  "CMakeFiles/fig6_partition_efficiency.dir/fig6_partition_efficiency.cpp.o"
  "CMakeFiles/fig6_partition_efficiency.dir/fig6_partition_efficiency.cpp.o.d"
  "fig6_partition_efficiency"
  "fig6_partition_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_partition_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
