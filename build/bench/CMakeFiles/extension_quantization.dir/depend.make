# Empty dependencies file for extension_quantization.
# This may be replaced when dependencies are built.
