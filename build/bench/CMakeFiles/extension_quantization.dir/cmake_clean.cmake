file(REMOVE_RECURSE
  "CMakeFiles/extension_quantization.dir/extension_quantization.cpp.o"
  "CMakeFiles/extension_quantization.dir/extension_quantization.cpp.o.d"
  "extension_quantization"
  "extension_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
