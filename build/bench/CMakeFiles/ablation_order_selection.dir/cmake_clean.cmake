file(REMOVE_RECURSE
  "CMakeFiles/ablation_order_selection.dir/ablation_order_selection.cpp.o"
  "CMakeFiles/ablation_order_selection.dir/ablation_order_selection.cpp.o.d"
  "ablation_order_selection"
  "ablation_order_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_order_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
