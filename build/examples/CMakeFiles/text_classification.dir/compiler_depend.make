# Empty compiler generated dependencies file for text_classification.
# This may be replaced when dependencies are built.
