file(REMOVE_RECURSE
  "CMakeFiles/edge_server.dir/edge_server.cpp.o"
  "CMakeFiles/edge_server.dir/edge_server.cpp.o.d"
  "edge_server"
  "edge_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
