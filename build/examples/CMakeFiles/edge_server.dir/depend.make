# Empty dependencies file for edge_server.
# This may be replaced when dependencies are built.
