file(REMOVE_RECURSE
  "CMakeFiles/quantized_deployment.dir/quantized_deployment.cpp.o"
  "CMakeFiles/quantized_deployment.dir/quantized_deployment.cpp.o.d"
  "quantized_deployment"
  "quantized_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
