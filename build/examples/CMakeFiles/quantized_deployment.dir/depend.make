# Empty dependencies file for quantized_deployment.
# This may be replaced when dependencies are built.
