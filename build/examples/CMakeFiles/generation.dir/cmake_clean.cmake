file(REMOVE_RECURSE
  "CMakeFiles/generation.dir/generation.cpp.o"
  "CMakeFiles/generation.dir/generation.cpp.o.d"
  "generation"
  "generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
