# Empty compiler generated dependencies file for generation.
# This may be replaced when dependencies are built.
