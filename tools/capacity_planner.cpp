// capacity_planner: how many K-device meshes does a fleet need to serve a
// target request rate within a p99 TTFT SLO?
//
// The mesh service model is calibrated from the committed benchmark
// numbers (BENCH_serving.json occupancy curve, BENCH_decode.json prefill
// rate — see sim/mesh_model.h). The planner first computes the smallest
// mesh count that keeps offered load rho < 1 (operating points with
// rho >= 1 are refused outright: an unstable queue has no steady-state
// percentiles to plan against), then binary-searches mesh count over
// deterministic fleet simulations until the p99 TTFT meets the SLO with no
// admission drops. The answer is a JSON report on stdout (or --out FILE).
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fleet.h"
#include "sim/mesh_model.h"
#include "sim/traffic.h"

namespace {

using voltage::LinkModel;
using voltage::Seconds;
namespace sim = voltage::sim;

struct PlannerArgs {
  double target_rps = -1.0;
  double slo_p99_ttft_ms = -1.0;
  double duration_s = 60.0;
  std::size_t max_batch = 16;
  std::size_t max_queue = 1024;
  std::size_t max_meshes = 4096;
  std::uint64_t seed = 1;
  sim::BalancerPolicy policy = sim::BalancerPolicy::kJoinShortestQueue;
  // Lognormal length mix; medians/sigmas chosen as a chatbot-like default.
  double prompt_median = 64.0, prompt_sigma = 0.8;
  std::size_t prompt_max = 512;
  double output_median = 64.0, output_sigma = 0.7;
  std::size_t output_max = 256;
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;
  // Optional wire re-pricing away from the loopback calibration link.
  bool have_link = false;
  double link_mbps = 500.0;
  double link_latency_ms = 2.0;
  // Optional speculative decoding model: K drafts per verify window at a
  // per-draft acceptance probability (MeshModel::with_speculation).
  bool have_spec = false;
  std::size_t spec_drafts = 4;
  double spec_accept = 0.7;
  std::string out_path;
};

void print_usage(std::FILE* f, const char* argv0) {
  std::fprintf(
      f,
      "usage: %s --target-rps R --slo-p99-ttft-ms Y [options]\n"
      "\n"
      "Answers: how many K-device meshes serve R requests/s with\n"
      "p99 TTFT < Y ms? Emits a JSON report.\n"
      "\n"
      "options:\n"
      "  --duration-s S         simulated horizon (default 60)\n"
      "  --policy P             rr | jsq | deadline (default jsq)\n"
      "  --max-batch B          sequences per mesh step (default 16)\n"
      "  --max-queue Q          admission limit per mesh (default 1024)\n"
      "  --max-meshes N         search ceiling (default 4096)\n"
      "  --prompt-median T --prompt-sigma S --prompt-max M\n"
      "                         lognormal prompt lengths (64, 0.8, 512)\n"
      "  --output-median T --output-sigma S --output-max M\n"
      "                         lognormal output lengths (64, 0.7, 256)\n"
      "  --diurnal-amplitude A --diurnal-period-s P\n"
      "                         sinusoidal rate modulation (default off)\n"
      "  --link MBPS:LAT_MS     re-price per-step wire over this link\n"
      "  --spec K:ACC           model speculative decoding: K drafts per\n"
      "                         verify window at per-draft acceptance ACC\n"
      "  --seed N               traffic seed (default 1)\n"
      "  --out FILE             write the JSON report to FILE\n",
      argv0);
}

struct Candidate {
  std::size_t meshes = 0;
  bool refused_unstable = false;  // rho >= 1, never simulated
  sim::FleetReport report;
  bool feasible = false;
};

const char* policy_name(sim::BalancerPolicy p) {
  switch (p) {
    case sim::BalancerPolicy::kRoundRobin:
      return "round-robin";
    case sim::BalancerPolicy::kJoinShortestQueue:
      return "join-shortest-queue";
    case sim::BalancerPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

std::string json_report(const PlannerArgs& args, const sim::MeshModel& mesh,
                        double mean_demand_s, std::size_t min_meshes,
                        const std::vector<Candidate>& candidates,
                        const Candidate* answer) {
  std::string out;
  char buf[512];
  const auto emit = [&](const char* fmt, auto... v) {
    std::snprintf(buf, sizeof(buf), fmt, v...);
    out += buf;
  };
  emit("{\n");
  emit("  \"question\": {\"target_rps\": %g, \"slo_p99_ttft_ms\": %g, "
       "\"policy\": \"%s\", \"max_batch\": %zu, \"duration_s\": %g},\n",
       args.target_rps, args.slo_p99_ttft_ms, policy_name(args.policy),
       args.max_batch, args.duration_s);
  emit("  \"calibration\": {\"source\": \"BENCH_serving.json fp32 K=4 + "
       "BENCH_decode.json\", \"devices_per_mesh\": %zu, "
       "\"saturated_tokens_per_s\": %.1f, \"tokens_per_step\": %.3f, "
       "\"step_ms_b1\": %.3f, \"step_ms_bmax\": %.3f},\n",
       mesh.devices(), mesh.saturated_tokens_per_s(), mesh.tokens_per_step(),
       mesh.step_time(1.0) * 1e3,
       mesh.step_time(mesh.max_calibrated_batch()) * 1e3);
  emit("  \"mean_demand_mesh_seconds\": %.6f,\n", mean_demand_s);
  emit("  \"min_meshes_for_stability\": %zu,\n", min_meshes);
  out += "  \"candidates\": [\n";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (c.refused_unstable) {
      emit("    {\"meshes\": %zu, \"refused\": \"offered load >= 1\"}",
           c.meshes);
    } else {
      emit("    {\"meshes\": %zu, \"stable\": %s, \"offered_load\": %.3f, "
           "\"p99_ttft_ms\": %.2f, \"achieved_rps\": %.2f, "
           "\"rejected\": %zu, \"feasible\": %s}",
           c.meshes, c.report.stable ? "true" : "false",
           c.report.offered_load, c.report.ttft.p99 * 1e3,
           c.report.achieved_rps, c.report.rejected,
           c.feasible ? "true" : "false");
    }
    out += i + 1 < candidates.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  if (answer == nullptr) {
    emit("  \"answer\": null,\n  \"feasible\": false\n");
  } else {
    const sim::FleetReport& r = answer->report;
    emit("  \"answer\": {\"meshes\": %zu, \"devices_total\": %zu, "
         "\"p99_ttft_ms\": %.2f, \"p50_ttft_ms\": %.2f, "
         "\"p99_e2e_ms\": %.2f, \"achieved_rps\": %.2f, "
         "\"offered_load\": %.3f, \"mesh_utilization\": %.3f, "
         "\"slo_attainment\": %.4f},\n",
         answer->meshes, answer->meshes * mesh.devices(), r.ttft.p99 * 1e3,
         r.ttft.p50 * 1e3, r.e2e.p99 * 1e3, r.achieved_rps, r.offered_load,
         r.mean_mesh_utilization, r.slo_attainment);
    emit("  \"feasible\": true\n");
  }
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  PlannerArgs args;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "capacity_planner: %s needs a value\n\n", argv[i]);
      print_usage(stderr, argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--target-rps") == 0) {
      args.target_rps = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--slo-p99-ttft-ms") == 0) {
      args.slo_p99_ttft_ms = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--duration-s") == 0) {
      args.duration_s = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--max-batch") == 0) {
      args.max_batch = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--max-queue") == 0) {
      args.max_queue = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--max-meshes") == 0) {
      args.max_meshes = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--seed") == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--policy") == 0) {
      const char* p = need_value(i);
      if (std::strcmp(p, "rr") == 0) {
        args.policy = sim::BalancerPolicy::kRoundRobin;
      } else if (std::strcmp(p, "jsq") == 0) {
        args.policy = sim::BalancerPolicy::kJoinShortestQueue;
      } else if (std::strcmp(p, "deadline") == 0) {
        args.policy = sim::BalancerPolicy::kDeadlineAware;
      } else {
        std::fprintf(stderr, "capacity_planner: unknown policy '%s'\n", p);
        return 2;
      }
    } else if (std::strcmp(arg, "--prompt-median") == 0) {
      args.prompt_median = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--prompt-sigma") == 0) {
      args.prompt_sigma = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--prompt-max") == 0) {
      args.prompt_max = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--output-median") == 0) {
      args.output_median = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--output-sigma") == 0) {
      args.output_sigma = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--output-max") == 0) {
      args.output_max = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (std::strcmp(arg, "--diurnal-amplitude") == 0) {
      args.diurnal_amplitude = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--diurnal-period-s") == 0) {
      args.diurnal_period_s = std::atof(need_value(i));
    } else if (std::strcmp(arg, "--link") == 0) {
      const char* v = need_value(i);
      args.have_link = true;
      args.link_mbps = std::atof(v);
      const char* colon = std::strchr(v, ':');
      if (colon != nullptr) args.link_latency_ms = std::atof(colon + 1);
    } else if (std::strcmp(arg, "--spec") == 0) {
      const char* v = need_value(i);
      args.have_spec = true;
      args.spec_drafts = static_cast<std::size_t>(std::atoll(v));
      const char* colon = std::strchr(v, ':');
      if (colon != nullptr) args.spec_accept = std::atof(colon + 1);
      if (args.spec_accept < 0.0 || args.spec_accept > 1.0) {
        std::fprintf(stderr,
                     "capacity_planner: --spec acceptance must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--out") == 0) {
      args.out_path = need_value(i);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "capacity_planner: unknown option '%s'\n\n", arg);
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  if (args.target_rps <= 0.0 || args.slo_p99_ttft_ms <= 0.0 ||
      args.duration_s <= 0.0) {
    std::fprintf(stderr,
                 "capacity_planner: --target-rps and --slo-p99-ttft-ms are "
                 "required and must be positive\n\n");
    print_usage(stderr, argv[0]);
    return 2;
  }

  sim::MeshModel mesh = sim::MeshModel::from_bench_serving();
  // Speculation reshapes the compute/wire profile per step (window rows);
  // the link re-pricing then applies to the reshaped steps.
  if (args.have_spec) {
    mesh = mesh.with_speculation(args.spec_drafts, args.spec_accept);
  }
  if (args.have_link) {
    mesh = mesh.with_link(LinkModel::mbps(args.link_mbps,
                                          args.link_latency_ms * 1e-3));
  }

  const sim::LengthDistribution prompt = sim::LengthDistribution::lognormal(
      args.prompt_median, args.prompt_sigma, 1, args.prompt_max);
  const sim::LengthDistribution output = sim::LengthDistribution::lognormal(
      args.output_median, args.output_sigma, 1, args.output_max);

  // Mean mesh-seconds one request demands: its prefill plus one
  // saturated-rate slot-step per output token. rho(N) = target * demand / N.
  const double mean_demand_s =
      mesh.prefill_time(static_cast<std::size_t>(
          std::llround(prompt.empirical_mean(args.seed)))) +
      output.empirical_mean(args.seed + 1) / mesh.saturated_tokens_per_s();
  const std::size_t min_meshes = static_cast<std::size_t>(
      std::floor(args.target_rps * mean_demand_s)) + 1;

  std::vector<Candidate> candidates;
  if (min_meshes > args.max_meshes) {
    std::fprintf(stderr,
                 "capacity_planner: %zu meshes needed just for stability "
                 "(rho < 1) exceeds --max-meshes %zu\n",
                 min_meshes, args.max_meshes);
    const std::string report = json_report(args, mesh, mean_demand_s,
                                           min_meshes, candidates, nullptr);
    std::fputs(report.c_str(), stdout);
    return 1;
  }

  const std::size_t num_requests = static_cast<std::size_t>(
      std::ceil(args.target_rps * args.duration_s));
  const auto evaluate = [&](std::size_t meshes) {
    Candidate c;
    c.meshes = meshes;
    if (meshes < min_meshes) {  // refused: rho >= 1
      c.refused_unstable = true;
      candidates.push_back(c);
      return c;
    }
    const sim::OpenLoopTraffic traffic{
        .base_rate_rps = args.target_rps,
        .diurnal = {.amplitude = args.diurnal_amplitude,
                    .period = args.diurnal_period_s},
        .prompt = prompt,
        .output = output,
        .num_requests = num_requests,
        .seed = args.seed,
    };
    const sim::FleetConfig config{
        .num_meshes = meshes,
        .mesh = mesh,
        .max_batch = args.max_batch,
        .max_queue_per_mesh = args.max_queue,
        .policy = args.policy,
        .ttft_slo = args.slo_p99_ttft_ms * 1e-3,
    };
    c.report = sim::simulate_fleet(config, traffic);
    c.feasible = c.report.stable && c.report.rejected == 0 &&
                 c.report.ttft.p99 * 1e3 <= args.slo_p99_ttft_ms;
    candidates.push_back(c);
    return c;
  };

  // Grow an upper bound by doubling, then binary-search the smallest
  // feasible mesh count in (lo, hi].
  Candidate best;
  bool have_best = false;
  std::size_t lo = min_meshes - 1;  // known infeasible (rho >= 1)
  std::size_t hi = min_meshes;
  for (;;) {
    const Candidate c = evaluate(hi);
    if (c.feasible) {
      best = c;
      have_best = true;
      break;
    }
    lo = hi;
    if (hi >= args.max_meshes) break;
    hi = std::min(args.max_meshes, hi * 2);
  }
  if (have_best) {
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const Candidate c = evaluate(mid);
      if (c.feasible) {
        best = c;
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  const std::string report =
      json_report(args, mesh, mean_demand_s, min_meshes, candidates,
                  have_best ? &best : nullptr);
  if (args.out_path.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(args.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "capacity_planner: cannot write '%s'\n",
                   args.out_path.c_str());
      return 1;
    }
    std::fputs(report.c_str(), f);
    std::fclose(f);
  }
  if (!have_best) {
    std::fprintf(stderr,
                 "capacity_planner: no feasible mesh count up to %zu\n",
                 args.max_meshes);
    return 1;
  }
  return 0;
}
