#!/usr/bin/env python3
"""Plot the paper's figures from the CSVs the benches emit.

Usage:
    cd build && ./bench/fig4_latency && ./bench/fig5_bandwidth \
             && ./bench/fig6_partition_efficiency
    python3 ../tools/plot_results.py          # writes fig4.png fig5.png fig6.png

Requires matplotlib. Reads fig4_latency.csv / fig5_bandwidth.csv /
fig6_partition_efficiency.csv from the current directory.
"""

import csv
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - environment dependent
    sys.exit("matplotlib is required: pip install matplotlib")


def read_rows(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def plot_fig4():
    rows = read_rows("fig4_latency.csv")
    by_model = defaultdict(list)
    for row in rows:
        by_model[row["model"]].append(row)
    fig, axes = plt.subplots(1, len(by_model), figsize=(5 * len(by_model), 4))
    for ax, (model, data) in zip(axes, sorted(by_model.items())):
        ks = [int(float(r["devices"])) for r in data]
        ax.plot(ks, [float(r["tensor_parallel_s"]) for r in data],
                "s--", label="Tensor Parallelism")
        ax.plot(ks, [float(r["voltage_s"]) for r in data], "o-",
                label="Voltage")
        ax.axhline(float(data[0]["single_s"]), color="orange", ls=":",
                   label="single device")
        ax.set_title(model)
        ax.set_xlabel("Device Number")
        ax.set_ylabel("Inference Latency (s)")
        ax.legend()
    fig.suptitle("Fig. 4 — latency vs device number (500 Mbps)")
    fig.tight_layout()
    fig.savefig("fig4.png", dpi=150)


def plot_fig5():
    rows = read_rows("fig5_bandwidth.csv")
    by_model = defaultdict(list)
    for row in rows:
        by_model[row["model"]].append(row)
    fig, axes = plt.subplots(1, len(by_model), figsize=(5 * len(by_model), 4))
    for ax, (model, data) in zip(axes, sorted(by_model.items())):
        bw = [float(r["mbps"]) for r in data]
        ax.plot(bw, [float(r["tensor_parallel_s"]) for r in data], "s--",
                label="Tensor Parallelism")
        ax.plot(bw, [float(r["voltage_s"]) for r in data], "o-",
                label="Voltage")
        ax.axhline(float(data[0]["single_s"]), color="orange", ls=":",
                   label="single device")
        ax.set_title(model)
        ax.set_xlabel("Bandwidth (Mbps)")
        ax.set_ylabel("Inference Latency (s)")
        ax.set_xscale("log")
        ax.legend()
    fig.suptitle("Fig. 5 — latency vs bandwidth (K=6)")
    fig.tight_layout()
    fig.savefig("fig5.png", dpi=150)


def plot_fig6():
    rows = read_rows("fig6_partition_efficiency.csv")
    settings = defaultdict(lambda: defaultdict(list))
    for row in rows:
        key = (int(float(row["heads"])), int(float(row["head_dim"])))
        settings[key][int(float(row["N"]))].append(row)
    fig, axes = plt.subplots(1, len(settings), figsize=(5 * len(settings), 4))
    for ax, (key, by_n) in zip(axes, sorted(settings.items())):
        for n, data in sorted(by_n.items()):
            ks = [int(float(r["K"])) for r in data]
            ax.plot(ks, [float(r["voltage_speedup"]) for r in data], "o-",
                    label=f"Voltage (N={n})")
            ax.plot(ks, [float(r["naive_speedup"]) for r in data], "s--",
                    label=f"Naive (N={n})")
        ax.set_title(f"H={key[0]}, F_H={key[1]}")
        ax.set_xlabel("Number of Partitions (K)")
        ax.set_ylabel("Speed Up Ratio")
        ax.legend(fontsize=7)
    fig.suptitle("Fig. 6 — partitioned MHSA speed-up (wall-clock)")
    fig.tight_layout()
    fig.savefig("fig6.png", dpi=150)


if __name__ == "__main__":
    plot_fig4()
    plot_fig5()
    plot_fig6()
    print("wrote fig4.png fig5.png fig6.png")
