// trace_report: offline breakdown of an exported Chrome trace.
//
//   ./build/tools/trace_report [options] trace.json
//
// Loads a trace written by obs::Tracer::write_chrome_trace (or any
// structurally valid Chrome trace-event file), validates it, and prints the
// per-layer/per-device compute and all-gather breakdown plus per-device
// totals — the textual counterpart of opening the file in Perfetto.
//
//   --critical-path   per-window compute/wire/wait attribution, per-layer
//                     Eq. 3 terms and straggler rounds (obs/critical_path.h)
//   --validate        check the flow graph is closed (every send arrow has
//                     its receive); exit 3 and list the orphans if not
//
// Exit codes: 0 success, 1 unreadable/malformed trace, 2 usage error,
// 3 flow validation failed.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/report.h"

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--critical-path] [--validate] <trace.json>\n"
               "\n"
               "  --critical-path  attribute each prefill/decode-step/request "
               "window's wall\n"
               "                   time into per-device compute / wire / wait "
               "and identify\n"
               "                   the straggler of every collective round\n"
               "  --validate       verify every flow arrow resolves "
               "(send matched by a\n"
               "                   receive); exits 3 listing the orphans "
               "otherwise\n"
               "\n"
               "exit codes: 0 ok, 1 bad trace, 2 usage, 3 validation failed\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool critical_path = false;
  bool validate = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--critical-path") == 0) {
      critical_path = true;
    } else if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "trace_report: unknown option '%s'\n\n", arg);
      print_usage(stderr, argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "trace_report: more than one trace file given\n\n");
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "trace_report: no trace file given\n\n");
    print_usage(stderr, argv[0]);
    return 2;
  }

  voltage::obs::LoadedTrace trace;
  try {
    trace = voltage::obs::load_chrome_trace_file(path);
  } catch (const std::exception& e) {
    // Truncated files, bad JSON, unsorted/ill-nested events all land here
    // with the loader's description of the first violation.
    std::fprintf(stderr, "trace_report: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  try {
    if (validate) {
      const std::vector<std::string> problems =
          voltage::obs::flow_problems(trace);
      if (!problems.empty()) {
        std::fprintf(stderr,
                     "trace_report: flow validation failed (%zu problems):\n",
                     problems.size());
        for (const std::string& p : problems) {
          std::fprintf(stderr, "  %s\n", p.c_str());
        }
        return 3;
      }
      std::printf("flow graph closed: every arrow resolves\n");
    }
    const voltage::obs::TraceReport report = voltage::obs::build_report(trace);
    std::fputs(voltage::obs::format_report(report).c_str(), stdout);
    if (critical_path) {
      const voltage::obs::CriticalPathReport cp =
          voltage::obs::analyze_critical_path(trace);
      std::fputs("\n", stdout);
      std::fputs(voltage::obs::format_critical_path(cp).c_str(), stdout);
    }
    if (!trace.track_names.empty()) {
      std::printf("\ntracks:\n");
      for (const auto& [track, name] : trace.track_names) {
        std::printf("%6u  %s\n", track, name.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
