// trace_report: offline breakdown of an exported Chrome trace.
//
//   ./build/tools/trace_report trace.json
//
// Loads a trace written by obs::Tracer::write_chrome_trace (or any
// structurally valid Chrome trace-event file), validates it, and prints the
// per-layer/per-device compute and all-gather breakdown plus per-device
// totals — the textual counterpart of opening the file in Perfetto.
#include <cstdio>
#include <exception>

#include "obs/report.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  try {
    const voltage::obs::LoadedTrace trace =
        voltage::obs::load_chrome_trace_file(argv[1]);
    const voltage::obs::TraceReport report =
        voltage::obs::build_report(trace);
    std::fputs(voltage::obs::format_report(report).c_str(), stdout);
    if (!trace.track_names.empty()) {
      std::printf("\ntracks:\n");
      for (const auto& [track, name] : trace.track_names) {
        std::printf("%6u  %s\n", track, name.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
