// Replicated-weights data-parallel training at the edge — the §V-C story
// executed for real: every device holds a full copy of a transformer layer
// (plus a linear head), computes gradients on its OWN samples, and one
// ring all-reduce of the flattened gradients per step reconciles the
// replicas. Per-step communication is the model size — independent of the
// batch — versus tensor parallelism's per-sample activation syncs.
//
// Task: classify synthetic sequences by which half of the feature space
// carries the signal. Loss must fall; replicas must stay bit-identical.
//
//   ./build/examples/distributed_training
#include <cstdio>
#include <thread>
#include <vector>

#include "collective/collectives.h"
#include "net/fabric.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "train/layer_backward.h"
#include "train/loss.h"
#include "train/sgd.h"
#include "transformer/layer.h"

namespace {

using namespace voltage;

constexpr std::size_t kDevices = 3;
constexpr std::size_t kSeq = 8;
constexpr std::size_t kClasses = 2;
constexpr int kSteps = 25;
constexpr float kLr = 0.15F;

LayerConfig config() {
  return LayerConfig{.hidden = 16,
                     .heads = 2,
                     .head_dim = 8,
                     .ffn_dim = 32,
                     .activation = Activation::kGelu};
}

// A sample: class 0 puts energy in the first half of the features, class 1
// in the second half.
struct Sample {
  Tensor x;
  std::size_t label;
};

Sample make_sample(Rng& rng) {
  Sample s;
  s.label = rng.next_below(kClasses);
  s.x = rng.normal_tensor(kSeq, config().hidden, 0.3F);
  const std::size_t begin = s.label == 0 ? 0 : config().hidden / 2;
  for (std::size_t r = 0; r < kSeq; ++r) {
    for (std::size_t c = begin; c < begin + config().hidden / 2; ++c) {
      s.x(r, c) += 1.0F;
    }
  }
  return s;
}

// Forward + backward through layer -> mean pool -> linear head.
struct StepResult {
  float loss;
  LayerGrads layer_grads;
  Tensor dhead_w;
  Tensor dhead_b;
};

StepResult grads_for_sample(const TransformerLayer& layer,
                            const Tensor& head_w, const Tensor& head_b,
                            const Sample& sample) {
  LayerCache cache;
  const Tensor hidden = layer_forward_cached(layer, sample.x, cache);
  const Tensor pooled = mean_rows(hidden);
  Tensor logits = matmul(pooled, head_w);
  add_bias_inplace(logits, head_b);

  const std::size_t labels[] = {sample.label};
  const LossResult loss =
      softmax_cross_entropy(logits, std::span<const std::size_t>(labels));

  // Head backward.
  const MatmulGrads head = matmul_grad(pooled, head_w, loss.dlogits);
  // Mean pooling backward: every row receives dPooled / kSeq.
  Tensor dhidden(kSeq, hidden.cols());
  for (std::size_t r = 0; r < kSeq; ++r) {
    for (std::size_t c = 0; c < hidden.cols(); ++c) {
      dhidden(r, c) = head.da(0, c) / static_cast<float>(kSeq);
    }
  }
  LayerBackwardResult back = layer_backward(layer, cache, dhidden);
  return StepResult{.loss = loss.loss,
                    .layer_grads = std::move(back.grads),
                    .dhead_w = head.db,
                    .dhead_b = bias_grad(loss.dlogits)};
}

}  // namespace

int main() {
  Rng init(1);
  // Every device starts from the same replica.
  const LayerWeights w0 = init_layer_weights(config(), init);
  const Tensor head_w0 = init.normal_tensor(config().hidden, kClasses, 0.2F);
  const Tensor head_b0 = Tensor(1, kClasses);

  std::vector<TransformerLayer> layers;
  std::vector<Tensor> head_w(kDevices, head_w0);
  std::vector<Tensor> head_b(kDevices, head_b0);
  for (std::size_t d = 0; d < kDevices; ++d) layers.emplace_back(config(), w0);

  Fabric fabric(kDevices);
  std::vector<DeviceId> group(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) group[d] = d;

  std::printf("data-parallel training: %zu devices, 1 sample each per "
              "step, gradient ring all-reduce per step\n\n",
              kDevices);
  for (int step = 0; step < kSteps; ++step) {
    std::vector<float> losses(kDevices);
    std::vector<std::thread> threads;
    for (std::size_t d = 0; d < kDevices; ++d) {
      threads.emplace_back([&, d] {
        Rng data_rng(1000 + static_cast<std::uint64_t>(step) * kDevices + d);
        const Sample sample = make_sample(data_rng);
        StepResult r = grads_for_sample(layers[d], head_w[d], head_b[d],
                                        sample);
        losses[d] = r.loss;

        // Ring all-reduce of all gradients (layer flattened + head).
        Tensor flat = flatten_grads(r.layer_grads);
        flat = ring_all_reduce_sum(fabric, group, d, std::move(flat),
                                   10 + static_cast<MessageTag>(step) * 64);
        unflatten_grads(flat, r.layer_grads);
        Tensor hw = ring_all_reduce_sum(
            fabric, group, d, r.dhead_w,
            40 + static_cast<MessageTag>(step) * 64);
        Tensor hb = ring_all_reduce_sum(
            fabric, group, d, r.dhead_b,
            52 + static_cast<MessageTag>(step) * 64);

        // Average and apply identically on every replica.
        scale_grads(r.layer_grads, 1.0F / static_cast<float>(kDevices));
        scale_inplace(hw, 1.0F / static_cast<float>(kDevices));
        scale_inplace(hb, 1.0F / static_cast<float>(kDevices));
        apply_sgd(layers[d].mutable_weights(), r.layer_grads, kLr);
        auto& wref = head_w[d];
        const auto fg = hw.flat();
        auto fw = wref.flat();
        for (std::size_t i = 0; i < fw.size(); ++i) fw[i] -= kLr * fg[i];
        const auto fgb = hb.flat();
        auto fb = head_b[d].flat();
        for (std::size_t i = 0; i < fb.size(); ++i) fb[i] -= kLr * fgb[i];
      });
    }
    for (auto& t : threads) t.join();
    float mean_loss = 0.0F;
    for (const float l : losses) mean_loss += l;
    mean_loss /= static_cast<float>(kDevices);
    if (step % 4 == 0 || step + 1 == kSteps) {
      std::printf("  step %2d: mean loss %.4f\n", step, mean_loss);
    }
  }

  // Replicas must have stayed in lockstep (identical updates everywhere).
  const float drift =
      max_abs_diff(layers[0].weights().ffn.w1, layers[1].weights().ffn.w1);
  std::printf("\nreplica weight drift after %d steps: %g (ring all-reduce "
              "keeps every device's sum bit-identical)\n",
              kSteps, drift);
  const auto traffic = fabric.total_stats();
  std::printf("gradient sync traffic: %.1f KiB over %llu messages "
              "(independent of batch size)\n",
              static_cast<double>(traffic.bytes_sent) / 1024.0,
              static_cast<unsigned long long>(traffic.messages_sent));
  return 0;
}
