// INT8 + Voltage composition (§VII-A: compression and distribution are
// orthogonal): quantize a BERT-style model to int8, then distribute the
// quantized inference across devices with the stock Algorithm 2 protocol —
// only the per-layer kernel changes.
//
//   ./build/examples/quantized_deployment
#include <cstdio>

#include "quant/quantized_stack.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main() {
  using namespace voltage;

  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack quantized(model);
  std::printf("weights: float %.1f KiB -> int8 %.1f KiB (%.2fx smaller)\n",
              static_cast<double>(quantized.float_byte_size()) / 1024.0,
              static_cast<double>(quantized.byte_size()) / 1024.0,
              static_cast<double>(quantized.float_byte_size()) /
                  static_cast<double>(quantized.byte_size()));

  const auto tokens = random_tokens(28, model.spec().vocab_size, 77);

  // Reference: float single-device inference.
  const Tensor float_logits = model.infer(tokens);

  // Distributed INT8: the runtime keeps Algorithm 2 (broadcast, partition,
  // all-gather, collect); the executor swaps in the quantized kernels.
  VoltageRuntime runtime(model, PartitionScheme::even(3));
  runtime.set_partition_executor(
      [&quantized](std::size_t layer, const Tensor& x, Range p,
                   OrderPolicy policy) {
        return quantized.partition_forward(layer, x, p, policy);
      });
  const Tensor int8_logits = runtime.infer(tokens);

  // Quantized single-device reference (same kernels, no distribution).
  const Tensor int8_single =
      model.postprocess(quantized.forward_layers(model.preprocess(tokens)));

  std::printf("float single-device  : [%+.4f, %+.4f] -> class %zu\n",
              float_logits(0, 0), float_logits(0, 1),
              argmax_row(float_logits, 0));
  std::printf("int8  single-device  : [%+.4f, %+.4f] -> class %zu\n",
              int8_single(0, 0), int8_single(0, 1),
              argmax_row(int8_single, 0));
  std::printf("int8  distributed(3) : [%+.4f, %+.4f] -> class %zu\n",
              int8_logits(0, 0), int8_logits(0, 1),
              argmax_row(int8_logits, 0));
  std::printf("quantization drift vs float: %.4f (max |logit diff|)\n",
              max_abs_diff(int8_single, float_logits));
  std::printf("distribution drift within int8: %.6f\n",
              max_abs_diff(int8_logits, int8_single));
  return 0;
}
