// Latency explorer: a small command-line tool over the deployment
// simulator. Answer "what would this deployment cost?" without touching
// code:
//
//   ./build/examples/latency_explorer --model bert --devices 6 --mbps 500
//   ./build/examples/latency_explorer --model gpt2 --scheme 4,2,1
//
// Prints single-device / Voltage / tensor-parallel / pipeline numbers, the
// per-device communication volume, and the order the Theorem-2 selector
// picks for the resulting partition geometry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "parallel/latency_model.h"
#include "parallel/pipeline.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "plan/planner.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

struct Args {
  std::string model = "bert";
  std::size_t devices = 6;
  double mbps = 500.0;
  double latency_ms = 2.0;
  double gmacs = 25.0;
  std::size_t sequence = 0;   // 0 = the paper's default for the model
  std::string scheme;         // optional weight list, e.g. "4,2,1,1"
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--model NAME] [--devices K] [--mbps BW]\n"
      "          [--latency-ms L] [--gmacs G] [--sequence N]\n"
      "          [--scheme W1,W2,...]   (weights; overrides --devices)\n"
      "models:",
      argv0);
  for (const std::string& name : voltage::registered_spec_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--model") == 0) {
      args.model = need_value("--model");
    } else if (std::strcmp(argv[i], "--devices") == 0) {
      args.devices = std::strtoul(need_value("--devices"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mbps") == 0) {
      args.mbps = std::strtod(need_value("--mbps"), nullptr);
    } else if (std::strcmp(argv[i], "--latency-ms") == 0) {
      args.latency_ms = std::strtod(need_value("--latency-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--gmacs") == 0) {
      args.gmacs = std::strtod(need_value("--gmacs"), nullptr);
    } else if (std::strcmp(argv[i], "--sequence") == 0) {
      args.sequence = std::strtoul(need_value("--sequence"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      args.scheme = need_value("--scheme");
    } else {
      std::printf("unknown flag %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (args.devices == 0 || args.mbps <= 0 || args.gmacs <= 0) usage(argv[0]);
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);

  const std::optional<ModelSpec> maybe_spec = spec_by_name(args.model);
  if (!maybe_spec) {
    std::printf("unknown model '%s'\n", args.model.c_str());
    usage(argv[0]);
  }
  const ModelSpec& spec = *maybe_spec;
  const PartitionScheme scheme =
      args.scheme.empty() ? PartitionScheme::even(args.devices)
                          : PartitionScheme::parse(args.scheme);
  args.devices = scheme.devices();
  const std::size_t n =
      args.sequence != 0 ? args.sequence : paper_sequence_length(spec);

  const sim::DeviceSpec device{.name = "edge",
                               .mac_rate = args.gmacs * 1e9,
                               .elementwise_rate = args.gmacs * 1.6e8};
  const sim::Cluster cluster = sim::Cluster::homogeneous(
      args.devices, device, LinkModel::mbps(args.mbps, args.latency_ms * 1e-3));

  std::printf("%s | N=%zu | K=%zu | %.0f Mbps, %.1f ms/message | "
              "%.0f GMAC/s devices\n\n",
              spec.name.c_str(), n, args.devices, args.mbps, args.latency_ms,
              args.gmacs);

  const double single =
      simulate_single_device(
          spec, n, sim::Cluster::homogeneous(1, device, cluster.link))
          .total;
  const LatencyReport voltage =
      simulate_voltage(spec, n, cluster, scheme, OrderPolicy::kAdaptive);
  std::printf("single device        : %8.3f s\n", single);
  std::printf("voltage              : %8.3f s  (%+.1f%% vs single; compute "
              "%.3f s, comm+stall %.3f s)\n",
              voltage.total, 100.0 * (voltage.total - single) / single,
              voltage.max_device_compute, voltage.comm_and_stall);
  if (args.devices <= spec.layer.heads) {
    const double tp = simulate_tensor_parallel(spec, n, cluster).total;
    std::printf("tensor parallelism   : %8.3f s  (%+.1f%% vs single)\n", tp,
                100.0 * (tp - single) / single);
  } else {
    std::printf("tensor parallelism   : n/a (more devices than heads)\n");
  }
  const PipelineReport pipe = simulate_pipeline(spec, n, cluster);
  std::printf("pipeline parallelism : %8.3f s latency, %.2f req/s "
              "throughput\n",
              pipe.request_latency, pipe.throughput_rps);

  const AttentionDims dims{.n = n,
                           .p = n / args.devices,
                           .f = spec.layer.hidden,
                           .fh = spec.layer.head_dim};
  std::printf(
      "\nTheorem-2 order at P=N/K=%zu : %s\n", dims.p,
      to_string(select_order(OrderPolicy::kAdaptive, dims)));
  std::printf("per-device wire volume       : voltage %.2f MB vs "
              "tensor-parallel %.2f MB per inference\n",
              static_cast<double>(voltage.bytes_sent_per_device) / 1e6,
              args.devices <= spec.layer.heads
                  ? static_cast<double>(
                        simulate_tensor_parallel(spec, n, cluster)
                            .bytes_sent_per_device) /
                        1e6
                  : 0.0);
  return 0;
}
