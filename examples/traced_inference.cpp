// Traced inference: see exactly where one distributed request spends its
// time.
//
//   ./build/examples/traced_inference [trace.json]
//
// Attaches an obs::Tracer and an obs::MetricsRegistry to a 3-device Voltage
// cluster, serves a couple of requests through the InferenceServer, and
// exports a Chrome trace-event file (default: traced_inference.trace.json).
// Open it at https://ui.perfetto.dev (or chrome://tracing) to see the K
// device tracks with per-layer compute spans — each tagged with the
// attention order Theorem 2 chose — the all-gather synchronization points,
// and the serving track with queue-wait vs service per request. Or skip the
// browser:
//
//   ./build/tools/trace_report traced_inference.trace.json
#include <cstdio>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main(int argc, char** argv) {
  using namespace voltage;
  const char* path =
      argc > 1 ? argv[1] : "traced_inference.trace.json";

  const TransformerModel model = make_model(mini_bert_spec());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  {
    InferenceServer server(model,
                           {.scheme = PartitionScheme::even(3),
                            .policy = OrderPolicy::kAdaptive,
                            .transport = TransportKind::kInMemory,
                            .tracer = &tracer,
                            .metrics = &metrics});
    const HashingTokenizer tokenizer(model.spec().vocab_size);
    auto first = server.submit(tokenizer.encode(
        "every span in this request is on the trace timeline"));
    auto second = server.submit(tokenizer.encode(
        "the second request shows queue wait behind the first"));
    (void)first.get();
    (void)second.get();

    const ServerStats stats = server.stats();
    std::printf("served %zu requests\n", stats.completed);
    std::printf("  queue wait: mean %.3f ms, max %.3f ms\n",
                stats.queue_wait.mean * 1e3, stats.queue_wait.max * 1e3);
    std::printf("  service   : mean %.3f ms, max %.3f ms\n\n",
                stats.service.mean * 1e3, stats.service.max * 1e3);
  }

  try {
    tracer.write_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "traced_inference: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %zu spans to %s\n", tracer.size(), path);
  std::printf("open it at https://ui.perfetto.dev, or run:\n");
  std::printf("  ./build/tools/trace_report %s\n\n", path);

  // The same breakdown trace_report prints, straight from the export.
  const obs::TraceReport report =
      obs::build_report(obs::load_chrome_trace_file(path));
  std::fputs(obs::format_report(report).c_str(), stdout);

  std::printf("\nmetrics:\n%s", metrics.report().c_str());
  return 0;
}
