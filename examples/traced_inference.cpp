// Traced inference: see exactly where one distributed request spends its
// time.
//
//   ./build/examples/traced_inference [trace.json]
//
// Attaches an obs::Tracer, an obs::MetricsRegistry and a live
// obs::TelemetryHub to a 3-device Voltage cluster, serves a couple of
// encoder requests plus one generation request (distributed KV-cache
// decoding) through the InferenceServer, and exports a Chrome trace-event
// file (default: traced_inference.trace.json). Open it at
// https://ui.perfetto.dev (or chrome://tracing) to see the K device tracks
// with per-layer compute spans — each tagged with the attention order
// Theorem 2 chose — the all-gather synchronization points, the flow arrows
// connecting every send to its receive, and the serving track with
// queue-wait vs service per request. Or skip the browser:
//
//   ./build/tools/trace_report --critical-path traced_inference.trace.json
#include <cstdio>

#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main(int argc, char** argv) {
  using namespace voltage;
  const char* path =
      argc > 1 ? argv[1] : "traced_inference.trace.json";

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::TelemetryHub telemetry(/*window_seconds=*/10.0);
  obs::FlightRecorder recorder(/*capacity=*/256);

  {
    const TransformerModel model = make_model(mini_bert_spec());
    InferenceServer server(model,
                           {.scheme = PartitionScheme::even(3),
                            .policy = OrderPolicy::kAdaptive,
                            .transport = TransportKind::kInMemory,
                            .tracer = &tracer,
                            .metrics = &metrics});
    const HashingTokenizer tokenizer(model.spec().vocab_size);
    auto first = server.submit(tokenizer.encode(
        "every span in this request is on the trace timeline"));
    auto second = server.submit(tokenizer.encode(
        "the second request shows queue wait behind the first"));
    (void)first.get();
    (void)second.get();

    const ServerStats stats = server.stats();
    std::printf("served %zu requests\n", stats.completed);
    std::printf("  queue wait: mean %.3f ms, max %.3f ms\n",
                stats.queue_wait.mean * 1e3, stats.queue_wait.max * 1e3);
    std::printf("  service   : mean %.3f ms, max %.3f ms\n\n",
                stats.service.mean * 1e3, stats.service.max * 1e3);
  }

  // Generation leg: distributed KV-cache decoding on a causal LM, with the
  // live telemetry plane attached. One prefill plus a handful of decode
  // steps land on the same trace as "decode.prefill" / "decode.step" spans,
  // and the sampler thread appends JSONL snapshots as they happen.
  {
    const TransformerModel lm = make_model(mini_gpt2_spec());
    InferenceServer server(lm,
                           {.scheme = PartitionScheme::even(3),
                            .policy = OrderPolicy::kAdaptive,
                            .transport = TransportKind::kInMemory,
                            .tracer = &tracer,
                            .metrics = &metrics,
                            .telemetry = &telemetry,
                            .telemetry_period = 0.01,
                            .telemetry_jsonl_path =
                                "traced_inference.telemetry.jsonl",
                            .telemetry_prometheus_path =
                                "traced_inference.telemetry.prom",
                            .flight_recorder = &recorder});
    const HashingTokenizer tokenizer(lm.spec().vocab_size);
    auto generated = server.submit_generate(
        tokenizer.encode("the edge meets transformers"), /*new_tokens=*/32);
    const std::vector<TokenId> tokens = generated.get();
    std::printf("generated %zu tokens:", tokens.size());
    for (const TokenId t : tokens) std::printf(" %u", t);
    std::printf("\n\n");

    // Sample while the window still covers the generation: windowed rates,
    // utilization, queue depth.
    std::printf("telemetry snapshot:\n");
    for (const auto& [name, value] : telemetry.sample().values) {
      std::printf("  %-28s %.3f\n", name.c_str(), value);
    }
  }
  std::printf("  (JSONL history in traced_inference.telemetry.jsonl,\n"
              "   Prometheus exposition in traced_inference.telemetry.prom)\n"
              "\n");

  try {
    tracer.write_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "traced_inference: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", tracer.size(), path);
  std::printf("open it at https://ui.perfetto.dev, or run:\n");
  std::printf("  ./build/tools/trace_report --critical-path %s\n\n", path);

  // The same breakdown trace_report prints, straight from the export.
  const obs::LoadedTrace loaded = obs::load_chrome_trace_file(path);
  std::fputs(obs::format_report(obs::build_report(loaded)).c_str(), stdout);
  std::printf("\n");
  std::fputs(
      obs::format_critical_path(obs::analyze_critical_path(loaded)).c_str(),
      stdout);

  std::printf("\nmetrics:\n%s", metrics.report().c_str());
  return 0;
}
