// A complete edge serving node: an InferenceServer fronting a Voltage
// cluster, fed by a sporadic (bursty) request stream from several client
// threads — the paper's §I deployment, end to end and for real.
//
//   ./build/examples/edge_server
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "tensor/rng.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main() {
  using namespace voltage;

  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model,
                         {.scheme = PartitionScheme::even(3),
                          .policy = OrderPolicy::kAdaptive,
                          .transport = TransportKind::kInMemory});
  std::printf("serving %s on 3 devices; 4 clients, bursty arrivals\n\n",
              model.spec().name.c_str());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<std::size_t> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // Sporadic arrivals: think-time between requests.
        std::this_thread::sleep_for(std::chrono::microseconds(
            500 + rng.next_below(3000)));
        const auto tokens =
            random_tokens(12 + rng.next_below(16),
                          model.spec().vocab_size, rng.next_u64());
        auto future = server.submit(tokens);
        const Tensor logits = future.get();
        if (argmax_row(logits, 0) ==
            argmax_row(model.infer(tokens), 0)) {
          ++answered[c];
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t correct = 0;
  for (const std::size_t a : answered) correct += a;
  const ServerStats stats = server.stats();
  std::printf("requests served      : %zu (%zu matched single-device "
              "predictions)\n",
              stats.completed, correct);
  std::printf("sojourn times        : mean %.2f ms | p50 %.2f ms | "
              "p95 %.2f ms | max %.2f ms\n",
              1e3 * stats.mean, 1e3 * stats.p50, 1e3 * stats.p95,
              1e3 * stats.max);
  std::printf("(sojourn = queueing + distributed inference across the "
              "device mesh)\n");
  return 0;
}
