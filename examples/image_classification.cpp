// Image classification at the edge (the paper's ViT workload): run a
// ViT-style patch transformer over an image, distributed across devices,
// and show how the partition scheme maps patch positions to devices.
//
//   ./build/examples/image_classification
#include <cstdio>

#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

// A deterministic synthetic photo: two diagonal color gradients, so the
// patch contents genuinely differ across the image.
Image synthetic_photo(std::size_t size) {
  Image img(size, size, 3);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const float fy = static_cast<float>(y) / static_cast<float>(size);
      const float fx = static_cast<float>(x) / static_cast<float>(size);
      img.at(y, x, 0) = fy;
      img.at(y, x, 1) = fx;
      img.at(y, x, 2) = 0.5F * (fx + fy);
    }
  }
  return img;
}

}  // namespace

int main() {
  const TransformerModel model = make_model(mini_vit_spec());
  const ModelSpec& spec = model.spec();
  const std::size_t n = spec.vit_sequence_length();
  std::printf("model: %s — %zux%zu image, %zux%zu patches, sequence %zu "
              "(+1 CLS)\n",
              spec.name.c_str(), spec.image_size, spec.image_size,
              spec.patch_size, spec.patch_size, n);

  const Image photo = synthetic_photo(spec.image_size);

  for (const std::size_t k : {2U, 4U}) {
    const PartitionScheme scheme = PartitionScheme::even(k);
    std::printf("\nK=%zu position partition of the patch sequence:\n", k);
    for (std::size_t d = 0; d < k; ++d) {
      const Range r = scheme.range_for(d, n);
      std::printf("  device %zu computes positions [%3zu, %3zu)%s\n", d,
                  r.begin, r.end,
                  r.contains(0) ? "  (includes the CLS token)" : "");
    }
    VoltageRuntime runtime(model, scheme);
    const Tensor logits = runtime.infer(photo);
    std::printf("  predicted class %zu  (single device agrees: %s)\n",
                argmax_row(logits, 0),
                allclose(logits, model.infer(photo), 2e-3F) ? "yes" : "NO");
  }

  // A second, different image must be classifiable through the same runtime.
  VoltageRuntime runtime(model, PartitionScheme::even(3));
  const Image noise = random_image(spec.image_size, 3, 99);
  std::printf("\nsecond request (random image): class %zu\n",
              argmax_row(runtime.infer(noise), 0));
  return 0;
}
