// Heterogeneous edge clusters: the paper's partition scheme is a ratio
// vector precisely so unequal devices can take unequal shares (§V-B). This
// example deploys GPT-2 on a mixed cluster (one fast laptop, slower
// boards), compares even vs speed-proportional partitioning in the latency
// simulator, and verifies correctness of a skewed scheme on the real
// threaded runtime.
//
//   ./build/examples/heterogeneous_cluster
#include <cstdio>
#include <vector>

#include "parallel/latency_model.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main() {
  using namespace voltage;

  // A laptop (4x), a tablet (2x) and two IoT boards (1x each).
  const std::vector<double> speeds{4.0, 2.0, 1.0, 1.0};
  sim::Cluster cluster;
  cluster.link = LinkModel::mbps(500);
  cluster.terminal = sim::DeviceSpec{
      .name = "terminal", .mac_rate = 25e9, .elementwise_rate = 4e9};
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    cluster.workers.push_back(sim::DeviceSpec{
        .name = "worker-" + std::to_string(i),
        .mac_rate = 10e9 * speeds[i],
        .elementwise_rate = 2e9 * speeds[i]});
  }

  const ModelSpec spec = gpt2_spec();
  constexpr std::size_t kSeq = 200;
  std::printf("GPT-2 (N=%zu) on a heterogeneous 4-device cluster "
              "(speeds 4:2:1:1)\n\n",
              kSeq);

  const PartitionScheme even = PartitionScheme::even(speeds.size());
  const PartitionScheme weighted = PartitionScheme::proportional(speeds);

  const auto report = [&](const char* label, const PartitionScheme& scheme) {
    const LatencyReport r = simulate_voltage(spec, kSeq, cluster, scheme,
                                             OrderPolicy::kAdaptive);
    std::printf("%-22s total %.3f s  (compute %.3f s, comm+stall %.3f s)\n",
                label, r.total, r.max_device_compute, r.comm_and_stall);
    std::printf("%-22s positions:", "");
    for (std::size_t d = 0; d < scheme.devices(); ++d) {
      const Range range = scheme.range_for(d, kSeq);
      std::printf(" [%zu,%zu)", range.begin, range.end);
    }
    std::printf("\n");
    return r.total;
  };

  const double t_even = report("even 1/K split:", even);
  const double t_weighted = report("speed-proportional:", weighted);
  std::printf("\nweighting by speed cuts latency by %.1f%% — the all-gather "
              "waits for the straggler.\n",
              100.0 * (t_even - t_weighted) / t_even);

  // The skewed scheme is exact, not approximate: run it for real.
  const TransformerModel model = make_model(mini_gpt2_spec());
  VoltageRuntime runtime(model, PartitionScheme::proportional(speeds));
  const auto tokens = random_tokens(32, model.spec().vocab_size, 7);
  std::printf("\nreal runtime with proportional scheme matches single "
              "device: %s\n",
              allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F)
                  ? "yes"
                  : "NO");
  return 0;
}
