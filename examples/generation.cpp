// Autoregressive generation at the edge (the paper's GPT-2 workload):
// greedy-decode a continuation with a causal transformer, comparing the two
// distributed decode regimes side by side:
//   - full recompute: every token re-runs the whole context through
//     VoltageRuntime::infer — O(T^2) compute, O(T*F) wire bytes per token;
//   - cached: DistributedDecoder keeps partition-resident KV caches and
//     ships only the new token's row plus per-layer softmax-merge partials —
//     O(T) compute, wire bytes independent of T.
// Both must pick the exact token the single-device references pick at every
// step.
//
//   ./build/examples/generation
#include <chrono>
#include <cstdio>
#include <vector>

#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return 1e3 * std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
}

}  // namespace

int main() {
  using namespace voltage;

  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kNewTokens = 12;

  const std::vector<TokenId> prompt =
      random_tokens(16, model.spec().vocab_size, 2024);
  std::printf("prompt (%zu tokens):", prompt.size());
  for (const TokenId t : prompt) std::printf(" %d", t);
  std::printf("\n\ngreedy decoding %zu tokens on %zu devices, cached vs "
              "full-recompute:\n\n",
              kNewTokens, kDevices);

  // Full-recompute path: one distributed forward over the whole context per
  // token.
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  // Cached path: one distributed prefill, then O(T) steps against the
  // partition-resident caches.
  DistributedDecoder decoder(model, PartitionScheme::even(kDevices));
  // Single-device references: the decoded tokens must match both.
  IncrementalDecoder reference(model);

  const auto prefill_start = std::chrono::steady_clock::now();
  Tensor cached_logits = decoder.prime(prompt);
  const double prefill_ms = ms_since(prefill_start);
  Tensor reference_logits = reference.prime(prompt);

  std::printf("  distributed prefill: %.1f ms, %.1f KiB on the wire\n\n",
              prefill_ms,
              static_cast<double>(decoder.fabric().total_stats().bytes_sent) /
                  1024.0);
  std::printf("  step  token   recompute_ms  recompute_KiB  cached_ms  "
              "cached_KiB\n");

  std::vector<TokenId> context = prompt;
  std::uint64_t recompute_bytes_total = 0;
  std::uint64_t cached_bytes_total = 0;
  double recompute_ms_total = 0.0;
  double cached_ms_total = 0.0;
  bool all_match = true;

  for (std::size_t step = 0; step < kNewTokens; ++step) {
    // Both paths agree (with the single-device reference) on the next token.
    const auto next = static_cast<TokenId>(argmax_row(cached_logits, 0));
    const auto recompute_next = static_cast<TokenId>(
        argmax_row(runtime.infer(context), 0));
    const auto reference_next =
        static_cast<TokenId>(argmax_row(reference_logits, 0));
    const bool match = next == recompute_next && next == reference_next;
    all_match = all_match && match;
    context.push_back(next);

    // Same context length, both regimes: full recompute re-runs everything,
    // the cached step ships one row and the per-layer merge partials.
    const std::uint64_t rb0 = runtime.fabric().total_stats().bytes_sent;
    const auto rt0 = std::chrono::steady_clock::now();
    (void)runtime.infer(context);
    const double recompute_ms = ms_since(rt0);
    const std::uint64_t recompute_bytes =
        runtime.fabric().total_stats().bytes_sent - rb0;

    const std::uint64_t cb0 = decoder.fabric().total_stats().bytes_sent;
    const auto ct0 = std::chrono::steady_clock::now();
    cached_logits = decoder.step(next);
    const double cached_ms = ms_since(ct0);
    const std::uint64_t cached_bytes =
        decoder.fabric().total_stats().bytes_sent - cb0;
    reference_logits = reference.step(next);

    std::printf("  %4zu  %5d   %12.2f  %13.1f  %9.2f  %10.1f%s\n", step, next,
                recompute_ms, static_cast<double>(recompute_bytes) / 1024.0,
                cached_ms, static_cast<double>(cached_bytes) / 1024.0,
                match ? "" : "  <-- MISMATCH");

    recompute_bytes_total += recompute_bytes;
    recompute_ms_total += recompute_ms;
    cached_bytes_total += cached_bytes;
    cached_ms_total += cached_ms;
  }

  std::printf("\ncontinuation:");
  for (std::size_t i = context.size() - kNewTokens; i < context.size(); ++i) {
    std::printf(" %d", context[i]);
  }
  std::printf("\nall three paths agree on every token: %s\n",
              all_match ? "yes" : "NO");
  std::printf(
      "totals over %zu tokens — recompute: %.1f ms, %.1f KiB;  cached: "
      "%.1f ms, %.1f KiB (%.1fx less wire)\n",
      kNewTokens, recompute_ms_total,
      static_cast<double>(recompute_bytes_total) / 1024.0, cached_ms_total,
      static_cast<double>(cached_bytes_total) / 1024.0,
      static_cast<double>(recompute_bytes_total) /
          static_cast<double>(cached_bytes_total == 0 ? 1
                                                      : cached_bytes_total));
  return all_match ? 0 : 1;
}
