// Autoregressive generation at the edge (the paper's GPT-2 workload):
// greedy-decode a continuation with a causal transformer, where EVERY
// forward pass is distributed across devices with Voltage. Decoding is the
// batch-size-1, latency-bound regime the paper motivates.
//
//   ./build/examples/generation
#include <chrono>
#include <cstdio>
#include <vector>

#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main() {
  using namespace voltage;

  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kNewTokens = 12;

  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));

  // Prompt: deterministic pseudo-random token ids (the paper's "random
  // string" workload; a real deployment would run BPE here).
  std::vector<TokenId> context =
      random_tokens(16, model.spec().vocab_size, 2024);
  std::printf("prompt (%zu tokens):", context.size());
  for (const TokenId t : context) std::printf(" %d", t);
  std::printf("\n\ngreedy decoding %zu tokens on %zu devices:\n", kNewTokens,
              kDevices);

  for (std::size_t step = 0; step < kNewTokens; ++step) {
    // One distributed forward pass over the whole context; the LM head on
    // the terminal device picks the next token.
    const Tensor logits = runtime.infer(context);
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));

    // Cross-check against single-device decoding — the distributed system
    // must pick the same token at every step.
    const auto reference =
        static_cast<TokenId>(argmax_row(model.infer(context), 0));
    std::printf("  step %2zu: next token %5d (context %2zu) %s\n", step, next,
                context.size(), next == reference ? "" : "<-- MISMATCH");
    context.push_back(next);
  }

  std::printf("\ncontinuation:");
  for (std::size_t i = context.size() - kNewTokens; i < context.size(); ++i) {
    std::printf(" %d", context[i]);
  }
  const auto traffic = runtime.fabric().total_stats();
  std::printf("\ntotal wire traffic for the %zu decode steps: %.1f KiB\n",
              kNewTokens,
              static_cast<double>(traffic.bytes_sent) / 1024.0);

  // The KV-cache companion path: recompute-free decoding must produce the
  // exact same continuation, one O(T) step per token.
  IncrementalDecoder decoder(model);
  std::vector<TokenId> cached_context =
      random_tokens(16, model.spec().vocab_size, 2024);
  const auto start = std::chrono::steady_clock::now();
  Tensor logits = decoder.prime(cached_context);
  std::vector<TokenId> cached_continuation;
  for (std::size_t step = 0; step < kNewTokens; ++step) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    cached_continuation.push_back(next);
    logits = decoder.step(next);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const bool same =
      std::equal(cached_continuation.begin(), cached_continuation.end(),
                 context.end() - static_cast<std::ptrdiff_t>(kNewTokens));
  std::printf("\nKV-cache decoder reproduces the continuation: %s "
              "(%.1f ms for prime + %zu steps)\n",
              same ? "yes" : "NO", 1e3 * seconds, kNewTokens);
  return 0;
}
