// Text classification at the edge (the paper's BERT workload): classify a
// batch of sentences one request at a time — batch size 1 is exactly the
// regime Voltage targets — and compare deployment strategies on the same
// inputs: single device, Voltage, and tensor parallelism.
//
//   ./build/examples/text_classification
#include <cstdio>
#include <string_view>

#include "parallel/latency_model.h"
#include "runtime/tensor_parallel_runtime.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

int main() {
  using namespace voltage;

  const TransformerModel model = make_model(mini_bert_spec());
  const HashingTokenizer tokenizer(model.spec().vocab_size);
  constexpr std::size_t kDevices = 3;

  VoltageRuntime voltage(model, PartitionScheme::even(kDevices));
  TensorParallelRuntime tensor_parallel(model, kDevices);

  constexpr std::string_view kRequests[] = {
      "the battery life on this laptop is outstanding",
      "the package arrived broken and support never replied",
      "an unremarkable but perfectly functional kettle",
      "edge devices are typically connected by slower links like wifi",
  };

  std::printf("classifying %zu sporadic requests on %zu devices\n\n",
              std::size(kRequests), kDevices);
  std::printf("%-55s %7s %7s %7s\n", "request", "single", "voltage", "tp");
  for (const std::string_view text : kRequests) {
    const auto tokens = tokenizer.encode(text);
    const std::size_t single = argmax_row(model.infer(tokens), 0);
    const std::size_t dist = argmax_row(voltage.infer(tokens), 0);
    const std::size_t tp = argmax_row(tensor_parallel.infer(tokens), 0);
    std::printf("%-55.55s %7zu %7zu %7zu%s\n", text.data(), single, dist, tp,
                (single == dist && single == tp) ? "" : "  <-- MISMATCH");
  }

  // Every strategy computes the same function; what differs is cost.
  const auto v = voltage.fabric().total_stats();
  const auto t = tensor_parallel.fabric().total_stats();
  std::printf("\nwire traffic for the batch:\n");
  std::printf("  voltage          : %8.1f KiB in %4llu messages\n",
              static_cast<double>(v.bytes_sent) / 1024.0,
              static_cast<unsigned long long>(v.messages_sent));
  std::printf("  tensor parallel  : %8.1f KiB in %4llu messages  (%.1fx)\n",
              static_cast<double>(t.bytes_sent) / 1024.0,
              static_cast<unsigned long long>(t.messages_sent),
              static_cast<double>(t.bytes_sent) /
                  static_cast<double>(v.bytes_sent));

  // What this would mean on the paper's full-size BERT-Large deployment.
  const auto cluster = sim::Cluster::homogeneous(
      kDevices,
      sim::DeviceSpec{.name = "edge", .mac_rate = 25e9,
                      .elementwise_rate = 4e9},
      LinkModel::mbps(500));
  const ModelSpec full = bert_large_spec();
  std::printf("\nprojected BERT-Large latency on this cluster (N=200):\n");
  std::printf("  single device    : %.2f s\n",
              simulate_single_device(full, 200,
                                     sim::Cluster::homogeneous(
                                         1, cluster.workers[0], cluster.link))
                  .total);
  std::printf("  voltage          : %.2f s\n",
              simulate_voltage(full, 200, cluster,
                               PartitionScheme::even(kDevices),
                               OrderPolicy::kAdaptive)
                  .total);
  std::printf("  tensor parallel  : %.2f s\n",
              simulate_tensor_parallel(full, 200, cluster).total);
  return 0;
}
