// Quickstart: distribute a BERT-style classifier across four simulated edge
// devices with Voltage's public API, check the result against single-device
// inference, and estimate what the deployment would cost on a real edge
// cluster.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "voltage/system.h"

int main() {
  using namespace voltage;

  // 1. Build a model (architecturally a small BERT; weights are random —
  //    swap in your own checkpoint loader for real deployments).
  TransformerModel reference = make_model(mini_bert_spec());
  std::printf("model: %s, %zu layers, %zu parameters\n",
              reference.spec().name.c_str(), reference.spec().num_layers,
              reference.parameter_count());

  // 2. Wrap it in a Voltage system: 4 devices, even position partition,
  //    adaptive computation-order selection (Theorem 2).
  System system(make_model(mini_bert_spec()),
                {.scheme = PartitionScheme::even(4),
                 .policy = OrderPolicy::kAdaptive});

  // 3. Run a distributed inference. Devices are threads connected by a
  //    byte-accurate message fabric; the calling thread is the terminal.
  const HashingTokenizer tokenizer(reference.spec().vocab_size);
  const auto tokens = tokenizer.encode(
      "voltage distributes one transformer inference request across many "
      "edge devices by partitioning every layer along the sequence");
  const Tensor logits = system.infer(tokens);
  std::printf("distributed logits : [%f, %f] -> class %zu\n", logits(0, 0),
              logits(0, 1), argmax_row(logits, 0));

  // 4. It must agree with plain single-device inference.
  const Tensor expected = reference.infer(tokens);
  std::printf("single-device      : [%f, %f]  (max |diff| = %g)\n",
              expected(0, 0), expected(0, 1), max_abs_diff(logits, expected));

  // 5. How much did the devices talk?
  const TrafficStats traffic = system.traffic();
  std::printf("wire traffic       : %llu messages, %.1f KiB\n",
              static_cast<unsigned long long>(traffic.messages_sent),
              static_cast<double>(traffic.bytes_sent) / 1024.0);

  // 6. Predict the latency of this deployment on a described edge cluster
  //    (four 25-GMAC/s devices on 500 Mbps links).
  const auto cluster = sim::Cluster::homogeneous(
      4,
      sim::DeviceSpec{.name = "edge", .mac_rate = 25e9,
                      .elementwise_rate = 4e9},
      LinkModel::mbps(500));
  const LatencyReport estimate =
      system.estimate_latency(cluster, tokens.size());
  std::printf("estimated latency  : %.2f ms on a 4-device 500 Mbps cluster\n",
              1e3 * estimate.total);
  return 0;
}
