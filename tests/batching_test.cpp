// Continuous-batching tests: a batched decode step must be bitwise
// identical to stepping each sequence alone (fp32 and int8, every
// transport), slots must join and leave mid-batch with ids recycled, the
// per-step wire cost must stay one broadcast + one merge round regardless
// of the batch size, and a device crash mid-batch must fail every in-flight
// sequence with the root cause while the server recovers on a fresh
// decoder.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/chaos.h"
#include "net/transport.h"
#include "partition/decode_attention.h"
#include "partition/scheme.h"
#include "runtime/distributed_decoder.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

::testing::AssertionResult row_bitwise_equal(const Tensor& batched,
                                             std::size_t r,
                                             const Tensor& alone) {
  if (batched.cols() != alone.cols() || alone.rows() != 1) {
    return ::testing::AssertionFailure()
           << "shape mismatch: [" << batched.rows() << "x" << batched.cols()
           << "] row " << r << " vs [" << alone.rows() << "x" << alone.cols()
           << "]";
  }
  if (std::memcmp(batched.row(r).data(), alone.row(0).data(),
                  alone.cols() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "row " << r << " differs bitwise from the sequential logits";
  }
  return ::testing::AssertionSuccess();
}

// --- KvBlockPool -----------------------------------------------------------

TEST(KvBlockPool, RecyclesReleasedBlocks) {
  KvBlockPool pool(/*block_floats=*/8);
  const std::size_t a = pool.allocate();
  const std::size_t b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.blocks_in_use(), 2U);
  EXPECT_EQ(pool.blocks_allocated(), 2U);
  float* const storage = pool.data(a);
  pool.release(a);
  EXPECT_EQ(pool.blocks_in_use(), 1U);
  // Freed ids are reused before the arena grows, and the storage is stable.
  const std::size_t c = pool.allocate();
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.data(c), storage);
  EXPECT_EQ(pool.blocks_allocated(), 2U);
  EXPECT_EQ(pool.memory_bytes(), 2U * 8U * sizeof(float));
}

TEST(KvBlockPool, CapExhaustionThrows) {
  KvBlockPool pool(/*block_floats=*/4, /*max_blocks=*/2);
  const std::size_t a = pool.allocate();
  (void)pool.allocate();
  EXPECT_THROW((void)pool.allocate(), std::length_error);
  // Releasing makes room again: the cap bounds concurrent use, not total
  // allocations over the pool's lifetime.
  pool.release(a);
  EXPECT_NO_THROW((void)pool.allocate());
}

TEST(KvBlockPool, BlockSizingCoversBothResidentForms) {
  const LayerConfig cfg = mini_gpt2_spec().layer;
  // One block holds kKvBlockPositions rows of the widest form (kNaive: K
  // and V per position), so kReordered rows (F floats) always fit too.
  EXPECT_EQ(kv_block_floats(cfg),
            kKvBlockPositions * 2 * cfg.heads * cfg.head_dim);
  EXPECT_GE(kv_block_floats(cfg), kKvBlockPositions * cfg.hidden);
}

// --- Bitwise equivalence: batched vs sequential ----------------------------

class BatchedEquivalence
    : public ::testing::TestWithParam<std::tuple<TransportKind, Precision>> {};

TEST_P(BatchedEquivalence, BatchedStepsMatchSequentialBitwiseAcrossK) {
  const auto [transport, precision] = GetParam();
  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kSequences = 3;
  constexpr int kSteps = 6;
  // Ragged prompt lengths so slot round-robin phases differ per sequence.
  std::vector<std::vector<TokenId>> prompts;
  for (std::size_t s = 0; s < kSequences; ++s) {
    prompts.push_back(
        random_tokens(7 + 3 * s, model.spec().vocab_size, 100 + s));
  }
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    // Sequential reference: each sequence served alone on its own decoder.
    std::vector<std::vector<Tensor>> alone;  // [sequence][step 0 = prime]
    for (std::size_t s = 0; s < kSequences; ++s) {
      DistributedDecoder solo(model, PartitionScheme::even(k),
                              OrderPolicy::kAdaptive, transport);
      solo.set_precision(precision);
      std::vector<Tensor> history;
      history.push_back(solo.prime(prompts[s]));
      for (int step = 0; step < kSteps; ++step) {
        const auto next =
            static_cast<TokenId>(argmax_row(history.back(), 0));
        history.push_back(solo.step(next));
      }
      alone.push_back(std::move(history));
    }

    DistributedDecoder batched(model, PartitionScheme::even(k),
                               OrderPolicy::kAdaptive, transport);
    batched.set_precision(precision);
    std::vector<SlotToken> lanes;
    for (std::size_t s = 0; s < kSequences; ++s) {
      const auto primed = batched.prime_slot(prompts[s]);
      EXPECT_EQ(primed.slot, s);
      EXPECT_TRUE(row_bitwise_equal(primed.logits, 0, alone[s][0]))
          << "K=" << k << " prime of sequence " << s;
      lanes.push_back(SlotToken{
          .slot = primed.slot,
          .token = static_cast<TokenId>(argmax_row(primed.logits, 0))});
    }
    EXPECT_EQ(batched.active_slots(), kSequences);
    for (int step = 0; step < kSteps; ++step) {
      const Tensor logits = batched.step_batch(lanes);
      ASSERT_EQ(logits.rows(), kSequences);
      for (std::size_t s = 0; s < kSequences; ++s) {
        ASSERT_TRUE(row_bitwise_equal(logits, s, alone[s][step + 1]))
            << "K=" << k << " sequence " << s << " step " << step;
        lanes[s].token = static_cast<TokenId>(argmax_row(logits, s));
      }
    }
    for (std::size_t s = 0; s < kSequences; ++s) {
      EXPECT_EQ(batched.slot_position(s),
                prompts[s].size() + static_cast<std::size_t>(kSteps));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndPrecisions, BatchedEquivalence,
    ::testing::Combine(::testing::Values(TransportKind::kInMemory,
                                         TransportKind::kUnixSocket),
                       ::testing::Values(Precision::kFp32, Precision::kInt8)),
    [](const auto& info) {
      const std::string t = std::get<0>(info.param) == TransportKind::kInMemory
                                ? "InMemory"
                                : "UnixSocket";
      const std::string p =
          std::get<1>(info.param) == Precision::kFp32 ? "Fp32" : "Int8";
      return t + p;
    });

// --- Join/leave at token granularity ---------------------------------------

TEST(ContinuousBatching, SequencesJoinAndLeaveMidBatchWithSlotReuse) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const PartitionScheme scheme = PartitionScheme::parse("0.5,0.3,0.2");
  const auto prompt_a = random_tokens(9, model.spec().vocab_size, 1);
  const auto prompt_b = random_tokens(12, model.spec().vocab_size, 2);
  const auto prompt_c = random_tokens(5, model.spec().vocab_size, 3);

  DistributedDecoder batched(model, scheme);
  DistributedDecoder solo_b(model, scheme);

  const auto a = batched.prime_slot(prompt_a);
  const auto b = batched.prime_slot(prompt_b);
  EXPECT_EQ(a.slot, 0U);
  EXPECT_EQ(b.slot, 1U);
  Tensor b_ref = solo_b.prime(prompt_b);
  ASSERT_TRUE(row_bitwise_equal(b.logits, 0, b_ref));

  // Phase 1: A and B decode together.
  SlotToken lane_a{.slot = a.slot,
                   .token = static_cast<TokenId>(argmax_row(a.logits, 0))};
  SlotToken lane_b{.slot = b.slot,
                   .token = static_cast<TokenId>(argmax_row(b.logits, 0))};
  for (int step = 0; step < 3; ++step) {
    const std::vector<SlotToken> lanes{lane_a, lane_b};
    const Tensor logits = batched.step_batch(lanes);
    b_ref = solo_b.step(lane_b.token);
    ASSERT_TRUE(row_bitwise_equal(logits, 1, b_ref)) << "step " << step;
    lane_a.token = static_cast<TokenId>(argmax_row(logits, 0));
    lane_b.token = static_cast<TokenId>(argmax_row(logits, 1));
  }

  // A completes: its blocks free, B decodes on untouched state.
  batched.release_slot(a.slot);
  EXPECT_FALSE(batched.slot_active(a.slot));
  EXPECT_EQ(batched.active_slots(), 1U);
  for (int step = 0; step < 2; ++step) {
    const std::vector<SlotToken> lanes{lane_b};
    const Tensor logits = batched.step_batch(lanes);
    b_ref = solo_b.step(lane_b.token);
    ASSERT_TRUE(row_bitwise_equal(logits, 0, b_ref)) << "solo step " << step;
    lane_b.token = static_cast<TokenId>(argmax_row(logits, 0));
  }

  // C joins mid-flight and recycles A's slot id.
  DistributedDecoder solo_c(model, scheme);
  const auto c = batched.prime_slot(prompt_c);
  EXPECT_EQ(c.slot, a.slot);
  Tensor c_ref = solo_c.prime(prompt_c);
  ASSERT_TRUE(row_bitwise_equal(c.logits, 0, c_ref));
  SlotToken lane_c{.slot = c.slot,
                   .token = static_cast<TokenId>(argmax_row(c.logits, 0))};
  for (int step = 0; step < 3; ++step) {
    const std::vector<SlotToken> lanes{lane_b, lane_c};
    const Tensor logits = batched.step_batch(lanes);
    b_ref = solo_b.step(lane_b.token);
    c_ref = solo_c.step(lane_c.token);
    ASSERT_TRUE(row_bitwise_equal(logits, 0, b_ref)) << "joined step " << step;
    ASSERT_TRUE(row_bitwise_equal(logits, 1, c_ref)) << "joined step " << step;
    lane_b.token = static_cast<TokenId>(argmax_row(logits, 0));
    lane_c.token = static_cast<TokenId>(argmax_row(logits, 1));
  }
  EXPECT_EQ(batched.slot_position(b.slot), prompt_b.size() + 8U);
  EXPECT_EQ(batched.slot_position(c.slot), prompt_c.size() + 3U);
}

TEST(ContinuousBatching, StepBatchValidatesLanesWithoutPoisoningTheMesh) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  const auto primed =
      decoder.prime_slot(random_tokens(6, model.spec().vocab_size, 4));
  const std::vector<SlotToken> dup{{primed.slot, 1}, {primed.slot, 2}};
  EXPECT_THROW((void)decoder.step_batch(dup), std::invalid_argument);
  const std::vector<SlotToken> unprimed{{primed.slot + 1, 1}};
  EXPECT_THROW((void)decoder.step_batch(unprimed), std::logic_error);
  EXPECT_THROW((void)decoder.step_batch({}), std::invalid_argument);
  EXPECT_THROW(decoder.release_slot(primed.slot + 1), std::out_of_range);
  // Validation never touched the mesh: the primed slot still decodes.
  EXPECT_FALSE(decoder.fabric().closed());
  const std::vector<SlotToken> good{{primed.slot, 1}};
  EXPECT_EQ(decoder.step_batch(good).rows(), 1U);
}

// --- Wire accounting: one broadcast + one merge round per batch step -------

TEST(ContinuousBatching, StepMessagesConstantAndBytesSublinearInBatch) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    DistributedDecoder decoder(model, PartitionScheme::even(4));
    decoder.set_precision(precision);
    std::vector<SlotToken> lanes;
    for (std::size_t s = 0; s < 4; ++s) {
      const auto primed = decoder.prime_slot(
          random_tokens(8 + s, model.spec().vocab_size, 50 + s));
      lanes.push_back(SlotToken{.slot = primed.slot, .token = 1});
    }
    const auto step_cost = [&](std::span<const SlotToken> batch) {
      const TrafficStats before = decoder.fabric().total_stats();
      (void)decoder.step_batch(batch);
      const TrafficStats after = decoder.fabric().total_stats();
      return std::pair<std::uint64_t, std::uint64_t>(
          after.messages_sent - before.messages_sent,
          after.bytes_sent - before.bytes_sent);
    };
    const auto [m1, bytes1] =
        step_cost(std::span<const SlotToken>(lanes.data(), 1));
    const auto [m4, bytes4] =
        step_cost(std::span<const SlotToken>(lanes.data(), 4));
    // The scheduling win: a batched step is ONE command broadcast and ONE
    // softmax-merge round per layer no matter how many lanes ride it, so
    // the message count (the latency-bound term on a real mesh) does not
    // grow with B at all — only payload bytes do, and those sublinearly
    // (the per-step fixed cost is amortized over 4 lanes).
    EXPECT_EQ(m4, m1) << "precision "
                      << (precision == Precision::kInt8 ? "int8" : "fp32");
    EXPECT_GT(bytes4, bytes1);
    EXPECT_LT(bytes4, 4 * bytes1);
  }
}

// --- Failure containment ---------------------------------------------------

TEST(ContinuousBatching, MidBatchCrashFailsEverySlotWithRootCause) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 4),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 23,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 60}});
  DistributedDecoder decoder(model, PartitionScheme::even(3),
                             OrderPolicy::kAdaptive, std::move(chaos));
  const auto a =
      decoder.prime_slot(random_tokens(8, model.spec().vocab_size, 5));
  const auto b =
      decoder.prime_slot(random_tokens(6, model.spec().vocab_size, 6));
  std::vector<SlotToken> lanes{{a.slot, 1}, {b.slot, 2}};
  bool crashed = false;
  for (int step = 0; step < 64 && !crashed; ++step) {
    try {
      const Tensor logits = decoder.step_batch(lanes);
      lanes[0].token = static_cast<TokenId>(argmax_row(logits, 0));
      lanes[1].token = static_cast<TokenId>(argmax_row(logits, 1));
    } catch (const TransportClosedError& e) {
      crashed = true;
      EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(crashed) << "crash fault never surfaced";
  // The whole decoder is dead — every slot, not just the one mid-step.
  EXPECT_THROW((void)decoder.step_batch(lanes), std::logic_error);
  EXPECT_THROW((void)decoder.prime_slot(random_tokens(4, 8, 1)),
               std::logic_error);
  EXPECT_THROW(decoder.release_slot(a.slot), std::logic_error);
}

TEST(ContinuousBatching, KvBlockLimitSurfacesAsDeviceFailure) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(1));
  // mini-gpt2 has 4 layers; one block per (layer, slot) is the minimum for
  // any prompt, so a 2-block cap cannot even hold one sequence.
  decoder.set_kv_block_limit(2);
  try {
    (void)decoder.prime_slot(random_tokens(10, model.spec().vocab_size, 7));
    FAIL() << "prefill succeeded past the block cap";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("out of blocks"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)decoder.prime_slot(random_tokens(4, 8, 1)),
               std::logic_error);
}

// --- Server-level continuous batching --------------------------------------

std::vector<TokenId> greedy_reference(const TransformerModel& model,
                                      const std::vector<TokenId>& prompt,
                                      std::size_t new_tokens) {
  IncrementalDecoder reference(model);
  Tensor logits = reference.prime(prompt);
  std::vector<TokenId> out;
  while (out.size() < new_tokens) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    out.push_back(next);
    if (out.size() < new_tokens) logits = reference.step(next);
  }
  return out;
}

TEST(ServerBatching, ConcurrentGenerationsBatchAndMatchGreedyReference) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  obs::MetricsRegistry metrics;
  InferenceServer::Options opts{.scheme = PartitionScheme::even(2),
                                .policy = OrderPolicy::kAdaptive,
                                .transport = TransportKind::kInMemory,
                                .max_batch = 4,
                                .metrics = &metrics};
  InferenceServer server(model, opts);
  constexpr std::size_t kRequests = 6;
  constexpr std::size_t kNewTokens = 10;
  std::vector<std::vector<TokenId>> prompts;
  std::vector<std::future<std::vector<TokenId>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.push_back(
        random_tokens(6 + i, model.spec().vocab_size, 200 + i));
    futures.push_back(server.submit_generate(prompts.back(), kNewTokens));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(),
              greedy_reference(model, prompts[i], kNewTokens))
        << "request " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.failed, 0U);
  // Six requests burst at a dispatcher with max_batch 4: some iteration
  // must have decoded several lanes at once, and never more than the cap.
  EXPECT_GE(stats.batch_peak, 2U);
  EXPECT_LE(stats.batch_peak, 4U);
  EXPECT_GT(stats.ttft.mean, 0.0);
  EXPECT_GT(stats.per_token.mean, 0.0);
  EXPECT_LE(stats.ttft.p50, stats.ttft.max);
  const obs::HistogramSnapshot occupancy =
      metrics.histogram("server.batch_occupancy").snapshot();
  EXPECT_GT(occupancy.count, 0U);
  EXPECT_GE(occupancy.max, 2.0);
}

TEST(ServerBatching, MeshCrashFailsInFlightBatchAndRecovers) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer::Options opts{.scheme = PartitionScheme::even(2),
                                .policy = OrderPolicy::kAdaptive,
                                .transport = TransportKind::kInMemory,
                                .max_batch = 4};
  opts.decoder_transport_factory = [](std::size_t devices) {
    return std::unique_ptr<Transport>(new ChaosTransport(
        make_transport(TransportKind::kInMemory, devices),
        ChaosOptions{
            .max_delay_seconds = 1e-4,
            .seed = 29,
            .crash = ChaosOptions::Crash{.device = 1, .after_sends = 120}}));
  };
  InferenceServer server(model, opts);
  constexpr std::size_t kRequests = 4;
  std::vector<std::future<std::vector<TokenId>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit_generate(
        random_tokens(8, model.spec().vocab_size, 300 + i), 30));
  }
  std::size_t failed = 0;
  for (auto& future : futures) {
    try {
      EXPECT_EQ(future.get().size(), 30U);
    } catch (const std::exception&) {
      failed += 1;
    }
  }
  // 4 requests x 30 tokens cannot fit under the 120-send crash budget, so
  // at least one in-flight generation died with the mesh.
  EXPECT_GE(failed, 1U);
  // Queued/later requests are served by a fresh decoder (the factory runs
  // again); a short generation fits well under the new crash budget.
  const auto prompt = random_tokens(7, model.spec().vocab_size, 310);
  EXPECT_EQ(server.submit_generate(prompt, 4).get(),
            greedy_reference(model, prompt, 4));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.completed + stats.failed, kRequests + 1);
}

TEST(ServerBatching, DeadlinePreemptsLongGenerationMidBatch) {
  ModelSpec spec = mini_gpt2_spec();
  spec.max_positions = 8192;  // room for a generation that cannot finish
  const TransformerModel model(spec, 1);
  InferenceServer::Options opts{.scheme = PartitionScheme::even(2),
                                .policy = OrderPolicy::kAdaptive,
                                .transport = TransportKind::kInMemory,
                                .max_batch = 2,
                                .request_deadline = 0.1};
  InferenceServer server(model, opts);
  auto doomed = server.submit_generate(
      random_tokens(8, model.spec().vocab_size, 9), 8000);
  EXPECT_THROW((void)doomed.get(), RecvTimeoutError);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.preempted, 1U);
  EXPECT_EQ(stats.failed, 1U);
  // Preemption released the slot without killing the mesh: the next
  // (feasible) request decodes on the same decoder.
  const auto prompt = random_tokens(6, model.spec().vocab_size, 10);
  EXPECT_EQ(server.submit_generate(prompt, 3).get(),
            greedy_reference(model, prompt, 3));
}

}  // namespace
}  // namespace voltage
