// Tests of the public voltage::System façade.
#include <gtest/gtest.h>

#include "transformer/tokenizer.h"
#include "voltage/system.h"

namespace voltage {
namespace {

TEST(System, QuickstartFlow) {
  System system(make_model(mini_bert_spec()),
                {.scheme = PartitionScheme::even(3)});
  const auto tokens =
      random_tokens(20, system.model().spec().vocab_size, 1);
  const Tensor logits = system.infer(tokens);
  EXPECT_EQ(logits.rows(), 1U);
  EXPECT_EQ(logits.cols(), 2U);
  EXPECT_GT(system.traffic().bytes_sent, 0U);
}

TEST(System, MatchesStandaloneModel) {
  const TransformerModel reference = make_model(mini_gpt2_spec());
  System system(make_model(mini_gpt2_spec()),
                {.scheme = PartitionScheme::even(2),
                 .policy = OrderPolicy::kAdaptive});
  const auto tokens = random_tokens(15, reference.spec().vocab_size, 2);
  EXPECT_TRUE(allclose(system.infer(tokens), reference.infer(tokens), 2e-3F));
}

TEST(System, VisionInput) {
  System system(make_model(mini_vit_spec()),
                {.scheme = PartitionScheme::even(2)});
  const Tensor logits = system.infer(random_image(32, 3, 3));
  EXPECT_EQ(logits.cols(), 10U);
}

TEST(System, EstimateLatencyUsesSchemeAndCluster) {
  System system(make_model(mini_bert_spec()),
                {.scheme = PartitionScheme::even(4)});
  const auto cluster = sim::Cluster::homogeneous(
      4, sim::DeviceSpec{.name = "edge", .mac_rate = 5e9,
                         .elementwise_rate = 1e9},
      LinkModel::mbps(500));
  const LatencyReport report = system.estimate_latency(cluster, 64);
  EXPECT_GT(report.total, 0.0);
  EXPECT_EQ(report.devices, 4U);
  // More bandwidth, faster estimate.
  auto fast = cluster;
  fast.link = LinkModel::mbps(2000);
  EXPECT_LT(system.estimate_latency(fast, 64).total, report.total);
}

TEST(System, AllStrategiesAgree) {
  const TransformerModel reference = make_model(mini_bert_spec());
  const auto tokens = random_tokens(18, reference.spec().vocab_size, 5);
  const Tensor expected = reference.infer(tokens);
  for (const Strategy strategy :
       {Strategy::kVoltage, Strategy::kTensorParallel, Strategy::kPipeline}) {
    System system(make_model(mini_bert_spec()),
                  {.scheme = PartitionScheme::even(2),
                   .policy = OrderPolicy::kAdaptive,
                   .strategy = strategy});
    EXPECT_TRUE(allclose(system.infer(tokens), expected, 2e-3F))
        << static_cast<int>(strategy);
    EXPECT_GT(system.traffic().bytes_sent, 0U);
  }
}

TEST(System, StrategyOverRealSockets) {
  const TransformerModel reference = make_model(mini_gpt2_spec());
  System system(make_model(mini_gpt2_spec()),
                {.scheme = PartitionScheme::even(2),
                 .policy = OrderPolicy::kAdaptive,
                 .strategy = Strategy::kVoltage,
                 .transport = TransportKind::kUnixSocket});
  const auto tokens = random_tokens(12, reference.spec().vocab_size, 6);
  EXPECT_TRUE(allclose(system.infer(tokens), reference.infer(tokens), 2e-3F));
}

TEST(System, EstimateFollowsStrategy) {
  // The estimate must describe the configured strategy: on a weak link TP
  // predicts much worse latency than Voltage on the same cluster.
  const auto cluster = sim::Cluster::homogeneous(
      2,
      sim::DeviceSpec{.name = "edge", .mac_rate = 25e9,
                      .elementwise_rate = 4e9},
      LinkModel::mbps(200));
  System voltage(make_model(mini_bert_spec()),
                 {.scheme = PartitionScheme::even(2),
                  .strategy = Strategy::kVoltage});
  System tp(make_model(mini_bert_spec()),
            {.scheme = PartitionScheme::even(2),
             .strategy = Strategy::kTensorParallel});
  System pipe(make_model(mini_bert_spec()),
              {.scheme = PartitionScheme::even(2),
               .strategy = Strategy::kPipeline});
  const double v = voltage.estimate_latency(cluster, 64).total;
  const double t = tp.estimate_latency(cluster, 64).total;
  const double p = pipe.estimate_latency(cluster, 64).total;
  EXPECT_LT(v, t);
  EXPECT_GT(p, 0.0);
  EXPECT_EQ(pipe.estimate_latency(cluster, 64).devices, 2U);
}

TEST(System, TrafficAccumulatesAcrossCalls) {
  System system(make_model(mini_bert_spec()),
                {.scheme = PartitionScheme::even(2)});
  const auto tokens =
      random_tokens(12, system.model().spec().vocab_size, 4);
  (void)system.infer(tokens);
  const auto first = system.traffic().bytes_sent;
  (void)system.infer(tokens);
  EXPECT_EQ(system.traffic().bytes_sent, 2 * first);
}

}  // namespace
}  // namespace voltage
