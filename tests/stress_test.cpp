// Stress and soak tests: heavier concurrency and volume than the unit
// suites, exercising the transports, engine and runtimes under load.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/socket_fabric.h"
#include "sim/engine.h"
#include "sim/netsim.h"
#include "tensor/rng.h"
#include "runtime/voltage_runtime.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

TEST(Stress, FabricManyToOneFanIn) {
  // Four senders hammer one receiver with interleaved tags; every message
  // must arrive exactly once with intact payload length.
  Fabric fabric(5);
  constexpr std::size_t kPerSender = 200;
  std::vector<std::thread> senders;
  for (DeviceId s = 1; s <= 4; ++s) {
    senders.emplace_back([&, s] {
      for (std::size_t m = 0; m < kPerSender; ++m) {
        fabric.send(Message{.source = s,
                            .destination = 0,
                            .tag = m % 7,
                            .payload = std::vector<std::byte>(s * 10 + m % 3)});
      }
    });
  }
  std::size_t received = 0;
  std::size_t bytes = 0;
  std::thread receiver([&] {
    // Mirror the senders' (source, tag) pattern exactly; recv blocks until
    // the matching message lands, whatever the interleaving.
    for (std::size_t m = 0; m < kPerSender; ++m) {
      for (DeviceId s = 1; s <= 4; ++s) {
        const Message msg = fabric.recv(0, s, m % 7);
        ++received;
        bytes += msg.payload.size();
      }
    }
  });
  for (auto& t : senders) t.join();
  receiver.join();
  EXPECT_EQ(received, 4 * kPerSender);
  EXPECT_EQ(fabric.stats(0).messages_received, 4 * kPerSender);
  EXPECT_EQ(fabric.stats(0).bytes_received,
            bytes + 4 * kPerSender * kWireFrameBytes);
}

TEST(Stress, SocketFabricBidirectionalSoak) {
  SocketFabric fabric(2);
  constexpr std::size_t kMessages = 300;
  std::thread peer([&] {
    for (std::size_t m = 0; m < kMessages; ++m) {
      const Message in = fabric.recv(1, 0, m);
      // Echo back with tag shifted.
      fabric.send(Message{.source = 1,
                          .destination = 0,
                          .tag = m + kMessages,
                          .payload = in.payload});
    }
  });
  Rng rng(1);
  for (std::size_t m = 0; m < kMessages; ++m) {
    fabric.send(Message{.source = 0,
                        .destination = 1,
                        .tag = m,
                        .payload = std::vector<std::byte>(
                            1 + rng.next_below(4096))});
  }
  std::size_t echoed = 0;
  for (std::size_t m = 0; m < kMessages; ++m) {
    echoed += fabric.recv(0, 1, m + kMessages).payload.size();
  }
  peer.join();
  EXPECT_EQ(fabric.stats(0).bytes_sent,
            echoed + kMessages * kWireFrameBytes);
  EXPECT_EQ(fabric.total_stats().messages_sent, 2 * kMessages);
}

TEST(Stress, EngineHandlesLargeRandomSchedule) {
  // 5000 events at random times must fire in exactly sorted order.
  sim::Engine engine;
  Rng rng(2);
  std::vector<double> times(5000);
  for (double& t : times) t = rng.next_uniform() * 100.0;
  std::vector<double> fired;
  fired.reserve(times.size());
  for (const double t : times) {
    engine.schedule(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(fired.size(), times.size());
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  std::sort(times.begin(), times.end());
  EXPECT_EQ(fired, times);
}

TEST(Stress, StarAllReduceSkewMonotonicity) {
  // Star all-reduce completion can only get later as any rank's readiness
  // slips.
  const LinkModel link = LinkModel::mbps(500, 0.002);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = 2 + rng.next_below(6);
    std::vector<double> ready(k);
    for (double& r : ready) r = rng.next_uniform();
    const std::size_t bytes = 1 + rng.next_below(1 << 20);
    const auto base = sim::sim_star_allreduce(ready, bytes, link);
    auto delayed = ready;
    const std::size_t victim = rng.next_below(k);
    delayed[victim] += 0.5;
    const auto slower = sim::sim_star_allreduce(delayed, bytes, link);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_GE(slower[i] + 1e-12, base[i]) << "trial " << trial;
    }
  }
}

TEST(Stress, RuntimeSoakManyInferences) {
  // 20 back-to-back distributed inferences through one runtime: no tag
  // leakage, no cross-request contamination.
  const TransformerModel model = make_model(mini_gpt2_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(3));
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto tokens =
        random_tokens(5 + i % 11, model.spec().vocab_size, i);
    ASSERT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F))
        << "iteration " << i;
  }
  // Traffic must be the exact sum of per-inference traffic (no strays).
  EXPECT_EQ(runtime.fabric().total_stats().messages_sent,
            runtime.fabric().total_stats().messages_received);
}

TEST(Stress, ParallelRuntimesDoNotInterfere) {
  // Two independent runtimes inferring concurrently from separate threads.
  const TransformerModel model_a = make_model(mini_bert_spec(), 1);
  const TransformerModel model_b = make_model(mini_bert_spec(), 2);
  VoltageRuntime runtime_a(model_a, PartitionScheme::even(2));
  VoltageRuntime runtime_b(model_b, PartitionScheme::even(3));
  std::atomic<int> failures{0};
  std::thread ta([&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      const auto tokens = random_tokens(12, model_a.spec().vocab_size, i);
      if (!allclose(runtime_a.infer(tokens), model_a.infer(tokens), 2e-3F)) {
        ++failures;
      }
    }
  });
  std::thread tb([&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      const auto tokens = random_tokens(9, model_b.spec().vocab_size, i);
      if (!allclose(runtime_b.infer(tokens), model_b.infer(tokens), 2e-3F)) {
        ++failures;
      }
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace voltage
