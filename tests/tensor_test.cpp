// Unit tests for the tensor substrate: shapes, kernels, FLOP accounting,
// RNG determinism and wire serialization.
#include <cmath>
#include <cstring>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "tensor/flops.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace voltage {
namespace {

TEST(Tensor, DefaultConstructedIsEmpty) {
  const Tensor t;
  EXPECT_EQ(t.rows(), 0U);
  EXPECT_EQ(t.cols(), 0U);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(3, 4);
  EXPECT_EQ(t.size(), 12U);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(t(r, c), 0.0F);
  }
}

TEST(Tensor, InitializerListLayout) {
  const Tensor t{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.cols(), 3U);
  EXPECT_EQ(t(0, 2), 3.0F);
  EXPECT_EQ(t(1, 0), 4.0F);
}

TEST(Tensor, RaggedInitializerThrows) {
  EXPECT_THROW((Tensor{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Tensor, SliceRows) {
  const Tensor t{{1, 2}, {3, 4}, {5, 6}};
  const Tensor mid = t.slice_rows(1, 3);
  EXPECT_EQ(mid.rows(), 2U);
  EXPECT_EQ(mid(0, 0), 3.0F);
  EXPECT_EQ(mid(1, 1), 6.0F);
  EXPECT_EQ(t.slice_rows(1, 1).rows(), 0U);
  EXPECT_THROW((void)t.slice_rows(2, 4), std::out_of_range);
}

TEST(Tensor, SliceCols) {
  const Tensor t{{1, 2, 3}, {4, 5, 6}};
  const Tensor right = t.slice_cols(1, 3);
  EXPECT_EQ(right.cols(), 2U);
  EXPECT_EQ(right(0, 0), 2.0F);
  EXPECT_EQ(right(1, 1), 6.0F);
}

TEST(Tensor, Transposed) {
  const Tensor t{{1, 2, 3}, {4, 5, 6}};
  const Tensor tt = t.transposed();
  EXPECT_EQ(tt.rows(), 3U);
  EXPECT_EQ(tt.cols(), 2U);
  EXPECT_EQ(tt(2, 1), 6.0F);
  EXPECT_EQ(tt.transposed(), t);
}

TEST(Tensor, SetRows) {
  Tensor t(4, 2);
  t.set_rows(1, Tensor{{7, 8}, {9, 10}});
  EXPECT_EQ(t(1, 0), 7.0F);
  EXPECT_EQ(t(2, 1), 10.0F);
  EXPECT_EQ(t(0, 0), 0.0F);
  EXPECT_THROW(t.set_rows(3, Tensor(2, 2)), std::out_of_range);
}

TEST(Tensor, Identity) {
  const Tensor id = Tensor::identity(3);
  EXPECT_EQ(id(0, 0), 1.0F);
  EXPECT_EQ(id(1, 2), 0.0F);
}

TEST(Tensor, MaxAbsDiffAndAllclose) {
  const Tensor a{{1, 2}, {3, 4}};
  Tensor b = a;
  b(1, 1) = 4.5F;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5F);
  EXPECT_TRUE(allclose(a, b, 0.5F));
  EXPECT_FALSE(allclose(a, b, 0.4F));
  EXPECT_THROW((void)max_abs_diff(a, Tensor(1, 2)), std::invalid_argument);
}

// --- matmul ---------------------------------------------------------------

TEST(Matmul, KnownValues) {
  const Tensor a{{1, 2}, {3, 4}};
  const Tensor b{{5, 6}, {7, 8}};
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c, (Tensor{{19, 22}, {43, 50}}));
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(1);
  const Tensor a = rng.normal_tensor(5, 5, 1.0F);
  EXPECT_TRUE(allclose(matmul(a, Tensor::identity(5)), a, 1e-6F));
  EXPECT_TRUE(allclose(matmul(Tensor::identity(5), a), a, 1e-6F));
}

TEST(Matmul, TransposeFlagsAgreeWithExplicitTranspose) {
  Rng rng(2);
  const Tensor a = rng.normal_tensor(4, 6, 1.0F);
  const Tensor b = rng.normal_tensor(4, 3, 1.0F);
  // a^T * b via flag vs via materialized transpose.
  EXPECT_TRUE(allclose(matmul(a, b, Trans::kYes, Trans::kNo),
                       matmul(a.transposed(), b), 1e-5F));
  const Tensor c = rng.normal_tensor(3, 6, 1.0F);
  EXPECT_TRUE(allclose(matmul(a, c, Trans::kNo, Trans::kYes),
                       matmul(a, c.transposed()), 1e-5F));
  EXPECT_TRUE(allclose(matmul(b, a, Trans::kYes, Trans::kNo),
                       matmul(b.transposed(), a), 1e-5F));
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW((void)matmul(Tensor(2, 3), Tensor(4, 2)),
               std::invalid_argument);
}

TEST(Matmul, AssociativityHolds) {
  Rng rng(3);
  const Tensor a = rng.normal_tensor(3, 4, 1.0F);
  const Tensor b = rng.normal_tensor(4, 5, 1.0F);
  const Tensor c = rng.normal_tensor(5, 2, 1.0F);
  EXPECT_TRUE(
      allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-4F));
}

TEST(Matmul, EmptyRowsProduceEmptyResult) {
  const Tensor a(0, 4);
  const Tensor b(4, 5);
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.rows(), 0U);
  EXPECT_EQ(c.cols(), 5U);
}

// Parameterized MAC accounting across shapes: Γ(AB) = m * k * n exactly.
class MatmulFlops
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulFlops, CountsExactMacs) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  const Tensor a = rng.normal_tensor(m, k, 1.0F);
  const Tensor b = rng.normal_tensor(k, n, 1.0F);
  const flops::Scope scope;
  (void)matmul(a, b);
  EXPECT_EQ(scope.macs(), static_cast<std::uint64_t>(m) * k * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulFlops,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{16, 64, 16},
                                           std::tuple{100, 64, 100},
                                           std::tuple{33, 128, 7}));

// --- elementwise kernels ----------------------------------------------------

TEST(Ops, AddAndSub) {
  const Tensor a{{1, 2}, {3, 4}};
  const Tensor b{{10, 20}, {30, 40}};
  EXPECT_EQ(add(a, b), (Tensor{{11, 22}, {33, 44}}));
  EXPECT_EQ(sub(b, a), (Tensor{{9, 18}, {27, 36}}));
  Tensor c = a;
  add_inplace(c, b);
  EXPECT_EQ(c, add(a, b));
}

TEST(Ops, AddBias) {
  Tensor x{{1, 1, 1}, {2, 2, 2}};
  add_bias_inplace(x, Tensor{{1, 2, 3}});
  EXPECT_EQ(x, (Tensor{{2, 3, 4}, {3, 4, 5}}));
  EXPECT_THROW(add_bias_inplace(x, Tensor(1, 2)), std::invalid_argument);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(4);
  const Tensor x = rng.normal_tensor(6, 10, 3.0F);
  const Tensor s = softmax_rows(x, 0.5F);
  for (std::size_t r = 0; r < s.rows(); ++r) {
    float sum = 0.0F;
    for (const float v : s.row(r)) {
      EXPECT_GE(v, 0.0F);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  const Tensor x{{1, 2, 3}};
  Tensor shifted = x;
  for (float& v : shifted.flat()) v += 100.0F;
  EXPECT_TRUE(allclose(softmax_rows(x), softmax_rows(shifted), 1e-5F));
}

TEST(Ops, SoftmaxHandlesLargeNegativeMask) {
  const Tensor x{{0.0F, -1e30F, 0.0F}};
  const Tensor s = softmax_rows(x, 0.125F);
  EXPECT_NEAR(s(0, 0), 0.5F, 1e-5F);
  EXPECT_EQ(s(0, 1), 0.0F);
  EXPECT_NEAR(s(0, 2), 0.5F, 1e-5F);
}

TEST(Ops, LayerNormZeroMeanUnitVar) {
  Rng rng(5);
  const Tensor x = rng.normal_tensor(4, 64, 2.0F);
  const Tensor gamma = Tensor::filled(1, 64, 1.0F);
  const Tensor beta = Tensor(1, 64);
  const Tensor y = layernorm_rows(x, gamma, beta);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float mean = 0.0F;
    float var = 0.0F;
    for (const float v : y.row(r)) mean += v;
    mean /= 64.0F;
    for (const float v : y.row(r)) var += (v - mean) * (v - mean);
    var /= 64.0F;
    EXPECT_NEAR(mean, 0.0F, 1e-4F);
    EXPECT_NEAR(var, 1.0F, 1e-2F);
  }
}

TEST(Ops, LayerNormAppliesGainAndBias) {
  const Tensor x{{1, 2, 3, 4}};
  const Tensor gamma = Tensor::filled(1, 4, 2.0F);
  const Tensor beta = Tensor::filled(1, 4, 10.0F);
  const Tensor y = layernorm_rows(x, gamma, beta);
  float mean = 0.0F;
  for (const float v : y.row(0)) mean += v;
  EXPECT_NEAR(mean / 4.0F, 10.0F, 1e-4F);
}

TEST(Ops, ReluClampsNegatives) {
  EXPECT_EQ(relu(Tensor{{-1, 0, 2}}), (Tensor{{0, 0, 2}}));
}

TEST(Ops, GeluMatchesReference) {
  // Reference values of tanh-approximation GELU.
  const Tensor y = gelu(Tensor{{0.0F, 1.0F, -1.0F, 3.0F}});
  EXPECT_NEAR(y(0, 0), 0.0F, 1e-6F);
  EXPECT_NEAR(y(0, 1), 0.8412F, 1e-3F);
  EXPECT_NEAR(y(0, 2), -0.1588F, 1e-3F);
  EXPECT_NEAR(y(0, 3), 2.9964F, 1e-3F);
}

TEST(Ops, ConcatColsAndRows) {
  const Tensor a{{1, 2}, {3, 4}};
  const Tensor b{{5}, {6}};
  const std::vector<Tensor> cols{a, b};
  EXPECT_EQ(concat_cols(cols), (Tensor{{1, 2, 5}, {3, 4, 6}}));
  const Tensor c{{7, 8}};
  const std::vector<Tensor> rows{a, c};
  EXPECT_EQ(concat_rows(rows), (Tensor{{1, 2}, {3, 4}, {7, 8}}));
}

TEST(Ops, ConcatMismatchThrows) {
  const std::vector<Tensor> bad{Tensor(2, 2), Tensor(3, 2)};
  EXPECT_THROW((void)concat_cols(bad), std::invalid_argument);
}

TEST(Ops, MeanRowsAndArgmax) {
  const Tensor x{{1, 5, 3}, {3, 1, 5}};
  EXPECT_TRUE(allclose(mean_rows(x), Tensor{{2, 3, 4}}, 1e-6F));
  EXPECT_EQ(argmax_row(x, 0), 1U);
  EXPECT_EQ(argmax_row(x, 1), 2U);
}

// --- rng -------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.next_uniform();
    EXPECT_GE(u, 0.0F);
    EXPECT_LT(u, 1.0F);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, NormalTensorUsesStddev) {
  Rng rng(5);
  const Tensor t = rng.normal_tensor(100, 100, 0.1F);
  double sq = 0.0;
  for (const float v : t.flat()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.size())), 0.1, 0.01);
}

// --- serialization -----------------------------------------------------------

TEST(Serialize, RoundTrip) {
  Rng rng(6);
  const Tensor t = rng.normal_tensor(7, 13, 1.0F);
  EXPECT_EQ(tensor_from_bytes(to_bytes(t)), t);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  const Tensor t(0, 5);
  const Tensor back = tensor_from_bytes(to_bytes(t));
  EXPECT_EQ(back.rows(), 0U);
  EXPECT_EQ(back.cols(), 5U);
}

TEST(Serialize, WireSizeMatchesFormula) {
  const Tensor t(3, 4);
  EXPECT_EQ(to_bytes(t).size(), tensor_wire_bytes(12));
  EXPECT_EQ(tensor_wire_bytes(12), 16U + 48U);
}

TEST(Serialize, TruncatedPayloadThrows) {
  auto bytes = to_bytes(Tensor(2, 2));
  bytes.pop_back();
  EXPECT_THROW((void)tensor_from_bytes(bytes), std::invalid_argument);
  EXPECT_THROW((void)tensor_from_bytes(std::vector<std::byte>(8)),
               std::invalid_argument);
}

// Forge a wire header claiming the given shape over a body of `body_bytes`
// zero bytes.
std::vector<std::byte> forged_header(std::uint64_t rows, std::uint64_t cols,
                                     std::size_t body_bytes) {
  std::vector<std::byte> bytes(kTensorWireHeaderBytes + body_bytes);
  std::memcpy(bytes.data(), &rows, sizeof(rows));
  std::memcpy(bytes.data() + sizeof(rows), &cols, sizeof(cols));
  return bytes;
}

TEST(Serialize, HostileHeaderOverflowThrows) {
  // rows * cols wraps to 0 in 64 bits: 2^32 * 2^32. Without the overflow
  // guard the size check would accept a 16-byte payload for a "2^64
  // element" tensor and the copy would scribble far past the buffer.
  const std::uint64_t big = std::uint64_t{1} << 32;
  EXPECT_THROW((void)tensor_from_bytes(forged_header(big, big, 0)),
               std::invalid_argument);
  // rows * cols wraps to 16: (2^63 + 8) * 2 = 16 mod 2^64.
  EXPECT_THROW((void)tensor_from_bytes(forged_header(
                   (std::uint64_t{1} << 63) + 8, 2, 16 * sizeof(float))),
               std::invalid_argument);
  // Element count fits u64 but the byte size would overflow size_t.
  EXPECT_THROW((void)tensor_from_bytes(
                   forged_header(std::uint64_t{1} << 62, 8, 0)),
               std::invalid_argument);
  // Same guards on the payload path.
  EXPECT_THROW((void)tensor_from_payload(Payload(forged_header(big, big, 0))),
               std::invalid_argument);
}

TEST(Serialize, DeserializeIntoPlacesRowsAtOffset) {
  Rng rng(7);
  const Tensor part = rng.normal_tensor(3, 5, 1.0F);
  Tensor dst(8, 5);
  const WireShape shape = deserialize_into(Payload(to_bytes(part)), dst, 2);
  EXPECT_EQ(shape.rows, 3U);
  EXPECT_EQ(shape.cols, 5U);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(dst(r + 2, c), part(r, c));
    }
  }
  EXPECT_EQ(dst(0, 0), 0.0F);  // untouched outside the landed range
}

TEST(Serialize, DeserializeIntoValidates) {
  const Tensor part(3, 5);
  Tensor dst(8, 5);
  // Rows don't fit at the offset.
  EXPECT_THROW((void)deserialize_into(Payload(to_bytes(part)), dst, 6),
               std::invalid_argument);
  // Column mismatch.
  Tensor narrow(8, 4);
  EXPECT_THROW((void)deserialize_into(Payload(to_bytes(part)), narrow, 0),
               std::invalid_argument);
  // Hostile header can't bypass the range check either.
  EXPECT_THROW((void)deserialize_into(
                   Payload(forged_header(std::uint64_t{1} << 32,
                                         std::uint64_t{1} << 32, 0)),
                   dst, 0),
               std::invalid_argument);
  // Empty partitions land anywhere, even at the end.
  const WireShape shape =
      deserialize_into(Payload(to_bytes(Tensor(0, 7))), dst, 8);
  EXPECT_EQ(shape.rows, 0U);
}

TEST(Serialize, PayloadViewCarriesExactWireBytes) {
  // A borrowing payload must be byte-identical to the serialized form —
  // traffic accounting and socket framing depend on it.
  Rng rng(9);
  const auto t = std::make_shared<const Tensor>(rng.normal_tensor(4, 6, 1.0F));
  const Payload view = tensor_payload_view(t);
  EXPECT_EQ(view.size(), tensor_wire_bytes(t->size()));
  EXPECT_EQ(view.flatten(), to_bytes(*t));
  // The view keeps the tensor alive and reads back identically.
  EXPECT_EQ(tensor_from_payload(view), *t);
}

// --- flop counters -----------------------------------------------------------

TEST(Flops, ScopeResetsAndAccumulates) {
  Rng rng(8);
  const Tensor a = rng.normal_tensor(2, 3, 1.0F);
  const Tensor b = rng.normal_tensor(3, 4, 1.0F);
  {
    const flops::Scope scope;
    (void)matmul(a, b);
    (void)matmul(a, b);
    EXPECT_EQ(scope.macs(), 2U * 2 * 3 * 4);
  }
  const flops::Scope fresh;
  EXPECT_EQ(fresh.macs(), 0U);
}

TEST(Flops, ElementwiseAccountedByKernels) {
  Tensor x = Tensor::filled(4, 8, 1.0F);
  const flops::Scope scope;
  add_inplace(x, x);               // 32
  (void)softmax_rows(x);           // 4 * 32
  (void)relu(x);                   // 32
  EXPECT_EQ(scope.elementwise(), 32U + 128U + 32U);
}

}  // namespace
}  // namespace voltage
