// Failure-containment tests: a single failing device must surface as a
// descriptive exception on the caller — never as a hang. The mechanism under
// test is transport poisoning (Transport::close unblocks every pending and
// future operation with TransportClosedError) plus optional recv deadlines,
// exercised from the transport level up through all three runtimes.
//
// Every test here must finish in bounded time; a regression in the
// containment layer shows up as a ctest timeout, not a wrong value.
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/chaos.h"
#include "net/transport.h"
#include "partition/schedule.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/tensor_parallel_runtime.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs the same containment scenarios over in-memory mailboxes and real
// kernel sockets — the poisoning and deadline semantics must be identical.
class FailureTransportParam : public ::testing::TestWithParam<TransportKind> {
 protected:
  [[nodiscard]] std::unique_ptr<Transport> make(std::size_t devices) const {
    return make_transport(GetParam(), devices);
  }
};

TEST_P(FailureTransportParam, CloseUnblocksPendingRecv) {
  const auto t = make(2);
  std::string error;
  std::thread receiver([&] {
    try {
      (void)t->recv(1, 0, 7);
    } catch (const TransportClosedError& e) {
      error = e.what();
    }
  });
  // Give the receiver time to actually block before poisoning.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t->close("device 0 failed: boom");
  receiver.join();
  EXPECT_NE(error.find("closed"), std::string::npos) << error;
  EXPECT_NE(error.find("device 0 failed: boom"), std::string::npos) << error;
  EXPECT_TRUE(t->closed());
}

TEST_P(FailureTransportParam, CloseUnblocksPendingRecvAny) {
  const auto t = make(3);
  std::thread receiver([&] {
    EXPECT_THROW((void)t->recv_any(2, 9), TransportClosedError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t->close("terminal failed: deadline");
  receiver.join();
}

TEST_P(FailureTransportParam, SendAfterCloseThrows) {
  const auto t = make(2);
  t->close("test close");
  EXPECT_THROW(t->send(Message{.source = 0,
                               .destination = 1,
                               .tag = 1,
                               .payload = std::vector<std::byte>(4)}),
               TransportClosedError);
}

TEST_P(FailureTransportParam, CloseIsIdempotentFirstReasonWins) {
  const auto t = make(2);
  t->close("first reason");
  t->close("second reason");
  try {
    (void)t->recv(1, 0, 1);
    FAIL() << "recv on closed transport must throw";
  } catch (const TransportClosedError& e) {
    EXPECT_NE(std::string(e.what()).find("first reason"), std::string::npos)
        << e.what();
  }
}

TEST_P(FailureTransportParam, QueuedMessageDeliveredBeforeClosedCheck) {
  // A message that already arrived must still be consumable after close:
  // matching wins over the poison check, so no data already on the wire is
  // lost to the shutdown race.
  const auto t = make(2);
  t->send(Message{.source = 0, .destination = 1, .tag = 5,
                  .payload = std::vector<std::byte>(3)});
  // Socket delivery is asynchronous; wait for the message to land.
  const auto deadline = RecvOptions::within(5.0);
  const Message m = t->recv(1, 0, 5, deadline);
  EXPECT_EQ(m.payload.size(), 3U);
  t->close("late close");
  EXPECT_THROW((void)t->recv(1, 0, 5), TransportClosedError);
}

TEST_P(FailureTransportParam, RecvDeadlineExpiresWithTimeoutError) {
  const auto t = make(2);
  const auto start = Clock::now();
  EXPECT_THROW((void)t->recv(1, 0, 42, RecvOptions::within(0.05)),
               RecvTimeoutError);
  EXPECT_THROW((void)t->recv_any(1, 42, RecvOptions::within(0.05)),
               RecvTimeoutError);
  // Both waits together stay near their budgets — no unbounded blocking.
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST_P(FailureTransportParam, NonPositiveDeadlineMeansWaitForever) {
  const auto t = make(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    t->send(Message{.source = 0, .destination = 1, .tag = 2,
                    .payload = std::vector<std::byte>(1)});
  });
  // within(0) disables the deadline: this blocks until the send lands.
  EXPECT_EQ(t->recv(1, 0, 2, RecvOptions::within(0.0)).payload.size(), 1U);
  sender.join();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, FailureTransportParam,
                         ::testing::Values(TransportKind::kInMemory,
                                           TransportKind::kUnixSocket),
                         [](const auto& info) {
                           return info.param == TransportKind::kInMemory
                                      ? "InMemory"
                                      : "UnixSocket";
                         });

// --- Runtime-level containment -------------------------------------------

class FailureRuntimeParam : public ::testing::TestWithParam<TransportKind> {};

TEST_P(FailureRuntimeParam, ThrowingDeviceFailsInferDescriptively) {
  // The original deadlock: one device thread throws mid-layer while its
  // peers block in the layer all-gather and the terminal blocks collecting
  // the final partitions. Poisoning must unwedge everyone, and the caller
  // must see the *root cause*, not a secondary "transport closed" error.
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(3),
                         OrderPolicy::kAdaptive, GetParam());
  runtime.set_partition_executor(
      [](std::size_t layer, const Tensor& x, Range p, OrderPolicy) -> Tensor {
        if (layer == 1 && p.begin == 0) {
          throw std::runtime_error("injected executor fault");
        }
        // Stand-in kernel: shape-correct output keeps the healthy devices
        // marching deep into the protocol before the fault lands.
        return Tensor(p.size(), x.cols());
      });
  const auto tokens = random_tokens(12, model.spec().vocab_size, 3);
  const auto start = Clock::now();
  try {
    (void)runtime.infer(tokens);
    FAIL() << "infer over a failing device must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected executor fault"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_TRUE(runtime.fabric().closed());
}

TEST_P(FailureRuntimeParam, FreshRuntimeStillInfersAfterFailureElsewhere) {
  // A failure poisons one runtime's transport; a new runtime on the same
  // transport kind is unaffected (containment, not contagion).
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(10, model.spec().vocab_size, 5);
  {
    VoltageRuntime doomed(model, PartitionScheme::even(2),
                          OrderPolicy::kAdaptive, GetParam());
    doomed.set_partition_executor(
        [](std::size_t, const Tensor&, Range, OrderPolicy) -> Tensor {
          throw std::runtime_error("dead on arrival");
        });
    EXPECT_THROW((void)doomed.infer(tokens), std::runtime_error);
  }
  VoltageRuntime healthy(model, PartitionScheme::even(2),
                         OrderPolicy::kAdaptive, GetParam());
  EXPECT_TRUE(allclose(healthy.infer(tokens), model.infer(tokens), 2e-3F));
}

INSTANTIATE_TEST_SUITE_P(AllTransports, FailureRuntimeParam,
                         ::testing::Values(TransportKind::kInMemory,
                                           TransportKind::kUnixSocket),
                         [](const auto& info) {
                           return info.param == TransportKind::kInMemory
                                      ? "InMemory"
                                      : "UnixSocket";
                         });

TEST(Failure, ChaosCrashFaultContainedByVoltageRuntime) {
  // Device 1 "goes dark" after its third send: the crash surfaces as
  // TransportClosedError in its thread, which poisons the fabric, so every
  // peer unwinds instead of waiting for gathers that will never complete.
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 4),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 11,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 3}});
  ChaosTransport* probe = chaos.get();
  VoltageRuntime runtime(
      model,
      LayerSchedule::uniform(PartitionScheme::even(3),
                             model.spec().num_layers),
      OrderPolicy::kAdaptive, std::move(chaos));
  const auto tokens = random_tokens(12, model.spec().vocab_size, 7);
  const auto start = Clock::now();
  try {
    (void)runtime.infer(tokens);
    FAIL() << "crash fault must fail the inference";
  } catch (const TransportClosedError& e) {
    EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos)
        << e.what();
  }
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_GE(probe->chaos_stats().crashed_sends, 1U);
}

TEST(Failure, ChaosDropWithDeadlineTimesOutInsteadOfHanging) {
  // Total message loss with no crash: nobody throws on send, so only the
  // recv deadline can detect the stall. The first thread to time out
  // poisons the fabric and the caller sees RecvTimeoutError.
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 0.0, .seed = 2,
                   .drop_probability = 1.0, .crash = {}});
  VoltageRuntime runtime(
      model,
      LayerSchedule::uniform(PartitionScheme::even(2),
                             model.spec().num_layers),
      OrderPolicy::kAdaptive, std::move(chaos));
  runtime.set_recv_timeout(0.5);
  const auto tokens = random_tokens(8, model.spec().vocab_size, 4);
  const auto start = Clock::now();
  EXPECT_THROW((void)runtime.infer(tokens), RecvTimeoutError);
  // Deadline is shared and absolute: well under a minute even with all
  // messages dropped.
  EXPECT_LT(seconds_since(start), 60.0);
}

TEST(Failure, PipelineRuntimeContainsCrashedStage) {
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 3,
                   .crash = ChaosOptions::Crash{.device = 0,
                                                .after_sends = 1}});
  PipelineRuntime runtime(model, 2, std::move(chaos));
  std::vector<InferenceInput> requests;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    requests.emplace_back(random_tokens(8, model.spec().vocab_size, seed));
  }
  const auto start = Clock::now();
  EXPECT_THROW((void)runtime.infer_batch(requests), TransportClosedError);
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_TRUE(runtime.fabric().closed());
}

TEST(Failure, TensorParallelRuntimeContainsCrashedDevice) {
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 4,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 2}});
  TensorParallelRuntime runtime(model, 2, std::move(chaos));
  const auto tokens = random_tokens(8, model.spec().vocab_size, 6);
  const auto start = Clock::now();
  EXPECT_THROW((void)runtime.infer(tokens), TransportClosedError);
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_TRUE(runtime.fabric().closed());
}

TEST(Failure, QuantizedRuntimeContainsCrashMidGather) {
  // Same crash scenario as the float path, but with the quantized wire
  // codec active: device 1 goes dark while its peers wait on quantized
  // all-gathers. Poisoning must propagate through the int8 plane in bounded
  // time — the codec sits on the payload, not on the containment logic.
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 4),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 21,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 3}});
  VoltageRuntime runtime(
      model,
      LayerSchedule::uniform(PartitionScheme::even(3),
                             model.spec().num_layers),
      OrderPolicy::kAdaptive, std::move(chaos));
  runtime.set_precision(Precision::kInt8);
  const auto tokens = random_tokens(12, model.spec().vocab_size, 8);
  const auto start = Clock::now();
  EXPECT_THROW((void)runtime.infer(tokens), TransportClosedError);
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_TRUE(runtime.fabric().closed());
}

TEST(Failure, QuantizedRuntimeDropWithDeadlineTimesOut) {
  // Total loss under the int8 wire: only the shared recv deadline can catch
  // it, and it must — the quantized gathers take the same RecvOptions path.
  const TransformerModel model = make_model(mini_bert_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 0.0, .seed = 22,
                   .drop_probability = 1.0, .crash = {}});
  VoltageRuntime runtime(
      model,
      LayerSchedule::uniform(PartitionScheme::even(2),
                             model.spec().num_layers),
      OrderPolicy::kAdaptive, std::move(chaos));
  runtime.set_precision(Precision::kInt8);
  runtime.set_recv_timeout(0.5);
  const auto tokens = random_tokens(8, model.spec().vocab_size, 9);
  const auto start = Clock::now();
  EXPECT_THROW((void)runtime.infer(tokens), RecvTimeoutError);
  EXPECT_LT(seconds_since(start), 60.0);
}

TEST(Failure, BitwiseInvarianceHoldsOnFaultFreePath) {
  // The containment plumbing (deadline checks, poison hooks) must not
  // perturb the fault-free numerics: distributed inference with a deadline
  // configured but never hit matches the no-deadline run bitwise.
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(16, model.spec().vocab_size, 12);
  VoltageRuntime plain(model, PartitionScheme::even(3));
  VoltageRuntime guarded(model, PartitionScheme::even(3));
  guarded.set_recv_timeout(300.0);
  EXPECT_EQ(plain.infer(tokens), guarded.infer(tokens));
}

}  // namespace
}  // namespace voltage
