// Fault-injection tests: the collectives and Algorithm 2 must be correct
// under adversarial message delivery timing (ChaosTransport scrambles
// arrival order with random per-message delays), and the injected faults
// themselves — drop, duplicate, crash-at-send — must behave as specified.
// End-to-end containment of these faults is covered in failure_test.cpp.
#include <chrono>
#include <numeric>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "net/chaos.h"
#include "partition/schedule.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

std::unique_ptr<Transport> chaotic(std::size_t devices, std::uint64_t seed) {
  return std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, devices),
      ChaosOptions{.max_delay_seconds = 1e-3, .seed = seed, .crash = {}});
}

TEST(Chaos, DeliveryStillReliable) {
  const auto t = chaotic(2, 1);
  for (MessageTag tag = 0; tag < 20; ++tag) {
    t->send(Message{.source = 0, .destination = 1, .tag = tag,
                    .payload = std::vector<std::byte>(tag + 1)});
  }
  // Every message arrives exactly once regardless of scrambled timing.
  for (MessageTag tag = 0; tag < 20; ++tag) {
    EXPECT_EQ(t->recv(1, 0, tag).payload.size(), tag + 1);
  }
}

TEST(Chaos, AllGatherCorrectUnderReordering) {
  constexpr std::size_t kRanks = 4;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto t = chaotic(kRanks, seed);
    std::vector<DeviceId> group(kRanks);
    std::iota(group.begin(), group.end(), DeviceId{0});
    std::vector<std::vector<Tensor>> results(kRanks);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kRanks; ++i) {
      threads.emplace_back([&, i] {
        results[i] = all_gather(
            *t, group, i, Tensor::filled(2, 2, static_cast<float>(i)), 9);
      });
    }
    for (auto& th : threads) th.join();
    for (std::size_t i = 0; i < kRanks; ++i) {
      for (std::size_t j = 0; j < kRanks; ++j) {
        EXPECT_EQ(results[i][j],
                  Tensor::filled(2, 2, static_cast<float>(j)));
      }
    }
  }
}

TEST(Chaos, RingAllReduceCorrectUnderReordering) {
  constexpr std::size_t kRanks = 3;
  const auto t = chaotic(kRanks, 7);
  std::vector<DeviceId> group(kRanks);
  std::iota(group.begin(), group.end(), DeviceId{0});
  Rng rng(5);
  std::vector<Tensor> inputs;
  Tensor expected(4, 4);
  for (std::size_t i = 0; i < kRanks; ++i) {
    inputs.push_back(rng.normal_tensor(4, 4, 1.0F));
    add_inplace(expected, inputs.back());
  }
  std::vector<Tensor> results(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      results[i] = ring_all_reduce_sum(*t, group, i, inputs[i], 77);
    });
  }
  for (auto& th : threads) th.join();
  for (const Tensor& r : results) EXPECT_TRUE(allclose(r, expected, 1e-4F));
}

TEST(Chaos, EndToEndInferenceSurvivesJitter) {
  // Full Algorithm 2 over a jittering wire, several seeds.
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(20, model.spec().vocab_size, 9);
  const Tensor expected = model.infer(tokens);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    VoltageRuntime runtime(
        model,
        LayerSchedule::uniform(PartitionScheme::even(3),
                               model.spec().num_layers),
        OrderPolicy::kAdaptive, chaotic(4, seed));
    EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F))
        << "seed " << seed;
  }
}

TEST(Chaos, TransportSizeValidatedByRuntime) {
  const TransformerModel model = make_model(mini_bert_spec());
  EXPECT_THROW(
      VoltageRuntime(model,
                     LayerSchedule::uniform(PartitionScheme::even(3),
                                            model.spec().num_layers),
                     OrderPolicy::kAdaptive, chaotic(3, 1)),  // needs 4
      std::invalid_argument);
}

TEST(Chaos, DropsAreCountedAndNeverDelivered) {
  ChaosTransport t(make_transport(TransportKind::kInMemory, 2),
                   ChaosOptions{.max_delay_seconds = 0.0, .seed = 5,
                                .drop_probability = 1.0, .crash = {}});
  for (MessageTag tag = 0; tag < 5; ++tag) {
    t.send(Message{.source = 0, .destination = 1, .tag = tag,
                   .payload = std::vector<std::byte>(1)});
  }
  // The receiver only notices loss via a deadline — that is the contract.
  EXPECT_THROW((void)t.recv(1, 0, 0, RecvOptions::within(0.05)),
               RecvTimeoutError);
  EXPECT_EQ(t.chaos_stats().dropped, 5U);
  EXPECT_EQ(t.chaos_stats().delivered, 0U);
}

TEST(Chaos, DuplicatesDeliverTheMessageTwice) {
  ChaosTransport t(make_transport(TransportKind::kInMemory, 2),
                   ChaosOptions{.max_delay_seconds = 1e-4, .seed = 6,
                                .duplicate_probability = 1.0, .crash = {}});
  t.send(Message{.source = 0, .destination = 1, .tag = 3,
                 .payload = std::vector<std::byte>(7)});
  EXPECT_EQ(t.recv(1, 0, 3).payload.size(), 7U);
  EXPECT_EQ(t.recv(1, 0, 3).payload.size(), 7U);  // the duplicate
  EXPECT_EQ(t.chaos_stats().duplicated, 1U);
}

TEST(Chaos, CrashedDeviceThrowsOnSendAfterThreshold) {
  ChaosTransport t(
      make_transport(TransportKind::kInMemory, 2),
      ChaosOptions{.max_delay_seconds = 0.0,
                   .seed = 7,
                   .crash = ChaosOptions::Crash{.device = 0,
                                                .after_sends = 2}});
  const auto from = [&](DeviceId source, MessageTag tag) {
    t.send(Message{.source = source, .destination = 1 - source, .tag = tag,
                   .payload = std::vector<std::byte>(1)});
  };
  from(0, 1);
  from(0, 2);
  EXPECT_THROW(from(0, 3), TransportClosedError);  // third send: dead
  EXPECT_THROW(from(0, 4), TransportClosedError);  // stays dead
  from(1, 5);  // other devices are unaffected
  EXPECT_EQ(t.recv(0, 1, 5).payload.size(), 1U);
  EXPECT_EQ(t.chaos_stats().crashed_sends, 2U);
}

TEST(Chaos, CourierRecordsDeliveryErrorsInsteadOfTerminating) {
  // Poison the inner transport while a delayed message is in flight: the
  // courier's inner send fails, which must be *recorded*, not escape the
  // courier thread (which would std::terminate the process).
  ChaosTransport t(make_transport(TransportKind::kInMemory, 2),
                   ChaosOptions{.max_delay_seconds = 0.05, .seed = 8,
                                .crash = {}});
  t.send(Message{.source = 0, .destination = 1, .tag = 1,
                 .payload = std::vector<std::byte>(1)});
  t.close("test poison");
  for (int i = 0; i < 200 && t.chaos_stats().delivery_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(t.chaos_stats().delivery_errors, 1U);
  EXPECT_NE(t.last_delivery_error().find("test poison"), std::string::npos)
      << t.last_delivery_error();
}

TEST(Chaos, StatsPassThrough) {
  const auto t = chaotic(2, 2);
  t->send(Message{.source = 0, .destination = 1, .tag = 1,
                  .payload = std::vector<std::byte>(10)});
  (void)t->recv(1, 0, 1);
  EXPECT_EQ(t->stats(0).bytes_sent, 10U + kWireFrameBytes);
  t->reset_stats();
  EXPECT_EQ(t->total_stats().bytes_sent, 0U);
}

}  // namespace
}  // namespace voltage
