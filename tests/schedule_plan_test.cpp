// Tests of the extension modules: per-layer partition schedules (paper
// §V-B future work), the heterogeneous partition planner, and the pipeline
// parallelism baseline model (§V-C).
#include <gtest/gtest.h>

#include "parallel/pipeline.h"
#include "partition/schedule.h"
#include "plan/planner.h"
#include "runtime/voltage_runtime.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

sim::Cluster test_cluster(std::size_t k, double mbps = 500.0) {
  return sim::Cluster::homogeneous(
      k,
      sim::DeviceSpec{.name = "edge", .mac_rate = 25e9,
                      .elementwise_rate = 4e9},
      LinkModel::mbps(mbps));
}

// --- LayerSchedule -------------------------------------------------------------

TEST(LayerSchedule, UniformRepeatsScheme) {
  const LayerSchedule schedule =
      LayerSchedule::uniform(PartitionScheme::even(3), 5);
  EXPECT_EQ(schedule.num_layers(), 5U);
  EXPECT_EQ(schedule.devices(), 3U);
  for (std::size_t l = 0; l < 5; ++l) {
    EXPECT_EQ(schedule.scheme_for(l).ratios(), PartitionScheme::even(3).ratios());
  }
}

TEST(LayerSchedule, RejectsMixedDeviceCounts) {
  std::vector<PartitionScheme> schemes{PartitionScheme::even(2),
                                       PartitionScheme::even(3)};
  EXPECT_THROW(LayerSchedule(std::move(schemes)), std::invalid_argument);
  EXPECT_THROW(LayerSchedule({}), std::invalid_argument);
  EXPECT_THROW(LayerSchedule::uniform(PartitionScheme::even(2), 0),
               std::invalid_argument);
}

TEST(LayerSchedule, SetSchemeValidates) {
  LayerSchedule schedule = LayerSchedule::uniform(PartitionScheme::even(2), 3);
  schedule.set_scheme(1, PartitionScheme({0.9, 0.1}));
  EXPECT_EQ(schedule.scheme_for(1).ratios()[0], 0.9);
  EXPECT_THROW(schedule.set_scheme(1, PartitionScheme::even(3)),
               std::invalid_argument);
  EXPECT_THROW(schedule.set_scheme(9, PartitionScheme::even(2)),
               std::out_of_range);
}

TEST(LayerScheduleRuntime, PerLayerSchemesStillCorrect) {
  // Rotate wildly different schemes across layers — Algorithm 2 must not
  // care (paper: "without any penalty").
  const TransformerModel model = make_model(mini_bert_spec());
  std::vector<PartitionScheme> schemes;
  for (std::size_t l = 0; l < model.spec().num_layers; ++l) {
    switch (l % 3) {
      case 0:
        schemes.push_back(PartitionScheme::even(3));
        break;
      case 1:
        schemes.push_back(PartitionScheme({0.7, 0.2, 0.1}));
        break;
      default:
        schemes.push_back(PartitionScheme({0.0, 0.5, 0.5}));
        break;
    }
  }
  VoltageRuntime runtime(model, LayerSchedule(std::move(schemes)));
  const auto tokens = random_tokens(22, model.spec().vocab_size, 3);
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

TEST(LayerScheduleRuntime, RejectsWrongLayerCount) {
  const TransformerModel model = make_model(mini_bert_spec());
  EXPECT_THROW(VoltageRuntime(model,
                              LayerSchedule::uniform(PartitionScheme::even(2),
                                                     model.spec().num_layers +
                                                         1)),
               std::invalid_argument);
}

TEST(LayerScheduleSim, UniformScheduleMatchesSchemeOverload) {
  const ModelSpec spec = gpt2_spec();
  const auto cluster = test_cluster(4);
  const LatencyReport a = simulate_voltage(
      spec, 200, cluster, PartitionScheme::even(4), OrderPolicy::kAdaptive);
  const LatencyReport b = simulate_voltage(
      spec, 200, cluster,
      LayerSchedule::uniform(PartitionScheme::even(4), spec.num_layers),
      OrderPolicy::kAdaptive);
  EXPECT_DOUBLE_EQ(a.total, b.total);
  EXPECT_EQ(a.total_bytes_sent, b.total_bytes_sent);
}

TEST(LayerScheduleSim, ValidatesLayerCount) {
  const ModelSpec spec = gpt2_spec();
  EXPECT_THROW(
      (void)simulate_voltage(spec, 200, test_cluster(2),
                             LayerSchedule::uniform(PartitionScheme::even(2),
                                                    spec.num_layers - 1),
                             OrderPolicy::kAdaptive),
      std::invalid_argument);
}

// --- planner --------------------------------------------------------------------

TEST(Planner, ProportionalUsesMacRates) {
  sim::Cluster cluster = test_cluster(2);
  cluster.workers[0].mac_rate = 30e9;
  cluster.workers[1].mac_rate = 10e9;
  const PartitionScheme scheme = plan_proportional(cluster);
  EXPECT_NEAR(scheme.ratios()[0], 0.75, 1e-9);
  EXPECT_NEAR(scheme.ratios()[1], 0.25, 1e-9);
}

TEST(Planner, HomogeneousOptimumIsNearEven) {
  const ModelSpec spec = gpt2_spec();
  const auto cluster = test_cluster(4);
  const PlanResult plan =
      optimize_scheme(spec, 200, cluster, OrderPolicy::kAdaptive);
  for (const double r : plan.scheme.ratios()) {
    EXPECT_NEAR(r, 0.25, 0.02);
  }
  EXPECT_GE(plan.evaluations, 1U);
}

TEST(Planner, BeatsEvenSplitOnSkewedCluster) {
  const ModelSpec spec = bert_large_spec();
  sim::Cluster cluster = test_cluster(3);
  cluster.workers[0].mac_rate *= 4.0;
  cluster.workers[0].elementwise_rate *= 4.0;

  const Seconds even = simulate_voltage(spec, 200, cluster,
                                        PartitionScheme::even(3),
                                        OrderPolicy::kAdaptive)
                           .total;
  const PlanResult plan =
      optimize_scheme(spec, 200, cluster, OrderPolicy::kAdaptive);
  EXPECT_LT(plan.predicted_latency, even);
  // And never worse than its own proportional seed.
  const Seconds proportional =
      simulate_voltage(spec, 200, cluster, plan_proportional(cluster),
                       OrderPolicy::kAdaptive)
          .total;
  EXPECT_LE(plan.predicted_latency, proportional + 1e-12);
}

TEST(Planner, SchemeRangesAreExactPositions) {
  // The optimizer's ratios are multiples of 1/N, so ranges reproduce its
  // integer position counts exactly.
  const ModelSpec spec = gpt2_spec();
  sim::Cluster cluster = test_cluster(3);
  cluster.workers[2].mac_rate *= 2.0;
  const PlanResult plan =
      optimize_scheme(spec, 199, cluster, OrderPolicy::kAdaptive);
  const auto ranges = plan.scheme.ranges(199);
  std::size_t covered = 0;
  for (const Range& r : ranges) covered += r.size();
  EXPECT_EQ(covered, 199U);
}

TEST(Planner, RejectsBadInputs) {
  const ModelSpec spec = gpt2_spec();
  EXPECT_THROW(
      (void)optimize_scheme(spec, 2, test_cluster(3), OrderPolicy::kAdaptive),
      std::invalid_argument);
  EXPECT_THROW((void)profile_this_device("x", 0), std::invalid_argument);
}

TEST(Planner, ProfileThisDeviceMeasuresPositiveRates) {
  const sim::DeviceSpec spec = profile_this_device("host", 96, 1);
  EXPECT_GT(spec.mac_rate, 1e6);
  EXPECT_GT(spec.elementwise_rate, 1e6);
  EXPECT_EQ(spec.name, "host");
}

// --- pipeline baseline ------------------------------------------------------------

TEST(Pipeline, NoLatencyBenefitForBatchOne) {
  // The paper's §V-C claim, quantified: pipelining K devices does not
  // reduce the latency of a single request below single-device deployment.
  const ModelSpec spec = bert_large_spec();
  for (const std::size_t k : {2U, 4U, 6U}) {
    const auto cluster = test_cluster(k);
    const Seconds single =
        simulate_single_device(spec, 200, test_cluster(1)).total;
    const PipelineReport pipe = simulate_pipeline(spec, 200, cluster);
    EXPECT_GE(pipe.request_latency, single) << "k=" << k;
    // ... while Voltage does reduce it on the same cluster.
    EXPECT_LT(simulate_voltage(spec, 200, cluster, PartitionScheme::even(k),
                               OrderPolicy::kAdaptive)
                  .total,
              single);
  }
}

TEST(Pipeline, ThroughputScalesWithStages) {
  // Given a saturated request stream, the pipeline's strength appears.
  const ModelSpec spec = bert_large_spec();
  const double single = single_device_throughput(spec, 200, test_cluster(1));
  const PipelineReport pipe = simulate_pipeline(spec, 200, test_cluster(6));
  EXPECT_GT(pipe.throughput_rps, 3.0 * single);
  EXPECT_EQ(pipe.stages, 6U);
}

TEST(Pipeline, MoreDevicesThanLayersClamps) {
  const ModelSpec spec = mini_bert_spec();  // 4 layers
  const PipelineReport pipe = simulate_pipeline(spec, 32, test_cluster(6));
  EXPECT_EQ(pipe.stages, 4U);
  EXPECT_GT(pipe.request_latency, 0.0);
}

}  // namespace
}  // namespace voltage
