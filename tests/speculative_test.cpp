// Speculative decoding tests. The correctness anchor is exactness: whatever
// a drafter proposes, the committed token stream (and the returned logits)
// must be identical to sequential greedy decode on the same plane — across
// K, both transports, fp32 and int8, and with speculative, draftless and
// all-rejected lanes mixed in one verify round. The wire anchor is the
// round's message count: verifying k drafts must cost exactly the messages
// of a single-token step, so accepted drafts translate into fewer
// round-trips per committed token. Plus drafter/controller unit tests and
// the DistributedDecoder::extend edge cases (empty span, interleaved with
// live batched slots, int8, contained crash, window overflow).
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/chaos.h"
#include "net/transport.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/scheme.h"
#include "runtime/distributed_decoder.h"
#include "runtime/drafter.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

::testing::AssertionResult row_bitwise_equal(const Tensor& got, std::size_t r,
                                             const Tensor& want,
                                             std::size_t want_row = 0) {
  if (got.cols() != want.cols() || r >= got.rows() ||
      want_row >= want.rows()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: [" << got.rows() << "x" << got.cols()
           << "] row " << r << " vs [" << want.rows() << "x" << want.cols()
           << "] row " << want_row;
  }
  if (std::memcmp(got.row(r).data(), want.row(want_row).data(),
                  want.cols() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "row " << r << " differs bitwise from the reference";
  }
  return ::testing::AssertionSuccess();
}

// Sequential greedy decode on a solo DistributedDecoder of the same plane:
// the reference every speculative run must reproduce token for token (and
// logits bit for bit). logits[i] is the state after committing i tokens.
struct GreedyRun {
  std::vector<TokenId> tokens;  // the greedy continuation
  std::vector<Tensor> logits;   // logits[0] = prime, logits[i] = after i
};

GreedyRun solo_greedy(const TransformerModel& model, std::size_t k,
                      TransportKind transport, Precision precision,
                      const std::vector<TokenId>& prompt,
                      std::size_t new_tokens) {
  DistributedDecoder solo(model, PartitionScheme::even(k),
                          OrderPolicy::kAdaptive, transport);
  solo.set_precision(precision);
  GreedyRun run;
  run.logits.push_back(solo.prime(prompt));
  for (std::size_t i = 0; i < new_tokens; ++i) {
    const auto next = static_cast<TokenId>(argmax_row(run.logits.back(), 0));
    run.tokens.push_back(next);
    run.logits.push_back(solo.step(next));
  }
  return run;
}

// --- PromptLookupDrafter ---------------------------------------------------

TEST(PromptLookup, DraftsTheCycleContinuation) {
  PromptLookupDrafter drafter(4);
  const std::vector<TokenId> cycle{1, 2, 3, 1, 2, 3, 1, 2};
  drafter.begin(cycle);
  // Longest recurring suffix is {2,3,1,2} at position 1; its continuation
  // replays the cycle.
  EXPECT_EQ(drafter.draft(3), (std::vector<TokenId>{3, 1, 2}));
}

TEST(PromptLookup, NoMatchOrNoHistoryDraftsNothing) {
  PromptLookupDrafter drafter;
  drafter.begin(std::vector<TokenId>{1, 2, 3, 4, 5});
  EXPECT_TRUE(drafter.draft(4).empty());  // all tokens distinct
  drafter.begin(std::vector<TokenId>{7});
  EXPECT_TRUE(drafter.draft(4).empty());  // too short to match
  drafter.begin(std::vector<TokenId>{7, 7, 7});
  EXPECT_TRUE(drafter.draft(0).empty());  // zero-width request
}

TEST(PromptLookup, ObserveExtendsTheSearchableHistory) {
  PromptLookupDrafter drafter;
  drafter.begin(std::vector<TokenId>{7, 8});
  drafter.observe(std::vector<TokenId>{7, 8});
  EXPECT_EQ(drafter.draft(2), (std::vector<TokenId>{7, 8}));
}

TEST(PromptLookup, OverlappingContinuationStaysInBounds) {
  // Period-1 history: the match's continuation runs into the suffix region
  // itself. The drafter must replay the cycle from real history, never read
  // past it (this was a real out-of-bounds bug).
  PromptLookupDrafter drafter;
  drafter.begin(std::vector<TokenId>{5, 5, 5});
  const std::vector<TokenId> drafts = drafter.draft(4);
  ASSERT_FALSE(drafts.empty());
  for (const TokenId t : drafts) EXPECT_EQ(t, 5);
}

TEST(PromptLookup, ZeroNgramThrows) {
  EXPECT_THROW(PromptLookupDrafter{0}, std::invalid_argument);
}

// --- ModelDrafter ----------------------------------------------------------

TEST(ModelDrafterTest, DraftsTheModelsOwnGreedyChainAndRollsBack) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(10, model.spec().vocab_size, 11);
  // The target model's actual greedy continuation.
  IncrementalDecoder reference(model);
  Tensor logits = reference.prime(prompt);
  std::vector<TokenId> greedy;
  for (int i = 0; i < 4; ++i) {
    greedy.push_back(static_cast<TokenId>(argmax_row(logits, 0)));
    logits = reference.step(greedy.back());
  }
  ModelDrafter drafter(model);
  drafter.begin(prompt);
  EXPECT_EQ(drafter.draft(3),
            (std::vector<TokenId>{greedy[0], greedy[1], greedy[2]}));
  // draft() rolled its decoder back to the committed frontier: drafting
  // again gives the same answer, not a continuation.
  EXPECT_EQ(drafter.draft(3),
            (std::vector<TokenId>{greedy[0], greedy[1], greedy[2]}));
  // Observing a committed token advances the frontier.
  drafter.observe(std::span<const TokenId>(greedy.data(), 1));
  EXPECT_EQ(drafter.draft(2), (std::vector<TokenId>{greedy[1], greedy[2]}));
}

TEST(ModelDrafterTest, UseBeforeBeginThrows) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  ModelDrafter drafter(model);
  EXPECT_THROW((void)drafter.draft(2), std::logic_error);
  const std::vector<TokenId> tokens{1};
  EXPECT_THROW(drafter.observe(tokens), std::logic_error);
}

// --- SpeculationController -------------------------------------------------

TEST(SpeculationControllerTest, WindowTracksTheAcceptanceRate) {
  SpeculationController spec(4);
  EXPECT_EQ(spec.window(), 4U);  // optimistic start probes the full window
  for (int i = 0; i < 12; ++i) spec.update(0, 4);
  EXPECT_EQ(spec.window(), 1U);  // cold slot keeps a single free probe
  EXPECT_LT(spec.acceptance_rate(), 0.05);
  for (int i = 0; i < 12; ++i) spec.update(4, 4);
  EXPECT_EQ(spec.window(), 4U);  // hot streak reopens the window
  EXPECT_GT(spec.acceptance_rate(), 0.95);
  // Draftless rounds carry no signal.
  const double rate = spec.acceptance_rate();
  spec.update(0, 0);
  EXPECT_EQ(spec.acceptance_rate(), rate);
}

TEST(SpeculationControllerTest, DisabledAndInvalidConfigs) {
  SpeculationController off(0);
  EXPECT_EQ(off.window(), 0U);
  EXPECT_THROW(SpeculationController(4, 0.0), std::invalid_argument);
  EXPECT_THROW(SpeculationController(4, 1.5), std::invalid_argument);
}

// --- Exactness: speculative == sequential greedy decode --------------------

class SpeculativeEquivalence
    : public ::testing::TestWithParam<std::tuple<TransportKind, Precision>> {};

TEST_P(SpeculativeEquivalence, OutputIdenticalToSequentialGreedyAcrossK) {
  const auto [transport, precision] = GetParam();
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(9, model.spec().vocab_size, 42);
  constexpr std::size_t kNewTokens = 8;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const GreedyRun reference =
        solo_greedy(model, k, transport, precision, prompt, kNewTokens);
    DistributedDecoder decoder(model, PartitionScheme::even(k),
                               OrderPolicy::kAdaptive, transport);
    decoder.set_precision(precision);
    const auto primed = decoder.prime_slot(prompt);
    ASSERT_TRUE(row_bitwise_equal(primed.logits, 0, reference.logits[0]));
    std::vector<TokenId> generated{
        static_cast<TokenId>(argmax_row(primed.logits, 0))};
    // Alternate draft quality per round: perfect drafts (stolen from the
    // reference), garbage drafts (bit-flipped), and draftless rounds — the
    // output must not care.
    std::size_t fed = 0;  // tokens committed into the decoder's caches
    for (int round = 0; generated.size() < kNewTokens; ++round) {
      std::vector<TokenId> drafts;
      const std::size_t remaining = kNewTokens - generated.size();
      if (round % 3 == 0) {
        for (std::size_t d = 0;
             d < std::min<std::size_t>(2, remaining) &&
             generated.size() + d < reference.tokens.size();
             ++d) {
          drafts.push_back(reference.tokens[generated.size() + d]);
        }
      } else if (round % 3 == 1) {
        drafts.push_back(reference.tokens[generated.size() - 1] ^ 1);
      }
      const SlotWindow lane{.slot = primed.slot,
                            .token = generated.back(),
                            .drafts = drafts};
      const auto commits =
          decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
      ASSERT_EQ(commits.size(), 1U);
      const LaneCommit& commit = commits[0];
      fed += 1 + commit.accepted;
      ASSERT_TRUE(
          row_bitwise_equal(commit.logits, 0, reference.logits[fed]))
          << "K=" << k << " round " << round;
      for (const TokenId token : commit.tokens) {
        ASSERT_LT(generated.size(), reference.tokens.size());
        ASSERT_EQ(token, reference.tokens[generated.size()])
            << "K=" << k << " round " << round << " token "
            << generated.size();
        generated.push_back(token);
        if (generated.size() == kNewTokens) break;
      }
      EXPECT_EQ(decoder.slot_position(primed.slot), prompt.size() + fed);
    }
    EXPECT_EQ(generated,
              std::vector<TokenId>(reference.tokens.begin(),
                                   reference.tokens.begin() + kNewTokens));
  }
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndPrecisions, SpeculativeEquivalence,
    ::testing::Combine(::testing::Values(TransportKind::kInMemory,
                                         TransportKind::kUnixSocket),
                       ::testing::Values(Precision::kFp32, Precision::kInt8)),
    [](const auto& info) {
      const std::string t = std::get<0>(info.param) == TransportKind::kInMemory
                                ? "InMemory"
                                : "UnixSocket";
      const std::string p =
          std::get<1>(info.param) == Precision::kFp32 ? "Fp32" : "Int8";
      return t + p;
    });

TEST(Speculative, MixedLanesShareOneRoundWithoutCrossTalk) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    constexpr std::size_t kLanes = 3;
    constexpr std::size_t kNewTokens = 6;
    // Reference runs carry headroom past kNewTokens: the last verify round
    // may overshoot the target by up to the window width.
    constexpr std::size_t kRefTokens = kNewTokens + 6;
    std::vector<std::vector<TokenId>> prompts;
    std::vector<GreedyRun> references;
    for (std::size_t s = 0; s < kLanes; ++s) {
      prompts.push_back(
          random_tokens(6 + 2 * s, model.spec().vocab_size, 70 + s));
      references.push_back(solo_greedy(model, 2, TransportKind::kInMemory,
                                       precision, prompts.back(),
                                       kRefTokens));
    }
    DistributedDecoder decoder(model, PartitionScheme::even(2));
    decoder.set_precision(precision);
    std::vector<std::vector<TokenId>> generated(kLanes);
    for (std::size_t s = 0; s < kLanes; ++s) {
      const auto primed = decoder.prime_slot(prompts[s]);
      EXPECT_EQ(primed.slot, s);
      generated[s].push_back(
          static_cast<TokenId>(argmax_row(primed.logits, 0)));
    }
    std::vector<std::size_t> fed(kLanes, 0);
    while (generated[0].size() < kNewTokens) {
      // Lane 0 speculates with perfect drafts, lane 1 is an ordinary
      // draftless batch-mate, lane 2's drafts are always wrong.
      std::vector<std::vector<TokenId>> drafts(kLanes);
      for (std::size_t d = 0; d < 2 &&
                              generated[0].size() + d <
                                  references[0].tokens.size();
           ++d) {
        drafts[0].push_back(references[0].tokens[generated[0].size() + d]);
      }
      drafts[2].push_back(
          references[2].tokens[generated[2].size() - 1] ^ 1);
      std::vector<SlotWindow> lanes;
      for (std::size_t s = 0; s < kLanes; ++s) {
        lanes.push_back(SlotWindow{.slot = s,
                                   .token = generated[s].back(),
                                   .drafts = drafts[s]});
      }
      const auto commits = decoder.step_speculative(lanes);
      ASSERT_EQ(commits.size(), kLanes);
      EXPECT_EQ(commits[1].drafted, 0U);
      EXPECT_EQ(commits[1].tokens.size(), 1U);
      EXPECT_EQ(commits[2].accepted, 0U);  // garbage never lands
      for (std::size_t s = 0; s < kLanes; ++s) {
        fed[s] += 1 + commits[s].accepted;
        ASSERT_TRUE(row_bitwise_equal(commits[s].logits, 0,
                                      references[s].logits[fed[s]]))
            << "lane " << s;
        for (const TokenId token : commits[s].tokens) {
          ASSERT_LT(generated[s].size(), references[s].tokens.size());
          ASSERT_EQ(token, references[s].tokens[generated[s].size()])
              << "lane " << s;
          generated[s].push_back(token);
        }
      }
    }
    // The speculating lane raced ahead; the draftless and all-rejected
    // lanes advanced one token per round — and every lane stayed exactly on
    // its own sequential-greedy trajectory.
    EXPECT_GE(generated[0].size(), kNewTokens);
    for (std::size_t s = 0; s < kLanes; ++s) {
      EXPECT_GT(generated[s].size(), 1U);
      for (std::size_t i = 0; i < generated[s].size(); ++i) {
        EXPECT_EQ(generated[s][i], references[s].tokens[i]);
      }
    }
  }
}

TEST(Speculative, RejectedRoundRollsBackAndDecodingContinuesExactly) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(8, model.spec().vocab_size, 77);
  const GreedyRun reference =
      solo_greedy(model, 3, TransportKind::kInMemory, Precision::kFp32,
                  prompt, 5);
  DistributedDecoder decoder(model, PartitionScheme::even(3));
  const Tensor primed = decoder.prime(prompt);
  const auto first = static_cast<TokenId>(argmax_row(primed, 0));
  ASSERT_EQ(first, reference.tokens[0]);
  // Four wrong drafts: the round must commit exactly the one real token
  // plus the model's bonus token, and truncate every rejected cache row.
  const std::vector<TokenId> wrong{reference.tokens[1] ^ 1,
                                   reference.tokens[2] ^ 1,
                                   reference.tokens[3] ^ 1,
                                   reference.tokens[4] ^ 1};
  const SlotWindow lane{.slot = 0, .token = first, .drafts = wrong};
  const auto commits =
      decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
  ASSERT_EQ(commits[0].accepted, 0U);
  ASSERT_EQ(commits[0].drafted, 4U);
  ASSERT_EQ(commits[0].tokens, (std::vector<TokenId>{reference.tokens[1]}));
  EXPECT_EQ(decoder.position(), prompt.size() + 1);
  // The rollback left the caches exactly at the sequential state: plain
  // steps from here stay bitwise on the reference trajectory.
  Tensor logits = decoder.step(reference.tokens[1]);
  ASSERT_TRUE(row_bitwise_equal(logits, 0, reference.logits[2]));
  logits = decoder.step(reference.tokens[2]);
  ASSERT_TRUE(row_bitwise_equal(logits, 0, reference.logits[3]));
}

TEST(Speculative, DraftsAreTrimmedToTheRemainingContextWindow) {
  ModelSpec spec = mini_gpt2_spec();
  spec.max_positions = 12;
  const TransformerModel model(spec, 1);
  const auto prompt = random_tokens(9, spec.vocab_size, 5);
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  const Tensor primed = decoder.prime(prompt);
  const auto first = static_cast<TokenId>(argmax_row(primed, 0));
  // Position 9 of 12: room for the committed token plus 2 of the 4 drafts.
  const std::vector<TokenId> drafts{1, 2, 3, 4};
  const SlotWindow lane{.slot = 0, .token = first, .drafts = drafts};
  const auto commits =
      decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
  EXPECT_EQ(commits[0].drafted, 2U);
  EXPECT_LE(decoder.position(), spec.max_positions);
  // A full slot refuses another lane outright.
  while (decoder.position() < spec.max_positions) {
    const SlotWindow next{.slot = 0, .token = first, .drafts = {}};
    (void)decoder.step_speculative(std::span<const SlotWindow>(&next, 1));
  }
  const SlotWindow overflow{.slot = 0, .token = first, .drafts = {}};
  EXPECT_THROW((void)decoder.step_speculative(
                   std::span<const SlotWindow>(&overflow, 1)),
               std::length_error);
}

// --- Wire invariants -------------------------------------------------------

TEST(SpeculativeWire, VerifyRoundMessagesIndependentOfWindowWidth) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    DistributedDecoder decoder(model, PartitionScheme::even(4));
    decoder.set_precision(precision);
    const auto prompt = random_tokens(8, model.spec().vocab_size, 33);
    const auto primed = decoder.prime_slot(prompt);
    const auto token = static_cast<TokenId>(argmax_row(primed.logits, 0));
    const auto round_cost = [&](std::span<const TokenId> drafts) {
      const TrafficStats before = decoder.fabric().total_stats();
      const SlotWindow lane{.slot = primed.slot,
                            .token = token,
                            .drafts = drafts};
      (void)decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
      const TrafficStats after = decoder.fabric().total_stats();
      return std::pair<std::uint64_t, std::uint64_t>(
          after.messages_sent - before.messages_sent,
          after.bytes_sent - before.bytes_sent);
    };
    // Wrong drafts on purpose: every round starts from the same position,
    // so the single-token round and the 4-draft round are directly
    // comparable.
    const std::vector<TokenId> wrong{token ^ 1, token ^ 2, token ^ 3,
                                     token ^ 1};
    const auto [m1, bytes1] = round_cost({});
    const auto [m5, bytes5] =
        round_cost(std::span<const TokenId>(wrong.data(), 4));
    EXPECT_EQ(m5, m1) << "precision "
                      << (precision == Precision::kInt8 ? "int8" : "fp32");
    EXPECT_GT(bytes5, bytes1);   // the rows themselves still cost bytes
    EXPECT_LT(bytes5, 5 * bytes1);  // but far less than five single rounds
  }
}

TEST(SpeculativeWire, AcceptedDraftsCutRoundTripsPerCommittedToken) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(8, model.spec().vocab_size, 90);
  constexpr std::size_t kNewTokens = 16;
  const GreedyRun reference =
      solo_greedy(model, 4, TransportKind::kInMemory, Precision::kFp32,
                  prompt, kNewTokens);
  DistributedDecoder decoder(model, PartitionScheme::even(4));
  const auto primed = decoder.prime_slot(prompt);
  const std::uint64_t prefill_msgs =
      decoder.fabric().total_stats().messages_sent;
  std::vector<TokenId> generated{
      static_cast<TokenId>(argmax_row(primed.logits, 0))};
  // Measure one draftless round to calibrate the per-round message count.
  std::size_t rounds = 0;
  while (generated.size() < kNewTokens) {
    std::vector<TokenId> drafts;
    for (std::size_t d = 0; d < 3 && generated.size() + d <
                                         reference.tokens.size();
         ++d) {
      drafts.push_back(reference.tokens[generated.size() + d]);
    }
    const SlotWindow lane{.slot = primed.slot,
                          .token = generated.back(),
                          .drafts = drafts};
    const auto commits =
        decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
    for (const TokenId t : commits[0].tokens) generated.push_back(t);
    ++rounds;
  }
  const std::uint64_t step_msgs =
      decoder.fabric().total_stats().messages_sent - prefill_msgs;
  // Perfect drafts: 16 tokens in far fewer than 16 round-trips, and the
  // total message bill shrinks with them (messages are per round, not per
  // token).
  EXPECT_LT(rounds, kNewTokens / 2);
  EXPECT_EQ(step_msgs % rounds, 0U)
      << "per-round message count is not constant";
  const double round_trips_per_token =
      static_cast<double>(rounds) / static_cast<double>(generated.size());
  EXPECT_LT(round_trips_per_token, 1.0);
}

TEST(SpeculativeObs, StepSpansCarryDraftAndAcceptanceCounts) {
  // The tracer must outlive the decoder (worker wait spans close at
  // shutdown).
  obs::Tracer tracer;
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(8, model.spec().vocab_size, 55);
  const GreedyRun reference =
      solo_greedy(model, 2, TransportKind::kInMemory, Precision::kFp32,
                  prompt, 3);
  {
    DistributedDecoder decoder(model, PartitionScheme::even(2));
    decoder.set_tracer(&tracer);
    const Tensor primed = decoder.prime(prompt);
    const std::vector<TokenId> drafts{reference.tokens[1],
                                      reference.tokens[2]};
    const SlotWindow lane{.slot = 0,
                          .token = reference.tokens[0],
                          .drafts = drafts};
    const auto commits =
        decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
    ASSERT_EQ(commits[0].accepted, 2U);
  }
  bool saw_step = false;
  bool saw_commit = false;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (std::string_view(event.name) == "decode.step") {
      saw_step = true;
      EXPECT_EQ(event.tokens, 3);  // 1 committed + 2 accepted drafts
      EXPECT_EQ(event.drafts, 2);
      EXPECT_EQ(event.accepted, 2);
    }
    if (std::string_view(event.name) == "spec_commit") {
      saw_commit = true;
      EXPECT_EQ(event.accepted, 2);
    }
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_commit);
}

// --- DistributedDecoder::extend edge cases ---------------------------------

TEST(ExtendEdgeCases, EmptySpanThrowsWithoutTouchingTheMesh) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  // Before prime: the slot check fires (also without touching the mesh).
  EXPECT_THROW((void)decoder.extend(std::vector<TokenId>{1, 2}),
               std::logic_error);
  const Tensor primed =
      decoder.prime(random_tokens(6, model.spec().vocab_size, 21));
  EXPECT_THROW((void)decoder.extend({}), std::invalid_argument);
  EXPECT_FALSE(decoder.fabric().closed());
  // The mesh is unharmed: the slot still decodes.
  EXPECT_EQ(decoder.step(static_cast<TokenId>(argmax_row(primed, 0))).rows(),
            1U);
}

TEST(ExtendEdgeCases, ExtendInterleavesWithLiveBatchedSlots) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt_a = random_tokens(7, model.spec().vocab_size, 61);
  const auto prompt_b = random_tokens(9, model.spec().vocab_size, 62);
  const auto extension = random_tokens(3, model.spec().vocab_size, 63);

  // Solo references on the same mesh shape: the bitwise contract is
  // batched-vs-alone at equal K (single-device IncrementalDecoder only
  // matches to tolerance).
  DistributedDecoder ref_a(model, PartitionScheme::even(2));
  DistributedDecoder ref_b(model, PartitionScheme::even(2));
  Tensor ref_a_logits = ref_a.prime(prompt_a);
  Tensor ref_b_logits = ref_b.prime(prompt_b);

  DistributedDecoder decoder(model, PartitionScheme::even(2));
  const auto a = decoder.prime_slot(prompt_a);
  const auto b = decoder.prime_slot(prompt_b);
  ASSERT_EQ(a.slot, 0U);  // extend() operates on slot 0

  // Batch-step both slots a few tokens.
  SlotToken lane_a{.slot = a.slot,
                   .token = static_cast<TokenId>(argmax_row(a.logits, 0))};
  SlotToken lane_b{.slot = b.slot,
                   .token = static_cast<TokenId>(argmax_row(b.logits, 0))};
  for (int step = 0; step < 2; ++step) {
    const std::vector<SlotToken> lanes{lane_a, lane_b};
    const Tensor logits = decoder.step_batch(lanes);
    ref_a_logits = ref_a.step(lane_a.token);
    ref_b_logits = ref_b.step(lane_b.token);
    ASSERT_TRUE(row_bitwise_equal(logits, 0, ref_a_logits));
    ASSERT_TRUE(row_bitwise_equal(logits, 1, ref_b_logits));
    lane_a.token = static_cast<TokenId>(argmax_row(logits, 0));
    lane_b.token = static_cast<TokenId>(argmax_row(logits, 1));
  }

  // Extend slot 0 while slot 1 sits live mid-decode.
  const Tensor extended = decoder.extend(extension);
  ref_a_logits = ref_a.extend(extension);
  ASSERT_TRUE(row_bitwise_equal(extended, 0, ref_a_logits));
  EXPECT_EQ(decoder.slot_position(a.slot), prompt_a.size() + 2 + 3);
  EXPECT_EQ(decoder.slot_position(b.slot), prompt_b.size() + 2);

  // Both slots keep decoding bitwise on their references afterwards.
  lane_a.token = static_cast<TokenId>(argmax_row(extended, 0));
  for (int step = 0; step < 2; ++step) {
    const std::vector<SlotToken> lanes{lane_a, lane_b};
    const Tensor logits = decoder.step_batch(lanes);
    ref_a_logits = ref_a.step(lane_a.token);
    ref_b_logits = ref_b.step(lane_b.token);
    ASSERT_TRUE(row_bitwise_equal(logits, 0, ref_a_logits))
        << "post-extend step " << step;
    ASSERT_TRUE(row_bitwise_equal(logits, 1, ref_b_logits))
        << "post-extend step " << step;
    lane_a.token = static_cast<TokenId>(argmax_row(logits, 0));
    lane_b.token = static_cast<TokenId>(argmax_row(logits, 1));
  }
}

TEST(ExtendEdgeCases, ExtendUnderInt8MatchesStepByStepInt8) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(8, model.spec().vocab_size, 71);
  const auto tokens = random_tokens(4, model.spec().vocab_size, 72);

  DistributedDecoder stepped(model, PartitionScheme::even(2));
  stepped.set_precision(Precision::kInt8);
  (void)stepped.prime(prompt);
  Tensor step_logits(0, 0);
  for (const TokenId t : tokens) step_logits = stepped.step(t);

  DistributedDecoder extended(model, PartitionScheme::even(2));
  extended.set_precision(Precision::kInt8);
  (void)extended.prime(prompt);
  const Tensor ext_logits = extended.extend(tokens);

  ASSERT_TRUE(row_bitwise_equal(ext_logits, 0, step_logits));
  EXPECT_EQ(extended.position(), stepped.position());
  // And the caches really advanced identically: one more step agrees too.
  const auto next = static_cast<TokenId>(argmax_row(ext_logits, 0));
  ASSERT_TRUE(row_bitwise_equal(extended.step(next), 0, stepped.step(next)));
}

TEST(ExtendEdgeCases, ExtendAfterContainedCrashRethrowsDecoderDead) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 13,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 60}});
  DistributedDecoder decoder(model, PartitionScheme::even(2),
                             OrderPolicy::kAdaptive, std::move(chaos));
  Tensor logits = decoder.prime(random_tokens(8, model.spec().vocab_size, 3));
  bool crashed = false;
  const std::vector<TokenId> extension{1, 2, 3};
  for (int step = 0; step < 64 && !crashed; ++step) {
    try {
      // Alternate step and extend so the crash can land under either.
      logits = step % 2 == 0
                   ? decoder.step(static_cast<TokenId>(argmax_row(logits, 0)))
                   : decoder.extend(extension);
    } catch (const TransportClosedError& e) {
      crashed = true;
      EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos)
          << e.what();
    }
  }
  ASSERT_TRUE(crashed) << "crash fault never surfaced";
  // The decoder is dead; extend (like every other entry point) says so
  // instead of hanging on the poisoned mesh.
  EXPECT_THROW((void)decoder.extend(extension), std::logic_error);
  EXPECT_THROW((void)decoder.step(1), std::logic_error);
}

TEST(ExtendEdgeCases, ExtendPastTheContextWindowThrowsLengthError) {
  ModelSpec spec = mini_gpt2_spec();
  spec.max_positions = 10;
  const TransformerModel model(spec, 1);
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  const Tensor primed = decoder.prime(random_tokens(8, spec.vocab_size, 8));
  EXPECT_THROW((void)decoder.extend(std::vector<TokenId>{1, 2, 3}),
               std::length_error);
  // Validation-only failure: the slot still has room for the 2 that fit.
  EXPECT_EQ(decoder.extend(std::vector<TokenId>{1, 2}).rows(), 1U);
}

// --- Server integration ----------------------------------------------------

TEST(ServerSpeculative, DraftedServingMatchesPlainServingAndCountsAccepts) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kRequests = 4;
  constexpr std::size_t kNewTokens = 12;
  std::vector<std::vector<TokenId>> prompts;
  for (std::size_t i = 0; i < kRequests; ++i) {
    prompts.push_back(random_tokens(6 + i, model.spec().vocab_size, 500 + i));
  }
  // Plain serving reference.
  std::vector<std::vector<TokenId>> plain;
  {
    InferenceServer server(
        model, InferenceServer::Options{.scheme = PartitionScheme::even(2),
                                        .max_batch = 2});
    std::vector<std::future<std::vector<TokenId>>> futures;
    for (const auto& prompt : prompts) {
      futures.push_back(server.submit_generate(prompt, kNewTokens));
    }
    for (auto& future : futures) plain.push_back(future.get());
  }
  obs::MetricsRegistry metrics;
  obs::TelemetryHub telemetry;
  InferenceServer::Options opts{.scheme = PartitionScheme::even(2),
                                .max_batch = 2,
                                .metrics = &metrics,
                                .telemetry = &telemetry,
                                .telemetry_period = 30.0};
  // Drafting with the target model itself: every draft lands, so the
  // accepted counter must move and the rejected one stay small.
  opts.drafter_factory = [&model] {
    return std::make_unique<ModelDrafter>(model);
  };
  opts.max_draft_tokens = 3;
  InferenceServer server(model, opts);
  std::vector<std::future<std::vector<TokenId>>> futures;
  for (const auto& prompt : prompts) {
    futures.push_back(server.submit_generate(prompt, kNewTokens));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(), plain[i]) << "request " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.failed, 0U);
  EXPECT_GT(stats.spec_accepted, 0U);
  // Perfect drafter: at most the final round of each request trims.
  EXPECT_GE(stats.spec_accepted, stats.spec_rejected);
  EXPECT_EQ(metrics.counter("server.spec_accepted").value(),
            stats.spec_accepted);
  EXPECT_EQ(metrics.counter("server.spec_rejected").value(),
            stats.spec_rejected);
  // The live gauge agrees with the counters.
  const auto snapshot = telemetry.sample();
  bool saw_gauge = false;
  for (const auto& [name, value] : snapshot.values) {
    if (name == "server.spec_accept_rate") {
      saw_gauge = true;
      const double expected =
          static_cast<double>(stats.spec_accepted) /
          static_cast<double>(stats.spec_accepted + stats.spec_rejected);
      EXPECT_NEAR(value, expected, 1e-9);
    }
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(ServerSpeculative, LookupDrafterServesRepetitiveTextCorrectly) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  // A strongly periodic prompt plays to prompt-lookup drafting; the result
  // must match plain greedy serving regardless of how many drafts land.
  std::vector<TokenId> prompt;
  for (int i = 0; i < 4; ++i) {
    prompt.insert(prompt.end(), {11, 23, 5, 11, 23, 5});
  }
  constexpr std::size_t kNewTokens = 10;
  std::vector<TokenId> plain;
  {
    InferenceServer server(
        model, InferenceServer::Options{.scheme = PartitionScheme::even(2)});
    plain = server.submit_generate(prompt, kNewTokens).get();
  }
  InferenceServer::Options opts{.scheme = PartitionScheme::even(2)};
  opts.drafter_factory = [] {
    return std::make_unique<PromptLookupDrafter>();
  };
  InferenceServer server(model, opts);
  EXPECT_EQ(server.submit_generate(prompt, kNewTokens).get(), plain);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1U);
  EXPECT_GT(stats.spec_accepted + stats.spec_rejected, 0U);
}

}  // namespace
}  // namespace voltage
