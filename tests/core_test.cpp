// The intra-op concurrency substrate (src/core/thread_pool.h): coverage and
// exactly-once semantics of parallel_for, budget resolution and scoping,
// nested-region serialization, exception propagation, and exactness of the
// shared atomic FLOP counters under concurrent accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/flops.h"

namespace voltage {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const IntraOpScope scope(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{64}}) {
    const std::size_t begin = 100;
    const std::size_t end = 1037;
    std::vector<std::atomic<int>> hits(end);
    parallel_for(begin, end, grain, [&](std::size_t b, std::size_t e) {
      ASSERT_LE(b, e);
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < begin; ++i) EXPECT_EQ(hits[i].load(), 0);
    for (std::size_t i = begin; i < end; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  const IntraOpScope scope(4);
  std::atomic<int> calls{0};
  parallel_for(std::size_t{10}, std::size_t{10}, std::size_t{1},
               [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RunsInlineWhenBudgetIsOne) {
  const IntraOpScope scope(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> runners;
  std::atomic<int> chunks{0};
  parallel_for(std::size_t{0}, std::size_t{500}, std::size_t{1},
               [&](std::size_t, std::size_t) {
                 chunks.fetch_add(1);
                 const std::lock_guard lock(mu);
                 runners.insert(std::this_thread::get_id());
               });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(runners.size(), 1U);
  EXPECT_EQ(*runners.begin(), caller);
}

TEST(ParallelFor, NestedRegionsSerializeAndStayExact) {
  const IntraOpScope scope(4);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 100;
  std::atomic<std::uint64_t> total{0};
  parallel_for(std::size_t{0}, kOuter, std::size_t{1},
               [&](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) {
                   parallel_for(std::size_t{0}, kInner, std::size_t{1},
                                [&](std::size_t ib, std::size_t ie) {
                                  total.fetch_add(ie - ib);
                                });
                 }
               });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ParallelFor, PropagatesTheChunkException) {
  const IntraOpScope scope(4);
  EXPECT_THROW(
      parallel_for(std::size_t{0}, std::size_t{100}, std::size_t{1},
                   [&](std::size_t b, std::size_t e) {
                     if (b <= 50 && 50 < e) {
                       throw std::runtime_error("chunk failed");
                     }
                   }),
      std::runtime_error);
}

TEST(IntraOpBudget, ScopeNestsAndRestores) {
  const std::size_t base = intra_op_threads();
  EXPECT_GE(base, 1U);
  {
    const IntraOpScope outer(3);
    EXPECT_EQ(intra_op_threads(), 3U);
    {
      const IntraOpScope inner(1);
      EXPECT_EQ(intra_op_threads(), 1U);
    }
    EXPECT_EQ(intra_op_threads(), 3U);
  }
  EXPECT_EQ(intra_op_threads(), base);
}

TEST(IntraOpBudget, ProcessDefaultAppliesWithoutAScope) {
  const std::size_t base = intra_op_threads();
  set_intra_op_threads(2);
  EXPECT_EQ(intra_op_threads(), 2U);
  {
    // A scope still takes precedence over the process default.
    const IntraOpScope scope(5);
    EXPECT_EQ(intra_op_threads(), 5U);
  }
  EXPECT_EQ(intra_op_threads(), 2U);
  set_intra_op_threads(0);  // restore auto
  EXPECT_EQ(intra_op_threads(), base);
}

TEST(IntraOpBudget, DefaultAppliesToFreshThreads) {
  set_intra_op_threads(2);
  std::size_t seen = 0;
  std::thread t([&] { seen = intra_op_threads(); });
  t.join();
  set_intra_op_threads(0);
  EXPECT_EQ(seen, 2U);
}

TEST(FlopCounters, ExactUnderConcurrentAccounting) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 1000;
  flops::reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kIters; ++i) {
        flops::add_matmul_macs(3);
        flops::add_elementwise(2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(flops::matmul_macs(), kThreads * kIters * 3);
  EXPECT_EQ(flops::elementwise_ops(), kThreads * kIters * 2);
}

TEST(FlopCounters, ExactWhenAccountedFromPoolWorkers) {
  const IntraOpScope scope(4);
  flops::reset();
  constexpr std::size_t kRange = 1000;
  parallel_for(std::size_t{0}, kRange, std::size_t{1},
               [&](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) flops::add_matmul_macs(1);
               });
  EXPECT_EQ(flops::matmul_macs(), kRange);
}

}  // namespace
}  // namespace voltage
