// Tests of the named-tensor archive and model checkpointing.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "tensor/archive.h"
#include "tensor/rng.h"
#include "transformer/model_io.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* stem)
      : path_(std::filesystem::temp_directory_path() /
              (std::string("voltage_test_") + stem + "_" +
               std::to_string(::getpid()) + ".vlta")) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(TensorArchive, RoundTripsEntries) {
  Rng rng(1);
  TensorArchive archive;
  archive.put("a", rng.normal_tensor(3, 4, 1.0F));
  archive.put("nested.name.b", rng.normal_tensor(7, 2, 1.0F));
  archive.put("empty", Tensor(0, 5));

  const TempFile file("roundtrip");
  archive.save(file.path());
  const TensorArchive loaded = TensorArchive::load(file.path());
  ASSERT_EQ(loaded.size(), 3U);
  EXPECT_EQ(loaded.get("a"), archive.get("a"));
  EXPECT_EQ(loaded.get("nested.name.b"), archive.get("nested.name.b"));
  EXPECT_EQ(loaded.get("empty").cols(), 5U);
}

TEST(TensorArchive, PutReplaces) {
  TensorArchive archive;
  archive.put("x", Tensor::filled(1, 1, 1.0F));
  archive.put("x", Tensor::filled(1, 1, 2.0F));
  EXPECT_EQ(archive.size(), 1U);
  EXPECT_EQ(archive.get("x")(0, 0), 2.0F);
  EXPECT_TRUE(archive.contains("x"));
  EXPECT_FALSE(archive.contains("y"));
  EXPECT_THROW((void)archive.get("y"), std::out_of_range);
}

TEST(TensorArchive, RejectsCorruptFiles) {
  const TempFile file("corrupt");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an archive at all", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)TensorArchive::load(file.path()), std::runtime_error);
  EXPECT_THROW((void)TensorArchive::load("/nonexistent/nowhere.vlta"),
               std::runtime_error);
}

TEST(TensorArchive, RejectsTruncatedFile) {
  Rng rng(2);
  TensorArchive archive;
  archive.put("w", rng.normal_tensor(16, 16, 1.0F));
  const TempFile file("truncated");
  archive.save(file.path());
  std::filesystem::resize_file(file.path(),
                               std::filesystem::file_size(file.path()) / 2);
  EXPECT_THROW((void)TensorArchive::load(file.path()), std::runtime_error);
}

TEST(ModelIo, SaveLoadPreservesInference) {
  TransformerModel original = make_model(mini_bert_spec(), /*seed=*/7);
  const TempFile file("bert");
  save_model(original, file.path());

  // A differently-seeded model produces different logits ...
  TransformerModel other = make_model(mini_bert_spec(), /*seed=*/8);
  const auto tokens = random_tokens(18, other.spec().vocab_size, 3);
  EXPECT_GT(max_abs_diff(other.infer(tokens), original.infer(tokens)), 1e-5F);

  // ... until the checkpoint is loaded: then they match exactly.
  load_model(other, file.path());
  EXPECT_EQ(other.infer(tokens), original.infer(tokens));
}

TEST(ModelIo, WorksForAllModelFamilies) {
  for (const ModelSpec& spec :
       {mini_bert_spec(), mini_vit_spec(), mini_gpt2_spec()}) {
    TransformerModel a = make_model(spec, 11);
    TransformerModel b = make_model(spec, 12);
    const TempFile file(spec.name.c_str());
    save_model(a, file.path());
    load_model(b, file.path());
    if (spec.kind == ModelKind::kImageClassifier) {
      const Image img = random_image(spec.image_size, spec.channels, 4);
      EXPECT_EQ(a.infer(img), b.infer(img)) << spec.name;
    } else {
      const auto tokens = random_tokens(12, spec.vocab_size, 4);
      EXPECT_EQ(a.infer(tokens), b.infer(tokens)) << spec.name;
    }
  }
}

TEST(ModelIo, RejectsArchitectureMismatch) {
  TransformerModel bert = make_model(mini_bert_spec());
  const TempFile file("mismatch");
  save_model(bert, file.path());
  // GPT-2 mini has a different shape inventory: must refuse to load.
  TransformerModel gpt2 = make_model(mini_gpt2_spec());
  EXPECT_THROW(load_model(gpt2, file.path()), std::runtime_error);
}

TEST(ModelIo, VisitCoversEveryParameter) {
  TransformerModel model = make_model(mini_vit_spec());
  std::size_t visited_elements = 0;
  model.visit_parameters([&](const std::string& name, Tensor& tensor) {
    EXPECT_FALSE(name.empty());
    visited_elements += tensor.size();
  });
  EXPECT_EQ(visited_elements, model.parameter_count());
}

}  // namespace
}  // namespace voltage
