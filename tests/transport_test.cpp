// Tests of the transport layer: the SocketFabric (real kernel sockets) must
// be a drop-in replacement for the in-memory Fabric — same matching
// semantics, same collective results, same end-to-end inference.
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "net/fabric.h"
#include "net/socket_fabric.h"
#include "net/transport.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

std::vector<DeviceId> group_of(std::size_t k) {
  std::vector<DeviceId> g(k);
  std::iota(g.begin(), g.end(), DeviceId{0});
  return g;
}

// Runs the same scenarios against both transports.
class TransportParam : public ::testing::TestWithParam<TransportKind> {
 protected:
  [[nodiscard]] std::unique_ptr<Transport> make(std::size_t devices) const {
    return make_transport(GetParam(), devices);
  }
};

TEST_P(TransportParam, PointToPointDelivery) {
  const auto t = make(2);
  t->send(Message{.source = 0, .destination = 1, .tag = 7,
                  .payload = std::vector<std::byte>(100, std::byte{42})});
  const Message m = t->recv(1, 0, 7);
  EXPECT_EQ(m.payload.size(), 100U);
  EXPECT_EQ(m.payload[99], std::byte{42});
  EXPECT_EQ(m.source, 0U);
  EXPECT_EQ(m.tag, 7U);
}

TEST_P(TransportParam, OutOfOrderTagMatching) {
  const auto t = make(2);
  for (MessageTag tag = 0; tag < 5; ++tag) {
    t->send(Message{.source = 0, .destination = 1, .tag = tag,
                    .payload = std::vector<std::byte>(tag + 1)});
  }
  // Consume in reverse order.
  for (MessageTag tag = 5; tag-- > 0;) {
    EXPECT_EQ(t->recv(1, 0, tag).payload.size(), tag + 1);
  }
}

TEST_P(TransportParam, EmptyPayload) {
  const auto t = make(2);
  t->send(Message{.source = 1, .destination = 0, .tag = 3, .payload = {}});
  EXPECT_TRUE(t->recv(0, 1, 3).payload.empty());
}

TEST_P(TransportParam, LargeMessageSurvives) {
  const auto t = make(2);
  Rng rng(1);
  const Tensor big = rng.normal_tensor(300, 1024, 1.0F);  // ~1.2 MB
  std::thread sender([&] {
    t->send(Message{.source = 0, .destination = 1, .tag = 1,
                    .payload = to_bytes(big)});
  });
  const Tensor back = tensor_from_payload(t->recv(1, 0, 1).payload);
  sender.join();
  EXPECT_EQ(back, big);
}

TEST_P(TransportParam, RecvAnyMatchesTagFromAnySource) {
  const auto t = make(3);
  t->send(Message{.source = 1, .destination = 0, .tag = 9,
                  .payload = std::vector<std::byte>(11)});
  t->send(Message{.source = 2, .destination = 0, .tag = 9,
                  .payload = std::vector<std::byte>(22)});
  std::size_t total = 0;
  std::set<DeviceId> sources;
  for (int i = 0; i < 2; ++i) {
    const Message m = t->recv_any(0, 9);
    total += m.payload.size();
    sources.insert(m.source);
  }
  EXPECT_EQ(total, 33U);
  EXPECT_EQ(sources, (std::set<DeviceId>{1, 2}));
}

TEST_P(TransportParam, TrafficCountersMatch) {
  const auto t = make(3);
  t->send(Message{.source = 0, .destination = 2, .tag = 1,
                  .payload = std::vector<std::byte>(64)});
  (void)t->recv(2, 0, 1);
  EXPECT_EQ(t->stats(0).bytes_sent, 64U + kWireFrameBytes);
  EXPECT_EQ(t->stats(2).bytes_received, 64U + kWireFrameBytes);
  EXPECT_EQ(t->total_stats().messages_sent, 1U);
  t->reset_stats();
  EXPECT_EQ(t->total_stats().bytes_sent, 0U);
}

TEST_P(TransportParam, RejectsSelfSendAndBadIds) {
  const auto t = make(2);
  EXPECT_THROW(t->send(Message{.source = 1, .destination = 1, .tag = 0, .payload = {}}),
               std::invalid_argument);
  EXPECT_THROW(t->send(Message{.source = 0, .destination = 9, .tag = 0, .payload = {}}),
               std::out_of_range);
  EXPECT_THROW((void)t->stats(5), std::out_of_range);
}

TEST_P(TransportParam, AllGatherAcrossThreads) {
  constexpr std::size_t kRanks = 4;
  const auto t = make(kRanks);
  const auto group = group_of(kRanks);
  std::vector<std::vector<Tensor>> results(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      results[i] = all_gather(*t, group, i,
                              Tensor::filled(3, 3, static_cast<float>(i)),
                              /*tag=*/11);
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < kRanks; ++i) {
    for (std::size_t j = 0; j < kRanks; ++j) {
      EXPECT_EQ(results[i][j], Tensor::filled(3, 3, static_cast<float>(j)));
    }
  }
}

TEST_P(TransportParam, RingAllReduceAcrossThreads) {
  constexpr std::size_t kRanks = 3;
  const auto t = make(kRanks);
  const auto group = group_of(kRanks);
  Rng rng(2);
  std::vector<Tensor> inputs;
  Tensor expected(5, 4);
  for (std::size_t i = 0; i < kRanks; ++i) {
    inputs.push_back(rng.normal_tensor(5, 4, 1.0F));
    add_inplace(expected, inputs.back());
  }
  std::vector<Tensor> results(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      results[i] = ring_all_reduce_sum(*t, group, i, inputs[i], 50);
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_TRUE(allclose(results[i], expected, 1e-4F));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TransportParam,
                         ::testing::Values(TransportKind::kInMemory,
                                           TransportKind::kUnixSocket),
                         [](const auto& info) {
                           return info.param == TransportKind::kInMemory
                                      ? "InMemory"
                                      : "UnixSocket";
                         });

// --- end-to-end inference over real sockets -----------------------------------

TEST(SocketRuntime, VoltageOverSocketsMatchesSingleDevice) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(24, model.spec().vocab_size, 41);
  VoltageRuntime runtime(model, PartitionScheme::even(3),
                         OrderPolicy::kAdaptive, TransportKind::kUnixSocket);
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
  // Socket traffic is byte-identical to the in-memory fabric's accounting.
  VoltageRuntime reference(model, PartitionScheme::even(3));
  (void)reference.infer(tokens);
  EXPECT_EQ(runtime.fabric().total_stats().bytes_sent,
            reference.fabric().total_stats().bytes_sent);
}

TEST(SocketRuntime, RepeatedInferenceOverSockets) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2),
                         OrderPolicy::kAdaptive, TransportKind::kUnixSocket);
  const auto a = random_tokens(10, model.spec().vocab_size, 1);
  const auto b = random_tokens(13, model.spec().vocab_size, 2);
  EXPECT_TRUE(allclose(runtime.infer(a), model.infer(a), 2e-3F));
  EXPECT_TRUE(allclose(runtime.infer(b), model.infer(b), 2e-3F));
}

TEST(SocketFabricLifecycle, CleanTeardownWithPendingNothing) {
  // Construct/destruct without traffic: readers must exit promptly.
  for (int i = 0; i < 3; ++i) {
    SocketFabric fabric(4);
    EXPECT_EQ(fabric.devices(), 4U);
  }
}

TEST(SocketFabricLifecycle, ZeroDevicesRejected) {
  EXPECT_THROW(SocketFabric(0), std::invalid_argument);
}

}  // namespace
}  // namespace voltage
