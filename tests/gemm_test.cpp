// Bitwise contracts of the blocked GEMM substrate (src/tensor/gemm.h):
// every kernel variant must equal the naive i-j-k reference exactly, results
// must not change with the intra-op thread budget, transposed operands must
// never be materialized, and the distributed runtime must reproduce
// single-device inference bit for bit under the naive attention order.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "core/thread_pool.h"
#include "runtime/voltage_runtime.h"
#include "tensor/flops.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

void expect_bitwise(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        a.rows() * a.cols() * sizeof(float)),
            0);
}

struct Shape {
  std::size_t m, k, n;
};

// Mixes tile-aligned shapes with shapes that exercise every edge path:
// m/n/k not divisible by any micro-tile or cache-block size, degenerate
// single-row/column cases, and k spanning multiple KC blocks.
const std::vector<Shape>& test_shapes() {
  static const std::vector<Shape> shapes = {
      {1, 1, 1},     {2, 3, 4},      {5, 7, 9},      {8, 8, 8},
      {13, 1, 31},   {1, 257, 1},    {33, 17, 29},   {64, 64, 64},
      {65, 300, 33}, {100, 48, 129}, {128, 256, 96}, {141, 260, 70},
  };
  return shapes;
}

TEST(GemmKernels, MatchNaiveReferenceBitwiseForAllVariantsAndShapes) {
  Rng rng(42);
  for (const Shape& s : test_shapes()) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        // Stored layouts: A is m x k (or k x m when transposed), likewise B.
        const Tensor a = ta ? rng.normal_tensor(s.k, s.m, 1.0F)
                            : rng.normal_tensor(s.m, s.k, 1.0F);
        const Tensor b = tb ? rng.normal_tensor(s.n, s.k, 1.0F)
                            : rng.normal_tensor(s.k, s.n, 1.0F);
        // Both sides accumulate onto the same nonzero C.
        const Tensor c0 = rng.normal_tensor(s.m, s.n, 1.0F);
        Tensor c_kernel = c0;
        Tensor c_ref = c0;
        detail::gemm_blocked(a.data(), ta, b.data(), tb, c_kernel.data(),
                             s.m, 0, s.m, s.k, s.n);
        detail::gemm_reference(a.data(), ta, b.data(), tb, c_ref.data(),
                               s.m, s.k, s.n);
        expect_bitwise(c_kernel, c_ref);
      }
    }
  }
}

TEST(GemmKernels, DedicatedEntryPointsMatchReference) {
  Rng rng(7);
  const std::size_t m = 37, k = 53, n = 29;
  const Tensor a = rng.normal_tensor(m, k, 1.0F);
  const Tensor at = rng.normal_tensor(k, m, 1.0F);
  const Tensor b = rng.normal_tensor(k, n, 1.0F);
  const Tensor bt = rng.normal_tensor(n, k, 1.0F);

  const auto check = [&](const Tensor& sa, bool ta, const Tensor& sb, bool tb,
                         auto kernel) {
    Tensor c_kernel(m, n);
    Tensor c_ref(m, n);
    kernel(sa.data(), sb.data(), c_kernel.data(), m, k, n);
    detail::gemm_reference(sa.data(), ta, sb.data(), tb, c_ref.data(), m, k,
                           n);
    expect_bitwise(c_kernel, c_ref);
  };
  check(a, false, b, false, detail::gemm_nn);
  check(a, false, bt, true, detail::gemm_nt);
  check(at, true, b, false, detail::gemm_tn);
  check(at, true, bt, true, detail::gemm_tt);
}

TEST(GemmKernels, RowRangeSplitsReproduceTheFullResult) {
  Rng rng(11);
  const std::size_t m = 67, k = 40, n = 51;
  const Tensor a = rng.normal_tensor(m, k, 1.0F);
  const Tensor b = rng.normal_tensor(k, n, 1.0F);
  Tensor full(m, n);
  detail::gemm_blocked(a.data(), false, b.data(), false, full.data(), m, 0, m,
                       k, n);

  // Uneven split points, including a single-row chunk.
  Tensor split(m, n);
  const std::size_t cuts[] = {0, 5, 6, 40, m};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    detail::gemm_blocked(a.data(), false, b.data(), false, split.data(), m,
                         cuts[c], cuts[c + 1], k, n);
  }
  expect_bitwise(full, split);
}

TEST(GemmKernels, MatmulIsBitwiseIdenticalAcrossIntraOpBudgets) {
  Rng rng(13);
  for (const Shape& s : {Shape{37, 23, 41}, Shape{130, 64, 50}}) {
    const Tensor a = rng.normal_tensor(s.m, s.k, 1.0F);
    const Tensor b = rng.normal_tensor(s.k, s.n, 1.0F);
    std::vector<Tensor> results;
    for (const std::size_t threads : {1U, 2U, 4U}) {
      const IntraOpScope scope(threads);
      results.push_back(matmul(a, b));
    }
    expect_bitwise(results[0], results[1]);
    expect_bitwise(results[0], results[2]);
  }
}

TEST(GemmKernels, TransposedMatmulNeverMaterializesACopy) {
  Rng rng(17);
  const Tensor a = rng.normal_tensor(45, 33, 1.0F);
  const Tensor b = rng.normal_tensor(51, 33, 1.0F);     // op(b)^T is 33 x 51
  const Tensor at = rng.normal_tensor(33, 45, 1.0F);    // op(at)^T is 45 x 33
  const Tensor c = rng.normal_tensor(33, 20, 1.0F);
  const std::uint64_t before = Tensor::transpose_copy_count();
  (void)matmul(a, b, Trans::kNo, Trans::kYes);    // NT: 45x33 · 33x51
  (void)matmul(at, b, Trans::kYes, Trans::kYes);  // TT: 45x33 · 33x51
  (void)matmul(at, c, Trans::kYes, Trans::kNo);   // TN: 45x33 · 33x20
  EXPECT_EQ(Tensor::transpose_copy_count(), before);
  // The counter itself is live: an explicit transpose still registers.
  (void)a.transposed();
  EXPECT_EQ(Tensor::transpose_copy_count(), before + 1);
}

TEST(GemmKernels, MacAccountingIsExactUnderThreading) {
  Rng rng(19);
  const std::size_t m = 96, k = 64, n = 80;
  const Tensor a = rng.normal_tensor(m, k, 1.0F);
  const Tensor b = rng.normal_tensor(k, n, 1.0F);
  const IntraOpScope scope(4);
  const flops::Scope counter;
  (void)matmul(a, b);
  EXPECT_EQ(counter.macs(), static_cast<std::uint64_t>(m) * k * n);
}

TEST(GemmKernels, DispatchReportsAKnownArch) {
  const std::string_view arch = detail::gemm_kernel_arch();
  EXPECT_TRUE(arch == "avx512" || arch == "avx2" || arch == "base") << arch;
}

TEST(GemmDeterminism, ModelForwardBitwiseIdenticalAcrossIntraOpBudgets) {
  for (const ModelSpec& spec : {mini_bert_spec(), mini_gpt2_spec()}) {
    const TransformerModel model = make_model(spec);
    const auto tokens = random_tokens(24, model.spec().vocab_size, 7);
    std::vector<Tensor> logits;
    for (const std::size_t threads : {1U, 2U, 4U}) {
      const IntraOpScope scope(threads);
      logits.push_back(model.infer(tokens));
    }
    expect_bitwise(logits[0], logits[1]);
    expect_bitwise(logits[0], logits[2]);
  }
}

// Stronger than the runtime_test tolerance checks: under the naive attention
// order the distributed computation performs exactly the same per-row FP
// chains as the single-device baseline, so K devices must reproduce it bit
// for bit (row-splitting a GEMM never changes any row's summation order).
TEST(GemmDeterminism, DistributedInferenceBitwiseMatchesSingleDevice) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(30, model.spec().vocab_size, 23);
  const Tensor expected = model.infer(tokens);
  for (const std::size_t k : {2U, 3U}) {
    VoltageRuntime runtime(model, PartitionScheme::even(k),
                           OrderPolicy::kAlwaysNaive);
    const Tensor logits = runtime.infer(tokens);
    expect_bitwise(logits, expected);
  }
}

}  // namespace
}  // namespace voltage
