// Unit tests for the transformer substrate: attention reference path,
// layers, embeddings, heads, full models and the toy tokenizer.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/attention.h"
#include "transformer/ffn.h"
#include "transformer/layer.h"
#include "transformer/model.h"
#include "transformer/tokenizer.h"
#include "transformer/weights.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

LayerConfig small_config(bool causal = false) {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = causal};
}

TEST(LayerConfig, ValidatesHeadGeometry) {
  LayerConfig bad = small_config();
  bad.head_dim = 7;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  LayerConfig zero = small_config();
  zero.ffn_dim = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_config().validate());
}

TEST(Weights, ShapesMatchConfig) {
  Rng rng(1);
  const LayerConfig cfg = small_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  ASSERT_EQ(w.attention.heads.size(), cfg.heads);
  EXPECT_EQ(w.attention.heads[0].wq.rows(), cfg.hidden);
  EXPECT_EQ(w.attention.heads[0].wq.cols(), cfg.head_dim);
  EXPECT_EQ(w.attention.wo.rows(), cfg.heads * cfg.head_dim);
  EXPECT_EQ(w.attention.wo.cols(), cfg.hidden);
  EXPECT_EQ(w.ffn.w1.cols(), cfg.ffn_dim);
  EXPECT_EQ(w.ffn.w2.rows(), cfg.ffn_dim);
  EXPECT_GT(w.parameter_count(), 0U);
}

TEST(Weights, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  const LayerConfig cfg = small_config();
  EXPECT_EQ(init_layer_weights(cfg, a).attention.heads[0].wq,
            init_layer_weights(cfg, b).attention.heads[0].wq);
}

// --- attention ---------------------------------------------------------------

TEST(Attention, OutputShape) {
  Rng rng(2);
  const LayerConfig cfg = small_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(10, cfg.hidden, 1.0F);
  const Tensor out = multi_head_attention(x, w.attention, cfg);
  EXPECT_EQ(out.rows(), 10U);
  EXPECT_EQ(out.cols(), cfg.hidden);
}

TEST(Attention, UniformKeysGiveUniformWeights) {
  // With identical rows in x, attention output at every position equals the
  // value projection of that row (softmax over identical scores is uniform).
  Rng rng(3);
  const LayerConfig cfg = small_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  Tensor x(6, cfg.hidden);
  const Tensor row = rng.normal_tensor(1, cfg.hidden, 1.0F);
  for (std::size_t r = 0; r < 6; ++r) x.set_rows(r, row);
  const Tensor out = multi_head_attention(x, w.attention, cfg);
  for (std::size_t r = 1; r < 6; ++r) {
    for (std::size_t c = 0; c < cfg.hidden; ++c) {
      EXPECT_NEAR(out(r, c), out(0, c), 1e-5F);
    }
  }
}

TEST(Attention, CausalMaskZeroesFuture) {
  Tensor scores = Tensor::filled(3, 5, 1.0F);
  apply_causal_mask(scores, 1);  // row 0 is global position 1
  const Tensor probs = softmax_rows(scores);
  // Row 0 (global pos 1) may attend to cols 0..1 only.
  EXPECT_EQ(probs(0, 2), 0.0F);
  EXPECT_EQ(probs(0, 4), 0.0F);
  EXPECT_NEAR(probs(0, 0) + probs(0, 1), 1.0F, 1e-5F);
  // Row 2 (global pos 3) attends to cols 0..3.
  EXPECT_EQ(probs(2, 4), 0.0F);
  EXPECT_NEAR(probs(2, 0), 0.25F, 1e-5F);
}

TEST(Attention, CausalOutputIgnoresFutureTokens) {
  // Changing a future token must not change earlier positions' outputs.
  Rng rng(4);
  const LayerConfig cfg = small_config(/*causal=*/true);
  const LayerWeights w = init_layer_weights(cfg, rng);
  Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  const Tensor out1 = multi_head_attention(x, w.attention, cfg);
  for (std::size_t c = 0; c < cfg.hidden; ++c) x(7, c) += 5.0F;
  const Tensor out2 = multi_head_attention(x, w.attention, cfg);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < cfg.hidden; ++c) {
      EXPECT_NEAR(out1(r, c), out2(r, c), 1e-5F) << "row " << r;
    }
  }
  // ... while the changed position itself does change.
  EXPECT_GT(max_abs_diff(out1.slice_rows(7, 8), out2.slice_rows(7, 8)),
            1e-3F);
}

TEST(Ffn, PositionWise) {
  // FFN applied to a sequence equals FFN applied row by row.
  Rng rng(5);
  const LayerConfig cfg = small_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(5, cfg.hidden, 1.0F);
  const Tensor full = ffn_forward(x, w.ffn, cfg.activation);
  for (std::size_t r = 0; r < 5; ++r) {
    const Tensor row = ffn_forward(x.slice_rows(r, r + 1), w.ffn,
                                   cfg.activation);
    EXPECT_TRUE(allclose(full.slice_rows(r, r + 1), row, 1e-5F));
  }
}

TEST(Layer, ForwardShapeAndDeterminism) {
  Rng rng(6);
  const LayerConfig cfg = small_config();
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const Tensor x = rng.normal_tensor(9, cfg.hidden, 1.0F);
  const Tensor a = layer.forward(x);
  const Tensor b = layer.forward(x);
  EXPECT_EQ(a.rows(), 9U);
  EXPECT_EQ(a.cols(), cfg.hidden);
  EXPECT_EQ(a, b);
}

TEST(Layer, OutputIsLayerNormalized) {
  Rng rng(7);
  const LayerConfig cfg = small_config();
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const Tensor out =
      layer.forward(rng.normal_tensor(4, cfg.hidden, 1.0F));
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float mean = 0.0F;
    for (const float v : out.row(r)) mean += v;
    EXPECT_NEAR(mean / static_cast<float>(cfg.hidden), 0.0F, 1e-4F);
  }
}

// --- embeddings --------------------------------------------------------------

TEST(TokenEmbedding, ShapeAndPositionDependence) {
  Rng rng(8);
  const TokenEmbedding emb(100, 16, 32, rng);
  const std::vector<TokenId> tokens{5, 5, 9};
  const Tensor x = emb.embed(tokens);
  EXPECT_EQ(x.rows(), 3U);
  EXPECT_EQ(x.cols(), 32U);
  // Same token at different positions embeds differently.
  EXPECT_GT(max_abs_diff(x.slice_rows(0, 1), x.slice_rows(1, 2)), 1e-4F);
}

TEST(TokenEmbedding, RejectsBadInput) {
  Rng rng(9);
  const TokenEmbedding emb(100, 4, 8, rng);
  const std::vector<TokenId> too_long{1, 2, 3, 4, 5};
  EXPECT_THROW((void)emb.embed(too_long), std::invalid_argument);
  const std::vector<TokenId> bad_id{150};
  EXPECT_THROW((void)emb.embed(bad_id), std::out_of_range);
  const std::vector<TokenId> negative{-1};
  EXPECT_THROW((void)emb.embed(negative), std::out_of_range);
}

TEST(PatchEmbedding, SequenceGeometry) {
  Rng rng(10);
  const PatchEmbedding emb(32, 8, 3, 64, rng);
  EXPECT_EQ(emb.sequence_length(), 17U);  // 16 patches + CLS
  const Tensor x = emb.embed(random_image(32, 3, 1));
  EXPECT_EQ(x.rows(), 17U);
  EXPECT_EQ(x.cols(), 64U);
}

TEST(PatchEmbedding, RejectsWrongImage) {
  Rng rng(11);
  const PatchEmbedding emb(32, 8, 3, 64, rng);
  EXPECT_THROW((void)emb.embed(Image(16, 16, 3)), std::invalid_argument);
  EXPECT_THROW((void)emb.embed(Image(32, 32, 1)), std::invalid_argument);
}

TEST(PatchEmbedding, PatchContentMatters) {
  Rng rng(12);
  const PatchEmbedding emb(16, 8, 1, 8, rng);
  Image img(16, 16, 1);
  const Tensor a = emb.embed(img);
  img.at(0, 0, 0) = 5.0F;  // inside patch 0 only
  const Tensor b = emb.embed(img);
  // Patch 0 is sequence row 1 (row 0 is CLS); only it should change.
  EXPECT_GT(max_abs_diff(a.slice_rows(1, 2), b.slice_rows(1, 2)), 1e-4F);
  EXPECT_TRUE(allclose(a.slice_rows(2, 5), b.slice_rows(2, 5), 1e-6F));
  EXPECT_TRUE(allclose(a.slice_rows(0, 1), b.slice_rows(0, 1), 1e-6F));
}

// --- heads -------------------------------------------------------------------

TEST(Heads, ClassifierPoolingModes) {
  Rng rng(13);
  const ClassifierHead cls(16, 3, Pooling::kClsToken, rng);
  Rng rng2(13);
  const ClassifierHead last(16, 3, Pooling::kLastToken, rng2);
  Rng rng3(13);
  const ClassifierHead mean(16, 3, Pooling::kMeanPool, rng3);

  Rng data(14);
  const Tensor h = data.normal_tensor(5, 16, 1.0F);
  EXPECT_EQ(cls.forward(h).cols(), 3U);
  // CLS pooling only reads row 0; last-token pooling only reads row 4.
  Tensor h2 = h;
  for (std::size_t c = 0; c < 16; ++c) h2(2, c) += 1.0F;
  EXPECT_TRUE(allclose(cls.forward(h), cls.forward(h2), 1e-6F));
  EXPECT_TRUE(allclose(last.forward(h), last.forward(h2), 1e-6F));
  EXPECT_GT(max_abs_diff(mean.forward(h), mean.forward(h2)), 1e-5F);
}

TEST(Heads, LmHeadReadsLastPositionOnly) {
  Rng rng(15);
  const LmHead head(16, 50, rng);
  Rng data(16);
  const Tensor h = data.normal_tensor(4, 16, 1.0F);
  Tensor h2 = h;
  for (std::size_t c = 0; c < 16; ++c) h2(0, c) += 2.0F;
  EXPECT_EQ(head.forward_last(h).cols(), 50U);
  EXPECT_TRUE(allclose(head.forward_last(h), head.forward_last(h2), 1e-6F));
}

TEST(Heads, EmptySequenceThrows) {
  Rng rng(17);
  const ClassifierHead cls(8, 2, Pooling::kClsToken, rng);
  EXPECT_THROW((void)cls.forward(Tensor(0, 8)), std::invalid_argument);
}

// --- models ------------------------------------------------------------------

TEST(ModelZoo, PaperSpecsMatchArchitectures) {
  const ModelSpec bert = bert_large_spec();
  EXPECT_EQ(bert.num_layers, 24U);
  EXPECT_EQ(bert.layer.hidden, 1024U);
  EXPECT_EQ(bert.layer.heads, 16U);
  EXPECT_NO_THROW(bert.validate());

  const ModelSpec vit = vit_base_spec();
  EXPECT_EQ(vit.vit_sequence_length(), 197U);  // 14*14 patches + CLS
  EXPECT_NO_THROW(vit.validate());

  const ModelSpec gpt2 = gpt2_spec();
  EXPECT_TRUE(gpt2.layer.causal);
  EXPECT_EQ(gpt2.vocab_size, 50257U);
  EXPECT_NO_THROW(gpt2.validate());
}

TEST(ModelZoo, AnalyticParameterCountsMatchKnownSizes) {
  // Published sizes (transformer stack + embeddings + head), in millions.
  // Small deviations are expected: our attention carries no Q/K/V biases
  // (paper Eq. 1) and the GPT-2 LM head is untied.
  const auto millions = [](const ModelSpec& spec) {
    return static_cast<double>(spec_parameter_count(spec)) / 1e6;
  };
  EXPECT_NEAR(millions(bert_large_spec()), 335.0, 12.0);
  EXPECT_NEAR(millions(bert_base_spec()), 109.0, 6.0);
  EXPECT_NEAR(millions(distilbert_spec()), 66.0, 4.0);
  EXPECT_NEAR(millions(vit_base_spec()), 86.0, 5.0);
  EXPECT_NEAR(millions(vit_large_spec()), 304.0, 12.0);
  // GPT-2 small is 124M with tied embeddings; untied adds ~38M.
  EXPECT_NEAR(millions(gpt2_spec()), 124.0 + 38.6, 8.0);
}

TEST(ModelZoo, AnalyticCountMatchesMaterializedModel) {
  // For specs small enough to build, the closed form must equal the real
  // parameter count exactly.
  for (const ModelSpec& spec :
       {mini_bert_spec(), mini_vit_spec(), mini_gpt2_spec()}) {
    EXPECT_EQ(spec_parameter_count(spec),
              make_model(spec).parameter_count())
        << spec.name;
  }
}

TEST(ModelZoo, ExtendedSpecsValidate) {
  for (const ModelSpec& spec : {bert_base_spec(), distilbert_spec(),
                                gpt2_medium_spec(), vit_large_spec()}) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
    EXPECT_EQ(spec.layer.heads * spec.layer.head_dim, spec.layer.hidden);
  }
  EXPECT_TRUE(gpt2_medium_spec().layer.causal);
  EXPECT_FALSE(vit_large_spec().layer.causal);
}

TEST(ModelZoo, RegistryLookups) {
  ASSERT_TRUE(spec_by_name("gpt2").has_value());
  EXPECT_EQ(spec_by_name("gpt2")->num_layers, 12U);
  // Short aliases resolve to the paper's evaluation models.
  EXPECT_EQ(spec_by_name("bert")->name, "bert-large-uncased");
  EXPECT_EQ(spec_by_name("vit")->name, "vit-base-patch16-224");
  EXPECT_FALSE(spec_by_name("no-such-model").has_value());
  // Every registered name resolves to itself.
  for (const std::string& name : registered_spec_names()) {
    ASSERT_TRUE(spec_by_name(name).has_value()) << name;
    EXPECT_EQ(spec_by_name(name)->name, name);
  }
}

TEST(Model, MiniBertEndToEnd) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(20, model.spec().vocab_size, 1);
  const Tensor logits = model.infer(tokens);
  EXPECT_EQ(logits.rows(), 1U);
  EXPECT_EQ(logits.cols(), 2U);
}

TEST(Model, MiniVitEndToEnd) {
  const TransformerModel model = make_model(mini_vit_spec());
  const Tensor logits = model.infer(random_image(32, 3, 2));
  EXPECT_EQ(logits.cols(), 10U);
}

TEST(Model, MiniGpt2EndToEnd) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto tokens = random_tokens(16, model.spec().vocab_size, 3);
  const Tensor logits = model.infer(tokens);
  EXPECT_EQ(logits.cols(), model.spec().vocab_size);
}

TEST(Model, DeterministicAcrossInstances) {
  const TransformerModel a = make_model(mini_bert_spec(), 5);
  const TransformerModel b = make_model(mini_bert_spec(), 5);
  const auto tokens = random_tokens(12, a.spec().vocab_size, 4);
  EXPECT_EQ(a.infer(tokens), b.infer(tokens));
}

TEST(Model, SeedChangesWeights) {
  const TransformerModel a = make_model(mini_bert_spec(), 5);
  const TransformerModel b = make_model(mini_bert_spec(), 6);
  const auto tokens = random_tokens(12, a.spec().vocab_size, 4);
  EXPECT_GT(max_abs_diff(a.infer(tokens), b.infer(tokens)), 1e-5F);
}

TEST(Model, WrongInputKindThrows) {
  const TransformerModel text = make_model(mini_bert_spec());
  EXPECT_THROW((void)text.preprocess(Image(32, 32, 3)), std::logic_error);
  const TransformerModel vision = make_model(mini_vit_spec());
  const std::vector<TokenId> tokens{1, 2};
  EXPECT_THROW((void)vision.preprocess(tokens), std::logic_error);
}

TEST(Model, ParameterCountPositiveAndSpecDependent) {
  const TransformerModel small = make_model(mini_gpt2_spec());
  EXPECT_GT(small.parameter_count(), 100000U);
}

// --- tokenizer ---------------------------------------------------------------

TEST(Tokenizer, SplitsOnWhitespace) {
  const HashingTokenizer tok(1000);
  const auto ids = tok.encode("hello  world\n  foo");
  EXPECT_EQ(ids.size(), 3U);
  for (const TokenId id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
  }
}

TEST(Tokenizer, DeterministicAndWordSensitive) {
  const HashingTokenizer tok(100000);
  EXPECT_EQ(tok.encode("same words"), tok.encode("same words"));
  EXPECT_NE(tok.encode("alpha")[0], tok.encode("beta")[0]);
}

TEST(Tokenizer, EmptyInput) {
  const HashingTokenizer tok(100);
  EXPECT_TRUE(tok.encode("").empty());
  EXPECT_TRUE(tok.encode("   \t\n").empty());
}

TEST(Workloads, RandomTokensAndImageDeterministic) {
  EXPECT_EQ(random_tokens(50, 1000, 9), random_tokens(50, 1000, 9));
  EXPECT_NE(random_tokens(50, 1000, 9), random_tokens(50, 1000, 10));
  const Image a = random_image(16, 3, 1);
  const Image b = random_image(16, 3, 1);
  EXPECT_EQ(a.pixels, b.pixels);
}

}  // namespace
}  // namespace voltage
