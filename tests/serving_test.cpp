// Tests of the request-serving (queueing) simulator.
#include <gtest/gtest.h>

#include "sim/serving.h"

namespace voltage::sim {
namespace {

ArrivalProcess arrivals(double rate, std::size_t n = 4000,
                        std::uint64_t seed = 1) {
  return ArrivalProcess{.rate_rps = rate, .num_requests = n, .seed = seed};
}

TEST(Serving, LightLoadSojournIsServiceTime) {
  // At negligible utilization nearly every request finds the server idle.
  const ServingReport r = simulate_serving(0.5, arrivals(0.01));
  EXPECT_NEAR(r.p50, 0.5, 1e-6);
  EXPECT_LT(r.p99, 1.5);
  EXPECT_LT(r.offered_load, 0.01);
  EXPECT_TRUE(r.stable);
}

TEST(Serving, SojournNeverBelowServiceTime) {
  const ServingReport r = simulate_serving(0.7, arrivals(1.0));
  EXPECT_GE(r.p50, 0.7);
  EXPECT_GE(r.mean, 0.7);
  EXPECT_GE(r.max, r.p99);
  EXPECT_GE(r.p99, r.p95);
  EXPECT_GE(r.p95, r.p50);
}

TEST(Serving, QueueingDelayGrowsWithLoad) {
  const ServingReport light = simulate_serving(0.5, arrivals(0.4));
  const ServingReport heavy = simulate_serving(0.5, arrivals(1.8));
  EXPECT_GT(heavy.mean, light.mean);
  EXPECT_GT(heavy.p99, light.p99);
  EXPECT_NEAR(light.offered_load, 0.2, 1e-9);
  EXPECT_NEAR(heavy.offered_load, 0.9, 1e-9);
  // Achieved utilization is a busy fraction: below the offered load only
  // by the idle tail after the last arrival, and never above 1.
  EXPECT_LE(light.utilization, 1.0);
  EXPECT_LE(heavy.utilization, 1.0);
  EXPECT_TRUE(heavy.stable);
}

TEST(Serving, OverloadedQueueDiverges) {
  // rho > 1: the backlog grows with the number of requests observed.
  const ServingReport small =
      simulate_serving(1.0, arrivals(1.5, 500, 3));
  const ServingReport large =
      simulate_serving(1.0, arrivals(1.5, 5000, 3));
  EXPECT_GT(large.max, 3.0 * small.max);
  // The old report called rho "utilization", which exceeds 1 under
  // overload while looking like a healthy busy fraction. Now the busy
  // fraction saturates at 1, the offered load is explicit, and the
  // stable flag says the percentiles above are not steady-state numbers.
  EXPECT_GT(large.offered_load, 1.0);
  EXPECT_FALSE(large.stable);
  EXPECT_LE(large.utilization, 1.0);
  EXPECT_GT(large.utilization, 0.99);  // saturated server never idles
  // Achieved throughput pins at the service rate, not the offered rate.
  EXPECT_NEAR(large.throughput_rps, 1.0, 0.02);
}

TEST(Serving, FasterServiceImprovesTail) {
  // A strategy that halves latency more than halves the loaded p99 —
  // exactly why Voltage matters in the paper's serving regime.
  const ServingReport slow = simulate_serving(1.0, arrivals(0.8, 4000, 7));
  const ServingReport fast = simulate_serving(0.5, arrivals(0.8, 4000, 7));
  EXPECT_LT(fast.p99, 0.5 * slow.p99);
}

TEST(Serving, DeterministicAcrossRuns) {
  const ServingReport a = simulate_serving(0.5, arrivals(1.0, 1000, 9));
  const ServingReport b = simulate_serving(0.5, arrivals(1.0, 1000, 9));
  EXPECT_EQ(a.p99, b.p99);
  const ServingReport c = simulate_serving(0.5, arrivals(1.0, 1000, 10));
  EXPECT_NE(a.p99, c.p99);  // different arrival draw
}

TEST(PipelineServing, HighThroughputButFullLatencyFloor) {
  // The pipeline admits quickly yet every request pays the deep latency.
  const ServingReport pipe =
      simulate_pipeline_serving(2.6, 0.45, arrivals(1.5));
  EXPECT_GE(pipe.p50, 2.6);
  // A monolithic server with 1.0 s service collapses at the same load...
  const ServingReport mono = simulate_serving(1.0, arrivals(1.5));
  EXPECT_GT(mono.offered_load, 1.0);
  EXPECT_FALSE(mono.stable);
  EXPECT_GT(mono.p99, pipe.p99);
  // ...while at light load the monolithic low-latency server wins the tail.
  const ServingReport pipe_light =
      simulate_pipeline_serving(2.6, 0.45, arrivals(0.2));
  const ServingReport mono_light = simulate_serving(1.0, arrivals(0.2));
  EXPECT_LT(mono_light.p99, pipe_light.p99);
}

TEST(Serving, Validation) {
  EXPECT_THROW((void)simulate_serving(0.0, arrivals(1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_serving(1.0, arrivals(0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_pipeline_serving(1.0, 2.0, arrivals(1.0)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)simulate_serving(
          1.0, ArrivalProcess{.rate_rps = 1.0, .num_requests = 0, .seed = 1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace voltage::sim
