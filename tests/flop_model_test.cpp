// Validation of the paper's complexity analysis (§IV, Theorems 1-3):
//  - the closed-form Γ of every computation order equals the MACs the
//    kernels actually execute (exact integer equality);
//  - the Theorem-2 threshold picks the argmin over all ten orders;
//  - Theorem 1's non-scaling 2NFF_H term and Theorem 3's O(1/K) behaviour.
#include <tuple>

#include <gtest/gtest.h>

#include "parallel/profile.h"
#include "partition/flop_model.h"
#include "partition/order.h"
#include "partition/partitioned_attention.h"
#include "partition/partitioned_layer.h"
#include "tensor/flops.h"
#include "tensor/rng.h"
#include "transformer/layer.h"
#include "transformer/weights.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

// --- closed forms -----------------------------------------------------------

TEST(FlopModel, QkOrderFormulas) {
  // Spot-check Eqs. (10)-(14) at N=10, P=2, F=8, F_H=4.
  const AttentionDims d{.n = 10, .p = 2, .f = 8, .fh = 4};
  EXPECT_EQ(qk_cost(QkOrder::kLeftToRight, d), 2U * 2 * 8 * 4 + 2U * 8 * 10);
  EXPECT_EQ(qk_cost(QkOrder::kProjectBoth, d),
            2U * 8 * 4 + 10U * 8 * 4 + 2U * 10 * 4);
  EXPECT_EQ(qk_cost(QkOrder::kFuseWeightsLeft, d), 2U * 8 * 8 + 2U * 8 * 10);
  EXPECT_EQ(qk_cost(QkOrder::kFuseWeightsRight, d),
            10U * 8 * 8 + 2U * 8 * 10);
  EXPECT_EQ(qk_cost(QkOrder::kInnermostFirst, d),
            2U * 10 * 8 * 4 + 2U * 8 * 10);
}

TEST(FlopModel, SvOrderFormulas) {
  const AttentionDims d{.n = 10, .p = 2, .f = 8, .fh = 4};
  EXPECT_EQ(sv_cost(SvOrder::kProjectV, d), 2U * 10 * 4 + 10U * 8 * 4);
  EXPECT_EQ(sv_cost(SvOrder::kAggregateFirst, d), 2U * 10 * 8 + 2U * 8 * 4);
}

TEST(FlopModel, NamedCompositesMatchTheorems) {
  const AttentionDims d{.n = 100, .p = 25, .f = 64, .fh = 16};
  // Theorem 1: Γ(Eq.3) = PFF_H + 2NFF_H + 2PNF_H.
  EXPECT_EQ(gamma_eq3(d), 25U * 64 * 16 + 2U * 100 * 64 * 16 +
                              2U * 25 * 100 * 16);
  // Theorem 3: Γ(Eq.8) = 3PFF_H + 2PNF.
  EXPECT_EQ(gamma_eq8(d), 3U * 25 * 64 * 16 + 2U * 25 * 100 * 64);
}

TEST(FlopModel, InvalidDimsThrow) {
  EXPECT_THROW((void)gamma_eq3({.n = 4, .p = 5, .f = 8, .fh = 4}),
               std::invalid_argument);
  EXPECT_THROW((void)gamma_eq3({.n = 0, .p = 0, .f = 8, .fh = 4}),
               std::invalid_argument);
}

// --- executed MACs == closed form (exact) ------------------------------------

class ExecutedMacs
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ExecutedMacs, PartitionedHeadMatchesGamma) {
  const auto [n, p] = GetParam();
  Rng rng(41);
  const LayerConfig cfg{.hidden = 32,
                        .heads = 4,
                        .head_dim = 8,
                        .ffn_dim = 64,
                        .activation = Activation::kGelu};
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const AttentionDims dims{.n = n, .p = p, .f = cfg.hidden,
                           .fh = cfg.head_dim};
  const Range range{0, p};

  {
    const flops::Scope scope;
    (void)attention_head_partition(x, range, w.attention.heads[0],
                                   cfg.head_dim, false,
                                   AttentionOrder::kNaive);
    EXPECT_EQ(scope.macs(), gamma_eq3(dims));
  }
  {
    const flops::Scope scope;
    (void)attention_head_partition(x, range, w.attention.heads[0],
                                   cfg.head_dim, false,
                                   AttentionOrder::kReordered);
    EXPECT_EQ(scope.macs(), gamma_eq8(dims));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutedMacs,
                         ::testing::Values(std::tuple{16, 16},
                                           std::tuple{16, 8},
                                           std::tuple{24, 3},
                                           std::tuple{50, 10},
                                           std::tuple{50, 1}));

TEST(ExecutedMacsLayer, PartitionedLayerMatchesGamma) {
  Rng rng(42);
  const LayerConfig cfg{.hidden = 32,
                        .heads = 4,
                        .head_dim = 8,
                        .ffn_dim = 64,
                        .activation = Activation::kGelu};
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 30;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  for (const std::size_t p : {30U, 10U, 5U, 1U}) {
    for (const auto policy :
         {OrderPolicy::kAlwaysNaive, OrderPolicy::kAlwaysReordered}) {
      const AttentionOrder order = select_order(
          policy, {.n = n, .p = p, .f = cfg.hidden, .fh = cfg.head_dim});
      const flops::Scope scope;
      (void)partitioned_layer_forward(layer, x, Range{0, p}, policy);
      EXPECT_EQ(scope.macs(), gamma_partitioned_layer(cfg, n, p, order))
          << "p=" << p << " order=" << to_string(order);
    }
  }
}

TEST(ExecutedElementwise, ProfileMirrorsKernels) {
  // LayerWork.elementwise must equal the kernel-reported elementwise ops,
  // term for term.
  Rng rng(43);
  const LayerConfig cfg{.hidden = 32,
                        .heads = 4,
                        .head_dim = 8,
                        .ffn_dim = 64,
                        .activation = Activation::kGelu};
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 24;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  for (const std::size_t p : {24U, 8U, 3U}) {
    for (const auto policy :
         {OrderPolicy::kAdaptive, OrderPolicy::kAlwaysNaive}) {
      const LayerWork predicted =
          voltage_layer_work(cfg, n, Range{0, p}, policy);
      const flops::Scope scope;
      (void)partitioned_layer_forward(layer, x, Range{0, p}, policy);
      EXPECT_EQ(scope.elementwise(), predicted.elementwise) << "p=" << p;
      EXPECT_EQ(scope.macs(), predicted.macs) << "p=" << p;
    }
  }
}

// --- Theorem 2: the selector is optimal ---------------------------------------

class Theorem2 : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(Theorem2, SelectorMatchesExhaustiveOracle) {
  const auto [n, h, fh] = GetParam();
  const std::size_t f = h * fh;
  for (std::size_t p = 1; p <= n; p += (n > 64 ? 7 : 1)) {
    const AttentionDims d{.n = n, .p = p, .f = f, .fh = fh};
    const OrderChoice oracle = cheapest_order_exhaustive(d);
    const std::uint64_t chosen = theorem2_prefers_reordered(d)
                                     ? gamma_eq8(d)
                                     : gamma_eq3(d);
    // Ties are fine; the selected composite must cost exactly the optimum.
    EXPECT_EQ(chosen, oracle.cost)
        << "N=" << n << " P=" << p << " F=" << f << " F_H=" << fh;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSettings, Theorem2,
    ::testing::Values(std::tuple{100, 16, 64},   // Fig. 6a geometry
                      std::tuple{200, 8, 128},   // Fig. 6b
                      std::tuple{300, 4, 256},   // Fig. 6c
                      std::tuple{197, 12, 64},   // ViT
                      std::tuple{200, 16, 64},   // BERT-Large
                      std::tuple{31, 2, 4},      // tiny odd shapes
                      std::tuple{64, 4, 16}));

TEST(Theorem2Condition, SingleDevicePrefersNaive) {
  // P = N (single device): the original order is already optimal.
  const AttentionDims d{.n = 128, .p = 128, .f = 768, .fh = 64};
  EXPECT_FALSE(theorem2_prefers_reordered(d));
  EXPECT_EQ(select_order(OrderPolicy::kAdaptive, d), AttentionOrder::kNaive);
}

TEST(Theorem2Condition, SmallPartitionPrefersReordered) {
  // K = N/P large: reordering wins.
  const AttentionDims d{.n = 300, .p = 10, .f = 1024, .fh = 64};
  EXPECT_TRUE(theorem2_prefers_reordered(d));
  EXPECT_LT(gamma_eq8(d), gamma_eq3(d));
}

TEST(Theorem2Condition, ThresholdIsExact) {
  // Paper threshold: K > (F - F_H)/(F F_H) * N + 1 with P = N/K.
  // F=64, F_H=16, H=4: (F-F_H)/(F*F_H) = 48/1024 = 3/64.
  // N=64: threshold K > 4. At K=4 (P=16): equality -> NOT reordered.
  const AttentionDims at_threshold{.n = 64, .p = 16, .f = 64, .fh = 16};
  EXPECT_FALSE(theorem2_prefers_reordered(at_threshold));
  EXPECT_EQ(gamma_eq3(at_threshold), gamma_eq8(at_threshold));
  // One position fewer -> strictly reordered.
  const AttentionDims past{.n = 64, .p = 15, .f = 64, .fh = 16};
  EXPECT_TRUE(theorem2_prefers_reordered(past));
  EXPECT_LT(gamma_eq8(past), gamma_eq3(past));
}

TEST(Theorem2Policies, FixedPoliciesIgnoreDims) {
  const AttentionDims d{.n = 300, .p = 10, .f = 1024, .fh = 64};
  EXPECT_EQ(select_order(OrderPolicy::kAlwaysNaive, d),
            AttentionOrder::kNaive);
  EXPECT_EQ(select_order(OrderPolicy::kAlwaysReordered, d),
            AttentionOrder::kReordered);
}

// --- Theorem 1 and Theorem 3: scaling behaviour -------------------------------

TEST(Theorem1, NaiveHasNonScalingTerm) {
  // As K -> N (P -> 1), Γ(Eq.3) approaches the constant 2NFF_H term.
  const std::size_t n = 256;
  const std::size_t f = 512;
  const std::size_t fh = 64;
  const std::uint64_t constant_term = 2ULL * n * f * fh;
  const std::uint64_t at_p1 = gamma_eq3({.n = n, .p = 1, .f = f, .fh = fh});
  EXPECT_GT(at_p1, constant_term);
  // The non-constant remainder is tiny relative to the constant term.
  EXPECT_LT(at_p1 - constant_term, constant_term / 50);
}

TEST(Theorem3, AdaptiveCostScalesLinearlyInK) {
  // Γ(Algorithm 1 with adaptive order) at P = N/K must drop by ~K.
  const LayerConfig cfg{.hidden = 512,
                        .heads = 8,
                        .head_dim = 64,
                        .ffn_dim = 2048,
                        .activation = Activation::kGelu};
  const std::size_t n = 240;
  const std::uint64_t full =
      gamma_full_layer(cfg, n);
  for (const std::size_t k : {2U, 4U, 8U, 16U}) {
    const std::size_t p = n / k;
    const AttentionOrder order = select_order(
        OrderPolicy::kAdaptive, {.n = n, .p = p, .f = cfg.hidden,
                                 .fh = cfg.head_dim});
    const std::uint64_t part = gamma_partitioned_layer(cfg, n, p, order);
    const double speedup = static_cast<double>(full) /
                           static_cast<double>(part);
    EXPECT_GT(speedup, 0.6 * static_cast<double>(k)) << "k=" << k;
    // Strictly better than the naive order's plateau at large K.
    const std::uint64_t naive =
        gamma_partitioned_layer(cfg, n, p, AttentionOrder::kNaive);
    EXPECT_LE(part, naive);
  }
}

TEST(Theorem3, NaiveSpeedupPlateaus) {
  // The naive order's speed-up must saturate as K grows (Fig. 6 claim).
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 4,
                        .head_dim = 256,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  const std::size_t n = 300;
  const AttentionDims base{.n = n, .p = n, .f = cfg.hidden,
                           .fh = cfg.head_dim};
  const std::uint64_t full = gamma_eq3(base) * cfg.heads;
  const auto speedup_at = [&](std::size_t k) {
    const AttentionDims d{.n = n, .p = n / k, .f = cfg.hidden,
                          .fh = cfg.head_dim};
    return static_cast<double>(full) /
           static_cast<double>(gamma_eq3(d) * cfg.heads);
  };
  // Going from K=10 to K=30 must improve naive by less than 15% (plateau),
  // while the adaptive path keeps scaling.
  EXPECT_LT(speedup_at(30) / speedup_at(10), 1.15);
}

TEST(FlopModel, DeceptiveWeightFusionIsWorseForMultiHead) {
  // §IV-B: precomputing W_Q W_K^T looks free but inflates x_p(W_Q W_K^T) to
  // P x F x F work; for H >= 2 it can never beat left-to-right.
  for (const std::size_t h : {2U, 4U, 8U, 16U}) {
    const std::size_t fh = 32;
    const AttentionDims d{.n = 128, .p = 16, .f = h * fh, .fh = fh};
    EXPECT_GE(qk_cost(QkOrder::kFuseWeightsLeft, d),
              qk_cost(QkOrder::kLeftToRight, d));
    EXPECT_GE(qk_cost(QkOrder::kFuseWeightsRight, d),
              qk_cost(QkOrder::kFuseWeightsLeft, d));
  }
}

TEST(FlopModel, ProjectBothAlwaysBeatsInnermostFirst) {
  // Eq. (11) <= Eq. (14) whenever P < N (the paper's first elimination).
  for (const std::size_t p : {1U, 10U, 50U, 99U}) {
    const AttentionDims d{.n = 100, .p = p, .f = 256, .fh = 32};
    EXPECT_LE(qk_cost(QkOrder::kProjectBoth, d),
              qk_cost(QkOrder::kInnermostFirst, d));
  }
}

// --- strategy work profiles ---------------------------------------------------

TEST(Profile, FullLayerEqualsPartitionAtPN) {
  const LayerConfig cfg{.hidden = 64,
                        .heads = 4,
                        .head_dim = 16,
                        .ffn_dim = 256,
                        .activation = Activation::kGelu};
  const LayerWork full = full_layer_work(cfg, 50);
  const LayerWork part = voltage_layer_work(cfg, 50, Range{0, 50},
                                            OrderPolicy::kAdaptive);
  EXPECT_EQ(full.macs, part.macs);  // adaptive picks naive at P=N
  EXPECT_EQ(full.elementwise, part.elementwise);
}

TEST(Profile, EmptyPartitionIsFree) {
  const LayerConfig cfg{.hidden = 64,
                        .heads = 4,
                        .head_dim = 16,
                        .ffn_dim = 256,
                        .activation = Activation::kGelu};
  const LayerWork work =
      voltage_layer_work(cfg, 50, Range{10, 10}, OrderPolicy::kAdaptive);
  EXPECT_EQ(work.macs, 0U);
  EXPECT_EQ(work.elementwise, 0U);
}

TEST(Profile, TpShardsSumToFullLayerMacs) {
  // The K tensor-parallel shards must jointly perform the same GEMM work as
  // one device (perfect weight partitioning, paper §III observation).
  const LayerConfig cfg{.hidden = 64,
                        .heads = 8,
                        .head_dim = 8,
                        .ffn_dim = 256,
                        .activation = Activation::kGelu};
  const std::size_t n = 40;
  const std::uint64_t full = full_layer_work(cfg, n).macs;
  for (const std::size_t k : {1U, 2U, 4U, 8U}) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t heads = cfg.heads / k + (i < cfg.heads % k ? 1 : 0);
      const std::size_t cols =
          cfg.ffn_dim / k + (i < cfg.ffn_dim % k ? 1 : 0);
      total += tp_layer_work(cfg, n, heads, cols, false).macs;
    }
    EXPECT_EQ(total, full) << "k=" << k;
  }
}

TEST(Profile, HeadAndEmbeddingWork) {
  const ModelSpec bert = mini_bert_spec();
  EXPECT_EQ(head_work(bert).macs, bert.layer.hidden * bert.num_classes);
  EXPECT_EQ(embedding_work(bert, 10).macs, 0U);
  const ModelSpec vit = mini_vit_spec();
  const std::size_t n = vit.vit_sequence_length();
  EXPECT_GT(embedding_work(vit, n).macs, 0U);
}

}  // namespace
}  // namespace voltage
