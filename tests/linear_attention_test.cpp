// Tests of the linear-attention extension (§VII-C): correctness of the
// kernelized attention, perfect distribution of the (S, z) summaries by
// position, and the communication advantage over softmax Voltage.
#include <cmath>

#include <gtest/gtest.h>

#include "collective/cost.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/linear_attention.h"
#include "transformer/weights.h"

namespace voltage {
namespace {

LayerConfig test_config() {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = false};
}

TEST(FeatureMap, StrictlyPositiveAndContinuous) {
  const Tensor x{{-5.0F, -1.0F, 0.0F, 1.0F, 5.0F}};
  const Tensor y = linear_attention_feature_map(x);
  for (const float v : y.flat()) EXPECT_GT(v, 0.0F);
  EXPECT_NEAR(y(0, 2), 1.0F, 1e-6F);  // elu(0)+1
  EXPECT_NEAR(y(0, 3), 2.0F, 1e-6F);  // x+1 for x>0
  EXPECT_NEAR(y(0, 1), std::exp(-1.0F), 1e-6F);
}

TEST(LinearAttention, OutputRowsAreConvexStructured) {
  // Each output row is a positive-weighted average of value rows: with all
  // value projections equal across positions, every output row equals it.
  Rng rng(1);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  Tensor x(6, cfg.hidden);
  const Tensor row = rng.normal_tensor(1, cfg.hidden, 1.0F);
  for (std::size_t r = 0; r < 6; ++r) x.set_rows(r, row);
  const Tensor out = linear_attention_head_full(x, w.attention.heads[0]);
  for (std::size_t r = 1; r < 6; ++r) {
    for (std::size_t c = 0; c < cfg.head_dim; ++c) {
      EXPECT_NEAR(out(r, c), out(0, c), 1e-5F);
    }
  }
}

TEST(LinearAttention, StatesSumToGlobalState) {
  // Σ over any disjoint cover of local states == whole-sequence state.
  Rng rng(2);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(17, cfg.hidden, 1.0F);
  const HeadWeights& head = w.attention.heads[1];

  const LinearAttentionState global =
      linear_attention_local_state(x, Range{0, 17}, head);
  LinearAttentionState sum =
      linear_attention_local_state(x, Range{0, 5}, head);
  sum += linear_attention_local_state(x, Range{5, 11}, head);
  sum += linear_attention_local_state(x, Range{11, 17}, head);
  EXPECT_TRUE(allclose(sum.s, global.s, 1e-4F));
  EXPECT_TRUE(allclose(sum.z, global.z, 1e-4F));
}

TEST(LinearAttention, PartitionMatchesFullRows) {
  Rng rng(3);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(15, cfg.hidden, 1.0F);
  const HeadWeights& head = w.attention.heads[0];
  const LinearAttentionState global =
      linear_attention_local_state(x, Range{0, 15}, head);
  const Tensor full = linear_attention_head_full(x, head);
  for (const Range p : {Range{0, 4}, Range{4, 11}, Range{11, 15}}) {
    const Tensor part =
        linear_attention_head_partition(x, p, head, global);
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 1e-4F));
  }
}

TEST(LinearAttention, DistributedMultiHeadAssemblesToFull) {
  // Emulate the distributed flow: local states per device, merged (the
  // all-reduce), partition outputs assembled — must equal the full result.
  Rng rng(4);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const std::size_t n = 20;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = multi_head_linear_attention(x, w.attention, cfg);

  const std::vector<Range> parts{{0, 7}, {7, 13}, {13, 20}};
  // All-reduce of the per-head states.
  std::vector<LinearAttentionState> merged =
      multi_head_linear_states(x, parts[0], w.attention, cfg);
  for (std::size_t d = 1; d < parts.size(); ++d) {
    const auto local =
        multi_head_linear_states(x, parts[d], w.attention, cfg);
    for (std::size_t h = 0; h < merged.size(); ++h) merged[h] += local[h];
  }
  Tensor assembled(n, cfg.hidden);
  for (const Range& p : parts) {
    assembled.set_rows(p.begin,
                       multi_head_linear_attention_partition(
                           x, p, w.attention, cfg, merged));
  }
  EXPECT_TRUE(allclose(assembled, full, 2e-4F));
}

TEST(LinearAttention, EmptyPartitionAndValidation) {
  Rng rng(5);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  const auto states = multi_head_linear_states(x, Range{0, 8}, w.attention,
                                               cfg);
  const Tensor empty = multi_head_linear_attention_partition(
      x, Range{3, 3}, w.attention, cfg, states);
  EXPECT_EQ(empty.rows(), 0U);
  EXPECT_THROW((void)multi_head_linear_attention_partition(
                   x, Range{0, 4}, w.attention, cfg, {}),
               std::invalid_argument);
  EXPECT_THROW((void)linear_attention_local_state(x, Range{4, 9},
                                                  w.attention.heads[0]),
               std::out_of_range);
}

TEST(LinearAttention, CausalLayersRejected) {
  Rng rng(6);
  LayerConfig cfg = test_config();
  cfg.causal = true;
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  EXPECT_THROW(
      (void)multi_head_linear_states(x, Range{0, 4}, w.attention, cfg),
      std::invalid_argument);
}

TEST(LinearAttention, SyncVolumeBeatsActivationAllGather) {
  // Per layer, per device: softmax Voltage all-gathers (K-1)NF/K elements;
  // linear attention all-reduces H * F_H * (F_H + 1), independent of N.
  const LayerConfig bert{.hidden = 1024,
                         .heads = 16,
                         .head_dim = 64,
                         .ffn_dim = 4096,
                         .activation = Activation::kGelu};
  const std::uint64_t state = linear_attention_sync_elements(bert);
  EXPECT_EQ(state, 16ULL * 64 * 65);
  const std::uint64_t softmax_path =
      voltage_elements_per_device_layer(200, 1024, 6);
  EXPECT_LT(state, softmax_path);  // 66.6k vs 170k elements
}

}  // namespace
}  // namespace voltage
