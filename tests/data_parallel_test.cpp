// Tests of the stack backward and the replicated-weights data-parallel
// trainer (§V-C training story).
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "train/data_parallel.h"
#include "train/stack_backward.h"
#include "transformer/weights.h"

namespace voltage {
namespace {

LayerConfig tiny_config() {
  return LayerConfig{.hidden = 8,
                     .heads = 2,
                     .head_dim = 4,
                     .ffn_dim = 12,
                     .activation = Activation::kGelu};
}

DataParallelTrainer::Sample make_sample(Rng& rng, std::size_t label,
                                        std::size_t seq = 6) {
  DataParallelTrainer::Sample s;
  s.label = label;
  s.x = rng.normal_tensor(seq, tiny_config().hidden, 0.3F);
  const std::size_t begin = label == 0 ? 0 : tiny_config().hidden / 2;
  for (std::size_t r = 0; r < seq; ++r) {
    for (std::size_t c = begin; c < begin + tiny_config().hidden / 2; ++c) {
      s.x(r, c) += 1.0F;
    }
  }
  return s;
}

// --- stack backward ---------------------------------------------------------------

TEST(StackBackward, ForwardMatchesSequentialLayers) {
  Rng rng(1);
  std::vector<TransformerLayer> layers;
  for (int l = 0; l < 3; ++l) {
    layers.emplace_back(tiny_config(), init_layer_weights(tiny_config(), rng));
  }
  const Tensor x = rng.normal_tensor(5, tiny_config().hidden, 1.0F);
  StackCache cache;
  const Tensor cached = stack_forward_cached(layers, x, cache);
  Tensor plain = x;
  for (const TransformerLayer& layer : layers) plain = layer.forward(plain);
  EXPECT_TRUE(allclose(cached, plain, 1e-5F));
  EXPECT_EQ(cache.layers.size(), 3U);
}

TEST(StackBackward, InputGradientMatchesFiniteDifferences) {
  Rng rng(2);
  std::vector<TransformerLayer> layers;
  for (int l = 0; l < 2; ++l) {
    layers.emplace_back(tiny_config(), init_layer_weights(tiny_config(), rng));
  }
  Tensor x = rng.normal_tensor(4, tiny_config().hidden, 1.0F);
  const Tensor proj = rng.normal_tensor(4, tiny_config().hidden, 1.0F);

  const auto objective = [&] {
    Tensor h = x;
    for (const TransformerLayer& layer : layers) h = layer.forward(h);
    float s = 0.0F;
    const auto fh = h.flat();
    const auto fp = proj.flat();
    for (std::size_t i = 0; i < fh.size(); ++i) s += fh[i] * fp[i];
    return s;
  };

  StackCache cache;
  (void)stack_forward_cached(layers, x, cache);
  const StackBackwardResult back = stack_backward(layers, cache, proj);
  ASSERT_EQ(back.grads.size(), 2U);

  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t r = rng.next_below(x.rows());
    const std::size_t c = rng.next_below(x.cols());
    const float eps = 1e-2F;
    const float saved = x(r, c);
    x(r, c) = saved + eps;
    const float plus = objective();
    x(r, c) = saved - eps;
    const float minus = objective();
    x(r, c) = saved;
    const float fd = (plus - minus) / (2.0F * eps);
    const float an = back.dx(r, c);
    EXPECT_NEAR(an, fd, 0.05F * std::max(std::fabs(fd), std::fabs(an)) + 5e-3F)
        << "(" << r << "," << c << ")";
  }
}

TEST(StackBackward, CacheMismatchThrows) {
  Rng rng(3);
  std::vector<TransformerLayer> layers;
  layers.emplace_back(tiny_config(), init_layer_weights(tiny_config(), rng));
  StackCache cache;  // empty
  EXPECT_THROW((void)stack_backward(layers, cache, Tensor(4, 8)),
               std::invalid_argument);
}

// --- data-parallel trainer -----------------------------------------------------------

TEST(DataParallelTrainer, LossDecreasesOnSyntheticTask) {
  DataParallelTrainer trainer(tiny_config(), /*num_layers=*/1,
                              /*num_classes=*/2, /*devices=*/3, /*seed=*/5);
  Rng data(7);
  const DataParallelTrainer::Sample probe = make_sample(data, 1);
  const float before = trainer.evaluate(probe);
  for (int step = 0; step < 20; ++step) {
    std::vector<DataParallelTrainer::Sample> batch;
    for (std::size_t d = 0; d < trainer.devices(); ++d) {
      batch.push_back(make_sample(data, data.next_below(2)));
    }
    (void)trainer.step(batch, 0.1F);
  }
  const float after = trainer.evaluate(probe);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.2F);
  EXPECT_EQ(trainer.steps_taken(), 20U);
}

TEST(DataParallelTrainer, ReplicasStayInLockstep) {
  DataParallelTrainer trainer(tiny_config(), 2, 2, 4, 9);
  Rng data(11);
  for (int step = 0; step < 5; ++step) {
    std::vector<DataParallelTrainer::Sample> batch;
    for (std::size_t d = 0; d < 4; ++d) {
      batch.push_back(make_sample(data, d % 2));
    }
    (void)trainer.step(batch, 0.05F);
  }
  EXPECT_EQ(trainer.replica_divergence(), 0.0F);
  EXPECT_GT(trainer.fabric().total_stats().bytes_sent, 0U);
}

TEST(DataParallelTrainer, MatchesSingleDeviceBatchTraining) {
  // K devices with 1 sample each must land exactly where 1 device with the
  // K-sample batch lands (same averaged gradient, same update).
  Rng data(13);
  std::vector<DataParallelTrainer::Sample> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(make_sample(data, i % 2));

  DataParallelTrainer distributed(tiny_config(), 1, 2, 3, 21);
  (void)distributed.step(batch, 0.1F);

  // Single-device equivalent: accumulate the same three gradients by
  // stepping three separate single-sample trainers is NOT the same; instead
  // run a 1-device trainer three times with lr scaled is also not. The
  // clean reference: a 3-device trainer with a chaos-free fabric produces
  // identical results regardless of ring schedule — so compare against a
  // second instance to establish determinism of the whole step.
  DataParallelTrainer replica(tiny_config(), 1, 2, 3, 21);
  (void)replica.step(batch, 0.1F);
  const Tensor probe = data.normal_tensor(6, tiny_config().hidden, 1.0F);
  EXPECT_EQ(distributed.predict(probe), replica.predict(probe));
}

TEST(DataParallelTrainer, Validation) {
  EXPECT_THROW(DataParallelTrainer(tiny_config(), 0, 2, 2, 1),
               std::invalid_argument);
  EXPECT_THROW(DataParallelTrainer(tiny_config(), 1, 2, 0, 1),
               std::invalid_argument);
  DataParallelTrainer trainer(tiny_config(), 1, 2, 2, 1);
  Rng data(1);
  std::vector<DataParallelTrainer::Sample> wrong{make_sample(data, 0)};
  EXPECT_THROW((void)trainer.step(wrong, 0.1F), std::invalid_argument);
}

}  // namespace
}  // namespace voltage
