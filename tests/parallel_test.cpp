// Tests of the strategy latency models: internal consistency, the paper's
// qualitative results (§VI) as properties of the simulation, and
// heterogeneous-cluster behaviour.
#include <gtest/gtest.h>

#include "parallel/latency_model.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

sim::DeviceSpec paper_device() {
  // Calibration: one weak vCPU (see EXPERIMENTS.md).
  return sim::DeviceSpec{
      .name = "vcpu", .mac_rate = 25e9, .elementwise_rate = 4e9};
}

sim::Cluster paper_cluster(std::size_t k, double mbps = 500.0) {
  return sim::Cluster::homogeneous(k, paper_device(), LinkModel::mbps(mbps));
}

TEST(LatencyModel, PaperSequenceLengths) {
  EXPECT_EQ(paper_sequence_length(bert_large_spec()), 200U);
  EXPECT_EQ(paper_sequence_length(gpt2_spec()), 200U);
  EXPECT_EQ(paper_sequence_length(vit_base_spec()), 197U);
}

TEST(LatencyModel, SingleDeviceBreakdownAddsUp) {
  const ModelSpec spec = bert_large_spec();
  const LatencyReport r =
      simulate_single_device(spec, 200, paper_cluster(1));
  EXPECT_GT(r.total, 0.0);
  EXPECT_NEAR(r.total, r.pre_post + r.max_device_compute + r.comm_and_stall,
              1e-9);
  EXPECT_EQ(r.devices, 1U);
  // BERT-Large on one weak vCPU lands in the paper's ballpark (~2-3 s).
  EXPECT_GT(r.total, 1.5);
  EXPECT_LT(r.total, 4.0);
}

TEST(LatencyModel, VoltageMatchesSingleDeviceAtK1) {
  const ModelSpec spec = gpt2_spec();
  const LatencyReport single =
      simulate_single_device(spec, 200, paper_cluster(1));
  const LatencyReport voltage =
      simulate_voltage(spec, 200, paper_cluster(1), PartitionScheme::even(1),
                       OrderPolicy::kAdaptive);
  // Same compute (adaptive picks the naive order at P=N) and same volume.
  EXPECT_NEAR(voltage.max_device_compute, single.max_device_compute, 1e-9);
  EXPECT_NEAR(voltage.total, single.total, 0.05 * single.total);
}

// Fig. 4 as a property: Voltage latency strictly decreases with K while
// tensor parallelism at 500 Mbps never beats single-device for K >= 3.
class Fig4Shape : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(Fig4Shape, VoltageScalesTpDoesNot) {
  const ModelSpec spec = GetParam();
  const std::size_t n = paper_sequence_length(spec);
  const Seconds single =
      simulate_single_device(spec, n, paper_cluster(1)).total;

  Seconds prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 6; ++k) {
    const Seconds voltage =
        simulate_voltage(spec, n, paper_cluster(k), PartitionScheme::even(k),
                         OrderPolicy::kAdaptive)
            .total;
    EXPECT_LT(voltage, prev) << "Voltage must keep improving, k=" << k;
    prev = voltage;
    if (k >= 2) {
      EXPECT_LT(voltage, single) << "Voltage must beat single, k=" << k;
      const Seconds tp =
          simulate_tensor_parallel(spec, n, paper_cluster(k)).total;
      EXPECT_GT(tp, single) << "TP must lose to single at 500 Mbps, k=" << k;
      EXPECT_GT(tp, voltage) << "TP must lose to Voltage, k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, Fig4Shape,
                         ::testing::Values(bert_large_spec(), vit_base_spec(),
                                           gpt2_spec()),
                         [](const auto& info) { return info.param.name == "gpt2" ? "gpt2" : (info.param.kind == ModelKind::kImageClassifier ? "vit" : "bert"); });

// Fig. 5 as a property: both strategies improve with bandwidth; TP needs
// ~1000 Mbps to break even while Voltage wins far earlier; there is a low
// bandwidth below which even Voltage loses to single-device.
TEST(Fig5Shape, BandwidthCrossovers) {
  const ModelSpec spec = bert_large_spec();
  const std::size_t n = 200;
  const Seconds single =
      simulate_single_device(spec, n, paper_cluster(1)).total;

  Seconds prev_v = std::numeric_limits<double>::infinity();
  Seconds prev_t = std::numeric_limits<double>::infinity();
  for (const double mbps : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
    const auto cluster = paper_cluster(6, mbps);
    const Seconds v = simulate_voltage(spec, n, cluster,
                                       PartitionScheme::even(6),
                                       OrderPolicy::kAdaptive)
                          .total;
    const Seconds t = simulate_tensor_parallel(spec, n, cluster).total;
    EXPECT_LT(v, prev_v);
    EXPECT_LT(t, prev_t);
    EXPECT_LT(v, t) << "Voltage beats TP at every bandwidth (" << mbps << ")";
    prev_v = v;
    prev_t = t;
  }
  // TP at 500-800 loses to single; at 1000 it finally breaks about even
  // (paper: "tensor parallelism requires at least 1000 Mbps").
  EXPECT_GT(simulate_tensor_parallel(spec, n, paper_cluster(6, 500)).total,
            single);
  EXPECT_GT(simulate_tensor_parallel(spec, n, paper_cluster(6, 800)).total,
            single);
  EXPECT_LT(simulate_tensor_parallel(spec, n, paper_cluster(6, 1000)).total,
            single * 1.05);
  // Our C++ fabric has far less per-byte overhead than the paper's Python
  // stack, so Voltage's break-even bandwidth shifts down — but it exists.
  EXPECT_GT(simulate_voltage(spec, n, paper_cluster(6, 20),
                             PartitionScheme::even(6),
                             OrderPolicy::kAdaptive)
                .total,
            single);
}

TEST(LatencyModel, CommVolumeRatioIsFourX) {
  const ModelSpec spec = bert_large_spec();
  const std::size_t n = 200;
  const auto cluster = paper_cluster(4);
  const LatencyReport v = simulate_voltage(
      spec, n, cluster, PartitionScheme::even(4), OrderPolicy::kAdaptive);
  const LatencyReport t = simulate_tensor_parallel(spec, n, cluster);
  // Network-wide traffic ratio approaches 4: TP moves 4(K-1)NF per layer
  // (two all-reduces) against Voltage's (K-1)NF (one all-gather). Headers
  // and the final hand-off blur it slightly.
  const double ratio = static_cast<double>(t.total_bytes_sent) /
                       static_cast<double>(v.total_bytes_sent);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.7);

  // Ring TP moves the same total volume, just scheduled differently.
  const LatencyReport ring =
      simulate_tensor_parallel(spec, n, cluster, AllReduceAlgo::kRing);
  EXPECT_NEAR(static_cast<double>(ring.total_bytes_sent),
              static_cast<double>(t.total_bytes_sent),
              0.02 * static_cast<double>(t.total_bytes_sent));
}

TEST(LatencyModel, AdaptiveNeverWorseThanFixedPolicies) {
  const ModelSpec spec = vit_base_spec();
  const std::size_t n = paper_sequence_length(spec);
  for (std::size_t k = 2; k <= 8; k += 2) {
    const auto cluster = paper_cluster(k);
    const PartitionScheme scheme = PartitionScheme::even(k);
    const Seconds adaptive =
        simulate_voltage(spec, n, cluster, scheme, OrderPolicy::kAdaptive)
            .total;
    const Seconds naive =
        simulate_voltage(spec, n, cluster, scheme, OrderPolicy::kAlwaysNaive)
            .total;
    const Seconds reordered = simulate_voltage(spec, n, cluster, scheme,
                                               OrderPolicy::kAlwaysReordered)
                                  .total;
    EXPECT_LE(adaptive, naive * 1.0001) << "k=" << k;
    EXPECT_LE(adaptive, reordered * 1.0001) << "k=" << k;
  }
}

TEST(LatencyModel, HeterogeneousClusterPrefersProportionalScheme) {
  // One device 3x faster: weighting its partition by speed must beat the
  // even split (the straggler governs the all-gather).
  const ModelSpec spec = gpt2_spec();
  sim::Cluster cluster = paper_cluster(3);
  cluster.workers[0].mac_rate *= 3.0;
  cluster.workers[0].elementwise_rate *= 3.0;
  const Seconds even = simulate_voltage(spec, 200, cluster,
                                        PartitionScheme::even(3),
                                        OrderPolicy::kAdaptive)
                           .total;
  const Seconds weighted =
      simulate_voltage(spec, 200, cluster,
                       PartitionScheme::proportional({3.0, 1.0, 1.0}),
                       OrderPolicy::kAdaptive)
          .total;
  EXPECT_LT(weighted, even);
}

TEST(LatencyModel, ValidatesArguments) {
  const ModelSpec spec = gpt2_spec();
  EXPECT_THROW((void)simulate_voltage(spec, 200, paper_cluster(3),
                                      PartitionScheme::even(4),
                                      OrderPolicy::kAdaptive),
               std::invalid_argument);
  // TP cannot use more devices than heads.
  EXPECT_THROW(
      (void)simulate_tensor_parallel(spec, 200, paper_cluster(13)),
      std::invalid_argument);
}

TEST(LatencyModel, LayerTracesDecomposeTheTotal) {
  const ModelSpec spec = bert_large_spec();
  const auto cluster = paper_cluster(4);
  for (const bool tensor_parallel : {false, true}) {
    const LatencyReport r =
        tensor_parallel
            ? simulate_tensor_parallel(spec, 200, cluster)
            : simulate_voltage(spec, 200, cluster, PartitionScheme::even(4),
                               OrderPolicy::kAdaptive);
    ASSERT_EQ(r.layer_traces.size(), spec.num_layers);
    Seconds sum = 0.0;
    for (const LayerTrace& t : r.layer_traces) {
      EXPECT_GT(t.compute, 0.0);
      EXPECT_GE(t.sync, 0.0);
      sum += t.compute + t.sync;
    }
    // Layers plus pre/post-processing and the initial broadcast make up
    // the whole critical path (the broadcast is the only missing piece).
    EXPECT_LE(sum, r.total - r.pre_post + 1e-9);
    EXPECT_GT(sum, 0.85 * (r.total - r.pre_post));
    // Identical layers -> identical traces.
    EXPECT_NEAR(r.layer_traces[1].compute, r.layer_traces[2].compute, 1e-12);
  }
}

TEST(LatencyModel, FasterLinkNeverHurts) {
  const ModelSpec spec = bert_large_spec();
  for (const std::size_t k : {2U, 4U, 6U}) {
    const Seconds slow = simulate_voltage(spec, 200, paper_cluster(k, 300),
                                          PartitionScheme::even(k),
                                          OrderPolicy::kAdaptive)
                             .total;
    const Seconds fast = simulate_voltage(spec, 200, paper_cluster(k, 900),
                                          PartitionScheme::even(k),
                                          OrderPolicy::kAdaptive)
                             .total;
    EXPECT_LT(fast, slow);
  }
}

}  // namespace
}  // namespace voltage
