// Tests of the message fabric and the real collectives, including the
// paper's §V-C communication-volume formulas measured on actual traffic.
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "collective/cost.h"
#include "net/fabric.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"

namespace voltage {
namespace {

std::vector<DeviceId> group_of(std::size_t k) {
  std::vector<DeviceId> g(k);
  std::iota(g.begin(), g.end(), DeviceId{0});
  return g;
}

// --- fabric -------------------------------------------------------------------

TEST(Fabric, DeliversTaggedMessages) {
  Fabric fabric(2);
  fabric.send(Message{.source = 0, .destination = 1, .tag = 7,
                      .payload = std::vector<std::byte>(3)});
  const Message m = fabric.recv(1, 0, 7);
  EXPECT_EQ(m.payload.size(), 3U);
}

TEST(Fabric, RecvMatchesSourceAndTag) {
  Fabric fabric(3);
  fabric.send(Message{.source = 2, .destination = 0, .tag = 1,
                      .payload = std::vector<std::byte>(1)});
  fabric.send(Message{.source = 1, .destination = 0, .tag = 1,
                      .payload = std::vector<std::byte>(2)});
  fabric.send(Message{.source = 1, .destination = 0, .tag = 2,
                      .payload = std::vector<std::byte>(3)});
  // Out-of-order matching: ask for (1, tag 2) first.
  EXPECT_EQ(fabric.recv(0, 1, 2).payload.size(), 3U);
  EXPECT_EQ(fabric.recv(0, 1, 1).payload.size(), 2U);
  EXPECT_EQ(fabric.recv(0, 2, 1).payload.size(), 1U);
}

TEST(Fabric, RecvBlocksUntilArrival) {
  Fabric fabric(2);
  std::thread sender([&] {
    fabric.send(Message{.source = 0, .destination = 1, .tag = 5,
                        .payload = std::vector<std::byte>(10)});
  });
  const Message m = fabric.recv(1, 0, 5);
  sender.join();
  EXPECT_EQ(m.payload.size(), 10U);
}

TEST(Fabric, RejectsSelfSendAndBadIds) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.send(Message{.source = 0, .destination = 0, .tag = 0, .payload = {}}),
               std::invalid_argument);
  EXPECT_THROW(fabric.send(Message{.source = 0, .destination = 5, .tag = 0, .payload = {}}),
               std::out_of_range);
  EXPECT_THROW(Fabric(0), std::invalid_argument);
}

TEST(Fabric, CountsTraffic) {
  Fabric fabric(2);
  fabric.send(Message{.source = 0, .destination = 1, .tag = 1,
                      .payload = std::vector<std::byte>(100)});
  (void)fabric.recv(1, 0, 1);
  // Each message is charged its payload plus the per-message wire frame
  // (net/message.h), so in-memory and socket transports count identically.
  EXPECT_EQ(fabric.stats(0).bytes_sent, 100U + kWireFrameBytes);
  EXPECT_EQ(fabric.stats(0).messages_sent, 1U);
  EXPECT_EQ(fabric.stats(1).bytes_received, 100U + kWireFrameBytes);
  EXPECT_EQ(fabric.total_stats().bytes_sent, 100U + kWireFrameBytes);
  fabric.reset_stats();
  EXPECT_EQ(fabric.total_stats().bytes_sent, 0U);
}

// --- collectives (threaded, real) ---------------------------------------------

TEST(Collectives, AllGatherSharesEveryRanksTensor) {
  constexpr std::size_t kRanks = 4;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  std::vector<std::vector<Tensor>> results(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      const Tensor local = Tensor::filled(2, 3, static_cast<float>(i + 1));
      results[i] = all_gather(fabric, group, i, local, /*tag=*/10);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kRanks; ++i) {
    ASSERT_EQ(results[i].size(), kRanks);
    for (std::size_t j = 0; j < kRanks; ++j) {
      EXPECT_EQ(results[i][j],
                Tensor::filled(2, 3, static_cast<float>(j + 1)));
    }
  }
}

TEST(Collectives, BroadcastFromRoot) {
  constexpr std::size_t kRanks = 3;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  Rng rng(1);
  const Tensor payload = rng.normal_tensor(4, 4, 1.0F);
  std::vector<Tensor> received(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      Tensor data = i == 1 ? payload : Tensor();
      broadcast(fabric, group, i, /*root_index=*/1, data, /*tag=*/20);
      received[i] = data;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kRanks; ++i) EXPECT_EQ(received[i], payload);
}

class RingAllReduce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingAllReduce, SumsAcrossRanks) {
  const std::size_t k = GetParam();
  Fabric fabric(k);
  const auto group = group_of(k);
  Rng rng(2);
  std::vector<Tensor> inputs;
  Tensor expected(6, 5);
  for (std::size_t i = 0; i < k; ++i) {
    inputs.push_back(rng.normal_tensor(6, 5, 1.0F));
    add_inplace(expected, inputs.back());
  }
  std::vector<Tensor> results(k);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      results[i] = ring_all_reduce_sum(fabric, group, i, inputs[i], 100);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(allclose(results[i], expected, 1e-4F)) << "rank " << i;
  }
}

// k=7 > rows=6 exercises empty ring chunks; k=1 is the degenerate no-op.
INSTANTIATE_TEST_SUITE_P(Ks, RingAllReduce,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 6, 7));

TEST(Collectives, NaiveAllReduceMatchesRing) {
  constexpr std::size_t kRanks = 3;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  Rng rng(3);
  std::vector<Tensor> inputs;
  Tensor expected(4, 4);
  for (std::size_t i = 0; i < kRanks; ++i) {
    inputs.push_back(rng.normal_tensor(4, 4, 1.0F));
    add_inplace(expected, inputs.back());
  }
  std::vector<Tensor> results(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      results[i] = naive_all_reduce_sum(fabric, group, i, inputs[i], 200);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_TRUE(allclose(results[i], expected, 1e-4F));
  }
}

TEST(Collectives, AssembleRows) {
  const std::vector<Tensor> parts{Tensor::filled(2, 3, 1.0F),
                                  Tensor::filled(1, 3, 2.0F)};
  const std::vector<Range> ranges{{0, 2}, {2, 3}};
  const Tensor full = assemble_rows(parts, ranges, 3, 3);
  EXPECT_EQ(full(0, 0), 1.0F);
  EXPECT_EQ(full(2, 2), 2.0F);
  EXPECT_THROW((void)assemble_rows(parts, {{0, 1}, {2, 3}}, 3, 3),
               std::invalid_argument);
}

TEST(Collectives, GroupValidation) {
  Fabric fabric(2);
  EXPECT_THROW((void)all_gather(fabric, {}, 0, Tensor(1, 1), 1),
               std::invalid_argument);
  EXPECT_THROW((void)all_gather(fabric, {0, 1}, 2, Tensor(1, 1), 1),
               std::invalid_argument);
}

// --- zero-copy all_gather_into --------------------------------------------------

std::vector<Range> even_ranges(std::size_t n, std::size_t k) {
  std::vector<Range> ranges(k);
  for (std::size_t i = 0; i < k; ++i) {
    ranges[i] = Range{.begin = n * i / k, .end = n * (i + 1) / k};
  }
  return ranges;
}

// Awkward shapes: K=1 degenerate, non-tile-divisible N, and K > N (empty
// ranges). Every rank's destination buffer must come back identical to the
// seed all_gather + assemble_rows result.
class AllGatherIntoShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(AllGatherIntoShapes, MatchesSeedGatherPlusAssemble) {
  const auto [k, n] = GetParam();
  constexpr std::size_t kF = 3;
  const auto ranges = even_ranges(n, k);
  Fabric fabric(k);
  const auto group = group_of(k);
  std::vector<Tensor> results(k);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      const auto local = std::make_shared<const Tensor>(
          Tensor::filled(ranges[i].size(), kF, static_cast<float>(i + 1)));
      Tensor dst = Tensor::filled(n, kF, -7.0F);  // sentinel: must be erased
      all_gather_into(fabric, group, i, local, ranges, dst, /*tag=*/30);
      results[i] = std::move(dst);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Tensor> parts;
  parts.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    parts.push_back(
        Tensor::filled(ranges[i].size(), kF, static_cast<float>(i + 1)));
  }
  const Tensor expected = assemble_rows(parts, ranges, n, kF);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(results[i], expected) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllGatherIntoShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 6},   // K = 1
                      std::pair<std::size_t, std::size_t>{3, 7},   // 7 % 3 != 0
                      std::pair<std::size_t, std::size_t>{5, 3},   // K > N
                      std::pair<std::size_t, std::size_t>{4, 64}));

TEST(Collectives, SingleRankGatherSendsNothing) {
  // Satellite fix: alone in the group, neither path may serialize or send.
  Fabric fabric(1);
  const Tensor local = Tensor::filled(4, 2, 3.0F);
  const auto parts = all_gather(fabric, {0}, 0, local, 1);
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], local);

  Tensor dst(4, 2);
  all_gather_into(fabric, {0}, 0, std::make_shared<const Tensor>(local),
                  {Range{0, 4}}, dst, 2);
  EXPECT_EQ(dst, local);

  EXPECT_EQ(fabric.total_stats().messages_sent, 0U);
  EXPECT_EQ(fabric.total_stats().bytes_sent, 0U);
}

TEST(Collectives, AllGatherIntoSplitPhaseOverlapsWork) {
  // The split API: construction posts the sends, arbitrary compute runs,
  // wait() completes the gather.
  constexpr std::size_t kRanks = 3;
  constexpr std::size_t kN = 9;
  constexpr std::size_t kF = 4;
  const auto ranges = even_ranges(kN, kRanks);
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  std::vector<Tensor> results(kRanks);
  std::vector<float> overlapped(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      const auto local = std::make_shared<const Tensor>(
          Tensor::filled(ranges[i].size(), kF, static_cast<float>(i + 1)));
      Tensor dst(kN, kF);
      AllGatherInto gather(fabric, group, i, local, ranges, dst, 40);
      // "Compute" that depends only on the rank's own rows, like the
      // runtime's attention prologue.
      overlapped[i] = (*local)(0, 0) * 2.0F;
      gather.wait();
      gather.wait();  // idempotent
      results[i] = std::move(dst);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_EQ(overlapped[i], static_cast<float>(i + 1) * 2.0F);
    for (std::size_t j = 0; j < kRanks; ++j) {
      EXPECT_EQ(results[i](ranges[j].begin, 0), static_cast<float>(j + 1));
    }
  }
}

TEST(Collectives, AllGatherIntoValidatesShapes) {
  Fabric fabric(2);
  const std::vector<DeviceId> group{0, 1};
  const std::vector<Range> ranges{{0, 2}, {2, 4}};
  Tensor dst(4, 3);
  // ranges/group size mismatch.
  EXPECT_THROW(all_gather_into(fabric, group, 0,
                               std::make_shared<const Tensor>(2, 3),
                               {Range{0, 4}}, dst, 1),
               std::invalid_argument);
  // Local partition rows disagree with the owned range.
  EXPECT_THROW(all_gather_into(fabric, group, 0,
                               std::make_shared<const Tensor>(1, 3), ranges,
                               dst, 1),
               std::invalid_argument);
  // Column mismatch with the destination.
  EXPECT_THROW(all_gather_into(fabric, group, 0,
                               std::make_shared<const Tensor>(2, 5), ranges,
                               dst, 1),
               std::invalid_argument);
  // Owned range exceeds the destination.
  Tensor small(3, 3);
  EXPECT_THROW(all_gather_into(fabric, group, 1,
                               std::make_shared<const Tensor>(2, 3), ranges,
                               small, 1),
               std::invalid_argument);
  // Null local.
  EXPECT_THROW(all_gather_into(fabric, group, 0, nullptr, ranges, dst, 1),
               std::invalid_argument);
}

// --- measured traffic vs paper formulas ----------------------------------------

TEST(CommVolume, AllGatherMatchesPaperFormula) {
  // Voltage sends (K-1) * (N/K) * F elements per device per layer.
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kN = 64;
  constexpr std::size_t kF = 16;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      const Tensor part(kN / kRanks, kF);
      (void)all_gather(fabric, group, i, part, 1);
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t elements =
      voltage_elements_per_device_layer(kN, kF, kRanks);
  const std::uint64_t expected_bytes =
      elements * sizeof(float) +
      (kRanks - 1) * (kTensorWireHeaderBytes + kWireFrameBytes);
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_EQ(fabric.stats(i).bytes_sent, expected_bytes);
    EXPECT_EQ(fabric.stats(i).messages_sent, kRanks - 1);
  }
}

TEST(CommVolume, ZeroCopyAllGatherIntoMatchesPaperFormula) {
  // The zero-copy rewrite must put exactly the same bytes on the wire as the
  // seed path: (K-1) * (N/K) * F elements per device per layer, plus one
  // 16-byte header per peer message.
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kN = 64;
  constexpr std::size_t kF = 16;
  const auto ranges = even_ranges(kN, kRanks);
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      Tensor dst(kN, kF);
      all_gather_into(fabric, group, i,
                      std::make_shared<const Tensor>(ranges[i].size(), kF),
                      ranges, dst, 1);
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t elements =
      voltage_elements_per_device_layer(kN, kF, kRanks);
  const std::uint64_t expected_bytes =
      elements * sizeof(float) +
      (kRanks - 1) * (kTensorWireHeaderBytes + kWireFrameBytes);
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_EQ(fabric.stats(i).bytes_sent, expected_bytes);
    EXPECT_EQ(fabric.stats(i).messages_sent, kRanks - 1);
  }
  EXPECT_EQ(fabric.total_stats().bytes_sent, kRanks * expected_bytes);
}

TEST(CommVolume, RingAllReducePairMatchesTpFormula) {
  // Two ring all-reduces of the N x F activation move
  // 4 * (K-1) * N * F / K elements per device — the paper's TP volume.
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kN = 64;
  constexpr std::size_t kF = 16;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      Tensor act(kN, kF);
      act = ring_all_reduce_sum(fabric, group, i, std::move(act), 1);
      (void)ring_all_reduce_sum(fabric, group, i, std::move(act), 500);
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t elements = tp_elements_per_device_layer(kN, kF, kRanks);
  const std::uint64_t expected_bytes =
      elements * sizeof(float) +
      4 * (kRanks - 1) * (kTensorWireHeaderBytes + kWireFrameBytes);
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_EQ(fabric.stats(i).bytes_sent, expected_bytes);
  }
}

TEST(CommVolume, VoltageIsFourTimesCheaperThanTp) {
  // The headline §V-C ratio, straight from the formulas.
  for (const std::size_t k : {2U, 3U, 4U, 6U}) {
    const std::uint64_t voltage = voltage_elements_per_device_layer(240, 1024, k);
    const std::uint64_t tp = tp_elements_per_device_layer(240, 1024, k);
    EXPECT_EQ(tp, 4 * voltage) << "k=" << k;
  }
  EXPECT_EQ(voltage_elements_per_device_layer(240, 1024, 1), 0U);
}

// --- analytic durations ---------------------------------------------------------

TEST(CollectiveCost, DegenerateSingleRankIsFree) {
  const LinkModel link = LinkModel::mbps(500);
  EXPECT_EQ(allgather_fullmesh_duration(1000, 1, link), 0.0);
  EXPECT_EQ(ring_allreduce_duration(1000, 1, link), 0.0);
  EXPECT_EQ(broadcast_duration(1000, 1, link), 0.0);
}

TEST(CollectiveCost, ScalesWithBandwidth) {
  const LinkModel fast = LinkModel::mbps(1000, 0.0);
  const LinkModel slow = LinkModel::mbps(250, 0.0);
  EXPECT_NEAR(allgather_fullmesh_duration(1 << 20, 4, slow),
              4.0 * allgather_fullmesh_duration(1 << 20, 4, fast), 1e-9);
}

TEST(CollectiveCost, RingPaysPerStepLatency) {
  // With zero payload, ring all-reduce still costs 2*(K-1) message setups —
  // the latency fragility that sinks tensor parallelism at the edge.
  const LinkModel link = LinkModel::mbps(500, 0.005);
  EXPECT_NEAR(ring_allreduce_duration(0, 6, link), 2 * 5 * 0.005, 1e-12);
  EXPECT_NEAR(allgather_fullmesh_duration(0, 6, link), 0.005, 1e-12);
}

TEST(LinkModel, TransferTimeComposition) {
  const LinkModel link = LinkModel::mbps(100, 0.001);
  // 100 Mbps = 12.5 MB/s; 1.25 MB takes 0.1 s + 1 ms latency.
  EXPECT_NEAR(link.transfer_time(1'250'000), 0.101, 1e-9);
  EXPECT_THROW((void)LinkModel::mbps(0), std::invalid_argument);
}

}  // namespace
}  // namespace voltage
