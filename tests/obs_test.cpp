// Tests of the observability subsystem: tracer thread-safety and ordering,
// Chrome trace-event export structure and round-tripping, metrics
// counters/histograms, and the instrumentation threaded through the real
// distributed runtime (span counts and byte accounting against the
// transport's ground-truth traffic statistics).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

// --- tracer core --------------------------------------------------------

TEST(Tracer, ConcurrentSpansFromManyThreadsFormAValidTrace) {
  obs::Tracer tracer;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::size_t s = 0; s < kSpansPerThread; ++s) {
        obs::TraceSpan span(&tracer, "work", "compute",
                            static_cast<obs::TrackId>(t));
        span.device(static_cast<std::int64_t>(t))
            .layer(static_cast<std::int64_t>(s));
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), kThreads * kSpansPerThread);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].duration_us, 0) << i;
    if (i > 0) {
      // events() returns a single merged timeline sorted by start.
      EXPECT_GE(events[i].start_us, events[i - 1].start_us) << i;
    }
  }
  // Per-thread span streams must each be strictly ordered and complete.
  std::vector<std::size_t> per_track(kThreads, 0);
  for (const obs::TraceEvent& e : events) {
    ASSERT_LT(e.track, kThreads);
    per_track[e.track] += 1;
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_track[t], kSpansPerThread) << t;
  }
}

TEST(Tracer, NullTracerSpanIsInertAndCheap) {
  obs::TraceSpan span(nullptr, "never", "compute", 0);
  EXPECT_FALSE(span.enabled());
  // Setters must be safe no-ops (no tag allocation, no recording).
  span.device(1).layer(2).bytes(3).tag("unused");
  span.finish();  // idempotent on a disabled span
}

TEST(Tracer, ClearDropsEventsButKeepsAccepting) {
  obs::Tracer tracer;
  { obs::TraceSpan span(&tracer, "a", "compute", 0); }
  EXPECT_EQ(tracer.size(), 1U);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0U);
  { obs::TraceSpan span(&tracer, "b", "compute", 0); }
  EXPECT_EQ(tracer.size(), 1U);
  EXPECT_STREQ(tracer.events()[0].name, "b");
}

TEST(Tracer, AmbientThreadTracerNestsAndRestores) {
  obs::Tracer tracer;
  EXPECT_EQ(obs::thread_tracer(), nullptr);
  {
    const obs::ThreadTracerScope outer(&tracer);
    EXPECT_EQ(obs::thread_tracer(), &tracer);
    {
      const obs::ThreadTracerScope inner(nullptr);
      EXPECT_EQ(obs::thread_tracer(), nullptr);
    }
    EXPECT_EQ(obs::thread_tracer(), &tracer);
    const obs::ThreadLayerScope layer(7);
    EXPECT_EQ(obs::thread_layer(), 7);
  }
  EXPECT_EQ(obs::thread_tracer(), nullptr);
  EXPECT_EQ(obs::thread_layer(), -1);
}

// --- chrome trace export ------------------------------------------------

TEST(ChromeTrace, ExportedJsonParsesAndRoundTrips) {
  obs::Tracer tracer;
  tracer.set_track_name(0, "device 0");
  {
    obs::TraceSpan span(&tracer, "layer", "compute", 0);
    span.device(0).layer(4).tag("reordered(Eq.8)");
  }
  {
    obs::TraceSpan span(&tracer, "all_gather", "comm", 0);
    span.device(0).layer(4).bytes(12345);
  }

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string text = out.str();

  // Parses as plain JSON with the documented shape.
  const obs::json::Value root = obs::json::parse(text);
  const obs::json::Value* trace_events = root.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  // clock_sync + thread_name metadata + the two spans.
  ASSERT_EQ(trace_events->as_array().size(), 4U);

  // Round-trips through the loader with every attribute intact.
  const obs::LoadedTrace loaded = obs::load_chrome_trace(text);
  ASSERT_EQ(loaded.events.size(), 2U);
  ASSERT_EQ(loaded.track_names.size(), 1U);
  EXPECT_EQ(loaded.track_names[0].second, "device 0");

  const std::vector<obs::TraceEvent> original = tracer.events();
  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    EXPECT_STREQ(loaded.events[i].name, original[i].name) << i;
    EXPECT_STREQ(loaded.events[i].category, original[i].category) << i;
    EXPECT_EQ(loaded.events[i].track, original[i].track) << i;
    EXPECT_EQ(loaded.events[i].start_us, original[i].start_us) << i;
    EXPECT_EQ(loaded.events[i].duration_us, original[i].duration_us) << i;
    EXPECT_EQ(loaded.events[i].device, original[i].device) << i;
    EXPECT_EQ(loaded.events[i].layer, original[i].layer) << i;
    EXPECT_EQ(loaded.events[i].bytes, original[i].bytes) << i;
    EXPECT_EQ(loaded.events[i].tag, original[i].tag) << i;
  }
}

TEST(ChromeTrace, EscapesSpecialCharactersInTags) {
  obs::Tracer tracer;
  {
    obs::TraceSpan span(&tracer, "span", "compute", 0);
    span.tag("quote \" backslash \\ newline \n tab \t");
  }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  ASSERT_EQ(loaded.events.size(), 1U);
  EXPECT_EQ(loaded.events[0].tag, "quote \" backslash \\ newline \n tab \t");
}

TEST(ChromeTrace, LoaderAcceptsMatchedBeginEndPairs) {
  const char* text = R"({"traceEvents":[
    {"name":"outer","ph":"B","ts":10,"pid":1,"tid":0},
    {"name":"inner","ph":"X","ts":12,"dur":3,"pid":1,"tid":0},
    {"name":"outer","ph":"E","ts":20,"pid":1,"tid":0}]})";
  const obs::LoadedTrace loaded = obs::load_chrome_trace(text);
  ASSERT_EQ(loaded.events.size(), 2U);
  EXPECT_STREQ(loaded.events[0].name, "outer");
  EXPECT_EQ(loaded.events[0].duration_us, 10);
  EXPECT_STREQ(loaded.events[1].name, "inner");
}

TEST(ChromeTrace, LoaderRejectsStructuralViolations) {
  // Unsorted timestamps.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
    {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Unmatched "B".
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":10,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // "E" without "B".
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"E","ts":10,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Mismatched B/E names.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":10,"pid":1,"tid":0},
    {"name":"b","ph":"E","ts":12,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Duration event without a thread id.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":10,"dur":1,"pid":1}]})"),
               std::runtime_error);
  // Not JSON at all.
  EXPECT_THROW((void)obs::load_chrome_trace("not json"), std::runtime_error);
}

// --- json ---------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjectsAndEscapes) {
  const obs::json::Value v = obs::json::parse(
      R"({"s":"a\"b\n","n":-2.5e2,"t":true,"f":false,"z":null,"a":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\n");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), -250.0);
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_EQ(v.find("a")->as_array().size(), 3U);
  EXPECT_DOUBLE_EQ(v.find("a")->as_array()[2].as_number(), 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("tru"), std::runtime_error);
}

// --- metrics ------------------------------------------------------------

TEST(Metrics, CountersAreAtomicAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAdds = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kAdds; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  // Same name resolves to the same counter.
  EXPECT_EQ(&registry.counter("hits"), &counter);
}

TEST(Metrics, HistogramQuantilesMatchAKnownDistribution) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("latency");
  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 1.0);  // 1..1000
  std::shuffle(values.begin(), values.end(), std::mt19937{7});
  for (const double v : values) histogram.record(v);

  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1000U);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean, 500.5);
  EXPECT_DOUBLE_EQ(snap.p50, 500.0);
  EXPECT_DOUBLE_EQ(snap.p95, 950.0);
  EXPECT_DOUBLE_EQ(snap.p99, 990.0);
}

TEST(Metrics, HistogramQuantilesUseNearestRankAtSmallCounts) {
  // Nearest-rank (1-based rank ceil(q*n)) at n = 10: p50 is the 5th value,
  // p95 and p99 the 10th. The old floor(q*(n-1)) indexing under-reported
  // p95 as the 9th value here — this pins the exact ranks.
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("small");
  for (int v = 10; v >= 1; --v) histogram.record(static_cast<double>(v));
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 10U);
  EXPECT_DOUBLE_EQ(snap.p50, 5.0);
  EXPECT_DOUBLE_EQ(snap.p95, 10.0);
  EXPECT_DOUBLE_EQ(snap.p99, 10.0);

  // n = 1: every quantile is the lone sample (the clamp path).
  obs::Histogram& one = registry.histogram("one");
  one.record(42.0);
  const obs::HistogramSnapshot lone = one.snapshot();
  EXPECT_DOUBLE_EQ(lone.p50, 42.0);
  EXPECT_DOUBLE_EQ(lone.p95, 42.0);
  EXPECT_DOUBLE_EQ(lone.p99, 42.0);
}

TEST(Metrics, ReportListsEverything) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.histogram("b.seconds").record(0.5);
  const std::string report = registry.report();
  EXPECT_NE(report.find("a.count"), std::string::npos);
  EXPECT_NE(report.find("b.seconds"), std::string::npos);
}

// --- instrumented runtime ------------------------------------------------

TEST(InstrumentedRuntime, EmitsLayersTimesDevicesSpansAndExactByteCounts) {
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 3;
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);

  const auto tokens = random_tokens(24, model.spec().vocab_size, 11);
  const Tensor logits = runtime.infer(tokens);
  EXPECT_EQ(logits.rows(), 1U);

  const std::vector<obs::TraceEvent> events = tracer.events();
  std::size_t layer_spans = 0;
  std::size_t all_gather_spans = 0;
  std::uint64_t comm_bytes = 0;
  for (const obs::TraceEvent& e : events) {
    const std::string_view name(e.name);
    if (name == "layer") {
      layer_spans += 1;
      // Every layer span is annotated with the Theorem-2 decision.
      EXPECT_FALSE(e.tag.empty());
      EXPECT_GE(e.device, 0);
      EXPECT_GE(e.layer, 0);
    }
    if (name == "all_gather") all_gather_spans += 1;
    if (std::string_view(e.category) == "comm" && e.bytes > 0) {
      comm_bytes += static_cast<std::uint64_t>(e.bytes);
    }
  }
  // Exactly one compute span per (layer, device).
  EXPECT_EQ(layer_spans, model.spec().num_layers * kDevices);
  // One all-gather per non-final layer per device (Algorithm 2).
  EXPECT_EQ(all_gather_spans, (model.spec().num_layers - 1) * kDevices);
  // The spans' byte annotations account for every byte the transport
  // actually put on the wire (broadcast + all-gathers + final sends).
  EXPECT_EQ(comm_bytes, runtime.fabric().total_stats().bytes_sent);
}

TEST(InstrumentedRuntime, DisabledTracerEmitsNothingAndStaysCorrect) {
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  const auto tokens = random_tokens(16, model.spec().vocab_size, 3);
  const Tensor logits = runtime.infer(tokens);  // no tracer attached
  EXPECT_EQ(logits.rows(), 1U);

  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  runtime.set_tracer(nullptr);  // detach again
  (void)runtime.infer(tokens);
  EXPECT_EQ(tracer.size(), 0U);
}

TEST(InstrumentedRuntime, ExportRoundTripsThroughTheReportPipeline) {
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 3;
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  (void)runtime.infer(random_tokens(20, model.spec().vocab_size, 5));

  // Export exactly as examples/traced_inference does, then validate the
  // file structurally and aggregate it as tools/trace_report does.
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  EXPECT_EQ(loaded.events.size(), tracer.size());
  // Track labels for every device plus the terminal.
  EXPECT_EQ(loaded.track_names.size(), kDevices + 1);

  const obs::TraceReport report = obs::build_report(loaded);
  // Per-layer rows for every (layer, device) pair.
  EXPECT_EQ(report.layers.size(), model.spec().num_layers * kDevices);
  for (const obs::LayerRow& row : report.layers) {
    EXPECT_FALSE(row.order.empty());
    if (static_cast<std::size_t>(row.layer) + 1 < model.spec().num_layers) {
      EXPECT_GT(row.all_gather_bytes, 0) << "layer " << row.layer;
      // fp32 spans carry no raw_bytes: encoded == fp32-equivalent.
      EXPECT_EQ(row.all_gather_raw_bytes, row.all_gather_bytes)
          << "layer " << row.layer;
    }
  }
  // Devices 0..K-1 plus the terminal appear in the per-device table.
  EXPECT_EQ(report.devices.size(), kDevices + 1);
  const std::string table = obs::format_report(report);
  EXPECT_NE(table.find("all_gather_bytes"), std::string::npos);
  EXPECT_NE(table.find("fp32_equiv_bytes"), std::string::npos);
  EXPECT_NE(table.find("reordered"), std::string::npos);
}

TEST(InstrumentedRuntime, QuantizedTraceReportsEncodedAndRawBytes) {
  // Under Precision::kInt8 the all-gather spans' `bytes` count what crossed
  // the wire (int8 + scales + frame) while `raw_bytes` carries the
  // fp32-equivalent — the report keeps both so a quantized trace shows its
  // own wire reduction.
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(3));
  runtime.set_precision(Precision::kInt8);
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  (void)runtime.infer(random_tokens(24, model.spec().vocab_size, 6));

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::TraceReport report =
      obs::build_report(obs::load_chrome_trace(out.str()));
  bool saw_gather = false;
  for (const obs::LayerRow& row : report.layers) {
    if (row.all_gather_bytes == 0) continue;
    saw_gather = true;
    EXPECT_GT(row.all_gather_raw_bytes, row.all_gather_bytes)
        << "layer " << row.layer << " device " << row.device;
  }
  EXPECT_TRUE(saw_gather);
}

// --- trace context + flow propagation -----------------------------------

TEST(TraceContext, FabricStampsPropagatesAndClosesTheFlow) {
  obs::Tracer tracer;
  Fabric fabric(2);
  const std::uint64_t request = obs::next_trace_id();
  std::uint64_t adopted = 0;

  std::thread receiver([&] {
    const obs::ThreadTracerScope scope(&tracer);
    const obs::ThreadTrackScope track(1);
    obs::TraceSpan span(&tracer, "consume", "comm", 1);
    const Message m = fabric.recv(1, 0, /*tag=*/7);
    EXPECT_EQ(m.trace_id, request);
    EXPECT_EQ(m.seq, 1U);  // first message this sender put on the wire
    adopted = obs::thread_trace_id();
  });
  {
    const obs::ThreadTracerScope scope(&tracer);
    const obs::ThreadTrackScope track(0);
    const obs::TraceIdScope trace(request);
    obs::TraceSpan span(&tracer, "produce", "comm", 0);
    fabric.send(Message{.source = 0,
                        .destination = 1,
                        .tag = 7,
                        .payload = std::vector<std::byte>(64)});
  }
  receiver.join();

  // The receiving thread adopted the sender's request context.
  EXPECT_EQ(adopted, request);

  // Exactly one flow-start (sender track) and one flow-end (receiver
  // track), same flow id, both carrying the request's trace id, and the
  // arrow's tail never after its head.
  const std::vector<obs::TraceEvent> events = tracer.events();
  const obs::TraceEvent* start = nullptr;
  const obs::TraceEvent* end = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == obs::EventPhase::kFlowStart) start = &e;
    if (e.phase == obs::EventPhase::kFlowEnd) end = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(start->track, 0U);
  EXPECT_EQ(end->track, 1U);
  EXPECT_EQ(start->flow_id, end->flow_id);
  EXPECT_EQ(start->trace, static_cast<std::int64_t>(request));
  EXPECT_EQ(end->trace, static_cast<std::int64_t>(request));
  EXPECT_LE(start->start_us, end->start_us);

  // The full export round-trips with the flow graph closed.
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  EXPECT_EQ(loaded.events.size(), tracer.size());
  EXPECT_TRUE(obs::flow_problems(loaded).empty());
}

TEST(TraceContext, UntracedSendsEmitNoFlowEvents) {
  obs::Tracer tracer;
  Fabric fabric(2);
  std::thread receiver([&] {
    const obs::ThreadTracerScope scope(&tracer);
    (void)fabric.recv(1, 0, /*tag=*/3);
  });
  {
    // No TraceIdScope: the message travels with trace_id 0 and must not
    // open an arrow nobody can close (e.g. the shutdown broadcast).
    const obs::ThreadTracerScope scope(&tracer);
    fabric.send(Message{.source = 0,
                        .destination = 1,
                        .tag = 3,
                        .payload = std::vector<std::byte>(8)});
  }
  receiver.join();
  for (const obs::TraceEvent& e : tracer.events()) {
    EXPECT_EQ(e.phase, obs::EventPhase::kComplete);
  }
}

TEST(TraceContext, FlowProblemsFlagsDanglingArrows) {
  obs::Tracer tracer;
  obs::record_flow(&tracer, obs::EventPhase::kFlowStart, /*flow_id=*/11,
                   /*track=*/0, /*trace_id=*/1);
  obs::record_flow(&tracer, obs::EventPhase::kFlowEnd, /*flow_id=*/22,
                   /*track=*/1, /*trace_id=*/1);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  const std::vector<std::string> problems = obs::flow_problems(loaded);
  // One unconsumed start and one end with no matching start.
  ASSERT_EQ(problems.size(), 2U);
}

TEST(TraceContext, EnsureTraceIdRespectsAmbientAndMintsOtherwise) {
  const std::uint64_t fresh = obs::ensure_trace_id();
  EXPECT_NE(fresh, 0U);
  EXPECT_NE(obs::ensure_trace_id(), fresh);  // no ambient → always fresh
  {
    const obs::TraceIdScope scope(fresh);
    EXPECT_EQ(obs::ensure_trace_id(), fresh);  // ambient wins
    EXPECT_EQ(obs::thread_trace_id(), fresh);
  }
  EXPECT_EQ(obs::thread_trace_id(), 0U);
}

// --- clock anchor --------------------------------------------------------

TEST(ClockAnchor, AlignsSteadyAndWallTimelines) {
  const obs::ClockAnchor& anchor = obs::clock_anchor();
  EXPECT_EQ(obs::to_wall_unix_us(anchor.steady_us), anchor.wall_unix_us);
  // The mapping is a pure offset: distances are preserved exactly.
  EXPECT_EQ(obs::to_wall_unix_us(anchor.steady_us + 1234) -
                obs::to_wall_unix_us(anchor.steady_us),
            1234);
  // Sanity: the anchor's wall time is an actual recent Unix time (after
  // 2020-01-01, microseconds).
  EXPECT_GT(anchor.wall_unix_us, 1'577'836'800'000'000LL);
}

TEST(ClockAnchor, SurvivesTheChromeTraceRoundTrip) {
  obs::Tracer tracer;
  { obs::TraceSpan span(&tracer, "tick", "compute", 0); }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  ASSERT_TRUE(loaded.has_clock_anchor);
  EXPECT_EQ(loaded.clock_anchor.steady_us, obs::clock_anchor().steady_us);
  EXPECT_EQ(loaded.clock_anchor.wall_unix_us,
            obs::clock_anchor().wall_unix_us);
}

// --- critical path -------------------------------------------------------

// Hand-built trace with known numbers, exercising every bucket:
//
//   window: one "decode.step" [0, 100) on the terminal track.
//   track 0: compute [10, 40), comm [40, 90) whose data only left the
//            sender at t=70 (flow start on track 1, end inside the span)
//            → compute 30, blocked 30, wire 20, idle 20 → wait 50.
//   track 1: compute [5, 75), comm [75, 95) that consumed nothing
//            → compute 70, wire 20, idle 10 → wait 10.
TEST(CriticalPath, SyntheticTraceDecomposesExactly) {
  obs::LoadedTrace trace;
  const auto add = [&](const char* name, const char* category,
                       obs::TrackId track, obs::Micros start, obs::Micros dur,
                       std::int64_t device, std::int64_t layer,
                       obs::EventPhase phase, std::uint64_t flow_id) {
    obs::TraceEvent e;
    e.name = name;
    e.category = category;
    e.track = track;
    e.start_us = start;
    e.duration_us = dur;
    e.device = device;
    e.layer = layer;
    e.trace = 42;
    e.phase = phase;
    e.flow_id = flow_id;
    if (std::string_view(name) == "decode.step") e.request = 5;
    trace.events.push_back(std::move(e));
  };
  constexpr auto kSpan = obs::EventPhase::kComplete;
  add("decode.step", "serve", 9, 0, 100, -1, -1, kSpan, 0);
  add("compute_a", "compute", 0, 10, 30, 0, 0, kSpan, 0);
  add("compute_b", "compute", 1, 5, 70, 1, 0, kSpan, 0);
  add("merge", "comm", 0, 40, 50, 0, 0, kSpan, 0);
  add("msg", "flow", 1, 70, 0, -1, -1, obs::EventPhase::kFlowStart, 900);
  add("merge", "comm", 1, 75, 20, 1, 0, kSpan, 0);
  add("msg", "flow", 0, 80, 0, -1, -1, obs::EventPhase::kFlowEnd, 900);

  const obs::CriticalPathReport report = obs::analyze_critical_path(trace);
  ASSERT_EQ(report.windows.size(), 1U);
  const obs::WindowAttribution& w = report.windows[0];
  EXPECT_EQ(w.label, "step");
  EXPECT_EQ(w.index, 5);
  EXPECT_EQ(w.trace_id, 42);
  EXPECT_EQ(w.wall_us, 100);
  ASSERT_EQ(w.devices.size(), 2U);

  const obs::DeviceSlice& d0 = w.devices[0];
  EXPECT_EQ(d0.track, 0);
  EXPECT_EQ(d0.compute_us, 30);
  EXPECT_EQ(d0.wire_us, 20);
  EXPECT_EQ(d0.wait_us, 50);  // 30 straggler-blocked + 20 idle
  EXPECT_EQ(d0.total_us(), w.wall_us);  // exact by construction

  const obs::DeviceSlice& d1 = w.devices[1];
  EXPECT_EQ(d1.track, 1);
  EXPECT_EQ(d1.compute_us, 70);
  EXPECT_EQ(d1.wire_us, 20);
  EXPECT_EQ(d1.wait_us, 10);  // pure idle
  EXPECT_EQ(d1.total_us(), w.wall_us);

  // Track 0 waited longest; the collective round pins the entry-time
  // straggler (track 1 reached "merge" last, 35us behind).
  EXPECT_EQ(w.straggler_track, 0);
  ASSERT_EQ(report.rounds.size(), 1U);
  EXPECT_EQ(report.rounds[0].name, "merge");
  EXPECT_EQ(report.rounds[0].straggler_track, 1);
  EXPECT_EQ(report.rounds[0].max_spread_us, 35);

  EXPECT_EQ(report.compute_us, 100);
  EXPECT_EQ(report.wire_us, 40);
  EXPECT_EQ(report.wait_us, 60);
  EXPECT_NEAR(report.comm_fraction(), 40.0 / 200.0, 1e-9);

  const std::string table = obs::format_critical_path(report);
  EXPECT_NE(table.find("straggler"), std::string::npos);
  EXPECT_NE(table.find("step"), std::string::npos);
}

// Acceptance: on a real K=4 decode trace, every device's compute/wire/wait
// must sum to each step's wall time (the decomposition is exact; 5% is the
// issue's tolerance), and one step's flow arrows must touch every device
// track plus the terminal.
TEST(CriticalPath, DistributedDecoderStepsDecomposeAcrossFourDevices) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kDevices = 4;
  constexpr std::size_t kSteps = 4;
  obs::Tracer tracer;
  {
    DistributedDecoder decoder(model, PartitionScheme::even(kDevices));
    decoder.set_tracer(&tracer);

    const auto prompt = random_tokens(12, model.spec().vocab_size, 21);
    Tensor logits = decoder.prime(std::span<const TokenId>(prompt));
    for (std::size_t i = 0; i < kSteps; ++i) {
      logits = decoder.step(static_cast<TokenId>(argmax_row(logits, 0)));
    }
  }
  // step() returns on the terminal's critical path; workers off it may
  // still be draining their last merge receives. Destroying the decoder
  // joins them, so only now is the flow graph guaranteed closed.
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  EXPECT_TRUE(obs::flow_problems(loaded).empty());

  const obs::CriticalPathReport report = obs::analyze_critical_path(loaded);
  std::size_t steps = 0;
  std::int64_t step_trace = -1;
  for (const obs::WindowAttribution& w : report.windows) {
    if (w.label != "step") continue;
    steps += 1;
    if (step_trace < 0) step_trace = w.trace_id;
    EXPECT_GT(w.trace_id, 0);
    // Every worker contributed a slice, plus the terminal (whose command
    // broadcast is a comm span on its own track).
    ASSERT_EQ(w.devices.size(), kDevices + 1);
    for (const obs::DeviceSlice& d : w.devices) {
      EXPECT_NEAR(static_cast<double>(d.total_us()),
                  static_cast<double>(w.wall_us),
                  0.05 * static_cast<double>(w.wall_us) + 1.0)
          << "track " << d.track << " in step " << w.index;
    }
  }
  EXPECT_EQ(steps, kSteps);

  // One step's causal id shows up as flow arrows into all K device tracks
  // and the terminal's final-row receive.
  ASSERT_GT(step_trace, 0);
  std::set<obs::TrackId> flow_tracks;
  for (const obs::TraceEvent& e : loaded.events) {
    if (e.phase == obs::EventPhase::kFlowEnd && e.trace == step_trace) {
      flow_tracks.insert(e.track);
    }
  }
  for (std::size_t i = 0; i < kDevices; ++i) {
    EXPECT_TRUE(flow_tracks.count(static_cast<obs::TrackId>(i)))
        << "no flow arrow reached device track " << i;
  }
  EXPECT_TRUE(flow_tracks.count(static_cast<obs::TrackId>(kDevices)))
      << "no flow arrow reached the terminal track";
}

// The byte-exactness invariant (Σ comm-span bytes == transport bytes sent)
// must survive the set_tracer refresh handshake and the shutdown broadcast:
// both are flow-free but still put bytes on the wire, so both must emit
// byte-annotated comm spans. The metrics counter outlives the decoder, so
// the comparison can include teardown traffic.
TEST(InstrumentedDecoder, CommSpanBytesStayExactThroughAttachAndShutdown) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  {
    DistributedDecoder decoder(model, PartitionScheme::even(2));
    decoder.set_metrics(&metrics);
    decoder.set_tracer(&tracer);  // handshake broadcast lands on the trace
    const auto prompt = random_tokens(8, model.spec().vocab_size, 3);
    Tensor logits = decoder.prime(std::span<const TokenId>(prompt));
    (void)decoder.step(static_cast<TokenId>(argmax_row(logits, 0)));
  }
  std::uint64_t comm_bytes = 0;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (std::string_view(e.category) == "comm" && e.bytes > 0) {
      comm_bytes += static_cast<std::uint64_t>(e.bytes);
    }
  }
  EXPECT_EQ(comm_bytes, metrics.counter("transport.bytes_sent").value());
}

// --- telemetry hub -------------------------------------------------------

TEST(Telemetry, WindowedRatesGaugesAndUtilization) {
  obs::TelemetryHub hub(/*window_seconds=*/10.0);
  std::atomic<std::uint64_t> tokens{0};
  hub.register_rate("tokens",
                    [&] { return static_cast<double>(tokens.load()); });
  hub.register_gauge("queue_depth", [] { return 7.0; });

  // Device series only accumulate rates once they exist, so report busy
  // time before the first sample to open their windows.
  hub.add_device_busy(0, 1);
  hub.add_device_busy(1, 1);
  const obs::TelemetryHub::Snapshot first = hub.sample();
  // First sample: no window yet, rates are zero; gauges read through.
  for (const auto& [name, value] : first.values) {
    if (name == "tokens_per_s") {
      EXPECT_EQ(value, 0.0);
    }
    if (name == "queue_depth") {
      EXPECT_EQ(value, 7.0);
    }
  }

  tokens.store(500);
  hub.add_device_busy(0, 800);
  hub.add_device_busy(1, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const obs::TelemetryHub::Snapshot second = hub.sample();

  bool saw_rate = false;
  bool saw_util0 = false;
  bool saw_util1 = false;
  for (const auto& [name, value] : second.values) {
    if (name == "tokens_per_s") {
      saw_rate = true;
      EXPECT_GT(value, 0.0);  // 500 tokens over a ~20ms window
    }
    if (name == "device0_utilization") {
      saw_util0 = true;
      EXPECT_GT(value, 0.0);
      EXPECT_LE(value, 1.0);
    }
    if (name == "device1_utilization") saw_util1 = true;
  }
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_util0);
  EXPECT_TRUE(saw_util1);
}

TEST(Telemetry, UnregisterRemovesRatesAndGauges) {
  obs::TelemetryHub hub;
  hub.register_rate("tokens", [] { return 1.0; });
  hub.register_gauge("tokens", [] { return 2.0; });
  hub.register_gauge("depth", [] { return 3.0; });
  hub.unregister("tokens");
  const obs::TelemetryHub::Snapshot snapshot = hub.sample();
  ASSERT_EQ(snapshot.values.size(), 1U);
  EXPECT_EQ(snapshot.values[0].first, "depth");
}

TEST(Telemetry, SerializesJsonlAndPrometheus) {
  obs::TelemetryHub::Snapshot snapshot;
  snapshot.steady_us = 1000;
  snapshot.wall_unix_us = 1'700'000'000'000'000LL;
  snapshot.values.emplace_back("tokens_per_s", 12.5);
  snapshot.values.emplace_back("bad metric",
                               std::numeric_limits<double>::quiet_NaN());

  std::ostringstream jsonl;
  obs::TelemetryHub::write_jsonl(snapshot, jsonl);
  const obs::json::Value parsed = obs::json::parse(
      jsonl.str().substr(0, jsonl.str().find('\n')));
  EXPECT_DOUBLE_EQ(parsed.find("tokens_per_s")->as_number(), 12.5);
  // NaN must not leak into the JSON.
  EXPECT_DOUBLE_EQ(parsed.find("bad metric")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parsed.find("steady_us")->as_number(), 1000.0);

  std::ostringstream prom;
  obs::TelemetryHub::write_prometheus(snapshot, prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE voltage_tokens_per_s gauge"),
            std::string::npos);
  EXPECT_NE(text.find("voltage_tokens_per_s 12.5"), std::string::npos);
  // Prometheus names are sanitized: the space becomes an underscore.
  EXPECT_NE(text.find("voltage_bad_metric 0"), std::string::npos);
}

// --- flight recorder -----------------------------------------------------

TEST(FlightRecorder, RingKeepsTheLastNOldestFirst) {
  obs::FlightRecorder recorder(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    recorder.note_send(/*source=*/i, /*destination=*/9, /*tag=*/i,
                       /*trace_id=*/0, /*bytes=*/i);
  }
  const auto entries = recorder.entries();
  ASSERT_EQ(entries.size(), 4U);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].source, i + 2) << i;  // 2,3,4,5 survived
    EXPECT_EQ(entries[i].kind, obs::FlightRecorder::Kind::kSend);
  }
  recorder.clear();
  EXPECT_TRUE(recorder.entries().empty());
}

TEST(FlightRecorder, FabricPoisoningAutoDumpsTheRing) {
  std::ostringstream dump;
  obs::FlightRecorder recorder(/*capacity=*/8, &dump);
  Fabric fabric(2);
  fabric.set_flight_recorder(&recorder);
  fabric.send(Message{.source = 0,
                      .destination = 1,
                      .tag = 5,
                      .payload = std::vector<std::byte>(32)});
  (void)fabric.recv(1, 0, 5);
  fabric.close("device 0 fell off the mesh");

  const std::string text = dump.str();
  EXPECT_NE(text.find("Fabric closed: device 0 fell off the mesh"),
            std::string::npos);
  EXPECT_NE(text.find("send 0->1"), std::string::npos);
  EXPECT_NE(text.find("recv 0->1"), std::string::npos);
  // Recorder entries charge payload + wire frame, like the stats.
  EXPECT_NE(text.find("bytes=" + std::to_string(32 + kWireFrameBytes)),
            std::string::npos);
}

// --- concurrency (run under TSan in CI) ----------------------------------

TEST(ObsConcurrency, TracerMetricsTelemetryAndRecorderUnderFabricTraffic) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::TelemetryHub hub(1.0);
  obs::FlightRecorder recorder(64);
  Fabric fabric(4);
  fabric.set_metrics(&metrics);
  fabric.set_flight_recorder(&recorder);
  hub.register_rate("wire_bytes", [&] {
    return static_cast<double>(
        metrics.counter("transport.bytes_sent").value());
  });

  constexpr std::size_t kMessages = 400;
  std::vector<std::thread> threads;
  // Two sender/receiver pairs hammer the fabric with traced messages while
  // a fifth thread concurrently snapshots every observability surface.
  for (std::size_t pair = 0; pair < 2; ++pair) {
    const DeviceId src = pair * 2;
    const DeviceId dst = src + 1;
    threads.emplace_back([&, src, dst] {
      const obs::ThreadTracerScope scope(&tracer);
      const obs::ThreadTrackScope track(static_cast<obs::TrackId>(src));
      for (std::size_t i = 0; i < kMessages; ++i) {
        const obs::TraceIdScope trace(obs::next_trace_id());
        obs::TraceSpan span(&tracer, "produce", "comm",
                            static_cast<obs::TrackId>(src));
        fabric.send(Message{.source = src,
                            .destination = dst,
                            .tag = 1,
                            .payload = std::vector<std::byte>(16)});
      }
    });
    threads.emplace_back([&, src, dst] {
      const obs::ThreadTracerScope scope(&tracer);
      const obs::ThreadTrackScope track(static_cast<obs::TrackId>(dst));
      for (std::size_t i = 0; i < kMessages; ++i) {
        obs::TraceSpan span(&tracer, "consume", "comm",
                            static_cast<obs::TrackId>(dst));
        (void)fabric.recv(dst, src, 1);
        hub.add_device_busy(dst, 1);
      }
    });
  }
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < 50; ++i) {
      (void)tracer.size();
      (void)tracer.events();
      (void)metrics.report();
      (void)recorder.entries();
      (void)hub.sample();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& t : threads) t.join();

  // 2 pairs × kMessages, each with a span on both ends plus a flow pair.
  EXPECT_EQ(tracer.size(), 2 * kMessages * 4);
  EXPECT_EQ(metrics.counter("transport.messages_sent").value(),
            2 * kMessages);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  EXPECT_TRUE(obs::flow_problems(obs::load_chrome_trace(out.str())).empty());
}

TEST(InstrumentedRuntime, TransportMetricsMatchTrafficStats) {
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  obs::MetricsRegistry metrics;
  runtime.set_metrics(&metrics);
  (void)runtime.infer(random_tokens(12, model.spec().vocab_size, 9));

  const TrafficStats stats = runtime.fabric().total_stats();
  EXPECT_EQ(metrics.counter("transport.messages_sent").value(),
            stats.messages_sent);
  EXPECT_EQ(metrics.counter("transport.bytes_sent").value(),
            stats.bytes_sent);
  EXPECT_EQ(metrics.counter("transport.messages_received").value(),
            stats.messages_received);
  EXPECT_EQ(metrics.counter("transport.bytes_received").value(),
            stats.bytes_received);
}

}  // namespace
}  // namespace voltage
