// Tests of the observability subsystem: tracer thread-safety and ordering,
// Chrome trace-event export structure and round-tripping, metrics
// counters/histograms, and the instrumentation threaded through the real
// distributed runtime (span counts and byte accounting against the
// transport's ground-truth traffic statistics).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runtime/voltage_runtime.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

// --- tracer core --------------------------------------------------------

TEST(Tracer, ConcurrentSpansFromManyThreadsFormAValidTrace) {
  obs::Tracer tracer;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::size_t s = 0; s < kSpansPerThread; ++s) {
        obs::TraceSpan span(&tracer, "work", "compute",
                            static_cast<obs::TrackId>(t));
        span.device(static_cast<std::int64_t>(t))
            .layer(static_cast<std::int64_t>(s));
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), kThreads * kSpansPerThread);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].duration_us, 0) << i;
    if (i > 0) {
      // events() returns a single merged timeline sorted by start.
      EXPECT_GE(events[i].start_us, events[i - 1].start_us) << i;
    }
  }
  // Per-thread span streams must each be strictly ordered and complete.
  std::vector<std::size_t> per_track(kThreads, 0);
  for (const obs::TraceEvent& e : events) {
    ASSERT_LT(e.track, kThreads);
    per_track[e.track] += 1;
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_track[t], kSpansPerThread) << t;
  }
}

TEST(Tracer, NullTracerSpanIsInertAndCheap) {
  obs::TraceSpan span(nullptr, "never", "compute", 0);
  EXPECT_FALSE(span.enabled());
  // Setters must be safe no-ops (no tag allocation, no recording).
  span.device(1).layer(2).bytes(3).tag("unused");
  span.finish();  // idempotent on a disabled span
}

TEST(Tracer, ClearDropsEventsButKeepsAccepting) {
  obs::Tracer tracer;
  { obs::TraceSpan span(&tracer, "a", "compute", 0); }
  EXPECT_EQ(tracer.size(), 1U);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0U);
  { obs::TraceSpan span(&tracer, "b", "compute", 0); }
  EXPECT_EQ(tracer.size(), 1U);
  EXPECT_STREQ(tracer.events()[0].name, "b");
}

TEST(Tracer, AmbientThreadTracerNestsAndRestores) {
  obs::Tracer tracer;
  EXPECT_EQ(obs::thread_tracer(), nullptr);
  {
    const obs::ThreadTracerScope outer(&tracer);
    EXPECT_EQ(obs::thread_tracer(), &tracer);
    {
      const obs::ThreadTracerScope inner(nullptr);
      EXPECT_EQ(obs::thread_tracer(), nullptr);
    }
    EXPECT_EQ(obs::thread_tracer(), &tracer);
    const obs::ThreadLayerScope layer(7);
    EXPECT_EQ(obs::thread_layer(), 7);
  }
  EXPECT_EQ(obs::thread_tracer(), nullptr);
  EXPECT_EQ(obs::thread_layer(), -1);
}

// --- chrome trace export ------------------------------------------------

TEST(ChromeTrace, ExportedJsonParsesAndRoundTrips) {
  obs::Tracer tracer;
  tracer.set_track_name(0, "device 0");
  {
    obs::TraceSpan span(&tracer, "layer", "compute", 0);
    span.device(0).layer(4).tag("reordered(Eq.8)");
  }
  {
    obs::TraceSpan span(&tracer, "all_gather", "comm", 0);
    span.device(0).layer(4).bytes(12345);
  }

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string text = out.str();

  // Parses as plain JSON with the documented shape.
  const obs::json::Value root = obs::json::parse(text);
  const obs::json::Value* trace_events = root.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  // thread_name metadata + the two spans.
  ASSERT_EQ(trace_events->as_array().size(), 3U);

  // Round-trips through the loader with every attribute intact.
  const obs::LoadedTrace loaded = obs::load_chrome_trace(text);
  ASSERT_EQ(loaded.events.size(), 2U);
  ASSERT_EQ(loaded.track_names.size(), 1U);
  EXPECT_EQ(loaded.track_names[0].second, "device 0");

  const std::vector<obs::TraceEvent> original = tracer.events();
  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    EXPECT_STREQ(loaded.events[i].name, original[i].name) << i;
    EXPECT_STREQ(loaded.events[i].category, original[i].category) << i;
    EXPECT_EQ(loaded.events[i].track, original[i].track) << i;
    EXPECT_EQ(loaded.events[i].start_us, original[i].start_us) << i;
    EXPECT_EQ(loaded.events[i].duration_us, original[i].duration_us) << i;
    EXPECT_EQ(loaded.events[i].device, original[i].device) << i;
    EXPECT_EQ(loaded.events[i].layer, original[i].layer) << i;
    EXPECT_EQ(loaded.events[i].bytes, original[i].bytes) << i;
    EXPECT_EQ(loaded.events[i].tag, original[i].tag) << i;
  }
}

TEST(ChromeTrace, EscapesSpecialCharactersInTags) {
  obs::Tracer tracer;
  {
    obs::TraceSpan span(&tracer, "span", "compute", 0);
    span.tag("quote \" backslash \\ newline \n tab \t");
  }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  ASSERT_EQ(loaded.events.size(), 1U);
  EXPECT_EQ(loaded.events[0].tag, "quote \" backslash \\ newline \n tab \t");
}

TEST(ChromeTrace, LoaderAcceptsMatchedBeginEndPairs) {
  const char* text = R"({"traceEvents":[
    {"name":"outer","ph":"B","ts":10,"pid":1,"tid":0},
    {"name":"inner","ph":"X","ts":12,"dur":3,"pid":1,"tid":0},
    {"name":"outer","ph":"E","ts":20,"pid":1,"tid":0}]})";
  const obs::LoadedTrace loaded = obs::load_chrome_trace(text);
  ASSERT_EQ(loaded.events.size(), 2U);
  EXPECT_STREQ(loaded.events[0].name, "outer");
  EXPECT_EQ(loaded.events[0].duration_us, 10);
  EXPECT_STREQ(loaded.events[1].name, "inner");
}

TEST(ChromeTrace, LoaderRejectsStructuralViolations) {
  // Unsorted timestamps.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
    {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Unmatched "B".
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":10,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // "E" without "B".
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"E","ts":10,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Mismatched B/E names.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":10,"pid":1,"tid":0},
    {"name":"b","ph":"E","ts":12,"pid":1,"tid":0}]})"),
               std::runtime_error);
  // Duration event without a thread id.
  EXPECT_THROW((void)obs::load_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":10,"dur":1,"pid":1}]})"),
               std::runtime_error);
  // Not JSON at all.
  EXPECT_THROW((void)obs::load_chrome_trace("not json"), std::runtime_error);
}

// --- json ---------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjectsAndEscapes) {
  const obs::json::Value v = obs::json::parse(
      R"({"s":"a\"b\n","n":-2.5e2,"t":true,"f":false,"z":null,"a":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\n");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), -250.0);
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_EQ(v.find("a")->as_array().size(), 3U);
  EXPECT_DOUBLE_EQ(v.find("a")->as_array()[2].as_number(), 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("tru"), std::runtime_error);
}

// --- metrics ------------------------------------------------------------

TEST(Metrics, CountersAreAtomicAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAdds = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kAdds; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  // Same name resolves to the same counter.
  EXPECT_EQ(&registry.counter("hits"), &counter);
}

TEST(Metrics, HistogramQuantilesMatchAKnownDistribution) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("latency");
  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 1.0);  // 1..1000
  std::shuffle(values.begin(), values.end(), std::mt19937{7});
  for (const double v : values) histogram.record(v);

  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1000U);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean, 500.5);
  EXPECT_DOUBLE_EQ(snap.p50, 500.0);
  EXPECT_DOUBLE_EQ(snap.p95, 950.0);
  EXPECT_DOUBLE_EQ(snap.p99, 990.0);
}

TEST(Metrics, HistogramQuantilesUseNearestRankAtSmallCounts) {
  // Nearest-rank (1-based rank ceil(q*n)) at n = 10: p50 is the 5th value,
  // p95 and p99 the 10th. The old floor(q*(n-1)) indexing under-reported
  // p95 as the 9th value here — this pins the exact ranks.
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("small");
  for (int v = 10; v >= 1; --v) histogram.record(static_cast<double>(v));
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 10U);
  EXPECT_DOUBLE_EQ(snap.p50, 5.0);
  EXPECT_DOUBLE_EQ(snap.p95, 10.0);
  EXPECT_DOUBLE_EQ(snap.p99, 10.0);

  // n = 1: every quantile is the lone sample (the clamp path).
  obs::Histogram& one = registry.histogram("one");
  one.record(42.0);
  const obs::HistogramSnapshot lone = one.snapshot();
  EXPECT_DOUBLE_EQ(lone.p50, 42.0);
  EXPECT_DOUBLE_EQ(lone.p95, 42.0);
  EXPECT_DOUBLE_EQ(lone.p99, 42.0);
}

TEST(Metrics, ReportListsEverything) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.histogram("b.seconds").record(0.5);
  const std::string report = registry.report();
  EXPECT_NE(report.find("a.count"), std::string::npos);
  EXPECT_NE(report.find("b.seconds"), std::string::npos);
}

// --- instrumented runtime ------------------------------------------------

TEST(InstrumentedRuntime, EmitsLayersTimesDevicesSpansAndExactByteCounts) {
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 3;
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);

  const auto tokens = random_tokens(24, model.spec().vocab_size, 11);
  const Tensor logits = runtime.infer(tokens);
  EXPECT_EQ(logits.rows(), 1U);

  const std::vector<obs::TraceEvent> events = tracer.events();
  std::size_t layer_spans = 0;
  std::size_t all_gather_spans = 0;
  std::uint64_t comm_bytes = 0;
  for (const obs::TraceEvent& e : events) {
    const std::string_view name(e.name);
    if (name == "layer") {
      layer_spans += 1;
      // Every layer span is annotated with the Theorem-2 decision.
      EXPECT_FALSE(e.tag.empty());
      EXPECT_GE(e.device, 0);
      EXPECT_GE(e.layer, 0);
    }
    if (name == "all_gather") all_gather_spans += 1;
    if (std::string_view(e.category) == "comm" && e.bytes > 0) {
      comm_bytes += static_cast<std::uint64_t>(e.bytes);
    }
  }
  // Exactly one compute span per (layer, device).
  EXPECT_EQ(layer_spans, model.spec().num_layers * kDevices);
  // One all-gather per non-final layer per device (Algorithm 2).
  EXPECT_EQ(all_gather_spans, (model.spec().num_layers - 1) * kDevices);
  // The spans' byte annotations account for every byte the transport
  // actually put on the wire (broadcast + all-gathers + final sends).
  EXPECT_EQ(comm_bytes, runtime.fabric().total_stats().bytes_sent);
}

TEST(InstrumentedRuntime, DisabledTracerEmitsNothingAndStaysCorrect) {
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  const auto tokens = random_tokens(16, model.spec().vocab_size, 3);
  const Tensor logits = runtime.infer(tokens);  // no tracer attached
  EXPECT_EQ(logits.rows(), 1U);

  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  runtime.set_tracer(nullptr);  // detach again
  (void)runtime.infer(tokens);
  EXPECT_EQ(tracer.size(), 0U);
}

TEST(InstrumentedRuntime, ExportRoundTripsThroughTheReportPipeline) {
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 3;
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  (void)runtime.infer(random_tokens(20, model.spec().vocab_size, 5));

  // Export exactly as examples/traced_inference does, then validate the
  // file structurally and aggregate it as tools/trace_report does.
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const obs::LoadedTrace loaded = obs::load_chrome_trace(out.str());
  EXPECT_EQ(loaded.events.size(), tracer.size());
  // Track labels for every device plus the terminal.
  EXPECT_EQ(loaded.track_names.size(), kDevices + 1);

  const obs::TraceReport report = obs::build_report(loaded);
  // Per-layer rows for every (layer, device) pair.
  EXPECT_EQ(report.layers.size(), model.spec().num_layers * kDevices);
  for (const obs::LayerRow& row : report.layers) {
    EXPECT_FALSE(row.order.empty());
    if (static_cast<std::size_t>(row.layer) + 1 < model.spec().num_layers) {
      EXPECT_GT(row.all_gather_bytes, 0) << "layer " << row.layer;
    }
  }
  // Devices 0..K-1 plus the terminal appear in the per-device table.
  EXPECT_EQ(report.devices.size(), kDevices + 1);
  const std::string table = obs::format_report(report);
  EXPECT_NE(table.find("all_gather_bytes"), std::string::npos);
  EXPECT_NE(table.find("reordered"), std::string::npos);
}

TEST(InstrumentedRuntime, TransportMetricsMatchTrafficStats) {
  const TransformerModel model = make_model(mini_bert_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  obs::MetricsRegistry metrics;
  runtime.set_metrics(&metrics);
  (void)runtime.infer(random_tokens(12, model.spec().vocab_size, 9));

  const TrafficStats stats = runtime.fabric().total_stats();
  EXPECT_EQ(metrics.counter("transport.messages_sent").value(),
            stats.messages_sent);
  EXPECT_EQ(metrics.counter("transport.bytes_sent").value(),
            stats.bytes_sent);
  EXPECT_EQ(metrics.counter("transport.messages_received").value(),
            stats.messages_received);
  EXPECT_EQ(metrics.counter("transport.bytes_received").value(),
            stats.bytes_received);
}

}  // namespace
}  // namespace voltage
