// Tests of the real pipeline-parallel runtime and the sampling utilities.
#include <set>

#include <gtest/gtest.h>

#include "runtime/pipeline_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/sampling.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

// --- pipeline runtime -----------------------------------------------------------

class PipelineRuntimeK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineRuntimeK, SingleRequestMatchesModel) {
  const std::size_t k = GetParam();
  const TransformerModel model = make_model(mini_bert_spec());
  PipelineRuntime runtime(model, k);
  const auto tokens = random_tokens(20, model.spec().vocab_size, 61);
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

INSTANTIATE_TEST_SUITE_P(Stages, PipelineRuntimeK,
                         ::testing::Values<std::size_t>(1, 2, 3, 4));

TEST(PipelineRuntime, BatchOfMixedRequestsInOrder) {
  const TransformerModel model = make_model(mini_bert_spec());
  PipelineRuntime runtime(model, 2);
  std::vector<InferenceInput> requests;
  std::vector<Tensor> expected;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tokens =
        random_tokens(8 + 3 * seed, model.spec().vocab_size, seed);
    expected.push_back(model.infer(tokens));
    requests.emplace_back(tokens);
  }
  const auto results = runtime.infer_batch(requests);
  ASSERT_EQ(results.size(), 5U);
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_TRUE(allclose(results[r], expected[r], 2e-3F)) << "request " << r;
  }
}

TEST(PipelineRuntime, VisionRequests) {
  const TransformerModel model = make_model(mini_vit_spec());
  PipelineRuntime runtime(model, 3);
  const Image image = random_image(32, 3, 5);
  EXPECT_TRUE(allclose(runtime.infer(image), model.infer(image), 2e-3F));
}

TEST(PipelineRuntime, StagesCoverAllLayersContiguously) {
  const TransformerModel model = make_model(mini_bert_spec());  // 4 layers
  PipelineRuntime runtime(model, 3);
  std::size_t next = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const Range r = runtime.stage_layers(s);
    EXPECT_EQ(r.begin, next);
    EXPECT_GE(r.size(), 1U);
    next = r.end;
  }
  EXPECT_EQ(next, model.spec().num_layers);
}

TEST(PipelineRuntime, RejectsBadStageCounts) {
  const TransformerModel model = make_model(mini_bert_spec());  // 4 layers
  EXPECT_THROW(PipelineRuntime(model, 0), std::invalid_argument);
  EXPECT_THROW(PipelineRuntime(model, 5), std::invalid_argument);
}

TEST(PipelineRuntime, WorksOverRealSockets) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  PipelineRuntime runtime(model, 2, TransportKind::kUnixSocket);
  const auto tokens = random_tokens(12, model.spec().vocab_size, 71);
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

// --- sampling ---------------------------------------------------------------------

TEST(Sampling, GreedyIsArgmax) {
  const Tensor logits{{0.1F, 2.5F, -1.0F, 2.4F}};
  EXPECT_EQ(greedy_sample(logits), 1);
  EXPECT_THROW((void)greedy_sample(Tensor(2, 4)), std::invalid_argument);
}

TEST(Sampling, TopKOneIsGreedy) {
  Rng rng(1);
  const Tensor logits{{0.5F, 3.0F, 1.0F, -2.0F, 2.9F}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sample_top_k(logits, 1, 1.0F, rng), 1);
  }
}

TEST(Sampling, SamplesStayInsideTopK) {
  Rng rng(2);
  const Tensor logits{{5.0F, 4.0F, 3.0F, -10.0F, -11.0F, -12.0F}};
  const std::set<TokenId> allowed{0, 1, 2};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(allowed.contains(sample_top_k(logits, 3, 1.0F, rng)));
  }
}

TEST(Sampling, LowTemperatureConcentratesOnMax) {
  Rng rng(3);
  const Tensor logits{{1.0F, 1.2F, 0.9F}};
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (sample_top_k(logits, 3, 0.01F, rng) == 1) ++hits;
  }
  EXPECT_GE(hits, 198);
}

TEST(Sampling, HighTemperatureSpreadsMass) {
  Rng rng(4);
  const Tensor logits{{1.0F, 1.2F, 0.9F}};
  std::set<TokenId> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(sample_top_k(logits, 3, 50.0F, rng));
  }
  EXPECT_EQ(seen.size(), 3U);
}

TEST(Sampling, Validation) {
  Rng rng(5);
  const Tensor logits{{1.0F, 2.0F}};
  EXPECT_THROW((void)sample_top_k(logits, 0, 1.0F, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_top_k(logits, 3, 1.0F, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_top_k(logits, 2, 0.0F, rng),
               std::invalid_argument);
}

TEST(Sampling, GenerateGreedyMatchesManualLoop) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(10, model.spec().vocab_size, 6);

  IncrementalDecoder decoder(model);
  Rng rng(7);
  const auto generated =
      generate(decoder, prompt, 6, SamplingConfig{.top_k = 0}, rng);

  std::vector<TokenId> context = prompt;
  std::vector<TokenId> reference;
  for (int i = 0; i < 6; ++i) {
    const auto next = static_cast<TokenId>(argmax_row(model.infer(context), 0));
    reference.push_back(next);
    context.push_back(next);
  }
  EXPECT_EQ(generated, reference);
}

TEST(Sampling, GenerateStochasticIsSeedDeterministic) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(8, model.spec().vocab_size, 8);
  const SamplingConfig config{.top_k = 5, .temperature = 0.8F};

  IncrementalDecoder d1(model);
  Rng r1(9);
  IncrementalDecoder d2(model);
  Rng r2(9);
  EXPECT_EQ(generate(d1, prompt, 5, config, r1),
            generate(d2, prompt, 5, config, r2));
}

}  // namespace
}  // namespace voltage
