// Gradient checks for the training module: every backward kernel and the
// full transformer-layer backward verified against central finite
// differences, plus the §V-C training-communication accounting.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "collective/cost.h"
#include "train/backward_ops.h"
#include "train/comm.h"
#include "train/layer_backward.h"
#include "train/loss.h"
#include "train/sgd.h"
#include "transformer/weights.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

// Scalar objective: sum(f(...) ∘ projection). Its analytic input-gradient
// under upstream dY = projection is what the backward kernels produce.
float project(const Tensor& y, const Tensor& projection) {
  float s = 0.0F;
  const auto fy = y.flat();
  const auto fp = projection.flat();
  for (std::size_t i = 0; i < fy.size(); ++i) s += fy[i] * fp[i];
  return s;
}

// Central finite difference of `objective` w.r.t. tensor entry (r, c).
float fd_entry(Tensor& param, std::size_t r, std::size_t c,
               const std::function<float()>& objective, float eps = 1e-2F) {
  const float saved = param(r, c);
  param(r, c) = saved + eps;
  const float plus = objective();
  param(r, c) = saved - eps;
  const float minus = objective();
  param(r, c) = saved;
  return (plus - minus) / (2.0F * eps);
}

// Compares a sample of analytic gradient entries against finite
// differences with a mixed relative/absolute tolerance.
void expect_grad_matches(Tensor& param, const Tensor& analytic,
                         const std::function<float()>& objective,
                         Rng& rng, int samples, const char* what) {
  ASSERT_EQ(param.rows(), analytic.rows()) << what;
  ASSERT_EQ(param.cols(), analytic.cols()) << what;
  for (int s = 0; s < samples; ++s) {
    const std::size_t r = rng.next_below(param.rows());
    const std::size_t c = rng.next_below(param.cols());
    const float fd = fd_entry(param, r, c, objective);
    const float an = analytic(r, c);
    const float tol =
        0.05F * std::max(std::fabs(fd), std::fabs(an)) + 3e-3F;
    EXPECT_NEAR(an, fd, tol) << what << " entry (" << r << "," << c << ")";
  }
}

// --- op-level gradient checks ---------------------------------------------------

TEST(BackwardOps, MatmulGrad) {
  Rng rng(1);
  Tensor a = rng.normal_tensor(4, 6, 1.0F);
  Tensor b = rng.normal_tensor(6, 3, 1.0F);
  const Tensor proj = rng.normal_tensor(4, 3, 1.0F);
  const MatmulGrads grads = matmul_grad(a, b, proj);
  const auto objective = [&] { return project(matmul(a, b), proj); };
  expect_grad_matches(a, grads.da, objective, rng, 10, "matmul dA");
  expect_grad_matches(b, grads.db, objective, rng, 10, "matmul dB");
  EXPECT_THROW((void)matmul_grad(a, b, Tensor(3, 3)), std::invalid_argument);
}

TEST(BackwardOps, SoftmaxGrad) {
  Rng rng(2);
  Tensor x = rng.normal_tensor(3, 7, 1.0F);
  const Tensor proj = rng.normal_tensor(3, 7, 1.0F);
  const float scale = 0.35F;
  const Tensor y = softmax_rows(x, scale);
  const Tensor dx = softmax_rows_grad(y, proj, scale);
  const auto objective = [&] { return project(softmax_rows(x, scale), proj); };
  expect_grad_matches(x, dx, objective, rng, 12, "softmax dX");
}

TEST(BackwardOps, LayerNormGrad) {
  Rng rng(3);
  Tensor x = rng.normal_tensor(4, 10, 1.5F);
  Tensor gamma = rng.normal_tensor(1, 10, 1.0F);
  Tensor beta = rng.normal_tensor(1, 10, 1.0F);
  const Tensor proj = rng.normal_tensor(4, 10, 1.0F);
  const LayerNormGrads grads = layernorm_rows_grad(x, gamma, proj);
  const auto objective = [&] {
    return project(layernorm_rows(x, gamma, beta), proj);
  };
  expect_grad_matches(x, grads.dx, objective, rng, 12, "layernorm dX");
  expect_grad_matches(gamma, grads.dgamma, objective, rng, 8,
                      "layernorm dGamma");
  expect_grad_matches(beta, grads.dbeta, objective, rng, 8,
                      "layernorm dBeta");
}

TEST(BackwardOps, ActivationGrads) {
  Rng rng(4);
  Tensor x = rng.normal_tensor(5, 8, 1.2F);
  const Tensor proj = rng.normal_tensor(5, 8, 1.0F);
  {
    const Tensor dx = gelu_grad(x, proj);
    const auto objective = [&] { return project(gelu(x), proj); };
    expect_grad_matches(x, dx, objective, rng, 12, "gelu dX");
  }
  {
    const Tensor dx = relu_grad(x, proj);
    const auto objective = [&] { return project(relu(x), proj); };
    // ReLU kinks at 0 break FD there; our random entries are ~N(0,1.2) so
    // landing within eps of 0 is rare but possible — sample fewer points.
    expect_grad_matches(x, dx, objective, rng, 6, "relu dX");
  }
}

TEST(BackwardOps, BiasGradIsColumnSum) {
  const Tensor dy{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(bias_grad(dy), (Tensor{{9, 12}}));
}

// --- full layer gradient check ---------------------------------------------------

class LayerBackwardCheck : public ::testing::TestWithParam<bool> {};

TEST_P(LayerBackwardCheck, MatchesFiniteDifferences) {
  const bool causal = GetParam();
  const LayerConfig cfg{.hidden = 8,
                        .heads = 2,
                        .head_dim = 4,
                        .ffn_dim = 12,
                        .activation = Activation::kGelu,
                        .causal = causal};
  Rng rng(5);
  TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  Tensor x = rng.normal_tensor(5, cfg.hidden, 1.0F);
  const Tensor proj = rng.normal_tensor(5, cfg.hidden, 1.0F);

  LayerCache cache;
  const Tensor out = layer_forward_cached(layer, x, cache);
  // The cached forward must agree with the production forward.
  EXPECT_TRUE(allclose(out, layer.forward(x), 1e-5F));

  const LayerBackwardResult back = layer_backward(layer, cache, proj);
  const auto objective = [&] { return project(layer.forward(x), proj); };

  expect_grad_matches(x, back.dx, objective, rng, 10, "layer dX");

  LayerWeights& w = layer.mutable_weights();
  expect_grad_matches(w.attention.heads[0].wq, back.grads.heads[0].dwq,
                      objective, rng, 6, "dWq");
  expect_grad_matches(w.attention.heads[1].wk, back.grads.heads[1].dwk,
                      objective, rng, 6, "dWk");
  expect_grad_matches(w.attention.heads[0].wv, back.grads.heads[0].dwv,
                      objective, rng, 6, "dWv");
  expect_grad_matches(w.attention.wo, back.grads.dwo, objective, rng, 6,
                      "dWo");
  expect_grad_matches(w.attention.bo, back.grads.dbo, objective, rng, 4,
                      "dbo");
  expect_grad_matches(w.ln_attention.gamma, back.grads.dln1_gamma, objective,
                      rng, 4, "dLN1.gamma");
  expect_grad_matches(w.ffn.w1, back.grads.dw1, objective, rng, 6, "dW1");
  expect_grad_matches(w.ffn.b1, back.grads.db1, objective, rng, 4, "db1");
  expect_grad_matches(w.ffn.w2, back.grads.dw2, objective, rng, 6, "dW2");
  expect_grad_matches(w.ffn.b2, back.grads.db2, objective, rng, 4, "db2");
  expect_grad_matches(w.ln_ffn.gamma, back.grads.dln2_gamma, objective, rng,
                      4, "dLN2.gamma");
  expect_grad_matches(w.ln_ffn.beta, back.grads.dln2_beta, objective, rng, 4,
                      "dLN2.beta");
}

INSTANTIATE_TEST_SUITE_P(Masks, LayerBackwardCheck, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Causal" : "Bidirectional";
                         });

// --- loss --------------------------------------------------------------------------

TEST(Loss, CrossEntropyValueAndGradient) {
  Rng rng(6);
  Tensor logits = rng.normal_tensor(3, 5, 1.0F);
  const std::size_t labels_arr[] = {2, 0, 4};
  const std::span<const std::size_t> labels(labels_arr);
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_GT(res.loss, 0.0F);

  // FD check of a few logit gradients.
  const auto objective = [&] {
    return softmax_cross_entropy(logits, labels).loss;
  };
  for (const auto& [r, c] : {std::pair<std::size_t, std::size_t>{0, 2},
                            {1, 1},
                            {2, 4},
                            {2, 0}}) {
    const float fd = fd_entry(logits, r, c, objective, 5e-3F);
    EXPECT_NEAR(res.dlogits(r, c), fd, 5e-3F);
  }
}

TEST(Loss, PerfectPredictionHasTinyLossAndGradient) {
  Tensor logits(1, 3);
  logits(0, 1) = 30.0F;
  const std::size_t labels_arr[] = {1};
  const LossResult res =
      softmax_cross_entropy(logits, std::span<const std::size_t>(labels_arr));
  EXPECT_LT(res.loss, 1e-5F);
  EXPECT_LT(std::fabs(res.dlogits(0, 1)), 1e-5F);
}

TEST(Loss, Validation) {
  const Tensor logits(2, 3);
  const std::size_t one[] = {0};
  EXPECT_THROW((void)softmax_cross_entropy(
                   logits, std::span<const std::size_t>(one)),
               std::invalid_argument);
  const std::size_t bad[] = {0, 9};
  EXPECT_THROW((void)softmax_cross_entropy(
                   logits, std::span<const std::size_t>(bad)),
               std::out_of_range);
}

// --- optimizer utilities ---------------------------------------------------------

TEST(Sgd, FlattenRoundTrip) {
  const LayerConfig cfg{.hidden = 8,
                        .heads = 2,
                        .head_dim = 4,
                        .ffn_dim = 12,
                        .activation = Activation::kGelu};
  Rng rng(10);
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  LayerCache cache;
  const Tensor x = rng.normal_tensor(4, cfg.hidden, 1.0F);
  (void)layer_forward_cached(layer, x, cache);
  const LayerBackwardResult back =
      layer_backward(layer, cache, rng.normal_tensor(4, cfg.hidden, 1.0F));

  const Tensor flat = flatten_grads(back.grads);
  EXPECT_EQ(flat.size(),
            layer.weights().parameter_count());  // one slot per parameter
  LayerGrads restored = zero_grads_like(layer.weights());
  unflatten_grads(flat, restored);
  EXPECT_EQ(flatten_grads(restored), flat);
  EXPECT_EQ(restored.heads[1].dwk, back.grads.heads[1].dwk);
  EXPECT_THROW(unflatten_grads(Tensor(1, 3), restored),
               std::invalid_argument);
}

TEST(Sgd, AccumulateAndScale) {
  const LayerConfig cfg{.hidden = 8,
                        .heads = 2,
                        .head_dim = 4,
                        .ffn_dim = 12,
                        .activation = Activation::kGelu};
  Rng rng(11);
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  LayerGrads a = zero_grads_like(layer.weights());
  LayerGrads b = zero_grads_like(layer.weights());
  a.dw1(0, 0) = 2.0F;
  b.dw1(0, 0) = 3.0F;
  accumulate_grads(a, b);
  EXPECT_EQ(a.dw1(0, 0), 5.0F);
  scale_grads(a, 0.5F);
  EXPECT_EQ(a.dw1(0, 0), 2.5F);
}

TEST(Sgd, ApplyStepReducesProjectedLoss) {
  // One SGD step along the true gradient must reduce the objective.
  const LayerConfig cfg{.hidden = 8,
                        .heads = 2,
                        .head_dim = 4,
                        .ffn_dim = 12,
                        .activation = Activation::kGelu};
  Rng rng(12);
  TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const Tensor x = rng.normal_tensor(5, cfg.hidden, 1.0F);
  const Tensor proj = rng.normal_tensor(5, cfg.hidden, 1.0F);

  LayerCache cache;
  (void)layer_forward_cached(layer, x, cache);
  const LayerBackwardResult back = layer_backward(layer, cache, proj);
  const float before = project(layer.forward(x), proj);
  apply_sgd(layer.mutable_weights(), back.grads, 1e-2F);
  const float after = project(layer.forward(x), proj);
  EXPECT_LT(after, before);
}

// --- §V-C training communication ----------------------------------------------------

TEST(TrainingComm, TpPaysTwiceItsInferenceVolume) {
  const ModelSpec spec = bert_large_spec();
  // Forward + transposed backward = 2x the inference all-reduce volume.
  EXPECT_EQ(tp_training_elements_per_device(spec, 200, 4),
            2ULL * spec.num_layers *
                tp_elements_per_device_layer(200, 1024, 4));
}

TEST(TrainingComm, WeightSyncAmortizesOverBatch) {
  const ModelSpec spec = bert_large_spec();
  const std::uint64_t b1 =
      voltage_training_elements_per_device(spec, 200, 4, 1);
  const std::uint64_t b8 =
      voltage_training_elements_per_device(spec, 200, 4, 8);
  // Eight samples cost far less than 8x one sample: the parameter sync is
  // paid once per batch.
  EXPECT_LT(b8, 8 * b1);
}

TEST(TrainingComm, CrossoverExistsAndIsFinite) {
  // BERT-Large has ~335M parameters, so the per-batch weight sync dwarfs
  // per-sample activation traffic at small batches — TP wins training at
  // batch 1 (exactly the paper's point that Voltage targets inference) but
  // the replicated-weights step wins once the batch amortizes the sync.
  const ModelSpec spec = bert_large_spec();
  const std::size_t crossover =
      training_comm_crossover_batch(spec, 200, 4, 4096);
  EXPECT_GT(crossover, 1U);
  EXPECT_LT(crossover, 4096U);
  // Below the crossover TP moves fewer elements.
  EXPECT_GT(voltage_training_elements_per_device(spec, 200, 4, 1),
            tp_training_elements_per_device(spec, 200, 4));
}

TEST(TrainingComm, SingleDeviceIsFree) {
  const ModelSpec spec = gpt2_spec();
  EXPECT_EQ(voltage_training_elements_per_device(spec, 200, 1, 16), 0U);
  EXPECT_EQ(tp_training_elements_per_device(spec, 200, 1), 0U);
}

}  // namespace
}  // namespace voltage
