// Tests of the position-wise partition machinery: partition schemes,
// partitioned attention (both computation orders), Algorithm 1, and the
// central correctness invariant — partitions reassemble to exactly the
// full-sequence result.
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "partition/partitioned_attention.h"
#include "partition/partitioned_layer.h"
#include "partition/scheme.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/attention.h"
#include "transformer/layer.h"
#include "transformer/weights.h"

namespace voltage {
namespace {

LayerConfig test_config(bool causal = false) {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = causal};
}

// --- PartitionScheme ---------------------------------------------------------

TEST(PartitionScheme, EvenSplit) {
  const PartitionScheme scheme = PartitionScheme::even(4);
  const auto ranges = scheme.ranges(100);
  ASSERT_EQ(ranges.size(), 4U);
  for (const Range& r : ranges) EXPECT_EQ(r.size(), 25U);
  EXPECT_EQ(ranges.front().begin, 0U);
  EXPECT_EQ(ranges.back().end, 100U);
}

TEST(PartitionScheme, RejectsInvalidRatios) {
  EXPECT_THROW(PartitionScheme({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(PartitionScheme({0.5, -0.1, 0.6}), std::invalid_argument);
  EXPECT_THROW(PartitionScheme({}), std::invalid_argument);
  EXPECT_THROW(PartitionScheme({1.5, -0.5}), std::invalid_argument);
  EXPECT_NO_THROW(PartitionScheme({0.3, 0.7}));
}

TEST(PartitionScheme, ZeroRatioDeviceGetsEmptyRange) {
  const PartitionScheme scheme({0.5, 0.0, 0.5});
  const auto ranges = scheme.ranges(10);
  EXPECT_EQ(ranges[0].size(), 5U);
  EXPECT_TRUE(ranges[1].empty());
  EXPECT_EQ(ranges[2].size(), 5U);
}

TEST(PartitionScheme, ProportionalWeights) {
  const PartitionScheme scheme = PartitionScheme::proportional({1.0, 3.0});
  const auto ranges = scheme.ranges(100);
  EXPECT_EQ(ranges[0].size(), 25U);
  EXPECT_EQ(ranges[1].size(), 75U);
  EXPECT_THROW(PartitionScheme::proportional({0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(PartitionScheme::proportional({1.0, -1.0}),
               std::invalid_argument);
}

TEST(PartitionScheme, ParseWeightLists) {
  const PartitionScheme scheme = PartitionScheme::parse("4,2,1,1");
  ASSERT_EQ(scheme.devices(), 4U);
  EXPECT_NEAR(scheme.ratios()[0], 0.5, 1e-9);
  EXPECT_NEAR(scheme.ratios()[3], 0.125, 1e-9);
  // Fractional weights and a single device work too.
  EXPECT_EQ(PartitionScheme::parse("0.25,0.75").devices(), 2U);
  EXPECT_EQ(PartitionScheme::parse("7").devices(), 1U);
}

TEST(PartitionScheme, ParseRejectsGarbage) {
  EXPECT_THROW((void)PartitionScheme::parse(""), std::invalid_argument);
  EXPECT_THROW((void)PartitionScheme::parse("1,,2"), std::invalid_argument);
  EXPECT_THROW((void)PartitionScheme::parse("1,abc"), std::invalid_argument);
  EXPECT_THROW((void)PartitionScheme::parse("1,2,"), std::invalid_argument);
  EXPECT_THROW((void)PartitionScheme::parse("-1,2"), std::invalid_argument);
}

TEST(PartitionScheme, OutOfRangeDeviceThrows) {
  const PartitionScheme scheme = PartitionScheme::even(2);
  EXPECT_THROW((void)scheme.range_for(2, 10), std::out_of_range);
}

// Property: for any K and N the ranges are sorted, disjoint and cover
// [0, N) exactly — the paper's §V-B bijectivity conditions.
class SchemeCover
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SchemeCover, DisjointCompleteCover) {
  const auto [k, n] = GetParam();
  const PartitionScheme scheme = PartitionScheme::even(k);
  const auto ranges = scheme.ranges(n);
  std::size_t expected_begin = 0;
  for (const Range& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.begin, r.end);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeCover,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 6, 7, 10),
                       ::testing::Values<std::size_t>(1, 7, 100, 197, 200,
                                                      256, 300)));

TEST(PartitionScheme, SkewedRatiosStillCover) {
  const PartitionScheme scheme({0.123, 0.456, 0.421});
  for (const std::size_t n : {1U, 13U, 100U, 999U}) {
    const auto ranges = scheme.ranges(n);
    std::size_t begin = 0;
    for (const Range& r : ranges) {
      EXPECT_EQ(r.begin, begin);
      begin = r.end;
    }
    EXPECT_EQ(begin, n);
  }
}

// --- partitioned attention: numerical equivalence ---------------------------

// For every partition, both computation orders must reproduce the matching
// rows of the full-sequence attention output. This is the algebraic claim
// behind Eq. (3) == Eq. (8).
class PartitionEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, AttentionOrder>> {};

TEST_P(PartitionEquivalence, HeadPartitionMatchesFullRows) {
  const auto [causal, order] = GetParam();
  Rng rng(21);
  const LayerConfig cfg = test_config(causal);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const std::size_t n = 17;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const HeadWeights& head = w.attention.heads[1];

  const Tensor full = attention_head_full(x, head, cfg.head_dim, causal);
  for (const Range p :
       {Range{0, 5}, Range{5, 11}, Range{11, 17}, Range{0, 17}, Range{16, 17}}) {
    const Tensor part =
        attention_head_partition(x, p, head, cfg.head_dim, causal, order);
    ASSERT_EQ(part.rows(), p.size());
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 2e-4F))
        << "range [" << p.begin << "," << p.end << ") order "
        << to_string(order);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, PartitionEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(AttentionOrder::kNaive,
                                         AttentionOrder::kReordered)));

TEST(PartitionedAttention, NaiveAndReorderedAgree) {
  Rng rng(22);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(20, cfg.hidden, 1.0F);
  const Range p{3, 9};
  const Tensor a = multi_head_attention_partition(x, p, w.attention, cfg,
                                                  OrderPolicy::kAlwaysNaive);
  const Tensor b = multi_head_attention_partition(
      x, p, w.attention, cfg, OrderPolicy::kAlwaysReordered);
  EXPECT_TRUE(allclose(a, b, 2e-4F));
}

TEST(PartitionedAttention, MatchesFullMultiHeadRows) {
  Rng rng(23);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(15, cfg.hidden, 1.0F);
  const Tensor full = multi_head_attention(x, w.attention, cfg);
  for (const OrderPolicy policy :
       {OrderPolicy::kAdaptive, OrderPolicy::kAlwaysNaive,
        OrderPolicy::kAlwaysReordered}) {
    const Range p{4, 10};
    const Tensor part =
        multi_head_attention_partition(x, p, w.attention, cfg, policy);
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 2e-4F));
  }
}

TEST(PartitionedAttention, EmptyRangeYieldsEmptyOutput) {
  Rng rng(24);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  const Tensor out = multi_head_attention_partition(
      x, Range{3, 3}, w.attention, cfg, OrderPolicy::kAdaptive);
  EXPECT_EQ(out.rows(), 0U);
  EXPECT_EQ(out.cols(), cfg.hidden);
}

TEST(PartitionedAttention, RangeBeyondInputThrows) {
  Rng rng(25);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  EXPECT_THROW(
      (void)attention_head_partition(x, Range{5, 9}, w.attention.heads[0],
                                     cfg.head_dim, false,
                                     AttentionOrder::kNaive),
      std::out_of_range);
}

TEST(PartitionedAttention, CausalPartitionUsesGlobalPositions) {
  // The mask inside a partition must offset by the partition start: the
  // partition rows of a causal model must match the full causal output.
  Rng rng(26);
  const LayerConfig cfg = test_config(/*causal=*/true);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(12, cfg.hidden, 1.0F);
  const Tensor full = multi_head_attention(x, w.attention, cfg);
  const Range p{6, 12};
  for (const OrderPolicy policy :
       {OrderPolicy::kAlwaysNaive, OrderPolicy::kAlwaysReordered}) {
    const Tensor part =
        multi_head_attention_partition(x, p, w.attention, cfg, policy);
    EXPECT_TRUE(allclose(part, full.slice_rows(6, 12), 2e-4F));
  }
}

// --- Algorithm 1: partitioned transformer layer ------------------------------

class PartitionedLayer : public ::testing::TestWithParam<OrderPolicy> {};

TEST_P(PartitionedLayer, MatchesFullLayerRows) {
  Rng rng(27);
  const LayerConfig cfg = test_config();
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 19;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = layer.forward(x);
  for (const Range p : {Range{0, 7}, Range{7, 13}, Range{13, 19}}) {
    const Tensor part = partitioned_layer_forward(layer, x, p, GetParam());
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 5e-4F));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PartitionedLayer,
                         ::testing::Values(OrderPolicy::kAdaptive,
                                           OrderPolicy::kAlwaysNaive,
                                           OrderPolicy::kAlwaysReordered));

TEST(PartitionedLayerAssembly, SchemePartitionsReassembleExactly) {
  // Distributing a layer with any partition scheme and reassembling the
  // partitions equals the full forward — the invariant Algorithm 2 rests on.
  Rng rng(28);
  const LayerConfig cfg = test_config();
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 23;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = layer.forward(x);

  for (const std::size_t k : {1U, 2U, 3U, 5U}) {
    const PartitionScheme scheme = PartitionScheme::even(k);
    Tensor assembled(n, cfg.hidden);
    for (std::size_t i = 0; i < k; ++i) {
      const Range r = scheme.range_for(i, n);
      assembled.set_rows(
          r.begin, partitioned_layer_forward(layer, x, r,
                                             OrderPolicy::kAdaptive));
    }
    EXPECT_TRUE(allclose(assembled, full, 5e-4F)) << "k=" << k;
  }
}

TEST(PartitionedLayerAssembly, CausalLayerReassembles) {
  Rng rng(29);
  const LayerConfig cfg = test_config(/*causal=*/true);
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 16;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = layer.forward(x);
  const PartitionScheme scheme = PartitionScheme::even(4);
  Tensor assembled(n, cfg.hidden);
  for (std::size_t i = 0; i < 4; ++i) {
    const Range r = scheme.range_for(i, n);
    assembled.set_rows(r.begin, partitioned_layer_forward(layer, x, r));
  }
  EXPECT_TRUE(allclose(assembled, full, 5e-4F));
}

TEST(PartitionedLayerAssembly, HeterogeneousSchemeReassembles) {
  Rng rng(30);
  const LayerConfig cfg = test_config();
  const TransformerLayer layer(cfg, init_layer_weights(cfg, rng));
  const std::size_t n = 21;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = layer.forward(x);
  const PartitionScheme scheme({0.6, 0.0, 0.1, 0.3});
  Tensor assembled(n, cfg.hidden);
  for (std::size_t i = 0; i < scheme.devices(); ++i) {
    const Range r = scheme.range_for(i, n);
    if (r.empty()) continue;
    assembled.set_rows(r.begin, partitioned_layer_forward(layer, x, r));
  }
  EXPECT_TRUE(allclose(assembled, full, 5e-4F));
}

TEST(PartitionedLayerStack, MultiLayerDistributedMatchesSequential) {
  // Simulate Algorithm 2's layer loop in-process: partition, assemble,
  // repeat — must equal sequential full forwards.
  Rng rng(31);
  const LayerConfig cfg = test_config();
  std::vector<TransformerLayer> layers;
  for (int l = 0; l < 3; ++l) {
    layers.emplace_back(cfg, init_layer_weights(cfg, rng));
  }
  const std::size_t n = 18;
  Tensor x_full = rng.normal_tensor(n, cfg.hidden, 1.0F);
  Tensor x_dist = x_full;
  const PartitionScheme scheme = PartitionScheme::even(3);
  for (const TransformerLayer& layer : layers) {
    x_full = layer.forward(x_full);
    Tensor next(n, cfg.hidden);
    for (std::size_t i = 0; i < 3; ++i) {
      const Range r = scheme.range_for(i, n);
      next.set_rows(r.begin, partitioned_layer_forward(layer, x_dist, r));
    }
    x_dist = next;
  }
  EXPECT_TRUE(allclose(x_dist, x_full, 2e-3F));
}

}  // namespace
}  // namespace voltage
