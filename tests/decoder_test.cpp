// Tests of the KV-cache incremental decoder: token-for-token equivalence
// with full recomputation, cache bookkeeping, and misuse handling.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

TEST(IncrementalDecoder, RequiresCausalLm) {
  const TransformerModel bert = make_model(mini_bert_spec());
  EXPECT_THROW(IncrementalDecoder{bert}, std::invalid_argument);
}

TEST(IncrementalDecoder, PrimeMatchesFullForward) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);
  const auto prompt = random_tokens(14, model.spec().vocab_size, 1);
  const Tensor incremental = decoder.prime(prompt);
  const Tensor full = model.infer(prompt);
  EXPECT_TRUE(allclose(incremental, full, 2e-3F));
  EXPECT_EQ(decoder.position(), 14U);
}

TEST(IncrementalDecoder, GreedyDecodeMatchesRecompute) {
  // The expensive invariant: N cached steps == N full recomputations.
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);

  std::vector<TokenId> context =
      random_tokens(10, model.spec().vocab_size, 2);
  Tensor logits = decoder.prime(context);
  for (int step = 0; step < 8; ++step) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    // Reference: rerun the whole grown context from scratch.
    context.push_back(next);
    const Tensor reference = model.infer(context);
    logits = decoder.step(next);
    EXPECT_TRUE(allclose(logits, reference, 5e-3F)) << "step " << step;
    EXPECT_EQ(argmax_row(logits, 0), argmax_row(reference, 0))
        << "diverged at step " << step;
  }
  EXPECT_EQ(decoder.position(), context.size());
}

TEST(IncrementalDecoder, ResetStartsFresh) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);
  const auto a = random_tokens(6, model.spec().vocab_size, 3);
  const auto b = random_tokens(9, model.spec().vocab_size, 4);
  (void)decoder.prime(a);
  (void)decoder.step(1);
  decoder.reset();
  EXPECT_EQ(decoder.position(), 0U);
  // After reset, priming with b must equal a fresh decoder's output.
  IncrementalDecoder fresh(model);
  EXPECT_TRUE(allclose(decoder.prime(b), fresh.prime(b), 1e-5F));
}

TEST(IncrementalDecoder, RePrimeImplicitlyResets) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);
  const auto a = random_tokens(5, model.spec().vocab_size, 5);
  (void)decoder.prime(a);
  const Tensor again = decoder.prime(a);
  EXPECT_TRUE(allclose(again, model.infer(a), 2e-3F));
  EXPECT_EQ(decoder.position(), 5U);
}

TEST(IncrementalDecoder, MisuseThrows) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);
  EXPECT_THROW((void)decoder.step(0), std::logic_error);
  EXPECT_THROW((void)decoder.prime({}), std::invalid_argument);
}

TEST(IncrementalDecoder, ContextWindowBound) {
  ModelSpec tiny = mini_gpt2_spec();
  tiny.max_positions = 8;
  const TransformerModel model(tiny, 1);
  IncrementalDecoder decoder(model);
  (void)decoder.prime(random_tokens(7, tiny.vocab_size, 6));
  (void)decoder.step(1);  // position 8 == limit
  EXPECT_THROW((void)decoder.step(2), std::length_error);
}

}  // namespace
}  // namespace voltage
