// The reproduction gate: every quantitative claim in the paper's
// evaluation (§VI) and analysis (§IV-V) encoded as a test at the paper's
// full model scales. Latency claims run through the calibrated simulator
// (driven by the implementation's exact operation/byte counts); complexity
// claims are exact closed-form checks.
#include <gtest/gtest.h>

#include "collective/cost.h"
#include "parallel/latency_model.h"
#include "partition/flop_model.h"
#include "partition/order.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

sim::Cluster paper_cluster(std::size_t k, double mbps = 500.0) {
  return sim::Cluster::homogeneous(
      k,
      sim::DeviceSpec{.name = "vcpu", .mac_rate = 25e9,
                      .elementwise_rate = 4e9},
      LinkModel::mbps(mbps));
}

double voltage_total(const ModelSpec& spec, std::size_t k, double mbps) {
  const std::size_t n = paper_sequence_length(spec);
  return simulate_voltage(spec, n, paper_cluster(k, mbps),
                          PartitionScheme::even(k), OrderPolicy::kAdaptive)
      .total;
}

double single_total(const ModelSpec& spec) {
  return simulate_single_device(spec, paper_sequence_length(spec),
                                paper_cluster(1))
      .total;
}

// §VI headline: "reducing the inference latency of BERT by up to 27.9%
// with six devices, 29.1% and 32.1% for ViT and GPT2". Our cleaner fabric
// yields larger reductions (see EXPERIMENTS.md); the claim we gate on is
// that each model's K=6 reduction is at least the paper's number.
class HeadlineReduction
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(HeadlineReduction, AtLeastThePapersGain) {
  const auto [name, paper_gain] = GetParam();
  const ModelSpec spec = *spec_by_name(name);
  const double single = single_total(spec);
  const double voltage = voltage_total(spec, 6, 500.0);
  const double gain = 100.0 * (single - voltage) / single;
  EXPECT_GE(gain, paper_gain) << name;
  EXPECT_LE(gain, 75.0) << name << " (sanity upper bound)";
}

INSTANTIATE_TEST_SUITE_P(
    Models, HeadlineReduction,
    ::testing::Values(std::pair<const char*, double>{"bert", 27.9},
                      std::pair<const char*, double>{"vit", 29.1},
                      std::pair<const char*, double>{"gpt2", 32.1}));

TEST(PaperClaims, CommunicationReducedFourTimes) {
  // Abstract: "reducing the communication size by 4x".
  for (const char* name : {"bert", "vit", "gpt2"}) {
    const ModelSpec spec = *spec_by_name(name);
    const std::size_t n = paper_sequence_length(spec);
    for (std::size_t k = 2; k <= 6; ++k) {
      const auto v = voltage_elements_per_device_layer(n, spec.layer.hidden, k);
      const auto t = tp_elements_per_device_layer(n, spec.layer.hidden, k);
      EXPECT_NEAR(static_cast<double>(t) / static_cast<double>(v), 4.0, 0.15)
          << name << " k=" << k;
    }
  }
}

TEST(PaperClaims, TpSlowerThanSingleAt500Mbps) {
  // §VI-B: "distributing inference workloads with tensor parallelism is
  // even slower than a single device."
  for (const char* name : {"bert", "vit", "gpt2"}) {
    const ModelSpec spec = *spec_by_name(name);
    const double single = single_total(spec);
    for (std::size_t k = 2; k <= 6; ++k) {
      EXPECT_GT(simulate_tensor_parallel(spec, paper_sequence_length(spec),
                                         paper_cluster(k))
                    .total,
                single)
          << name << " k=" << k;
    }
  }
}

TEST(PaperClaims, TpNeedsAboutAGigabit) {
  // §VI-B: "tensor parallelism requires at least 1000Mbps to outperform
  // the deployment on single device" (BERT, K=6).
  const ModelSpec spec = bert_large_spec();
  const double single = single_total(spec);
  EXPECT_GT(simulate_tensor_parallel(spec, 200, paper_cluster(6, 800)).total,
            single);
  EXPECT_LT(simulate_tensor_parallel(spec, 200, paper_cluster(6, 1000)).total,
            single * 1.05);
}

TEST(PaperClaims, TpRoughlyFourTimesWorseAt200Mbps) {
  // §VI-B: "tensor parallelism even takes about 4.2x longer to finish the
  // inference on BERT" at 200 Mbps.
  const ModelSpec spec = bert_large_spec();
  const double ratio =
      simulate_tensor_parallel(spec, 200, paper_cluster(6, 200)).total /
      single_total(spec);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

TEST(PaperClaims, VoltageBeatsTpAtEveryBandwidth) {
  // Fig. 5: "Voltage consistently outperforms tensor parallelism across
  // all scenarios."
  for (const char* name : {"bert", "vit", "gpt2"}) {
    const ModelSpec spec = *spec_by_name(name);
    const std::size_t n = paper_sequence_length(spec);
    for (const double mbps : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
      EXPECT_LT(voltage_total(spec, 6, mbps),
                simulate_tensor_parallel(spec, n, paper_cluster(6, mbps))
                    .total)
          << name << " @ " << mbps;
    }
  }
}

TEST(PaperClaims, SingleDeviceOrderIsAlreadyOptimal) {
  // §IV-B: "when the model is deployed on a single device, i.e. P = N, the
  // original computation flow is already the most efficient one."
  for (const char* name : {"bert", "vit", "gpt2"}) {
    const ModelSpec spec = *spec_by_name(name);
    const std::size_t n = paper_sequence_length(spec);
    const AttentionDims d{.n = n, .p = n, .f = spec.layer.hidden,
                          .fh = spec.layer.head_dim};
    EXPECT_FALSE(theorem2_prefers_reordered(d)) << name;
    EXPECT_EQ(cheapest_order_exhaustive(d).cost, gamma_eq3(d)) << name;
  }
}

TEST(PaperClaims, Fig6GapGrowsWithHeadDim) {
  // §VI-B: "when the attention feature dimension F_H increases from 64 to
  // 256, the gap between the naive and proposed method becomes greater" —
  // checked on exact operation counts at K=10, N=200 (the same quantity
  // Fig. 6's wall-clock measures).
  double previous_gap = 0.0;
  for (const std::size_t fh : {64U, 128U, 256U}) {
    const std::size_t h = 1024 / fh;
    const AttentionDims d{.n = 200, .p = 20, .f = 1024, .fh = fh};
    const double gap = static_cast<double>(gamma_eq3(d)) /
                       static_cast<double>(gamma_eq8(d));
    EXPECT_GT(gap, previous_gap) << "F_H=" << fh << " H=" << h;
    previous_gap = gap;
  }
  // ... and at F_H=256 the operation-count advantage is >= ~3x (paper
  // measures up to 3.4x wall-clock).
  EXPECT_GE(previous_gap, 2.8);
}

TEST(PaperClaims, NaivePartitionBottleneckedByKV) {
  // Theorem 1's consequence: "no matter how small the partition is ...
  // the time spent on computing K,V matrices remains the same".
  const AttentionDims tiny{.n = 300, .p = 1, .f = 1024, .fh = 64};
  const AttentionDims half{.n = 300, .p = 150, .f = 1024, .fh = 64};
  const std::uint64_t kv_cost = 2ULL * 300 * 1024 * 64;
  EXPECT_GE(gamma_eq3(tiny), kv_cost);
  // Shrinking P 150x saves less than 2.2x on the naive path...
  EXPECT_LT(static_cast<double>(gamma_eq3(half)) /
                static_cast<double>(gamma_eq3(tiny)),
            2.2);
  // ...while the reordered path scales by the full 150x.
  EXPECT_NEAR(static_cast<double>(gamma_eq8(half)) /
                  static_cast<double>(gamma_eq8(tiny)),
              150.0, 1.0);
}

TEST(PaperClaims, VoltageScalesMonotonicallyToSixDevices) {
  // Fig. 4: "with the increasing of available device, Voltage manages to
  // reduce the inference latency".
  for (const char* name : {"bert", "vit", "gpt2"}) {
    const ModelSpec spec = *spec_by_name(name);
    double prev = single_total(spec) * 1.001;
    for (std::size_t k = 1; k <= 6; ++k) {
      const double total = voltage_total(spec, k, 500.0);
      EXPECT_LT(total, prev) << name << " k=" << k;
      prev = total;
    }
  }
}

}  // namespace
}  // namespace voltage
