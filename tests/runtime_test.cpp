// Integration tests: the threaded Voltage runtime (Algorithm 2) and the
// tensor-parallel runtime must reproduce single-device inference exactly
// (up to float reassociation), with wire traffic matching §V-C.
#include <gtest/gtest.h>

#include "collective/cost.h"
#include "runtime/tensor_parallel_runtime.h"
#include "runtime/voltage_runtime.h"
#include "tensor/serialize.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

class VoltageRuntimeK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VoltageRuntimeK, BertMatchesSingleDevice) {
  const std::size_t k = GetParam();
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(30, model.spec().vocab_size, 11);
  const Tensor expected = model.infer(tokens);

  VoltageRuntime runtime(model, PartitionScheme::even(k));
  const Tensor logits = runtime.infer(tokens);
  EXPECT_TRUE(allclose(logits, expected, 2e-3F)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, VoltageRuntimeK,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 6));

TEST(VoltageRuntime, VitMatchesSingleDevice) {
  const TransformerModel model = make_model(mini_vit_spec());
  const Image image = random_image(32, 3, 7);
  const Tensor expected = model.infer(image);
  VoltageRuntime runtime(model, PartitionScheme::even(3));
  EXPECT_TRUE(allclose(runtime.infer(image), expected, 2e-3F));
}

TEST(VoltageRuntime, CausalGpt2MatchesSingleDevice) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto tokens = random_tokens(24, model.spec().vocab_size, 13);
  const Tensor expected = model.infer(tokens);
  VoltageRuntime runtime(model, PartitionScheme::even(4));
  EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F));
}

TEST(VoltageRuntime, FixedOrderPoliciesAgree) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(21, model.spec().vocab_size, 17);
  const Tensor expected = model.infer(tokens);
  for (const auto policy :
       {OrderPolicy::kAlwaysNaive, OrderPolicy::kAlwaysReordered}) {
    VoltageRuntime runtime(model, PartitionScheme::even(3), policy);
    EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F));
  }
}

TEST(VoltageRuntime, OverlapIsBitwiseInvariant) {
  // The gather/compute overlap reorders scheduling only, never FP summation:
  // with overlap on or off, at any K and under both fixed order policies,
  // distributed output must be bit-for-bit the same.
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(27, model.spec().vocab_size, 31);
  for (const auto policy :
       {OrderPolicy::kAlwaysNaive, OrderPolicy::kAlwaysReordered}) {
    for (const std::size_t k : {2U, 3U}) {
      VoltageRuntime with_overlap(model, PartitionScheme::even(k), policy);
      VoltageRuntime without(model, PartitionScheme::even(k), policy);
      without.set_overlap(false);
      const Tensor a = with_overlap.infer(tokens);
      const Tensor b = without.infer(tokens);
      ASSERT_EQ(a.rows(), b.rows());
      ASSERT_EQ(a.cols(), b.cols());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.flat()[i], b.flat()[i])
            << "k=" << k << " element " << i;
      }
    }
  }
}

TEST(VoltageRuntime, OverlapFallsBackOnShiftingSchedules) {
  // When consecutive layers assign a device rows it does not currently own,
  // the prologue overlap must silently fall back to the plain path — the
  // zero-copy gather still runs — and results stay correct.
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(22, model.spec().vocab_size, 37);
  const Tensor expected = model.infer(tokens);
  std::vector<PartitionScheme> schemes;
  for (std::size_t l = 0; l < model.spec().num_layers; ++l) {
    // Alternate who owns the big slice so layer l+1's range is usually not
    // inside layer l's.
    schemes.push_back(l % 2 == 0 ? PartitionScheme({0.6, 0.2, 0.2})
                                 : PartitionScheme({0.2, 0.2, 0.6}));
  }
  VoltageRuntime runtime(model, LayerSchedule(std::move(schemes)));
  EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F));
}

TEST(VoltageRuntime, HeterogeneousSchemeWithIdleDevice) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(20, model.spec().vocab_size, 19);
  const Tensor expected = model.infer(tokens);
  VoltageRuntime runtime(model, PartitionScheme({0.5, 0.0, 0.2, 0.3}));
  EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F));
}

TEST(VoltageRuntime, RepeatedInference) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  const auto a = random_tokens(10, model.spec().vocab_size, 1);
  const auto b = random_tokens(14, model.spec().vocab_size, 2);
  EXPECT_TRUE(allclose(runtime.infer(a), model.infer(a), 2e-3F));
  EXPECT_TRUE(allclose(runtime.infer(b), model.infer(b), 2e-3F));
  EXPECT_TRUE(allclose(runtime.infer(a), model.infer(a), 2e-3F));
}

TEST(VoltageRuntime, WireTrafficMatchesPaperFormula) {
  // Worker wire volume per non-final layer: (K-1) * P * F floats.
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 4;
  constexpr std::size_t kSeq = 32;  // divisible by K: exact formula applies
  const auto tokens = random_tokens(kSeq, model.spec().vocab_size, 23);
  VoltageRuntime runtime(model, PartitionScheme::even(kDevices));
  (void)runtime.infer(tokens);

  const std::size_t f = model.spec().layer.hidden;
  const std::size_t layers = model.spec().num_layers;
  const std::uint64_t gather_elems =
      voltage_elements_per_device_layer(kSeq, f, kDevices);
  // L-1 all-gathers plus the final partition to the terminal; every
  // message carries the per-message wire frame (net/message.h) on top of
  // its serialized tensor.
  const std::uint64_t expected_bytes =
      (layers - 1) *
          (gather_elems * sizeof(float) +
           (kDevices - 1) * (kTensorWireHeaderBytes + kWireFrameBytes)) +
      tensor_wire_bytes(kSeq / kDevices * f) + kWireFrameBytes;
  for (DeviceId d = 0; d < kDevices; ++d) {
    EXPECT_EQ(runtime.fabric().stats(d).bytes_sent, expected_bytes)
        << "device " << d;
  }
  // Terminal broadcast: K framed copies of the N x F features.
  EXPECT_EQ(runtime.fabric().stats(runtime.terminal_id()).bytes_sent,
            kDevices * (tensor_wire_bytes(kSeq * f) + kWireFrameBytes));
}

// --- tensor-parallel runtime ---------------------------------------------------

class TpRuntimeK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TpRuntimeK, MatchesSingleDevice) {
  const std::size_t k = GetParam();
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(26, model.spec().vocab_size, 29);
  const Tensor expected = model.infer(tokens);
  TensorParallelRuntime runtime(model, k);
  EXPECT_TRUE(allclose(runtime.infer(tokens), expected, 2e-3F)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, TpRuntimeK,
                         ::testing::Values<std::size_t>(1, 2, 3, 4));

TEST(TpRuntime, CausalModelMatches) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto tokens = random_tokens(18, model.spec().vocab_size, 31);
  TensorParallelRuntime runtime(model, 2);
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

TEST(TpRuntime, ShardsCoverHeadsAndFfn) {
  const TransformerModel model = make_model(mini_bert_spec());
  TensorParallelRuntime runtime(model, 3);
  std::size_t heads = 0;
  std::size_t cols = 0;
  for (std::size_t d = 0; d < 3; ++d) {
    heads += runtime.head_shard(d).size();
    cols += runtime.ffn_shard(d).size();
  }
  EXPECT_EQ(heads, model.spec().layer.heads);
  EXPECT_EQ(cols, model.spec().layer.ffn_dim);
}

TEST(TpRuntime, StarAllReduceMatchesRing) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(22, model.spec().vocab_size, 43);
  TensorParallelRuntime star(model, 3, TransportKind::kInMemory,
                             /*star_allreduce=*/true);
  EXPECT_TRUE(allclose(star.infer(tokens), model.infer(tokens), 2e-3F));
}

TEST(TpRuntime, RejectsMoreDevicesThanHeads) {
  const TransformerModel model = make_model(mini_bert_spec());
  EXPECT_THROW(TensorParallelRuntime(model, 5), std::invalid_argument);
  EXPECT_THROW(TensorParallelRuntime(model, 0), std::invalid_argument);
}

TEST(TrafficComparison, VoltageMovesRoughlyFourTimesLessThanTp) {
  // The §V-C headline measured on real wire traffic, end to end.
  const TransformerModel model = make_model(mini_bert_spec());
  constexpr std::size_t kDevices = 4;
  const auto tokens = random_tokens(32, model.spec().vocab_size, 37);

  VoltageRuntime voltage(model, PartitionScheme::even(kDevices));
  (void)voltage.infer(tokens);
  TensorParallelRuntime tp(model, kDevices);
  (void)tp.infer(tokens);

  const auto vbytes = voltage.fabric().stats(0).bytes_sent;
  const auto tbytes = tp.fabric().stats(0).bytes_sent;
  // Steady-state the ratio is 4x; with only 4 layers Voltage additionally
  // saves its final all-gather, which pushes the end-to-end ratio above 4.
  const double ratio =
      static_cast<double>(tbytes) / static_cast<double>(vbytes);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 5.5);
}

}  // namespace
}  // namespace voltage
