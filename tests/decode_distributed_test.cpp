// Distributed KV-cache decoding tests: the online-softmax merge must be
// mathematically exact (monolithic softmax over the union of position sets),
// and DistributedDecoder must decode the very same tokens as the
// single-device IncrementalDecoder and full-recompute VoltageRuntime on
// every transport, with per-step wire bytes independent of the context
// length. Failure containment follows the runtimes: a device crashing
// mid-decode surfaces its root cause in bounded time and leaves the decoder
// dead, not wedged.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/chaos.h"
#include "net/transport.h"
#include "partition/decode_attention.h"
#include "partition/scheme.h"
#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- Online-softmax merge: exactness against a monolithic softmax ---------

// Packs the online-softmax partial for scores[first..last) of each head:
// [max, denom, sum_j e^{s_j - max} v_j].
Tensor pack_partial(const std::vector<std::vector<float>>& scores,
                    const std::vector<std::vector<std::vector<float>>>& values,
                    std::size_t first, std::size_t last, std::size_t heads,
                    std::size_t head_dim) {
  Tensor packed = softmax_partial_identity(1, heads, head_dim);
  for (std::size_t h = 0; h < heads; ++h) {
    float* out = packed.row(0).data() + h * (head_dim + 2);
    float m = -std::numeric_limits<float>::infinity();
    for (std::size_t j = first; j < last; ++j) m = std::max(m, scores[h][j]);
    float denom = 0.0F;
    for (std::size_t j = first; j < last; ++j) {
      const float e = std::exp(scores[h][j] - m);
      denom += e;
      for (std::size_t c = 0; c < head_dim; ++c) {
        out[2 + c] += e * values[h][j][c];
      }
    }
    if (last > first) {
      out[0] = m;
      out[1] = denom;
    }
  }
  return packed;
}

TEST(SoftmaxMerge, ExactAgainstMonolithicSoftmax) {
  constexpr std::size_t kHeads = 2;
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kPositions = 7;
  Rng rng(17);
  std::vector<std::vector<float>> scores(kHeads,
                                         std::vector<float>(kPositions));
  std::vector<std::vector<std::vector<float>>> values(
      kHeads, std::vector<std::vector<float>>(kPositions,
                                              std::vector<float>(kDim)));
  for (std::size_t h = 0; h < kHeads; ++h) {
    for (std::size_t j = 0; j < kPositions; ++j) {
      scores[h][j] = 8.0F * rng.next_uniform() - 4.0F;
      for (std::size_t c = 0; c < kDim; ++c) {
        values[h][j][c] = 2.0F * rng.next_uniform() - 1.0F;
      }
    }
  }

  // Three uneven "devices": positions [0,4), [4,5), [5,7), merged pairwise.
  Tensor merged = pack_partial(scores, values, 0, 4, kHeads, kDim);
  const Tensor b = pack_partial(scores, values, 4, 5, kHeads, kDim);
  const Tensor c = pack_partial(scores, values, 5, 7, kHeads, kDim);
  softmax_merge_inplace(merged, b, kHeads, kDim);
  softmax_merge_inplace(merged, c, kHeads, kDim);

  for (std::size_t h = 0; h < kHeads; ++h) {
    const float* triple = merged.row(0).data() + h * (kDim + 2);
    // Monolithic reference: softmax over all positions at once (double
    // accumulation so the reference is strictly more precise).
    double denom = 0.0;
    double expected[kDim] = {0.0, 0.0, 0.0};
    float m = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < kPositions; ++j) m = std::max(m, scores[h][j]);
    for (std::size_t j = 0; j < kPositions; ++j) {
      const double e = std::exp(static_cast<double>(scores[h][j] - m));
      denom += e;
      for (std::size_t cc = 0; cc < kDim; ++cc) {
        expected[cc] += e * static_cast<double>(values[h][j][cc]);
      }
    }
    for (std::size_t cc = 0; cc < kDim; ++cc) {
      const double got =
          static_cast<double>(triple[2 + cc]) / static_cast<double>(triple[1]);
      EXPECT_NEAR(got, expected[cc] / denom, 1e-5) << "head " << h;
    }
  }
}

TEST(SoftmaxMerge, EmptyPartialIsIdentity) {
  constexpr std::size_t kHeads = 3;
  constexpr std::size_t kDim = 4;
  Rng rng(5);
  Tensor partial = softmax_partial_identity(1, kHeads, kDim);
  for (std::size_t h = 0; h < kHeads; ++h) {
    float* out = partial.row(0).data() + h * (kDim + 2);
    out[0] = rng.next_uniform();
    out[1] = 0.5F + rng.next_uniform();
    for (std::size_t c = 0; c < kDim; ++c) out[2 + c] = rng.next_uniform();
  }
  const Tensor identity = softmax_partial_identity(1, kHeads, kDim);

  // identity into partial: untouched, bitwise.
  Tensor acc = partial;
  softmax_merge_inplace(acc, identity, kHeads, kDim);
  EXPECT_EQ(acc, partial);

  // partial into identity: adopts the partial, bitwise.
  Tensor empty = identity;
  softmax_merge_inplace(empty, partial, kHeads, kDim);
  EXPECT_EQ(empty, partial);

  // identity into identity: still the identity, no NaNs from exp(-inf).
  Tensor both = identity;
  softmax_merge_inplace(both, identity, kHeads, kDim);
  EXPECT_EQ(both, identity);
}

TEST(SoftmaxMerge, FinalizeRejectsAllEmptyMerge) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const LayerConfig& cfg = model.layers()[0].config();
  const Tensor identity =
      softmax_partial_identity(1, cfg.heads, cfg.head_dim);
  EXPECT_THROW(
      (void)softmax_merge_finalize(identity, model.layers()[0].weights().attention,
                                   cfg),
      std::invalid_argument);
}

TEST(DecodeAttention, SplitCachesMergeToWholeCacheResult) {
  // Partial attention over a split cache, merged, must match the partial
  // over the whole cache — for both resident forms.
  const TransformerModel model = make_model(mini_gpt2_spec());
  const LayerConfig& cfg = model.layers()[0].config();
  const AttentionWeights& w = model.layers()[0].weights().attention;
  Rng rng(23);
  const Tensor rows = rng.uniform_tensor(6, cfg.hidden, -1.0F, 1.0F);
  const Tensor query = rng.uniform_tensor(1, cfg.hidden, -1.0F, 1.0F);

  for (const AttentionOrder order :
       {AttentionOrder::kNaive, AttentionOrder::kReordered}) {
    DecodeLayerCache whole;
    DecodeLayerCache left;
    DecodeLayerCache right;
    whole.init(order, cfg);
    left.init(order, cfg);
    right.init(order, cfg);
    whole.append(rows, w);
    left.append(rows.slice_rows(0, 4), w);
    right.append(rows.slice_rows(4, 6), w);
    EXPECT_EQ(whole.rows(), 6U);

    Tensor merged = decode_partial_attention(query, left, w, cfg);
    softmax_merge_inplace(merged, decode_partial_attention(query, right, w, cfg),
                          cfg.heads, cfg.head_dim);
    const Tensor reference = decode_partial_attention(query, whole, w, cfg);
    EXPECT_TRUE(allclose(softmax_merge_finalize(merged, w, cfg),
                         softmax_merge_finalize(reference, w, cfg), 1e-4F));
  }
}

TEST(DecodeAttention, ResidentFormsAgreeAndSizeAsDocumented) {
  // kNaive caches K and V (2 F floats/position); kReordered caches the raw
  // row (F floats/position). Both must produce the same attention output.
  const TransformerModel model = make_model(mini_gpt2_spec());
  const LayerConfig& cfg = model.layers()[0].config();
  const AttentionWeights& w = model.layers()[0].weights().attention;
  Rng rng(31);
  const Tensor rows = rng.uniform_tensor(5, cfg.hidden, -1.0F, 1.0F);
  const Tensor query = rng.uniform_tensor(1, cfg.hidden, -1.0F, 1.0F);

  DecodeLayerCache naive;
  DecodeLayerCache reordered;
  naive.init(AttentionOrder::kNaive, cfg);
  reordered.init(AttentionOrder::kReordered, cfg);
  naive.append(rows, w);
  reordered.append(rows, w);
  EXPECT_EQ(naive.memory_bytes(), 5 * 2 * cfg.hidden * sizeof(float));
  EXPECT_EQ(reordered.memory_bytes(), 5 * cfg.hidden * sizeof(float));

  const Tensor from_naive = softmax_merge_finalize(
      decode_partial_attention(query, naive, w, cfg), w, cfg);
  const Tensor from_reordered = softmax_merge_finalize(
      decode_partial_attention(query, reordered, w, cfg), w, cfg);
  EXPECT_TRUE(allclose(from_naive, from_reordered, 1e-3F));
}

// --- End-to-end decoding equivalence --------------------------------------

class DecodeTransportParam : public ::testing::TestWithParam<TransportKind> {};

TEST_P(DecodeTransportParam, TokensMatchIncrementalDecoderAcrossK) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  // 13 prompt tokens: not divisible by 2 or 4, so partitions are ragged.
  const auto prompt = random_tokens(13, model.spec().vocab_size, 21);
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DistributedDecoder decoder(model, PartitionScheme::even(k),
                               OrderPolicy::kAdaptive, GetParam());
    IncrementalDecoder reference(model);
    Tensor logits = decoder.prime(prompt);
    Tensor ref_logits = reference.prime(prompt);
    EXPECT_TRUE(allclose(logits, ref_logits, 5e-3F)) << "K=" << k;
    for (int step = 0; step < 8; ++step) {
      const auto next = static_cast<TokenId>(argmax_row(logits, 0));
      const auto ref_next = static_cast<TokenId>(argmax_row(ref_logits, 0));
      ASSERT_EQ(next, ref_next) << "K=" << k << " diverged at step " << step;
      logits = decoder.step(next);
      ref_logits = reference.step(next);
      EXPECT_TRUE(allclose(logits, ref_logits, 5e-3F))
          << "K=" << k << " step " << step;
    }
    EXPECT_EQ(decoder.position(), reference.position());
  }
}

TEST_P(DecodeTransportParam, StepWireBytesIndependentOfContextLength) {
  // The tentpole's O(1)-wire claim, asserted from fabric counters: every
  // decode step moves exactly the same number of bytes, no matter how long
  // the context has grown.
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(3),
                             OrderPolicy::kAdaptive, GetParam());
  Tensor logits = decoder.prime(random_tokens(16, model.spec().vocab_size, 9));
  std::uint64_t first_step_bytes = 0;
  for (int step = 0; step < 24; ++step) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    const std::uint64_t before = decoder.fabric().total_stats().bytes_sent;
    logits = decoder.step(next);
    const std::uint64_t bytes =
        decoder.fabric().total_stats().bytes_sent - before;
    if (step == 0) {
      first_step_bytes = bytes;
      EXPECT_GT(bytes, 0U);
    } else {
      EXPECT_EQ(bytes, first_step_bytes) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, DecodeTransportParam,
                         ::testing::Values(TransportKind::kInMemory,
                                           TransportKind::kUnixSocket),
                         [](const auto& info) {
                           return info.param == TransportKind::kInMemory
                                      ? "InMemory"
                                      : "UnixSocket";
                         });

TEST(DistributedDecoder, TokensMatchFullRecomputeRuntime) {
  // The expensive invariant, on an uneven partition: cached distributed
  // steps pick the exact tokens a full distributed recompute picks.
  const TransformerModel model = make_model(mini_gpt2_spec());
  const PartitionScheme scheme = PartitionScheme::parse("0.5,0.3,0.2");
  VoltageRuntime recompute(model, scheme);
  DistributedDecoder decoder(model, scheme);
  std::vector<TokenId> context = random_tokens(11, model.spec().vocab_size, 33);
  Tensor logits = decoder.prime(context);
  for (int step = 0; step < 6; ++step) {
    const Tensor reference = recompute.infer(context);
    EXPECT_TRUE(allclose(logits, reference, 5e-3F)) << "step " << step;
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    ASSERT_EQ(next, static_cast<TokenId>(argmax_row(reference, 0)))
        << "diverged at step " << step;
    context.push_back(next);
    logits = decoder.step(next);
  }
  // One more recompute so the last step's logits are checked too.
  EXPECT_TRUE(allclose(logits, recompute.infer(context), 5e-3F));
}

TEST(DistributedDecoder, BitwiseIdenticalAcrossTransports) {
  // Same FP operation chain on in-memory mailboxes and kernel sockets: the
  // logits must match bitwise at every step, not just to a tolerance.
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder memory(model, PartitionScheme::even(2),
                            OrderPolicy::kAdaptive, TransportKind::kInMemory);
  DistributedDecoder socket(model, PartitionScheme::even(2),
                            OrderPolicy::kAdaptive, TransportKind::kUnixSocket);
  const auto prompt = random_tokens(10, model.spec().vocab_size, 41);
  Tensor a = memory.prime(prompt);
  Tensor b = socket.prime(prompt);
  EXPECT_EQ(a, b);
  for (int step = 0; step < 6; ++step) {
    const auto next = static_cast<TokenId>(argmax_row(a, 0));
    a = memory.step(next);
    b = socket.step(next);
    EXPECT_EQ(a, b) << "step " << step;
  }
}

TEST(DistributedDecoder, ExtendMatchesStepByStepAndReference) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(9, model.spec().vocab_size, 55);
  const auto extension = random_tokens(5, model.spec().vocab_size, 56);

  DistributedDecoder extended(model, PartitionScheme::even(2));
  DistributedDecoder stepped(model, PartitionScheme::even(2));
  IncrementalDecoder reference(model);

  (void)extended.prime(prompt);
  Tensor by_steps = stepped.prime(prompt);
  (void)reference.prime(prompt);

  const Tensor by_extend = extended.extend(extension);
  for (const TokenId t : extension) by_steps = stepped.step(t);
  const Tensor ref = reference.extend(extension);

  EXPECT_EQ(by_extend, by_steps);  // extend is literally a loop of steps
  EXPECT_TRUE(allclose(by_extend, ref, 5e-3F));
  EXPECT_EQ(argmax_row(by_extend, 0), argmax_row(ref, 0));
  EXPECT_EQ(extended.position(), prompt.size() + extension.size());
}

TEST(DistributedDecoder, MisuseThrowsWithoutPoisoningTheMesh) {
  const TransformerModel bert = make_model(mini_bert_spec());
  EXPECT_THROW(DistributedDecoder(bert, PartitionScheme::even(2)),
               std::invalid_argument);

  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  EXPECT_THROW((void)decoder.step(0), std::logic_error);
  EXPECT_THROW((void)decoder.extend(random_tokens(2, 8, 1)), std::logic_error);
  EXPECT_THROW((void)decoder.prime({}), std::invalid_argument);
  // Input validation must not kill the workers: a real prime still works.
  const auto prompt = random_tokens(6, model.spec().vocab_size, 61);
  IncrementalDecoder reference(model);
  EXPECT_TRUE(
      allclose(decoder.prime(prompt), reference.prime(prompt), 5e-3F));
  EXPECT_FALSE(decoder.fabric().closed());

  // Bring-your-own transport must cover the workers plus the terminal.
  EXPECT_THROW(DistributedDecoder(model, PartitionScheme::even(2),
                                  OrderPolicy::kAdaptive,
                                  make_transport(TransportKind::kInMemory, 2)),
               std::invalid_argument);
}

TEST(DistributedDecoder, ContextWindowBound) {
  ModelSpec tiny = mini_gpt2_spec();
  tiny.max_positions = 8;
  const TransformerModel model(tiny, 1);
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  (void)decoder.prime(random_tokens(7, tiny.vocab_size, 3));
  (void)decoder.step(1);  // position 8 == limit
  EXPECT_THROW((void)decoder.step(2), std::length_error);
  EXPECT_THROW((void)decoder.prime(random_tokens(9, tiny.vocab_size, 4)),
               std::length_error);
}

// --- Failure containment ---------------------------------------------------

TEST(DistributedDecoder, MidDecodeCrashIsContainedWithRootCause) {
  // Device 1 goes dark partway through decoding: the crash must surface on
  // the terminal as the chaos crash (not a generic secondary close), in
  // bounded time, and leave the decoder dead for later calls.
  const TransformerModel model = make_model(mini_gpt2_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 4),
      ChaosOptions{.max_delay_seconds = 1e-4,
                   .seed = 13,
                   .crash = ChaosOptions::Crash{.device = 1,
                                                .after_sends = 40}});
  ChaosTransport* probe = chaos.get();
  DistributedDecoder decoder(model, PartitionScheme::even(3),
                             OrderPolicy::kAdaptive, std::move(chaos));
  const auto start = Clock::now();
  Tensor logits = decoder.prime(random_tokens(12, model.spec().vocab_size, 71));
  bool crashed = false;
  for (int step = 0; step < 64 && !crashed; ++step) {
    try {
      logits = decoder.step(static_cast<TokenId>(argmax_row(logits, 0)));
    } catch (const TransportClosedError& e) {
      crashed = true;
      EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(crashed) << "crash fault never surfaced";
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_GE(probe->chaos_stats().crashed_sends, 1U);
  // The decoder is dead: every later call fails fast instead of hanging.
  EXPECT_THROW((void)decoder.step(0), std::logic_error);
  EXPECT_THROW((void)decoder.prime(random_tokens(4, 8, 1)), std::logic_error);
}

TEST(DistributedDecoder, DropWithDeadlineTimesOutInsteadOfHanging) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  auto chaos = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kInMemory, 3),
      ChaosOptions{.max_delay_seconds = 0.0, .seed = 7,
                   .drop_probability = 1.0, .crash = {}});
  DistributedDecoder decoder(model, PartitionScheme::even(2),
                             OrderPolicy::kAdaptive, std::move(chaos));
  decoder.set_recv_timeout(0.5);
  const auto start = Clock::now();
  EXPECT_THROW((void)decoder.prime(random_tokens(8, model.spec().vocab_size, 2)),
               RecvTimeoutError);
  EXPECT_LT(seconds_since(start), 60.0);
}

// --- IncrementalDecoder::extend --------------------------------------------

TEST(IncrementalDecoderExtend, MatchesRePrimeBitwise) {
  // extend() is the prime() code path continued mid-sequence: the same FP
  // operations run in the same order, so the logits match a from-scratch
  // prime over the concatenated context bitwise.
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto a = random_tokens(8, model.spec().vocab_size, 81);
  const auto b = random_tokens(5, model.spec().vocab_size, 82);
  std::vector<TokenId> both(a.begin(), a.end());
  both.insert(both.end(), b.begin(), b.end());

  IncrementalDecoder grown(model);
  (void)grown.prime(a);
  const Tensor extended = grown.extend(b);

  IncrementalDecoder fresh(model);
  EXPECT_EQ(extended, fresh.prime(both));
  EXPECT_EQ(grown.position(), both.size());

  // And stepping after the extension continues the same sequence.
  const auto next = static_cast<TokenId>(argmax_row(extended, 0));
  EXPECT_EQ(grown.step(next), fresh.step(next));
}

TEST(IncrementalDecoderExtend, MisuseThrows) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  IncrementalDecoder decoder(model);
  EXPECT_THROW((void)decoder.extend(random_tokens(3, 8, 1)), std::logic_error);
  (void)decoder.prime(random_tokens(4, model.spec().vocab_size, 5));
  EXPECT_THROW((void)decoder.extend({}), std::invalid_argument);

  ModelSpec tiny = mini_gpt2_spec();
  tiny.max_positions = 8;
  const TransformerModel small(tiny, 1);
  IncrementalDecoder bounded(small);
  (void)bounded.prime(random_tokens(6, tiny.vocab_size, 6));
  EXPECT_THROW((void)bounded.extend(random_tokens(3, tiny.vocab_size, 7)),
               std::length_error);
}

}  // namespace
}  // namespace voltage
