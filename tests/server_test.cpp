// Tests of the InferenceServer: correctness of served results, concurrency
// from multiple submitters, statistics, and lifecycle handling.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

InferenceServer::Options options(std::size_t k) {
  return InferenceServer::Options{.scheme = PartitionScheme::even(k),
                                  .policy = OrderPolicy::kAdaptive,
                                  .transport = TransportKind::kInMemory};
}

TEST(InferenceServer, ServesCorrectResults) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(3));
  const auto tokens = random_tokens(20, model.spec().vocab_size, 81);
  auto future = server.submit(tokens);
  EXPECT_TRUE(allclose(future.get(), model.infer(tokens), 2e-3F));
  EXPECT_EQ(server.stats().completed, 1U);
}

TEST(InferenceServer, HandlesBurstsInFifoOrder) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  std::vector<std::vector<TokenId>> inputs;
  std::vector<std::future<Tensor>> futures;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    inputs.push_back(random_tokens(10 + seed, model.spec().vocab_size, seed));
    futures.push_back(server.submit(inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(allclose(futures[i].get(), model.infer(inputs[i]), 2e-3F))
        << "request " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8U);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_GE(stats.max, stats.p95);
  EXPECT_GE(stats.p95, stats.p50);
}

TEST(InferenceServer, ConcurrentSubmitters) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer server(model, options(2));
  constexpr int kThreads = 4;
  std::vector<std::thread> submitters;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      const auto tokens =
          random_tokens(8 + t, model.spec().vocab_size, 100 + t);
      auto future = server.submit(tokens);
      ok[t] = allclose(future.get(), model.infer(tokens), 2e-3F);
    });
  }
  for (auto& t : submitters) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << t;
}

TEST(InferenceServer, MixedModalities) {
  const TransformerModel model = make_model(mini_vit_spec());
  InferenceServer server(model, options(2));
  const Image image = random_image(32, 3, 9);
  auto future = server.submit(image);
  EXPECT_TRUE(allclose(future.get(), model.infer(image), 2e-3F));
}

TEST(InferenceServer, ShutdownRejectsNewButDrainsQueued) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  const auto tokens = random_tokens(15, model.spec().vocab_size, 7);
  auto pending = server.submit(tokens);
  server.shutdown();
  EXPECT_THROW((void)server.submit(tokens), std::runtime_error);
  // The already-queued request still completes.
  EXPECT_TRUE(allclose(pending.get(), model.infer(tokens), 2e-3F));
}

TEST(InferenceServer, PropagatesInferenceErrors) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  // A token beyond the vocabulary makes preprocessing throw; the future
  // must carry that exception instead of hanging.
  auto future = server.submit(std::vector<TokenId>{
      static_cast<TokenId>(model.spec().vocab_size + 5)});
  EXPECT_THROW((void)future.get(), std::out_of_range);
  // The server remains usable afterwards.
  const auto good = random_tokens(10, model.spec().vocab_size, 3);
  EXPECT_TRUE(allclose(server.submit(good).get(), model.infer(good), 2e-3F));
}

TEST(InferenceServer, WorksOverRealSockets) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model,
                         {.scheme = PartitionScheme::even(2),
                          .policy = OrderPolicy::kAdaptive,
                          .transport = TransportKind::kUnixSocket});
  const auto tokens = random_tokens(14, model.spec().vocab_size, 91);
  EXPECT_TRUE(
      allclose(server.submit(tokens).get(), model.infer(tokens), 2e-3F));
}

TEST(InferenceServer, EmptyStats) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(1));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 0U);
  EXPECT_EQ(stats.mean, 0.0);
  EXPECT_EQ(server.queue_depth(), 0U);
}

}  // namespace
}  // namespace voltage
