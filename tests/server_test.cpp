// Tests of the InferenceServer: correctness of served results, concurrency
// from multiple submitters, statistics, lifecycle handling, and failure
// containment (a poisoned runtime must fail one future, not the server).
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioned_layer.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "transformer/decoder.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

InferenceServer::Options options(std::size_t k) {
  return InferenceServer::Options{.scheme = PartitionScheme::even(k),
                                  .policy = OrderPolicy::kAdaptive,
                                  .transport = TransportKind::kInMemory};
}

TEST(InferenceServer, ServesCorrectResults) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(3));
  const auto tokens = random_tokens(20, model.spec().vocab_size, 81);
  auto future = server.submit(tokens);
  EXPECT_TRUE(allclose(future.get(), model.infer(tokens), 2e-3F));
  EXPECT_EQ(server.stats().completed, 1U);
}

TEST(InferenceServer, HandlesBurstsInFifoOrder) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  std::vector<std::vector<TokenId>> inputs;
  std::vector<std::future<Tensor>> futures;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    inputs.push_back(random_tokens(10 + seed, model.spec().vocab_size, seed));
    futures.push_back(server.submit(inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(allclose(futures[i].get(), model.infer(inputs[i]), 2e-3F))
        << "request " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8U);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_GE(stats.max, stats.p95);
  EXPECT_GE(stats.p95, stats.p50);
  // The sojourn decomposes into queue wait + service; with 8 requests
  // arriving at once behind a single dispatcher, later requests must have
  // waited, and every request was actually serviced.
  EXPECT_GT(stats.service.mean, 0.0);
  EXPECT_GT(stats.queue_wait.max, 0.0);
  EXPECT_GE(stats.queue_wait.max, stats.queue_wait.p95);
  EXPECT_GE(stats.queue_wait.p95, stats.queue_wait.p50);
  EXPECT_GE(stats.service.max, stats.service.p95);
  EXPECT_GE(stats.service.p95, stats.service.p50);
  // Mean sojourn is the mean of (wait + service); allow scheduling jitter.
  EXPECT_NEAR(stats.mean, stats.queue_wait.mean + stats.service.mean,
              0.25 * stats.mean);
  EXPECT_LE(stats.queue_wait.max, stats.max);
  EXPECT_LE(stats.service.max, stats.max);
}

TEST(InferenceServer, ConcurrentSubmitters) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer server(model, options(2));
  constexpr int kThreads = 4;
  std::vector<std::thread> submitters;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      const auto tokens =
          random_tokens(8 + t, model.spec().vocab_size, 100 + t);
      auto future = server.submit(tokens);
      ok[t] = allclose(future.get(), model.infer(tokens), 2e-3F);
    });
  }
  for (auto& t : submitters) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << t;
}

TEST(InferenceServer, MixedModalities) {
  const TransformerModel model = make_model(mini_vit_spec());
  InferenceServer server(model, options(2));
  const Image image = random_image(32, 3, 9);
  auto future = server.submit(image);
  EXPECT_TRUE(allclose(future.get(), model.infer(image), 2e-3F));
}

TEST(InferenceServer, ShutdownRejectsNewButDrainsQueued) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  const auto tokens = random_tokens(15, model.spec().vocab_size, 7);
  auto pending = server.submit(tokens);
  server.shutdown();
  EXPECT_THROW((void)server.submit(tokens), std::runtime_error);
  // The already-queued request still completes.
  EXPECT_TRUE(allclose(pending.get(), model.infer(tokens), 2e-3F));
}

TEST(InferenceServer, PropagatesInferenceErrors) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  // A token beyond the vocabulary makes preprocessing throw; the future
  // must carry that exception instead of hanging.
  auto future = server.submit(std::vector<TokenId>{
      static_cast<TokenId>(model.spec().vocab_size + 5)});
  EXPECT_THROW((void)future.get(), std::out_of_range);
  // The server remains usable afterwards.
  const auto good = random_tokens(10, model.spec().vocab_size, 3);
  EXPECT_TRUE(allclose(server.submit(good).get(), model.infer(good), 2e-3F));
}

TEST(InferenceServer, PoisonedRuntimeFailsOneFutureThenRecovers) {
  // A device thread failing mid-inference poisons the runtime's transport.
  // The dispatcher must reject exactly that request's future, rebuild the
  // runtime (carrying the installed partition executor over), and keep
  // serving later requests correctly.
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  auto armed = std::make_shared<std::atomic<bool>>(true);
  server.runtime().set_partition_executor(
      [&model, armed](std::size_t layer, const Tensor& x, Range p,
                      OrderPolicy policy) {
        if (layer == 1 && p.begin == 0 && armed->exchange(false)) {
          throw std::runtime_error("injected device fault");
        }
        return partitioned_layer_forward(model.layers()[layer], x, p, policy);
      });
  const auto tokens = random_tokens(12, model.spec().vocab_size, 21);
  auto doomed = server.submit(tokens);
  try {
    (void)doomed.get();
    FAIL() << "the poisoned request's future must carry the fault";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string_view(e.what()).find("injected device fault"),
              std::string_view::npos)
        << e.what();
  }
  // Later requests run on the rebuilt runtime — and still through the
  // carried-over (now disarmed) executor.
  EXPECT_TRUE(
      allclose(server.submit(tokens).get(), model.infer(tokens), 2e-3F));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1U);
  EXPECT_EQ(stats.runtime_rebuilds, 1U);
  EXPECT_EQ(stats.completed, 1U);
}

TEST(InferenceServer, RequestDeadlineUnhitLeavesResultsIntact) {
  // Plumbing check: a generous per-request deadline changes nothing on the
  // healthy path (the deadline only matters when a device wedges).
  const TransformerModel model = make_model(mini_bert_spec());
  auto opts = options(2);
  opts.request_deadline = 300.0;
  InferenceServer server(model, opts);
  EXPECT_EQ(server.runtime().recv_timeout(), 300.0);
  const auto tokens = random_tokens(10, model.spec().vocab_size, 33);
  EXPECT_TRUE(
      allclose(server.submit(tokens).get(), model.infer(tokens), 2e-3F));
}

TEST(InferenceServer, WorksOverRealSockets) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model,
                         {.scheme = PartitionScheme::even(2),
                          .policy = OrderPolicy::kAdaptive,
                          .transport = TransportKind::kUnixSocket});
  const auto tokens = random_tokens(14, model.spec().vocab_size, 91);
  EXPECT_TRUE(
      allclose(server.submit(tokens).get(), model.infer(tokens), 2e-3F));
}

TEST(InferenceServer, GenerateMatchesSingleDeviceGreedyDecode) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer server(model, options(2));
  const auto prompt = random_tokens(12, model.spec().vocab_size, 17);
  constexpr std::size_t kNewTokens = 6;
  auto future = server.submit_generate(prompt, kNewTokens);

  // Reference: the same greedy decode on a single-device KV cache.
  IncrementalDecoder reference(model);
  std::vector<TokenId> expected;
  Tensor logits = reference.prime(prompt);
  for (std::size_t i = 0; i < kNewTokens; ++i) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    expected.push_back(next);
    if (i + 1 < kNewTokens) logits = reference.step(next);
  }
  EXPECT_EQ(future.get(), expected);
  EXPECT_EQ(server.stats().completed, 1U);

  // The decoder persists across requests: a second generation still works
  // (each request re-primes, so results are independent of history).
  EXPECT_EQ(server.submit_generate(prompt, kNewTokens).get(), expected);
}

TEST(InferenceServer, ServesOnQuantizedPlane) {
  // Options.precision = kInt8 threads through to both engines: logits
  // requests run the int8 runtime, generation requests the int8 decoder.
  // Served predictions match the fp32 reference model's argmax, and the
  // served generation matches fp32 greedy decode token for token.
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer::Options opts = options(3);
  opts.precision = Precision::kInt8;
  InferenceServer server(model, opts);
  EXPECT_EQ(server.runtime().precision(), Precision::kInt8);

  const auto tokens = random_tokens(14, model.spec().vocab_size, 19);
  const Tensor served = server.submit(tokens).get();
  const Tensor exact = model.infer(tokens);
  ASSERT_TRUE(served.same_shape(exact));
  EXPECT_EQ(argmax_row(served, 0), argmax_row(exact, 0));

  constexpr std::size_t kNewTokens = 5;
  IncrementalDecoder reference(model);
  std::vector<TokenId> expected;
  Tensor logits = reference.prime(tokens);
  for (std::size_t i = 0; i < kNewTokens; ++i) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    expected.push_back(next);
    if (i + 1 < kNewTokens) logits = reference.step(next);
  }
  EXPECT_EQ(server.submit_generate(tokens, kNewTokens).get(), expected);
  EXPECT_EQ(server.stats().completed, 2U);
  EXPECT_EQ(server.stats().failed, 0U);
}

TEST(InferenceServer, GenerateAndLogitsRequestsInterleave) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer server(model, options(2));
  const auto prompt = random_tokens(9, model.spec().vocab_size, 23);
  auto generated = server.submit_generate(prompt, 3);
  auto logits = server.submit(prompt);
  EXPECT_EQ(generated.get().size(), 3U);
  EXPECT_TRUE(allclose(logits.get(), model.infer(prompt), 2e-3F));
  EXPECT_EQ(server.stats().completed, 2U);
}

TEST(InferenceServer, GenerateRejectsNonCausalModels) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(2));
  EXPECT_THROW((void)server.submit_generate(
                   random_tokens(8, model.spec().vocab_size, 2), 4),
               std::invalid_argument);
}

TEST(InferenceServer, GenerateFailureFailsOneFutureAndRebuildsDecoder) {
  // A bad prompt token makes the generation fail inside the dispatcher; the
  // future carries the error, the decoder is dropped, and the next
  // generation request succeeds on a fresh one.
  const TransformerModel model = make_model(mini_gpt2_spec());
  InferenceServer server(model, options(2));
  auto doomed = server.submit_generate(
      {static_cast<TokenId>(model.spec().vocab_size + 3)}, 2);
  EXPECT_THROW((void)doomed.get(), std::out_of_range);
  const auto good = random_tokens(10, model.spec().vocab_size, 29);
  EXPECT_EQ(server.submit_generate(good, 4).get().size(), 4U);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1U);
  EXPECT_EQ(stats.completed, 1U);
}

TEST(InferenceServer, EmptyStats) {
  const TransformerModel model = make_model(mini_bert_spec());
  InferenceServer server(model, options(1));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 0U);
  EXPECT_EQ(stats.mean, 0.0);
  EXPECT_EQ(stats.queue_wait.mean, 0.0);
  EXPECT_EQ(stats.service.mean, 0.0);
  EXPECT_EQ(server.queue_depth(), 0U);
}

TEST(InferenceServer, TracesQueueWaitAndServicePerRequest) {
  const TransformerModel model = make_model(mini_bert_spec());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  auto opts = options(2);
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  InferenceServer server(model, opts);
  constexpr std::size_t kRequests = 3;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        server.submit(random_tokens(10 + i, model.spec().vocab_size, i + 1)));
  }
  for (auto& f : futures) (void)f.get();

  // One queue_wait and one service span per request, on the serving track,
  // each carrying the request id.
  std::size_t waits = 0;
  std::size_t services = 0;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (std::string_view(e.category) != "serve") continue;
    EXPECT_EQ(e.track, obs::kServeTrack);
    EXPECT_GE(e.request, 0);
    EXPECT_LT(e.request, static_cast<std::int64_t>(kRequests));
    const std::string_view name(e.name);
    if (name == "queue_wait") waits += 1;
    if (name == "service") services += 1;
  }
  EXPECT_EQ(waits, kRequests);
  EXPECT_EQ(services, kRequests);
  EXPECT_EQ(metrics.counter("server.requests_completed").value(), kRequests);
  EXPECT_EQ(metrics.histogram("server.service_seconds").snapshot().count,
            kRequests);
}

}  // namespace
}  // namespace voltage
