// Tests of the discrete-event engine and the network simulator, including
// cross-validation against the closed-form collective costs in the
// homogeneous case, plus the fleet-scale serving stack: RNG sampling
// hygiene, percentile-convention consistency with obs::Histogram, traffic
// generators, the calibrated mesh model, and the fleet simulator.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "collective/cost.h"
#include "obs/metrics.h"
#include "parallel/latency_model.h"
#include "sim/cluster.h"
#include "sim/device.h"
#include "sim/engine.h"
#include "sim/fleet.h"
#include "sim/mesh_model.h"
#include "sim/netsim.h"
#include "sim/serving.h"
#include "sim/traffic.h"
#include "tensor/rng.h"

namespace voltage::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule(1.0, [&] {
    engine.schedule_after(0.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule(1.0, [] {});
  (void)engine.step();
  EXPECT_THROW(engine.schedule(0.5, [] {}), std::invalid_argument);
}

TEST(Engine, StepReturnsFalseWhenDrained) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule(0.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

// --- device model ---------------------------------------------------------------

TEST(DeviceSpec, ComputeTimeCombinesRates) {
  const DeviceSpec dev{.name = "d", .mac_rate = 1e9, .elementwise_rate = 1e8};
  EXPECT_DOUBLE_EQ(dev.compute_time(2'000'000'000ULL), 2.0);
  EXPECT_DOUBLE_EQ(dev.compute_time(0, 300'000'000ULL), 3.0);
  EXPECT_DOUBLE_EQ(dev.compute_time(1'000'000'000ULL, 100'000'000ULL), 2.0);
}

TEST(DeviceSpec, RejectsBadRates) {
  const DeviceSpec dev{.name = "d", .mac_rate = 0.0, .elementwise_rate = 1.0};
  EXPECT_THROW((void)dev.compute_time(1), std::invalid_argument);
}

TEST(Cluster, HomogeneousFactory) {
  const Cluster c = Cluster::homogeneous(
      4, DeviceSpec{.name = "edge", .mac_rate = 1e9, .elementwise_rate = 1e9},
      LinkModel::mbps(500));
  EXPECT_EQ(c.size(), 4U);
  EXPECT_NO_THROW(c.validate());
  EXPECT_THROW(Cluster{}.validate(), std::invalid_argument);
  EXPECT_THROW(Cluster::homogeneous(0, DeviceSpec{}, LinkModel{}),
               std::invalid_argument);
}

// --- netsim vs closed forms --------------------------------------------------

TEST(NetSim, AllGatherMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.003);
  const std::size_t bytes = 1 << 18;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 1.0);
    const auto done = sim_allgather_fullmesh(
        ready, std::vector<std::size_t>(k, bytes), link);
    const Seconds expected = 1.0 + allgather_fullmesh_duration(bytes, k, link);
    for (const SimTime t : done) EXPECT_NEAR(t, expected, 1e-9);
  }
}

TEST(NetSim, RingAllReduceMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.003);
  const std::size_t bytes = 1 << 20;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 0.5);
    const auto done = sim_ring_allreduce(ready, bytes, link);
    const Seconds expected = 0.5 + ring_allreduce_duration(bytes, k, link);
    for (const SimTime t : done) EXPECT_NEAR(t, expected, 1e-9);
  }
}

TEST(NetSim, StarAllReduceMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.002);
  const std::size_t bytes = 1 << 20;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 0.25);
    const auto done = sim_star_allreduce(ready, bytes, link);
    const Seconds expected = 0.25 + star_allreduce_duration(bytes, k, link);
    // The slowest receiver defines the collective's completion.
    EXPECT_NEAR(done.back(), expected, 1e-9);
    // The root finishes first (it only waits for the reduce phase).
    EXPECT_LT(done.front(), done.back());
  }
}

TEST(NetSim, SingleRankCollectivesAreInstant) {
  const LinkModel link = LinkModel::mbps(500);
  const std::vector<SimTime> ready{2.5};
  EXPECT_DOUBLE_EQ(sim_allgather_fullmesh(ready, {100}, link)[0], 2.5);
  EXPECT_DOUBLE_EQ(sim_ring_allreduce(ready, 100, link)[0], 2.5);
}

TEST(NetSim, StragglerDelaysEveryoneInAllGather) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  std::vector<SimTime> ready{0.0, 0.0, 5.0};  // rank 2 is late
  const auto done =
      sim_allgather_fullmesh(ready, std::vector<std::size_t>(3, 1000), link);
  // Everyone must wait for rank 2's data.
  EXPECT_GT(done[0], 5.0);
  EXPECT_GT(done[1], 5.0);
  // Rank 2 already has the early ranks' data; it finishes right at its own
  // readiness (their messages arrived long ago).
  EXPECT_NEAR(done[2], 5.0, 1e-9);
}

TEST(NetSim, SkewPropagatesThroughRing) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  const std::vector<SimTime> even(4, 0.0);
  std::vector<SimTime> skewed(4, 0.0);
  skewed[1] = 1.0;
  const auto done_even = sim_ring_allreduce(even, 1 << 20, link);
  const auto done_skew = sim_ring_allreduce(skewed, 1 << 20, link);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(done_skew[i], done_even[i]);
  }
  // The straggler pushes the whole ring back by roughly its lateness.
  EXPECT_GT(done_skew[0], done_even[0] + 0.9);
}

TEST(NetSim, BroadcastReceiversSerializedThroughRootNic) {
  const LinkModel link = LinkModel::mbps(80, 0.002);  // 10 MB/s
  const auto done = sim_broadcast(1.0, 1'000'000, 3, link);
  ASSERT_EQ(done.size(), 3U);
  EXPECT_NEAR(done[0], 1.0 + 0.002 + 0.1, 1e-9);
  EXPECT_NEAR(done[1], 1.0 + 0.002 + 0.2, 1e-9);
  EXPECT_NEAR(done[2], 1.0 + 0.002 + 0.3, 1e-9);
}

TEST(NetSim, GatherWaitsForLastArrival) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  const std::vector<SimTime> ready{0.0, 2.0};
  const std::vector<std::size_t> bytes{1000, 1000};
  const SimTime done = sim_gather_to_root(ready, bytes, link);
  EXPECT_NEAR(done, 2.0 + link.transfer_time(1000), 1e-9);
}

TEST(NetSim, ValidatesInputs) {
  const LinkModel link = LinkModel::mbps(100);
  EXPECT_THROW((void)sim_allgather_fullmesh({}, {}, link),
               std::invalid_argument);
  EXPECT_THROW((void)sim_allgather_fullmesh({0.0}, {1, 2}, link),
               std::invalid_argument);
  EXPECT_THROW((void)sim_gather_to_root({0.0}, {1, 2}, link),
               std::invalid_argument);
}

// --- sampling hygiene --------------------------------------------------------

TEST(Rng, UniformDoubleIsOpenAtZeroOverTenMillionDraws) {
  // The 24-bit next_uniform() returns exactly 0 with probability 2^-24;
  // the old inverse-CDF path clamped that to 1e-12, i.e. a phantom
  // -log(1e-12) = 27.6 inter-arrival, which fires dozens of times per
  // million-request simulation and corrupts max/p99 sojourns. The 53-bit
  // double draw is open at 0, so the sample maximum must stay within the
  // analytic extreme-value envelope: P(max of n Exp(1) draws > ln n + t)
  // ~= 1 - exp(-e^-t), under 5e-5 for t = 10.
  constexpr std::size_t kDraws = 10'000'000;
  Rng rng(20260808);
  double min_u = 1.0;
  double max_gap = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double u = rng.next_uniform_double();
    min_u = std::min(min_u, u);
    const double gap = -std::log(u);
    max_gap = std::max(max_gap, gap);
    sum += gap;
  }
  EXPECT_GT(min_u, 0.0);
  EXPECT_LT(min_u, 1e-5);  // the tail is actually explored...
  EXPECT_LT(max_gap, std::log(static_cast<double>(kDraws)) + 10.0);
  EXPECT_NEAR(sum / static_cast<double>(kDraws), 1.0, 5e-3);
}

TEST(Rng, SampleExponentialMatchesRateAndValidates) {
  Rng rng(7);
  double sum = 0.0;
  constexpr std::size_t kDraws = 200000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const Seconds dt = sample_exponential(rng, 4.0);
    ASSERT_GT(dt, 0.0);
    sum += dt;
  }
  EXPECT_NEAR(sum / static_cast<double>(kDraws), 0.25, 0.25 * 2e-2);
  EXPECT_THROW((void)sample_exponential(rng, 0.0), std::invalid_argument);
}

// --- percentile convention ---------------------------------------------------

TEST(Percentiles, SimSummaryBitIdenticalToObsHistogram) {
  // Same samples through the simulator's summary and obs::Histogram must
  // agree bit for bit — one nearest-rank helper serves both. Awkward n
  // values are exactly where floor(q*(n-1)) and ceil(q*n)-1 diverged.
  for (const std::size_t n : {1UL, 3UL, 10UL, 99UL, 100UL, 101UL, 1237UL}) {
    Rng rng(n);
    std::vector<double> samples(n);
    obs::Histogram hist;
    for (double& s : samples) {
      s = rng.next_uniform_double() * 10.0;
      hist.record(s);
    }
    const ServingReport rep = summarize_samples(samples);
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(rep.p50, snap.p50) << "n=" << n;
    EXPECT_EQ(rep.p95, snap.p95) << "n=" << n;
    EXPECT_EQ(rep.p99, snap.p99) << "n=" << n;
    EXPECT_EQ(rep.max, snap.max) << "n=" << n;
    EXPECT_DOUBLE_EQ(rep.mean, snap.mean) << "n=" << n;
  }
}

TEST(Percentiles, NearestRankExactSmallN) {
  // n = 10: p95 must be the 10th order statistic (rank ceil(9.5) = 10),
  // not index floor(0.95*9) = 8.
  std::vector<double> ten;
  obs::Histogram hist;
  for (int i = 1; i <= 10; ++i) {
    ten.push_back(i);
    hist.record(i);
  }
  const ServingReport rep = summarize_samples(ten);
  EXPECT_EQ(rep.p50, 5.0);
  EXPECT_EQ(rep.p95, 10.0);
  EXPECT_EQ(rep.p99, 10.0);
  EXPECT_EQ(hist.snapshot().p95, 10.0);
}

// --- single-queue serving model against theory ------------------------------

TEST(Serving, MD1MeanSojournMatchesTheory) {
  // M/D/1 at rho = 0.5: E[sojourn] = s + rho*s / (2*(1 - rho)) = 1.5 s.
  const double s = 1.0;
  const ServingReport r = simulate_serving(
      s, ArrivalProcess{.rate_rps = 0.5, .num_requests = 400000, .seed = 11});
  EXPECT_NEAR(r.mean, 1.5, 1.5 * 0.02);
  EXPECT_TRUE(r.stable);
  EXPECT_NEAR(r.offered_load, 0.5, 1e-12);
  // Over a long horizon the achieved busy fraction converges to rho.
  EXPECT_NEAR(r.utilization, 0.5, 0.02);
  EXPECT_NEAR(r.throughput_rps, 0.5, 0.02);
}

// --- traffic generators ------------------------------------------------------

TEST(Traffic, LengthDistributionsClampAndReproduce) {
  Rng rng(5);
  const LengthDistribution logn =
      LengthDistribution::lognormal(64.0, 1.0, 4, 512);
  const LengthDistribution par = LengthDistribution::pareto(8.0, 1.1, 1, 2048);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t a = logn.sample(rng);
    EXPECT_GE(a, 4U);
    EXPECT_LE(a, 512U);
    const std::size_t b = par.sample(rng);
    EXPECT_GE(b, 1U);
    EXPECT_LE(b, 2048U);
  }
  EXPECT_DOUBLE_EQ(logn.empirical_mean(3), logn.empirical_mean(3));
  // Lognormal mean exceeds the median; the clamp keeps it below max.
  EXPECT_GT(logn.empirical_mean(3), 64.0);
  EXPECT_LT(logn.empirical_mean(3), 512.0);
  EXPECT_DOUBLE_EQ(LengthDistribution::fixed(17).empirical_mean(1), 17.0);
  EXPECT_THROW((void)LengthDistribution::lognormal(0.0, 1.0, 1, 10),
               std::invalid_argument);
  EXPECT_THROW((void)LengthDistribution::pareto(1.0, 0.0, 1, 10),
               std::invalid_argument);
}

TEST(Traffic, OpenLoopPoissonRateAndDeterminism) {
  const OpenLoopTraffic traffic{.base_rate_rps = 100.0,
                                .diurnal = {},
                                .num_requests = 50000,
                                .seed = 2};
  const std::vector<Request> a = traffic.generate();
  const std::vector<Request> b = traffic.generate();
  ASSERT_EQ(a.size(), 50000U);
  EXPECT_EQ(a.back().arrival, b.back().arrival);  // same seed, same stream
  EXPECT_NEAR(a.back().arrival, 500.0, 500.0 * 0.03);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].arrival, a[i - 1].arrival);
  }
}

TEST(Traffic, DiurnalModulationShiftsArrivalMass) {
  // Peak phase (sin = +1 at t ~ period/4) must receive more arrivals than
  // the trough (t ~ 3*period/4). One full period, 60% amplitude.
  const double period = 1000.0;
  const OpenLoopTraffic traffic{
      .base_rate_rps = 200.0,
      .diurnal = {.amplitude = 0.6, .period = period},
      .num_requests = 180000,
      .seed = 4};
  const std::vector<Request> reqs = traffic.generate();
  std::size_t peak = 0, trough = 0;
  for (const Request& r : reqs) {
    const double phase = std::fmod(r.arrival, period) / period;
    if (phase >= 0.0 && phase < 0.5) ++peak;
    if (phase >= 0.5 && phase < 1.0) ++trough;
  }
  ASSERT_GT(peak, 0U);
  ASSERT_GT(trough, 0U);
  // Integrated rate ratio of the two half-periods is
  // (1 + 2A/pi) / (1 - 2A/pi) ~= 2.23 at A = 0.6.
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trough), 1.8);
}

// --- calibrated mesh model ---------------------------------------------------

TEST(MeshModel, ReproducesBenchServingThroughputAtCalibrationPoints) {
  const MeshModel mesh = MeshModel::from_bench_serving();
  // BENCH_serving.json fp32 K=4 tokens/s at the measured batches, within
  // 0.1% (the curve stores step time = batch / tokens_per_s exactly).
  EXPECT_NEAR(1.0 / mesh.step_time(1.0), 417.955, 417.955 * 1e-3);
  EXPECT_NEAR(4.0 / mesh.step_time(4.0), 792.072, 792.072 * 1e-3);
  EXPECT_NEAR(16.0 / mesh.step_time(16.0), 957.099, 957.099 * 1e-3);
  EXPECT_NEAR(mesh.saturated_tokens_per_s(), 957.099, 957.099 * 1e-3);
  // The headline measured B=16-vs-B=1 speedup survives the model round
  // trip: 2.28996 from the committed acceptance block.
  const double speedup =
      (16.0 / mesh.step_time(16.0)) / (1.0 / mesh.step_time(1.0));
  EXPECT_NEAR(speedup, 2.28996, 2.28996 * 1e-3);
  EXPECT_EQ(mesh.devices(), 4U);
}

TEST(MeshModel, InterpolatesMonotonicallyAndExtrapolates) {
  const MeshModel mesh = MeshModel::from_bench_serving();
  Seconds prev = 0.0;
  for (double b = 1.0; b <= 64.0; b += 0.5) {
    const Seconds t = mesh.step_time(b);
    EXPECT_GT(t, prev) << "batch " << b;
    prev = t;
  }
  // Tokens/s keeps improving with batch but sublinearly.
  EXPECT_GT(32.0 / mesh.step_time(32.0), mesh.saturated_tokens_per_s());
  EXPECT_LT(32.0 / mesh.step_time(32.0), 2.0 * mesh.saturated_tokens_per_s());
  EXPECT_THROW((void)mesh.step_time(0.0), std::invalid_argument);
}

TEST(MeshModel, WithLinkDeratesStepsOnSlowLinks) {
  const MeshModel fast = MeshModel::from_bench_serving();
  // Paper edge link: 500 Mbps, 2 ms per message. 29 messages/step pay
  // 58 ms of latency alone — the wire hook must dominate the step.
  const MeshModel slow = fast.with_link(LinkModel::mbps(500, 2e-3));
  EXPECT_GT(slow.step_time(1.0), 10.0 * fast.step_time(1.0));
  EXPECT_LT(slow.saturated_tokens_per_s(), fast.saturated_tokens_per_s());
  // And the hook itself prices a known profile exactly.
  const LinkModel link = LinkModel::mbps(500, 2e-3);
  EXPECT_NEAR(decode_step_wire_time(29.0, 252760.0, link),
              29.0 * 2e-3 + 252760.0 * 8.0 / 500e6, 1e-12);
}

// --- fleet simulator ---------------------------------------------------------

TEST(Fleet, DeterministicAcrossRunsAndSeedSensitive) {
  const OpenLoopTraffic traffic{.base_rate_rps = 30.0,
                                .diurnal = {},
                                .prompt = LengthDistribution::lognormal(
                                    32.0, 0.5, 1, 256),
                                .output = LengthDistribution::lognormal(
                                    32.0, 0.5, 1, 128),
                                .num_requests = 3000,
                                .seed = 9};
  const FleetConfig config{.num_meshes = 4};
  const FleetReport a = simulate_fleet(config, traffic);
  const FleetReport b = simulate_fleet(config, traffic);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.e2e.p99, b.e2e.p99);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  OpenLoopTraffic other = traffic;
  other.seed = 10;
  const FleetReport c = simulate_fleet(config, other);
  EXPECT_NE(a.ttft.p99, c.ttft.p99);
}

TEST(Fleet, LightLoadTtftIsPrefillPlusOneStep) {
  // One request into an idle fleet: TTFT = prefill + the B=1 step, E2E
  // adds the remaining output tokens at the B=1 step time.
  const MeshModel mesh = MeshModel::from_bench_serving();
  const std::vector<Request> one{
      {.arrival = 0.0, .prompt_tokens = 64, .output_tokens = 8}};
  const FleetConfig config{.num_meshes = 2};
  const FleetReport r = simulate_fleet(config, one);
  EXPECT_EQ(r.completed, 1U);
  EXPECT_EQ(r.rejected, 0U);
  EXPECT_NEAR(r.ttft.p50, mesh.prefill_time(64) + mesh.step_time(1.0), 1e-9);
  EXPECT_NEAR(r.e2e.p50, mesh.prefill_time(64) + 8.0 * mesh.step_time(1.0),
              1e-9);
  EXPECT_TRUE(r.stable);
}

TEST(Fleet, CompletesEveryAdmittedRequestAndTracksCounts) {
  const OpenLoopTraffic traffic{.base_rate_rps = 50.0,
                                .diurnal = {},
                                .output = LengthDistribution::fixed(16),
                                .num_requests = 2000,
                                .seed = 21};
  const FleetConfig config{.num_meshes = 8};
  const FleetReport r = simulate_fleet(config, traffic);
  EXPECT_EQ(r.offered, 2000U);
  EXPECT_EQ(r.completed + r.rejected, 2000U);
  EXPECT_EQ(r.ttft.count, r.completed);
  EXPECT_EQ(r.e2e.count, r.completed);
  EXPECT_GE(r.e2e.p50, r.ttft.p50);
  EXPECT_LE(r.mean_mesh_utilization, 1.0);
}

TEST(Fleet, OverloadIsFlaggedUnstableAndShedsWhenQueuesCap) {
  // 2x the fleet's token capacity: rho > 1, and with a shallow queue the
  // admission control must shed rather than let waits grow unbounded.
  const MeshModel mesh = MeshModel::from_bench_serving();
  const double one_mesh_rps = mesh.saturated_tokens_per_s() / 32.0;
  const OpenLoopTraffic traffic{.base_rate_rps = 2.0 * one_mesh_rps,
                                .diurnal = {},
                                .prompt = LengthDistribution::fixed(1),
                                .output = LengthDistribution::fixed(32),
                                .num_requests = 4000,
                                .seed = 13};
  const FleetConfig config{
      .num_meshes = 1, .max_queue_per_mesh = 32};
  const FleetReport r = simulate_fleet(config, traffic);
  EXPECT_FALSE(r.stable);
  EXPECT_GT(r.offered_load, 1.0);
  EXPECT_GT(r.rejected, 0U);
  // Achieved throughput saturates near one mesh's capacity, not the
  // offered rate.
  EXPECT_LT(r.achieved_rps, 1.2 * one_mesh_rps);
}

TEST(Fleet, JoinShortestQueueBeatsRoundRobinTail) {
  // Heavy-tailed outputs make RR occasionally pile long jobs onto one
  // mesh; JSQ routes around the backlog, so its p99 TTFT cannot be worse.
  const OpenLoopTraffic traffic{
      .base_rate_rps = 40.0,
      .diurnal = {},
      .prompt = LengthDistribution::fixed(16),
      .output = LengthDistribution::pareto(16.0, 1.3, 1, 512),
      .num_requests = 6000,
      .seed = 17};
  FleetConfig config{.num_meshes = 6};
  config.policy = BalancerPolicy::kRoundRobin;
  const FleetReport rr = simulate_fleet(config, traffic);
  config.policy = BalancerPolicy::kJoinShortestQueue;
  const FleetReport jsq = simulate_fleet(config, traffic);
  EXPECT_LE(jsq.ttft.p99, rr.ttft.p99);
  EXPECT_EQ(jsq.offered, rr.offered);
}

TEST(Fleet, DeadlineAwareShedsToProtectTheTail) {
  // Under 1.5x overload the deadline-aware balancer sheds load it cannot
  // serve in time; the requests it does serve meet the SLO far more often
  // than JSQ's, which queues everyone and blows the tail.
  const MeshModel mesh = MeshModel::from_bench_serving();
  const double one_mesh_rps = mesh.saturated_tokens_per_s() / 32.0;
  const OpenLoopTraffic traffic{.base_rate_rps = 1.5 * one_mesh_rps,
                                .diurnal = {},
                                .prompt = LengthDistribution::fixed(8),
                                .output = LengthDistribution::fixed(32),
                                .num_requests = 3000,
                                .seed = 23};
  FleetConfig config{.num_meshes = 1, .ttft_slo = 0.25};
  config.policy = BalancerPolicy::kJoinShortestQueue;
  const FleetReport jsq = simulate_fleet(config, traffic);
  config.policy = BalancerPolicy::kDeadlineAware;
  const FleetReport dl = simulate_fleet(config, traffic);
  EXPECT_GT(dl.rejected, 0U);
  EXPECT_GT(dl.slo_attainment, jsq.slo_attainment);
  EXPECT_LT(dl.ttft.p99, jsq.ttft.p99);
}

TEST(Fleet, ClosedLoopCompletesAllClientRequestsDeterministically) {
  const ClosedLoopClients clients{.num_clients = 24,
                                  .mean_think = 0.05,
                                  .prompt = LengthDistribution::fixed(8),
                                  .output = LengthDistribution::fixed(12),
                                  .requests_per_client = 10,
                                  .seed = 31};
  const FleetConfig config{.num_meshes = 2};
  const FleetReport a = simulate_fleet_closed_loop(config, clients);
  const FleetReport b = simulate_fleet_closed_loop(config, clients);
  EXPECT_EQ(a.offered, 240U);
  EXPECT_EQ(a.completed + a.rejected, 240U);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Fleet, SaturatedMeshReproducesBenchServingWithinTolerance) {
  // The acceptance bar: a closed-loop pool that keeps one K=4 mesh pegged
  // at B = 16 must reproduce the measured BENCH_serving.json 957 tokens/s
  // (and the 2.29x over B = 1) through the whole fleet pipeline — prefill
  // accounting, join dynamics and histogram plumbing included. 10%
  // tolerance: saturation is approached, never perfectly held, because
  // slots idle for one think time between a completion and the rejoin.
  const ClosedLoopClients clients{.num_clients = 64,
                                  .mean_think = 1e-3,
                                  .prompt = LengthDistribution::fixed(1),
                                  .output = LengthDistribution::fixed(64),
                                  .requests_per_client = 12,
                                  .seed = 41};
  FleetConfig config{.num_meshes = 1, .max_batch = 16};
  const FleetReport b16 = simulate_fleet_closed_loop(config, clients);
  EXPECT_NEAR(b16.tokens_per_s, 957.099, 957.099 * 0.10);
  config.max_batch = 1;
  const FleetReport b1 = simulate_fleet_closed_loop(config, clients);
  EXPECT_NEAR(b1.tokens_per_s, 417.955, 417.955 * 0.10);
  EXPECT_NEAR(b16.tokens_per_s / b1.tokens_per_s, 2.28996, 2.28996 * 0.15);
}

TEST(Fleet, ValidatesConfigAndInputs) {
  const FleetConfig config{.num_meshes = 0};
  EXPECT_THROW((void)simulate_fleet(config, std::vector<Request>{{}}),
               std::invalid_argument);
  const FleetConfig ok{.num_meshes = 1};
  EXPECT_THROW((void)simulate_fleet(ok, std::vector<Request>{}),
               std::invalid_argument);
  std::vector<Request> unsorted{{.arrival = 2.0}, {.arrival = 1.0}};
  EXPECT_THROW((void)simulate_fleet(ok, unsorted), std::invalid_argument);
  EXPECT_THROW((void)simulate_fleet_closed_loop(
                   ok, ClosedLoopClients{.num_clients = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace voltage::sim
