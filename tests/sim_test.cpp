// Tests of the discrete-event engine and the network simulator, including
// cross-validation against the closed-form collective costs in the
// homogeneous case.
#include <vector>

#include <gtest/gtest.h>

#include "collective/cost.h"
#include "sim/cluster.h"
#include "sim/device.h"
#include "sim/engine.h"
#include "sim/netsim.h"

namespace voltage::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule(1.0, [&] {
    engine.schedule_after(0.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule(1.0, [] {});
  (void)engine.step();
  EXPECT_THROW(engine.schedule(0.5, [] {}), std::invalid_argument);
}

TEST(Engine, StepReturnsFalseWhenDrained) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule(0.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

// --- device model ---------------------------------------------------------------

TEST(DeviceSpec, ComputeTimeCombinesRates) {
  const DeviceSpec dev{.name = "d", .mac_rate = 1e9, .elementwise_rate = 1e8};
  EXPECT_DOUBLE_EQ(dev.compute_time(2'000'000'000ULL), 2.0);
  EXPECT_DOUBLE_EQ(dev.compute_time(0, 300'000'000ULL), 3.0);
  EXPECT_DOUBLE_EQ(dev.compute_time(1'000'000'000ULL, 100'000'000ULL), 2.0);
}

TEST(DeviceSpec, RejectsBadRates) {
  const DeviceSpec dev{.name = "d", .mac_rate = 0.0, .elementwise_rate = 1.0};
  EXPECT_THROW((void)dev.compute_time(1), std::invalid_argument);
}

TEST(Cluster, HomogeneousFactory) {
  const Cluster c = Cluster::homogeneous(
      4, DeviceSpec{.name = "edge", .mac_rate = 1e9, .elementwise_rate = 1e9},
      LinkModel::mbps(500));
  EXPECT_EQ(c.size(), 4U);
  EXPECT_NO_THROW(c.validate());
  EXPECT_THROW(Cluster{}.validate(), std::invalid_argument);
  EXPECT_THROW(Cluster::homogeneous(0, DeviceSpec{}, LinkModel{}),
               std::invalid_argument);
}

// --- netsim vs closed forms --------------------------------------------------

TEST(NetSim, AllGatherMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.003);
  const std::size_t bytes = 1 << 18;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 1.0);
    const auto done = sim_allgather_fullmesh(
        ready, std::vector<std::size_t>(k, bytes), link);
    const Seconds expected = 1.0 + allgather_fullmesh_duration(bytes, k, link);
    for (const SimTime t : done) EXPECT_NEAR(t, expected, 1e-9);
  }
}

TEST(NetSim, RingAllReduceMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.003);
  const std::size_t bytes = 1 << 20;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 0.5);
    const auto done = sim_ring_allreduce(ready, bytes, link);
    const Seconds expected = 0.5 + ring_allreduce_duration(bytes, k, link);
    for (const SimTime t : done) EXPECT_NEAR(t, expected, 1e-9);
  }
}

TEST(NetSim, StarAllReduceMatchesClosedFormWhenSynchronized) {
  const LinkModel link = LinkModel::mbps(500, 0.002);
  const std::size_t bytes = 1 << 20;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const std::vector<SimTime> ready(k, 0.25);
    const auto done = sim_star_allreduce(ready, bytes, link);
    const Seconds expected = 0.25 + star_allreduce_duration(bytes, k, link);
    // The slowest receiver defines the collective's completion.
    EXPECT_NEAR(done.back(), expected, 1e-9);
    // The root finishes first (it only waits for the reduce phase).
    EXPECT_LT(done.front(), done.back());
  }
}

TEST(NetSim, SingleRankCollectivesAreInstant) {
  const LinkModel link = LinkModel::mbps(500);
  const std::vector<SimTime> ready{2.5};
  EXPECT_DOUBLE_EQ(sim_allgather_fullmesh(ready, {100}, link)[0], 2.5);
  EXPECT_DOUBLE_EQ(sim_ring_allreduce(ready, 100, link)[0], 2.5);
}

TEST(NetSim, StragglerDelaysEveryoneInAllGather) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  std::vector<SimTime> ready{0.0, 0.0, 5.0};  // rank 2 is late
  const auto done =
      sim_allgather_fullmesh(ready, std::vector<std::size_t>(3, 1000), link);
  // Everyone must wait for rank 2's data.
  EXPECT_GT(done[0], 5.0);
  EXPECT_GT(done[1], 5.0);
  // Rank 2 already has the early ranks' data; it finishes right at its own
  // readiness (their messages arrived long ago).
  EXPECT_NEAR(done[2], 5.0, 1e-9);
}

TEST(NetSim, SkewPropagatesThroughRing) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  const std::vector<SimTime> even(4, 0.0);
  std::vector<SimTime> skewed(4, 0.0);
  skewed[1] = 1.0;
  const auto done_even = sim_ring_allreduce(even, 1 << 20, link);
  const auto done_skew = sim_ring_allreduce(skewed, 1 << 20, link);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(done_skew[i], done_even[i]);
  }
  // The straggler pushes the whole ring back by roughly its lateness.
  EXPECT_GT(done_skew[0], done_even[0] + 0.9);
}

TEST(NetSim, BroadcastReceiversSerializedThroughRootNic) {
  const LinkModel link = LinkModel::mbps(80, 0.002);  // 10 MB/s
  const auto done = sim_broadcast(1.0, 1'000'000, 3, link);
  ASSERT_EQ(done.size(), 3U);
  EXPECT_NEAR(done[0], 1.0 + 0.002 + 0.1, 1e-9);
  EXPECT_NEAR(done[1], 1.0 + 0.002 + 0.2, 1e-9);
  EXPECT_NEAR(done[2], 1.0 + 0.002 + 0.3, 1e-9);
}

TEST(NetSim, GatherWaitsForLastArrival) {
  const LinkModel link = LinkModel::mbps(1000, 0.001);
  const std::vector<SimTime> ready{0.0, 2.0};
  const std::vector<std::size_t> bytes{1000, 1000};
  const SimTime done = sim_gather_to_root(ready, bytes, link);
  EXPECT_NEAR(done, 2.0 + link.transfer_time(1000), 1e-9);
}

TEST(NetSim, ValidatesInputs) {
  const LinkModel link = LinkModel::mbps(100);
  EXPECT_THROW((void)sim_allgather_fullmesh({}, {}, link),
               std::invalid_argument);
  EXPECT_THROW((void)sim_allgather_fullmesh({0.0}, {1, 2}, link),
               std::invalid_argument);
  EXPECT_THROW((void)sim_gather_to_root({0.0}, {1, 2}, link),
               std::invalid_argument);
}

}  // namespace
}  // namespace voltage::sim
