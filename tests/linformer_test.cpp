// Tests of the Linformer-style low-rank attention extension (§VII-C):
// low-rank state distribution by position, equivalence of partitioned and
// full evaluation, and the sync-volume advantage.
#include <gtest/gtest.h>

#include "collective/cost.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/linformer.h"
#include "transformer/weights.h"

namespace voltage {
namespace {

LayerConfig test_config() {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = false};
}

struct Fixture {
  LayerConfig cfg = test_config();
  Rng rng{31};
  LayerWeights w = init_layer_weights(cfg, rng);
  LinformerProjections proj = init_linformer_projections(6, 64, rng);
};

TEST(Linformer, ProjectionShapes) {
  Rng rng(1);
  const LinformerProjections proj = init_linformer_projections(4, 32, rng);
  EXPECT_EQ(proj.rank(), 4U);
  EXPECT_EQ(proj.max_positions(), 32U);
  EXPECT_THROW((void)init_linformer_projections(0, 32, rng),
               std::invalid_argument);
}

TEST(Linformer, FullOutputShape) {
  Fixture f;
  const Tensor x = f.rng.normal_tensor(20, f.cfg.hidden, 1.0F);
  const Tensor out = linformer_head_full(x, f.w.attention.heads[0],
                                         f.cfg.head_dim, f.proj);
  EXPECT_EQ(out.rows(), 20U);
  EXPECT_EQ(out.cols(), f.cfg.head_dim);
}

TEST(Linformer, StatesSumToGlobal) {
  Fixture f;
  const Tensor x = f.rng.normal_tensor(19, f.cfg.hidden, 1.0F);
  const HeadWeights& head = f.w.attention.heads[2];
  const LinformerState global =
      linformer_local_state(x, Range{0, 19}, head, f.proj);
  LinformerState sum = linformer_local_state(x, Range{0, 6}, head, f.proj);
  sum += linformer_local_state(x, Range{6, 14}, head, f.proj);
  sum += linformer_local_state(x, Range{14, 19}, head, f.proj);
  EXPECT_TRUE(allclose(sum.k_proj, global.k_proj, 1e-4F));
  EXPECT_TRUE(allclose(sum.v_proj, global.v_proj, 1e-4F));
}

TEST(Linformer, PartitionMatchesFullRows) {
  Fixture f;
  const Tensor x = f.rng.normal_tensor(16, f.cfg.hidden, 1.0F);
  const HeadWeights& head = f.w.attention.heads[1];
  const LinformerState global =
      linformer_local_state(x, Range{0, 16}, head, f.proj);
  const Tensor full =
      linformer_head_full(x, head, f.cfg.head_dim, f.proj);
  for (const Range p : {Range{0, 5}, Range{5, 12}, Range{12, 16}}) {
    const Tensor part =
        linformer_head_partition(x, p, head, f.cfg.head_dim, global);
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 1e-4F));
  }
}

TEST(Linformer, DistributedAssemblyEqualsFull) {
  // Emulate the full distributed flow: local states, all-reduce (sum),
  // partition outputs, assembly.
  Fixture f;
  const std::size_t n = 21;
  const Tensor x = f.rng.normal_tensor(n, f.cfg.hidden, 1.0F);
  const HeadWeights& head = f.w.attention.heads[0];
  const std::vector<Range> parts{{0, 7}, {7, 14}, {14, 21}};
  LinformerState merged =
      linformer_local_state(x, parts[0], head, f.proj);
  for (std::size_t d = 1; d < parts.size(); ++d) {
    merged += linformer_local_state(x, parts[d], head, f.proj);
  }
  Tensor assembled(n, f.cfg.head_dim);
  for (const Range& p : parts) {
    assembled.set_rows(
        p.begin,
        linformer_head_partition(x, p, head, f.cfg.head_dim, merged));
  }
  EXPECT_TRUE(allclose(
      assembled, linformer_head_full(x, head, f.cfg.head_dim, f.proj),
      2e-4F));
}

TEST(Linformer, RankBottlenecksScores) {
  // The attention matrix is P x k, not P x N: increasing N does not grow
  // the per-head sync state.
  const LayerConfig cfg = test_config();
  EXPECT_EQ(linformer_sync_elements(cfg, 6), 2ULL * 4 * 6 * 8);
  // BERT-Large geometry, rank 64: far below the softmax all-gather volume.
  const LayerConfig bert{.hidden = 1024,
                         .heads = 16,
                         .head_dim = 64,
                         .ffn_dim = 4096,
                         .activation = Activation::kGelu};
  EXPECT_LT(linformer_sync_elements(bert, 64),
            voltage_elements_per_device_layer(200, 1024, 6));
}

TEST(Linformer, Validation) {
  Fixture f;
  const Tensor x = f.rng.normal_tensor(10, f.cfg.hidden, 1.0F);
  const HeadWeights& head = f.w.attention.heads[0];
  EXPECT_THROW((void)linformer_local_state(x, Range{8, 12}, head, f.proj),
               std::out_of_range);
  // Sequence longer than the projection width is rejected.
  Rng rng(2);
  const LinformerProjections narrow = init_linformer_projections(4, 8, rng);
  EXPECT_THROW((void)linformer_local_state(x, Range{0, 10}, head, narrow),
               std::invalid_argument);
}

}  // namespace
}  // namespace voltage
