// Tests of the INT8 quantization extension (§VII-A): quantization error
// bounds, the int8 GEMM kernels and their bitwise cross-ISA contract, the
// quantized wire codec, quantized Algorithm 1, the composition with
// position-wise partitioning, and the end-to-end int8 runtime/decoder
// planes.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <numeric>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "core/thread_pool.h"
#include "net/fabric.h"
#include "net/quant_codec.h"
#include "partition/decode_attention.h"
#include "partition/partitioned_layer.h"
#include "quant/quantized_layer.h"
#include "quant/quantized_stack.h"
#include "quant/quantized_tensor.h"
#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "tensor/gemm_s8.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "transformer/layer.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {

// Every compiled int8 kernel TU, addressed directly so the test can compare
// all runnable variants on one machine instead of only the dispatched one.
namespace detail::base {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
}
#if defined(__x86_64__) || defined(_M_X64)
namespace detail::avx2 {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
}
namespace detail::avx512 {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
}
#endif

namespace {

LayerConfig test_config(bool causal = false) {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = causal};
}

float relative_error(const Tensor& approx, const Tensor& exact) {
  double num = 0.0;
  double den = 0.0;
  const auto fa = approx.flat();
  const auto fe = exact.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    num += static_cast<double>(fa[i] - fe[i]) * (fa[i] - fe[i]);
    den += static_cast<double>(fe[i]) * fe[i];
  }
  return den == 0.0 ? 0.0F : static_cast<float>(std::sqrt(num / den));
}

TEST(Quantize, ActivationRoundTripWithinOneStep) {
  Rng rng(1);
  const Tensor x = rng.normal_tensor(10, 20, 2.0F);
  const QuantizedActivations q = quantize_activations(x);
  const Tensor back = dequantize(q);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    // Error bounded by half a quantization step per element.
    float absmax = 0.0F;
    for (const float v : x.row(r)) absmax = std::max(absmax, std::fabs(v));
    const float step = absmax / 127.0F;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_LE(std::fabs(back(r, c) - x(r, c)), 0.5F * step + 1e-7F);
    }
  }
}

TEST(Quantize, WeightRoundTripPerColumn) {
  Rng rng(2);
  Tensor w = rng.normal_tensor(16, 8, 0.3F);
  // Give one column a much larger range: per-column scales must absorb it.
  for (std::size_t r = 0; r < w.rows(); ++r) w(r, 3) *= 50.0F;
  const Tensor back = dequantize(quantize_weights(w));
  EXPECT_LT(relative_error(back, w), 0.01F);
}

TEST(Quantize, ZeroTensorIsExact) {
  const Tensor zero(4, 4);
  EXPECT_EQ(dequantize(quantize_activations(zero)), zero);
  EXPECT_EQ(dequantize(quantize_weights(zero)), zero);
}

TEST(QuantizedMatmul, CloseToFloatGemm) {
  Rng rng(3);
  const Tensor x = rng.normal_tensor(12, 32, 1.0F);
  const Tensor w = rng.normal_tensor(32, 16, 0.2F);
  const Tensor exact = matmul(x, w);
  const Tensor approx = quantized_matmul(x, quantize_weights(w));
  EXPECT_LT(relative_error(approx, exact), 0.02F);
}

TEST(QuantizedMatmul, ShapeMismatchThrows) {
  const Tensor x(2, 3);
  EXPECT_THROW((void)quantized_matmul(x, quantize_weights(Tensor(4, 2))),
               std::invalid_argument);
}

TEST(QuantizedLayer, MemoryIsRoughlyQuarter) {
  Rng rng(4);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const QuantizedLayerWeights q = quantize_layer(w);
  const double ratio = static_cast<double>(float_layer_byte_size(w)) /
                       static_cast<double>(q.byte_size());
  // The duplicated W_K^T copy and the scales eat into the ideal 4x.
  EXPECT_GT(ratio, 2.8);
  EXPECT_LT(ratio, 4.0);
}

TEST(QuantizedLayer, FullForwardTracksFloatLayer) {
  Rng rng(5);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const TransformerLayer layer(cfg, w);
  const QuantizedLayerWeights q = quantize_layer(w);
  const Tensor x = rng.normal_tensor(14, cfg.hidden, 1.0F);
  const Tensor exact = layer.forward(x);
  const Tensor approx = quantized_layer_forward(cfg, q, x);
  // LayerNorm keeps activations O(1); int8 noise stays small end to end.
  EXPECT_LT(relative_error(approx, exact), 0.15F);
}

class QuantizedPartition : public ::testing::TestWithParam<OrderPolicy> {};

TEST_P(QuantizedPartition, PartitionsAssembleToQuantizedFull) {
  // The distribution invariant must hold *within* the quantized model:
  // partition outputs equal the quantized full forward's rows, both orders.
  Rng rng(6);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 18;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full =
      quantized_partitioned_layer_forward(cfg, q, x, Range{0, n}, GetParam());
  Tensor assembled(n, cfg.hidden);
  for (const Range p : {Range{0, 6}, Range{6, 13}, Range{13, 18}}) {
    assembled.set_rows(p.begin, quantized_partitioned_layer_forward(
                                    cfg, q, x, p, GetParam()));
  }
  // Same policy and same P would pick the same kernels; across partition
  // sizes the order may flip (adaptive), so allow small numeric drift.
  EXPECT_LT(relative_error(assembled, full), 0.12F);
}

INSTANTIATE_TEST_SUITE_P(Policies, QuantizedPartition,
                         ::testing::Values(OrderPolicy::kAlwaysNaive,
                                           OrderPolicy::kAlwaysReordered,
                                           OrderPolicy::kAdaptive));

TEST(QuantizedPartition, FixedOrderPartitionIsExactlyConsistent) {
  // With a FIXED order the per-position computation is identical whether
  // computed in one block or per partition (same kernels, same operands),
  // so rows must match to float tolerance, not just statistically.
  Rng rng(7);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 12;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = quantized_partitioned_layer_forward(
      cfg, q, x, Range{0, n}, OrderPolicy::kAlwaysNaive);
  const Tensor part = quantized_partitioned_layer_forward(
      cfg, q, x, Range{4, 9}, OrderPolicy::kAlwaysNaive);
  EXPECT_TRUE(allclose(part, full.slice_rows(4, 9), 2e-3F));
}

TEST(QuantizedPartition, CausalSupported) {
  Rng rng(8);
  const LayerConfig cfg = test_config(/*causal=*/true);
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 10;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = quantized_layer_forward(cfg, q, x);
  const Tensor part = quantized_partitioned_layer_forward(
      cfg, q, x, Range{5, 10}, OrderPolicy::kAlwaysNaive);
  EXPECT_TRUE(allclose(part, full.slice_rows(5, 10), 2e-3F));
}

TEST(QuantizedPartition, Validation) {
  Rng rng(9);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  EXPECT_THROW((void)quantized_partitioned_layer_forward(cfg, q, x,
                                                         Range{6, 10}),
               std::out_of_range);
  EXPECT_EQ(
      quantized_partitioned_layer_forward(cfg, q, x, Range{3, 3}).rows(),
      0U);
}

// --- whole-model stack + distributed execution --------------------------------

TEST(QuantizedStack, TracksFloatModel) {
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  EXPECT_EQ(stack.num_layers(), model.spec().num_layers);
  EXPECT_GT(static_cast<double>(stack.float_byte_size()) /
                static_cast<double>(stack.byte_size()),
            2.8);
  const auto tokens = random_tokens(20, model.spec().vocab_size, 50);
  const Tensor x = model.preprocess(tokens);
  const Tensor q = model.postprocess(stack.forward_layers(x));
  const Tensor f = model.postprocess(model.forward_layers(x));
  // Same prediction, bounded logit drift.
  EXPECT_EQ(argmax_row(q, 0), argmax_row(f, 0));
  EXPECT_LT(max_abs_diff(q, f), 0.25F);
}

TEST(QuantizedStack, DistributedExecutorMatchesQuantizedSingleDevice) {
  // Fixed order makes distributed int8 and single-device int8 follow the
  // exact same kernel path per position: rows must agree tightly.
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  const auto tokens = random_tokens(24, model.spec().vocab_size, 51);

  VoltageRuntime runtime(model, PartitionScheme::even(4),
                         OrderPolicy::kAlwaysNaive);
  runtime.set_partition_executor([&stack](std::size_t layer, const Tensor& x,
                                          Range p, OrderPolicy policy) {
    return stack.partition_forward(layer, x, p, policy);
  });
  const Tensor distributed = runtime.infer(tokens);

  Tensor x = model.preprocess(tokens);
  for (std::size_t l = 0; l < stack.num_layers(); ++l) {
    x = stack.partition_forward(l, x, Range{0, x.rows()},
                                OrderPolicy::kAlwaysNaive);
  }
  const Tensor single = model.postprocess(x);
  EXPECT_TRUE(allclose(distributed, single, 2e-3F));
}

TEST(QuantizedStack, ExecutorResetRestoresFloatPath) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const QuantizedStack stack(model);
  const auto tokens = random_tokens(12, model.spec().vocab_size, 52);
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  runtime.set_partition_executor([&stack](std::size_t layer, const Tensor& x,
                                          Range p, OrderPolicy policy) {
    return stack.partition_forward(layer, x, p, policy);
  });
  (void)runtime.infer(tokens);
  runtime.set_partition_executor({});
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

TEST(QuantizedStack, LayerIndexValidated) {
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  EXPECT_THROW(
      (void)stack.partition_forward(99, Tensor(4, 128), Range{0, 2}),
      std::out_of_range);
  EXPECT_THROW((void)stack.decode_step_tail(99, Tensor(1, 1), Tensor(1, 1)),
               std::out_of_range);
}

// --- int8 GEMM kernels (tensor/gemm_s8.h) ---------------------------------

using GemmS8Fn = void (*)(const std::int8_t*, const std::int8_t*,
                          std::int32_t*, std::size_t, std::size_t,
                          std::size_t, std::size_t, std::size_t);

// Every int8 variant this machine can execute; "base" always runs.
std::vector<std::pair<const char*, GemmS8Fn>> runnable_s8_variants() {
  std::vector<std::pair<const char*, GemmS8Fn>> variants{
      {"base", &detail::base::gemm_s8_blocked}};
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) {
    variants.emplace_back("avx2", &detail::avx2::gemm_s8_blocked);
  }
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    variants.emplace_back("avx512", &detail::avx512::gemm_s8_blocked);
  }
#endif
  return variants;
}

std::vector<std::int8_t> random_s8(Rng& rng, std::size_t count) {
  std::vector<std::int8_t> v(count);
  for (auto& x : v) {
    // Full admissible range [-127, 127] — the kernels' no-saturation proof
    // assumes -128 never occurs (quantize_value clamps to -127).
    x = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
  }
  return v;
}

TEST(GemmS8, AllRunnableVariantsMatchReferenceBitwise) {
  // The exactness contract: int32 accumulation is associative, so every ISA
  // variant must equal the naive reference exactly — including odd k (the
  // int16 k-pair packing pads the trailing element) and shapes off every
  // tile boundary.
  Rng rng(91);
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},   {2, 3, 4},    {7, 9, 5},      {8, 8, 32},
                {6, 16, 16}, {13, 17, 31}, {33, 257, 29},  {64, 64, 64},
                {65, 301, 33}, {100, 48, 129}, {17, 512, 40}};
  for (const auto& s : shapes) {
    const auto a = random_s8(rng, s.m * s.k);
    const auto b = random_s8(rng, s.k * s.n);
    // Nonzero seed: the kernels accumulate (C += A·B).
    std::vector<std::int32_t> expected(s.m * s.n, 3);
    detail::gemm_s8_reference(a.data(), b.data(), expected.data(), s.m, s.k,
                              s.n);
    for (const auto& [arch, fn] : runnable_s8_variants()) {
      std::vector<std::int32_t> c(s.m * s.n, 3);
      fn(a.data(), b.data(), c.data(), s.m, 0, s.m, s.k, s.n);
      EXPECT_EQ(c, expected) << arch << " m=" << s.m << " k=" << s.k
                             << " n=" << s.n;
    }
  }
}

TEST(GemmS8, RowRangeSplitsReproduceTheFullResult) {
  Rng rng(92);
  const std::size_t m = 67, k = 41, n = 52;
  const auto a = random_s8(rng, m * k);
  const auto b = random_s8(rng, k * n);
  std::vector<std::int32_t> full(m * n, 0);
  detail::gemm_s8(a.data(), b.data(), full.data(), m, k, n);

  // Uneven split points, including a single-row chunk, on every variant.
  for (const auto& [arch, fn] : runnable_s8_variants()) {
    std::vector<std::int32_t> split(m * n, 0);
    const std::size_t cuts[] = {0, 5, 6, 40, m};
    for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
      fn(a.data(), b.data(), split.data(), m, cuts[c], cuts[c + 1], k, n);
    }
    EXPECT_EQ(split, full) << arch;
  }
}

TEST(GemmS8, DispatchReportsAKnownArch) {
  const std::string_view arch = detail::gemm_s8_kernel_arch();
  EXPECT_TRUE(arch == "avx512" || arch == "avx2" || arch == "base") << arch;
}

TEST(GemmS8, QuantizedMatmulBitwiseIdenticalAcrossIntraOpBudgets) {
  Rng rng(93);
  const Tensor x = rng.normal_tensor(130, 64, 1.0F);
  const QuantizedWeights w = quantize_weights(rng.normal_tensor(64, 50, 0.2F));
  std::vector<Tensor> results;
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const IntraOpScope scope(threads);
    results.push_back(quantized_matmul(x, w));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[0].same_shape(results[i]));
    EXPECT_EQ(std::memcmp(results[0].data(), results[i].data(),
                          results[0].size() * sizeof(float)),
              0)
        << "threads variant " << i;
  }
}

// --- int8 edge cases -------------------------------------------------------

TEST(Quantize, SaturationMapsAbsmaxToExactly127) {
  Tensor x(1, 4);
  x(0, 0) = 10.0F;
  x(0, 1) = -10.0F;  // absmax: must land on -127, never -128
  x(0, 2) = 9.999F;
  x(0, 3) = 0.0F;
  const QuantizedActivations q = quantize_activations(x);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -127);
  EXPECT_LE(std::abs(static_cast<int>(q.data[2])), 127);
  EXPECT_EQ(q.data[3], 0);
}

TEST(Quantize, ZeroRowUsesUnitScaleAndRoundTripsExactly) {
  Tensor x(3, 5);
  x(0, 1) = 2.5F;  // rows 1 and 2 stay all-zero
  const QuantizedActivations q = quantize_activations(x);
  EXPECT_EQ(q.row_scales[1], 1.0F);
  EXPECT_EQ(q.row_scales[2], 1.0F);
  const Tensor back = dequantize(q);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(back(1, c), 0.0F);
    EXPECT_EQ(back(2, c), 0.0F);
  }
}

// --- quantized wire codec (net/quant_codec.h) ------------------------------

TEST(QuantWire, PayloadSizeMatchesFormulaAndDecodesWithinHalfStep) {
  Rng rng(94);
  const Tensor t = rng.normal_tensor(9, 33, 2.0F);
  const Payload payload = quantized_payload(t);
  EXPECT_EQ(payload.size(), quant_wire_bytes(9, 33));
  EXPECT_LT(payload.size(), tensor_wire_bytes(t.size()) / 3);

  const Tensor back = tensor_from_payload(payload);
  ASSERT_TRUE(back.same_shape(t));
  for (std::size_t r = 0; r < t.rows(); ++r) {
    float absmax = 0.0F;
    for (const float v : t.row(r)) absmax = std::max(absmax, std::fabs(v));
    const float step = absmax / 127.0F;
    for (std::size_t c = 0; c < t.cols(); ++c) {
      EXPECT_LE(std::fabs(back(r, c) - t(r, c)), 0.5F * step + 1e-7F)
          << r << "," << c;
    }
  }
}

TEST(QuantWire, ZeroRowsAndSaturatedRowsSurviveTheWire) {
  Tensor t(3, 4);
  // Row 0 all zero (scale 1 — exact), row 1 hits both rails, row 2 tiny.
  t(1, 0) = 5.0F;
  t(1, 1) = -5.0F;
  t(2, 3) = 1e-30F;
  const Tensor back = tensor_from_payload(quantized_payload(t));
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(back(0, c), 0.0F);
  EXPECT_FLOAT_EQ(back(1, 0), 5.0F);   // ±absmax is exactly representable
  EXPECT_FLOAT_EQ(back(1, 1), -5.0F);
  EXPECT_FLOAT_EQ(back(2, 3), 1e-30F); // row absmax itself, also exact
}

TEST(QuantWire, EmptyTensorEncodes) {
  const Tensor empty(0, 7);
  const Payload payload = quantized_payload(empty);
  EXPECT_EQ(payload.size(), quant_wire_bytes(0, 7));
  const Tensor back = tensor_from_payload(payload);
  EXPECT_EQ(back.rows(), 0U);
  EXPECT_EQ(back.cols(), 7U);
}

std::vector<DeviceId> group_of(std::size_t k) {
  std::vector<DeviceId> g(k);
  std::iota(g.begin(), g.end(), DeviceId{0});
  return g;
}

TEST(QuantWire, AllGatherBytesReducedAtLeast3_5x) {
  // The headline wire claim, measured from fabric counters: the same
  // per-layer all-gather moves >= 3.5x fewer bytes under Precision::kInt8
  // (4x on the elements, eaten into by the scale sidecar and the fixed
  // per-message header + frame).
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kN = 32;
  constexpr std::size_t kF = 128;
  const auto group = group_of(kRanks);
  std::vector<Range> ranges(kRanks);
  for (std::size_t i = 0; i < kRanks; ++i) {
    ranges[i] = Range{kN * i / kRanks, kN * (i + 1) / kRanks};
  }
  Rng rng(95);
  const Tensor full = rng.normal_tensor(kN, kF, 1.0F);

  std::uint64_t bytes[2] = {0, 0};
  std::vector<Tensor> gathered(kRanks, Tensor(0, 0));
  for (const Precision wire : {Precision::kFp32, Precision::kInt8}) {
    Fabric fabric(kRanks);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kRanks; ++i) {
      threads.emplace_back([&, i] {
        const auto local = std::make_shared<const Tensor>(
            full.slice_rows(ranges[i].begin, ranges[i].end));
        Tensor dst(kN, kF);
        all_gather_into(fabric, group, i, local, ranges, dst, 1, {}, wire);
        if (wire == Precision::kInt8) gathered[i] = std::move(dst);
      });
    }
    for (auto& t : threads) t.join();
    bytes[wire == Precision::kInt8 ? 1 : 0] =
        fabric.total_stats().bytes_sent;
  }
  ASSERT_GT(bytes[1], 0U);
  EXPECT_GE(static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]),
            3.5);
  // And the quantized gather still delivers the sequence within the
  // per-row half-step bound (own rows exact, peer rows dequantized).
  for (std::size_t i = 0; i < kRanks; ++i) {
    EXPECT_LT(relative_error(gathered[i], full), 0.02F) << "rank " << i;
  }
}

TEST(QuantWire, BroadcastQuantizedDeliversWithinBound) {
  constexpr std::size_t kRanks = 3;
  Fabric fabric(kRanks);
  const auto group = group_of(kRanks);
  Rng rng(96);
  const Tensor payload = rng.normal_tensor(4, 64, 1.0F);
  std::vector<Tensor> received(kRanks);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kRanks; ++i) {
    threads.emplace_back([&, i] {
      Tensor data = i == 0 ? payload : Tensor();
      broadcast(fabric, group, i, 0, data, 20, {}, Precision::kInt8);
      received[i] = std::move(data);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(received[0], payload);  // root copy untouched
  for (std::size_t i = 1; i < kRanks; ++i) {
    EXPECT_LT(relative_error(received[i], payload), 0.02F) << "rank " << i;
    EXPECT_EQ(received[1], received[i]);  // same payload, same dequantize
  }
}

// --- int8 decode-step tail -------------------------------------------------

TEST(QuantizedStack, DecodeStepTailTracksFloatTailAndIsDeterministic) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const QuantizedStack stack(model);
  const LayerConfig& cfg = model.layers()[0].config();
  const AttentionWeights& w = model.layers()[0].weights().attention;
  Rng rng(97);
  const Tensor rows = rng.uniform_tensor(6, cfg.hidden, -1.0F, 1.0F);
  const Tensor x = rng.uniform_tensor(1, cfg.hidden, -1.0F, 1.0F);
  DecodeLayerCache cache;
  cache.init(AttentionOrder::kNaive, cfg);
  cache.append(rows, w);
  const Tensor merged = decode_partial_attention(x, cache, w, cfg);

  // Float reference: finalize + residual + LN + FFN + residual + LN.
  const LayerWeights& lw = model.layers()[0].weights();
  Tensor attn = softmax_merge_finalize(merged, w, cfg);
  add_inplace(attn, x);
  const Tensor y = layernorm_rows(attn, lw.ln_attention.gamma,
                                  lw.ln_attention.beta);
  Tensor hidden = matmul(y, lw.ffn.w1);
  add_bias_inplace(hidden, lw.ffn.b1);
  hidden = cfg.activation == Activation::kGelu ? gelu(hidden) : relu(hidden);
  Tensor ff = matmul(hidden, lw.ffn.w2);
  add_bias_inplace(ff, lw.ffn.b2);
  add_inplace(ff, y);
  const Tensor expected = layernorm_rows(ff, lw.ln_ffn.gamma, lw.ln_ffn.beta);

  const Tensor tail = stack.decode_step_tail(0, merged, x);
  EXPECT_LT(relative_error(tail, expected), 0.15F);
  // Determinism backs the decoder's redundant-tail invariant: every device
  // running the same tail must produce bitwise-identical rows.
  const Tensor again = stack.decode_step_tail(0, merged, x);
  ASSERT_TRUE(tail.same_shape(again));
  EXPECT_EQ(std::memcmp(tail.data(), again.data(),
                        tail.size() * sizeof(float)),
            0);
}

// --- end-to-end int8 planes ------------------------------------------------

TEST(QuantizedRuntime, Int8PrecisionTracksFp32AndCutsGatherBytes) {
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(24, model.spec().vocab_size, 61);
  const Tensor expected = model.infer(tokens);

  VoltageRuntime fp32(model, PartitionScheme::even(4));
  (void)fp32.infer(tokens);
  const std::uint64_t fp32_bytes = fp32.fabric().total_stats().bytes_sent;

  VoltageRuntime int8(model, PartitionScheme::even(4));
  int8.set_precision(Precision::kInt8);
  EXPECT_EQ(int8.precision(), Precision::kInt8);
  const Tensor logits = int8.infer(tokens);
  const std::uint64_t int8_bytes = int8.fabric().total_stats().bytes_sent;

  // Same prediction, bounded drift — and the run moved far fewer bytes
  // (gathers shrink ~4x; the fp32 feature broadcast and final sends dilute
  // the total ratio below the pure-gather 3.5x).
  EXPECT_EQ(argmax_row(logits, 0), argmax_row(expected, 0));
  EXPECT_LT(relative_error(logits, expected), 0.2F);
  EXPECT_LT(int8_bytes, fp32_bytes);

  // Restoring fp32 restores the exact float path.
  int8.set_precision(Precision::kFp32);
  EXPECT_TRUE(allclose(int8.infer(tokens), fp32.infer(tokens), 1e-6F));
}

TEST(QuantizedRuntime, CustomExecutorOverridesPrecision) {
  // An installed PartitionExecutor wins over set_precision — the int8 plane
  // must not hijack a caller-supplied kernel.
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(12, model.spec().vocab_size, 62);
  VoltageRuntime runtime(model, PartitionScheme::even(2),
                         OrderPolicy::kAlwaysNaive);
  runtime.set_precision(Precision::kInt8);
  runtime.set_partition_executor(
      [&model](std::size_t layer, const Tensor& x, Range p,
               OrderPolicy policy) {
        return partitioned_layer_forward(model.layers()[layer], x, p, policy);
      });
  // Executor = exact float kernels, and the gathers stay fp32 too: the run
  // must be bitwise-exact against single-device float inference.
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 1e-6F));
}

TEST(QuantizedDecoder, TopOneTokensMatchFp32DecodeAndPrefillBytesShrink) {
  // Acceptance: the int8 decode plane picks the same greedy tokens as the
  // fp32 decoder, and its prefill gathers move fewer bytes.
  const TransformerModel model = make_model(mini_gpt2_spec());
  const auto prompt = random_tokens(13, model.spec().vocab_size, 63);

  DistributedDecoder fp32(model, PartitionScheme::even(3));
  DistributedDecoder int8(model, PartitionScheme::even(3));
  int8.set_precision(Precision::kInt8);
  EXPECT_EQ(int8.precision(), Precision::kInt8);

  Tensor ref_logits = fp32.prime(prompt);
  const std::uint64_t fp32_prime_bytes =
      fp32.fabric().total_stats().bytes_sent;
  Tensor logits = int8.prime(prompt);
  const std::uint64_t int8_prime_bytes =
      int8.fabric().total_stats().bytes_sent;
  EXPECT_LT(int8_prime_bytes, fp32_prime_bytes);
  EXPECT_LT(relative_error(logits, ref_logits), 0.25F);

  for (int step = 0; step < 8; ++step) {
    const auto ref_next = static_cast<TokenId>(argmax_row(ref_logits, 0));
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    ASSERT_EQ(next, ref_next) << "int8 decode diverged at step " << step;
    // Feed the agreed token to both so the contexts stay aligned.
    ref_logits = fp32.step(ref_next);
    logits = int8.step(ref_next);
    EXPECT_LT(relative_error(logits, ref_logits), 0.25F) << "step " << step;
  }
  EXPECT_EQ(int8.position(), fp32.position());
}

TEST(QuantizedDecoder, Int8StepWireBytesStayContextIndependent) {
  // The O(1)-per-step wire contract must survive the quantized plane: the
  // int8 step broadcast is one quantized row regardless of context length.
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(3));
  decoder.set_precision(Precision::kInt8);
  Tensor logits =
      decoder.prime(random_tokens(16, model.spec().vocab_size, 64));
  std::uint64_t first_step_bytes = 0;
  for (int step = 0; step < 12; ++step) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    const std::uint64_t before = decoder.fabric().total_stats().bytes_sent;
    logits = decoder.step(next);
    const std::uint64_t bytes =
        decoder.fabric().total_stats().bytes_sent - before;
    if (step == 0) {
      first_step_bytes = bytes;
      EXPECT_GT(bytes, 0U);
    } else {
      EXPECT_EQ(bytes, first_step_bytes) << "step " << step;
    }
  }
}

TEST(QuantizedDecoder, MixedPrecisionAcrossRequestsIsSafe) {
  // Each command carries its own precision flag; the caches stay fp32 under
  // both planes, so prime-fp32 / step-int8 (and back) must work.
  const TransformerModel model = make_model(mini_gpt2_spec());
  DistributedDecoder decoder(model, PartitionScheme::even(2));
  Tensor logits = decoder.prime(random_tokens(9, model.spec().vocab_size, 65));
  decoder.set_precision(Precision::kInt8);
  logits = decoder.step(static_cast<TokenId>(argmax_row(logits, 0)));
  decoder.set_precision(Precision::kFp32);
  logits = decoder.step(static_cast<TokenId>(argmax_row(logits, 0)));
  EXPECT_EQ(decoder.position(), 11U);
  EXPECT_EQ(logits.cols(), model.spec().vocab_size);
}

}  // namespace
}  // namespace voltage
