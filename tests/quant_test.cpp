// Tests of the INT8 quantization extension (§VII-A): quantization error
// bounds, the int8 GEMM, quantized Algorithm 1, and the composition with
// position-wise partitioning.
#include <cmath>

#include <gtest/gtest.h>

#include "quant/quantized_layer.h"
#include "quant/quantized_stack.h"
#include "quant/quantized_tensor.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/layer.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

LayerConfig test_config(bool causal = false) {
  return LayerConfig{.hidden = 32,
                     .heads = 4,
                     .head_dim = 8,
                     .ffn_dim = 64,
                     .activation = Activation::kGelu,
                     .causal = causal};
}

float relative_error(const Tensor& approx, const Tensor& exact) {
  double num = 0.0;
  double den = 0.0;
  const auto fa = approx.flat();
  const auto fe = exact.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    num += static_cast<double>(fa[i] - fe[i]) * (fa[i] - fe[i]);
    den += static_cast<double>(fe[i]) * fe[i];
  }
  return den == 0.0 ? 0.0F : static_cast<float>(std::sqrt(num / den));
}

TEST(Quantize, ActivationRoundTripWithinOneStep) {
  Rng rng(1);
  const Tensor x = rng.normal_tensor(10, 20, 2.0F);
  const QuantizedActivations q = quantize_activations(x);
  const Tensor back = dequantize(q);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    // Error bounded by half a quantization step per element.
    float absmax = 0.0F;
    for (const float v : x.row(r)) absmax = std::max(absmax, std::fabs(v));
    const float step = absmax / 127.0F;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_LE(std::fabs(back(r, c) - x(r, c)), 0.5F * step + 1e-7F);
    }
  }
}

TEST(Quantize, WeightRoundTripPerColumn) {
  Rng rng(2);
  Tensor w = rng.normal_tensor(16, 8, 0.3F);
  // Give one column a much larger range: per-column scales must absorb it.
  for (std::size_t r = 0; r < w.rows(); ++r) w(r, 3) *= 50.0F;
  const Tensor back = dequantize(quantize_weights(w));
  EXPECT_LT(relative_error(back, w), 0.01F);
}

TEST(Quantize, ZeroTensorIsExact) {
  const Tensor zero(4, 4);
  EXPECT_EQ(dequantize(quantize_activations(zero)), zero);
  EXPECT_EQ(dequantize(quantize_weights(zero)), zero);
}

TEST(QuantizedMatmul, CloseToFloatGemm) {
  Rng rng(3);
  const Tensor x = rng.normal_tensor(12, 32, 1.0F);
  const Tensor w = rng.normal_tensor(32, 16, 0.2F);
  const Tensor exact = matmul(x, w);
  const Tensor approx = quantized_matmul(x, quantize_weights(w));
  EXPECT_LT(relative_error(approx, exact), 0.02F);
}

TEST(QuantizedMatmul, ShapeMismatchThrows) {
  const Tensor x(2, 3);
  EXPECT_THROW((void)quantized_matmul(x, quantize_weights(Tensor(4, 2))),
               std::invalid_argument);
}

TEST(QuantizedLayer, MemoryIsRoughlyQuarter) {
  Rng rng(4);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const QuantizedLayerWeights q = quantize_layer(w);
  const double ratio = static_cast<double>(float_layer_byte_size(w)) /
                       static_cast<double>(q.byte_size());
  // The duplicated W_K^T copy and the scales eat into the ideal 4x.
  EXPECT_GT(ratio, 2.8);
  EXPECT_LT(ratio, 4.0);
}

TEST(QuantizedLayer, FullForwardTracksFloatLayer) {
  Rng rng(5);
  const LayerConfig cfg = test_config();
  const LayerWeights w = init_layer_weights(cfg, rng);
  const TransformerLayer layer(cfg, w);
  const QuantizedLayerWeights q = quantize_layer(w);
  const Tensor x = rng.normal_tensor(14, cfg.hidden, 1.0F);
  const Tensor exact = layer.forward(x);
  const Tensor approx = quantized_layer_forward(cfg, q, x);
  // LayerNorm keeps activations O(1); int8 noise stays small end to end.
  EXPECT_LT(relative_error(approx, exact), 0.15F);
}

class QuantizedPartition : public ::testing::TestWithParam<OrderPolicy> {};

TEST_P(QuantizedPartition, PartitionsAssembleToQuantizedFull) {
  // The distribution invariant must hold *within* the quantized model:
  // partition outputs equal the quantized full forward's rows, both orders.
  Rng rng(6);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 18;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full =
      quantized_partitioned_layer_forward(cfg, q, x, Range{0, n}, GetParam());
  Tensor assembled(n, cfg.hidden);
  for (const Range p : {Range{0, 6}, Range{6, 13}, Range{13, 18}}) {
    assembled.set_rows(p.begin, quantized_partitioned_layer_forward(
                                    cfg, q, x, p, GetParam()));
  }
  // Same policy and same P would pick the same kernels; across partition
  // sizes the order may flip (adaptive), so allow small numeric drift.
  EXPECT_LT(relative_error(assembled, full), 0.12F);
}

INSTANTIATE_TEST_SUITE_P(Policies, QuantizedPartition,
                         ::testing::Values(OrderPolicy::kAlwaysNaive,
                                           OrderPolicy::kAlwaysReordered,
                                           OrderPolicy::kAdaptive));

TEST(QuantizedPartition, FixedOrderPartitionIsExactlyConsistent) {
  // With a FIXED order the per-position computation is identical whether
  // computed in one block or per partition (same kernels, same operands),
  // so rows must match to float tolerance, not just statistically.
  Rng rng(7);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 12;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = quantized_partitioned_layer_forward(
      cfg, q, x, Range{0, n}, OrderPolicy::kAlwaysNaive);
  const Tensor part = quantized_partitioned_layer_forward(
      cfg, q, x, Range{4, 9}, OrderPolicy::kAlwaysNaive);
  EXPECT_TRUE(allclose(part, full.slice_rows(4, 9), 2e-3F));
}

TEST(QuantizedPartition, CausalSupported) {
  Rng rng(8);
  const LayerConfig cfg = test_config(/*causal=*/true);
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const std::size_t n = 10;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = quantized_layer_forward(cfg, q, x);
  const Tensor part = quantized_partitioned_layer_forward(
      cfg, q, x, Range{5, 10}, OrderPolicy::kAlwaysNaive);
  EXPECT_TRUE(allclose(part, full.slice_rows(5, 10), 2e-3F));
}

TEST(QuantizedPartition, Validation) {
  Rng rng(9);
  const LayerConfig cfg = test_config();
  const QuantizedLayerWeights q =
      quantize_layer(init_layer_weights(cfg, rng));
  const Tensor x = rng.normal_tensor(8, cfg.hidden, 1.0F);
  EXPECT_THROW((void)quantized_partitioned_layer_forward(cfg, q, x,
                                                         Range{6, 10}),
               std::out_of_range);
  EXPECT_EQ(
      quantized_partitioned_layer_forward(cfg, q, x, Range{3, 3}).rows(),
      0U);
}

// --- whole-model stack + distributed execution --------------------------------

TEST(QuantizedStack, TracksFloatModel) {
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  EXPECT_EQ(stack.num_layers(), model.spec().num_layers);
  EXPECT_GT(static_cast<double>(stack.float_byte_size()) /
                static_cast<double>(stack.byte_size()),
            2.8);
  const auto tokens = random_tokens(20, model.spec().vocab_size, 50);
  const Tensor x = model.preprocess(tokens);
  const Tensor q = model.postprocess(stack.forward_layers(x));
  const Tensor f = model.postprocess(model.forward_layers(x));
  // Same prediction, bounded logit drift.
  EXPECT_EQ(argmax_row(q, 0), argmax_row(f, 0));
  EXPECT_LT(max_abs_diff(q, f), 0.25F);
}

TEST(QuantizedStack, DistributedExecutorMatchesQuantizedSingleDevice) {
  // Fixed order makes distributed int8 and single-device int8 follow the
  // exact same kernel path per position: rows must agree tightly.
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  const auto tokens = random_tokens(24, model.spec().vocab_size, 51);

  VoltageRuntime runtime(model, PartitionScheme::even(4),
                         OrderPolicy::kAlwaysNaive);
  runtime.set_partition_executor([&stack](std::size_t layer, const Tensor& x,
                                          Range p, OrderPolicy policy) {
    return stack.partition_forward(layer, x, p, policy);
  });
  const Tensor distributed = runtime.infer(tokens);

  Tensor x = model.preprocess(tokens);
  for (std::size_t l = 0; l < stack.num_layers(); ++l) {
    x = stack.partition_forward(l, x, Range{0, x.rows()},
                                OrderPolicy::kAlwaysNaive);
  }
  const Tensor single = model.postprocess(x);
  EXPECT_TRUE(allclose(distributed, single, 2e-3F));
}

TEST(QuantizedStack, ExecutorResetRestoresFloatPath) {
  const TransformerModel model = make_model(mini_gpt2_spec());
  const QuantizedStack stack(model);
  const auto tokens = random_tokens(12, model.spec().vocab_size, 52);
  VoltageRuntime runtime(model, PartitionScheme::even(2));
  runtime.set_partition_executor([&stack](std::size_t layer, const Tensor& x,
                                          Range p, OrderPolicy policy) {
    return stack.partition_forward(layer, x, p, policy);
  });
  (void)runtime.infer(tokens);
  runtime.set_partition_executor({});
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F));
}

TEST(QuantizedStack, LayerIndexValidated) {
  const TransformerModel model = make_model(mini_bert_spec());
  const QuantizedStack stack(model);
  EXPECT_THROW(
      (void)stack.partition_forward(99, Tensor(4, 128), Range{0, 2}),
      std::out_of_range);
}

}  // namespace
}  // namespace voltage
