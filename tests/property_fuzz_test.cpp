// Randomized property sweeps: the system's core invariants checked across
// randomly drawn geometries, partitions, schemes and payloads. Each TEST_P
// instance derives everything deterministically from its seed, so failures
// reproduce exactly.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "net/quant_codec.h"
#include "partition/flop_model.h"
#include "quant/quantized_tensor.h"
#include "partition/partitioned_layer.h"
#include "partition/scheme.h"
#include "runtime/voltage_runtime.h"
#include "sim/netsim.h"
#include "tensor/archive.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "transformer/layer.h"
#include "transformer/tokenizer.h"
#include "transformer/weights.h"
#include "transformer/zoo.h"

namespace voltage {
namespace {

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};

  LayerConfig random_config(bool allow_causal = true) {
    const std::size_t heads = 1ULL << (1 + rng_.next_below(3));   // 2/4/8
    const std::size_t head_dim = 1ULL << (2 + rng_.next_below(3));  // 4/8/16
    return LayerConfig{
        .hidden = heads * head_dim,
        .heads = heads,
        .head_dim = head_dim,
        .ffn_dim = heads * head_dim * (1 + rng_.next_below(4)),
        .activation =
            rng_.next_below(2) == 0 ? Activation::kGelu : Activation::kRelu,
        .causal = allow_causal && rng_.next_below(2) == 0,
    };
  }

  Range random_range(std::size_t n) {
    const std::size_t a = rng_.next_below(n);
    const std::size_t b = rng_.next_below(n) + 1;
    return a < b ? Range{a, b} : Range{b - 1, a + 1};
  }
};

TEST_P(Fuzz, PartitionedLayerMatchesFullRows) {
  const LayerConfig cfg = random_config();
  const LayerWeights w = init_layer_weights(cfg, rng_);
  const TransformerLayer layer(cfg, w);
  const std::size_t n = 8 + rng_.next_below(24);
  const Tensor x = rng_.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor full = layer.forward(x);
  for (int trial = 0; trial < 4; ++trial) {
    const Range p = random_range(n);
    const OrderPolicy policy = static_cast<OrderPolicy>(rng_.next_below(3));
    const Tensor part = partitioned_layer_forward(layer, x, p, policy);
    EXPECT_TRUE(allclose(part, full.slice_rows(p.begin, p.end), 1e-3F))
        << "seed=" << GetParam() << " range=[" << p.begin << "," << p.end
        << ") H=" << cfg.heads << " F_H=" << cfg.head_dim
        << " causal=" << cfg.causal;
  }
}

TEST_P(Fuzz, RandomSchemesCoverExactly) {
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t k = 1 + rng_.next_below(8);
    std::vector<double> weights(k);
    for (double& v : weights) {
      v = 0.05 + static_cast<double>(rng_.next_uniform());
    }
    const PartitionScheme scheme = PartitionScheme::proportional(weights);
    const std::size_t n = 1 + rng_.next_below(500);
    std::size_t begin = 0;
    for (const Range& r : scheme.ranges(n)) {
      ASSERT_EQ(r.begin, begin);
      begin = r.end;
    }
    EXPECT_EQ(begin, n);
  }
}

TEST_P(Fuzz, Theorem2OptimalOnRandomGeometries) {
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t h = 2 + rng_.next_below(15);
    const std::size_t fh = 1 + rng_.next_below(256);
    const std::size_t n = 2 + rng_.next_below(512);
    const std::size_t p = 1 + rng_.next_below(n);
    const AttentionDims d{.n = n, .p = p, .f = h * fh, .fh = fh};
    const std::uint64_t chosen =
        theorem2_prefers_reordered(d) ? gamma_eq8(d) : gamma_eq3(d);
    EXPECT_EQ(chosen, cheapest_order_exhaustive(d).cost)
        << "seed=" << GetParam() << " N=" << n << " P=" << p << " H=" << h
        << " F_H=" << fh;
  }
}

TEST_P(Fuzz, SerializationRoundTripsRandomShapes) {
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = rng_.next_below(20);
    const std::size_t cols = 1 + rng_.next_below(40);
    const Tensor t = rng_.normal_tensor(rows, cols, 3.0F);
    EXPECT_EQ(tensor_from_bytes(to_bytes(t)), t);
  }
}

TEST_P(Fuzz, QuantizedWireRoundTripsWithinHalfStep) {
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = rng_.next_below(16);
    const std::size_t cols = 1 + rng_.next_below(48);
    const Tensor t =
        rng_.normal_tensor(rows, cols, 0.1F + 10.0F * rng_.next_uniform());
    const Payload payload = quantized_payload(t);
    ASSERT_EQ(payload.size(), quant_wire_bytes(rows, cols));
    const Tensor back = tensor_from_payload(payload);
    ASSERT_TRUE(back.same_shape(t));
    for (std::size_t r = 0; r < rows; ++r) {
      float absmax = 0.0F;
      for (const float v : t.row(r)) absmax = std::max(absmax, std::fabs(v));
      const float step = absmax / 127.0F;
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_LE(std::fabs(back(r, c) - t(r, c)),
                  0.5F * step + 1e-6F * absmax + 1e-7F)
            << "seed=" << GetParam() << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST_P(Fuzz, Int8GemmTracksFloatGemmWithinQuantizationBound) {
  // The documented compute bound: quantized_matmul's error against the float
  // GEMM comes only from representing x per row and W per column in int8 —
  // the int32 accumulation itself is exact. With both operand errors at most
  // half a step, the relative error stays well under 2% for generic dense
  // operands (DESIGN.md "Quantized path").
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t m = 1 + rng_.next_below(40);
    const std::size_t k = 1 + rng_.next_below(96);
    const std::size_t n = 1 + rng_.next_below(64);
    const float xs = 0.05F + 5.0F * rng_.next_uniform();
    const float ws = 0.05F + 2.0F * rng_.next_uniform();
    const Tensor x = rng_.normal_tensor(m, k, xs);
    const Tensor w = rng_.normal_tensor(k, n, ws);
    const Tensor exact = matmul(x, w);
    const Tensor approx = quantized_matmul(x, quantize_weights(w));
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const double d = static_cast<double>(approx.flat()[i]) -
                       static_cast<double>(exact.flat()[i]);
      num += d * d;
      den += static_cast<double>(exact.flat()[i]) * exact.flat()[i];
    }
    const double rel = den == 0.0 ? 0.0 : std::sqrt(num / den);
    EXPECT_LT(rel, 0.02) << "seed=" << GetParam() << " m=" << m << " k=" << k
                         << " n=" << n;
  }
}

TEST_P(Fuzz, AllGatherNeverFinishesBeforeDependencies) {
  const LinkModel link =
      LinkModel::mbps(50.0 + 950.0 * rng_.next_uniform(),
                      1e-4 + 5e-3 * rng_.next_uniform());
  const std::size_t k = 2 + rng_.next_below(7);
  std::vector<sim::SimTime> ready(k);
  std::vector<std::size_t> bytes(k);
  for (std::size_t i = 0; i < k; ++i) {
    ready[i] = rng_.next_uniform();
    bytes[i] = rng_.next_below(1 << 20);
  }
  const auto done = sim::sim_allgather_fullmesh(ready, bytes, link);
  const double slowest = *std::max_element(ready.begin(), ready.end());
  for (std::size_t j = 0; j < k; ++j) {
    // Can't finish before your own readiness...
    EXPECT_GE(done[j], ready[j]);
    // ...nor before the last sender has even started (k >= 2 means every
    // rank waits for at least one message from the slowest peer).
    if (std::count(ready.begin(), ready.end(), slowest) == 1 &&
        done[j] == ready[j]) {
      EXPECT_GE(ready[j], slowest);
    }
  }
}

TEST_P(Fuzz, FasterLinkNeverSlowsCollectives) {
  const std::size_t k = 2 + rng_.next_below(5);
  std::vector<sim::SimTime> ready(k);
  for (auto& r : ready) r = rng_.next_uniform();
  const std::size_t bytes = 1 + rng_.next_below(1 << 21);
  const LinkModel slow = LinkModel::mbps(100, 2e-3);
  const LinkModel fast = LinkModel::mbps(400, 2e-3);
  const auto d_slow = sim::sim_ring_allreduce(ready, bytes, slow);
  const auto d_fast = sim::sim_ring_allreduce(ready, bytes, fast);
  for (std::size_t i = 0; i < k; ++i) EXPECT_LE(d_fast[i], d_slow[i]);
}

TEST_P(Fuzz, ArchiveRoundTripsRandomContents) {
  TensorArchive archive;
  const std::size_t entries = 1 + rng_.next_below(6);
  for (std::size_t i = 0; i < entries; ++i) {
    archive.put("entry." + std::to_string(rng_.next_u64() % 1000),
                rng_.normal_tensor(rng_.next_below(8), 1 + rng_.next_below(8),
                                   1.0F));
  }
  const auto path = std::filesystem::temp_directory_path() /
                    ("voltage_fuzz_" + std::to_string(GetParam()) + ".vlta");
  archive.save(path);
  const TensorArchive loaded = TensorArchive::load(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), archive.size());
  for (const auto& [name, tensor] : archive.entries()) {
    EXPECT_EQ(loaded.get(name), tensor);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                          8));

// Heavier end-to-end fuzz: random scheme, random device count, random
// sequence length — distributed inference must match single-device.
class RuntimeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeFuzz, RandomSchemesMatchSingleDevice) {
  Rng rng(GetParam());
  const TransformerModel model = make_model(
      rng.next_below(2) == 0 ? mini_bert_spec() : mini_gpt2_spec());
  const std::size_t k = 1 + rng.next_below(5);
  std::vector<double> weights(k);
  for (double& v : weights) {
    v = 0.1 + static_cast<double>(rng.next_uniform());
  }
  const std::size_t n = 6 + rng.next_below(26);
  const auto tokens = random_tokens(n, model.spec().vocab_size,
                                    rng.next_u64());
  VoltageRuntime runtime(model, PartitionScheme::proportional(weights),
                         static_cast<OrderPolicy>(rng.next_below(3)));
  EXPECT_TRUE(allclose(runtime.infer(tokens), model.infer(tokens), 2e-3F))
      << "seed=" << GetParam() << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzz,
                         ::testing::Values<std::uint64_t>(11, 12, 13, 14, 15,
                                                          16));

}  // namespace
}  // namespace voltage
