// Ablation of Voltage's adaptive computation-order selection (Theorem 2):
//   1. operation counts of adaptive vs always-Eq.3 vs always-Eq.8 across
//      the (N, K) grid — how much each fixed policy loses;
//   2. exhaustive validation that the Theorem-2 threshold picks the argmin
//      of all ten multiplication orders;
//   3. real wall-clock timing of both orders around the crossover.
#include <cstdio>

#include "bench_util.h"
#include "partition/flop_model.h"
#include "partition/order.h"
#include "partition/partitioned_attention.h"
#include "tensor/rng.h"
#include "transformer/weights.h"

namespace {

using namespace voltage;

void flop_grid() {
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 16,
                        .head_dim = 64,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  std::printf("\nper-layer GMACs (BERT-Large geometry, F=1024, H=16)\n");
  std::printf("%4s %4s  %9s %9s %9s  %8s %14s\n", "N", "K", "adaptive",
              "eq3-only", "eq8-only", "chosen", "penalty-if-naive");
  bench::print_rule(72);
  for (const std::size_t n : {100U, 200U, 300U}) {
    for (const std::size_t k : {2U, 4U, 6U, 8U, 10U}) {
      const std::size_t p = n / k;
      const AttentionDims dims{.n = n, .p = p, .f = cfg.hidden,
                               .fh = cfg.head_dim};
      const AttentionOrder chosen =
          select_order(OrderPolicy::kAdaptive, dims);
      const double eq3 =
          static_cast<double>(gamma_partitioned_layer(
              cfg, n, p, AttentionOrder::kNaive)) / 1e9;
      const double eq8 =
          static_cast<double>(gamma_partitioned_layer(
              cfg, n, p, AttentionOrder::kReordered)) / 1e9;
      const double adaptive = std::min(eq3, eq8);
      std::printf("%4zu %4zu  %9.3f %9.3f %9.3f  %8s %13.1f%%\n", n, k,
                  adaptive, eq3, eq8, to_string(chosen),
                  100.0 * (eq3 - adaptive) / adaptive);
    }
  }
}

void oracle_validation() {
  std::size_t cases = 0;
  std::size_t optimal = 0;
  for (const std::size_t h : {2U, 4U, 8U, 12U, 16U}) {
    for (const std::size_t fh : {16U, 64U, 128U, 256U}) {
      for (const std::size_t n : {64U, 100U, 197U, 200U, 300U, 512U}) {
        for (std::size_t p = 1; p <= n; p += 3) {
          const AttentionDims d{.n = n, .p = p, .f = h * fh, .fh = fh};
          const std::uint64_t chosen = theorem2_prefers_reordered(d)
                                           ? gamma_eq8(d)
                                           : gamma_eq3(d);
          ++cases;
          if (chosen == cheapest_order_exhaustive(d).cost) ++optimal;
        }
      }
    }
  }
  std::printf("\nTheorem-2 selector vs exhaustive 10-order oracle: "
              "%zu/%zu settings optimal\n",
              optimal, cases);
}

void wallclock_crossover() {
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 8,
                        .head_dim = 128,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  Rng rng(7);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const std::size_t n = 200;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);

  std::printf("\nreal wall-clock per partition (N=%zu, H=8, F_H=128)\n", n);
  std::printf("%4s  %12s  %12s  %10s\n", "K", "eq3 (ms)", "eq8 (ms)",
              "adaptive");
  bench::print_rule(46);
  for (const std::size_t k : {1U, 2U, 4U, 8U, 16U}) {
    const Range p{0, n / k};
    const double t3 = bench::time_best_of(3, [&] {
      (void)multi_head_attention_partition(x, p, w.attention, cfg,
                                           OrderPolicy::kAlwaysNaive);
    });
    const double t8 = bench::time_best_of(3, [&] {
      (void)multi_head_attention_partition(x, p, w.attention, cfg,
                                           OrderPolicy::kAlwaysReordered);
    });
    const AttentionOrder chosen = select_order(
        OrderPolicy::kAdaptive,
        {.n = n, .p = p.size(), .f = cfg.hidden, .fh = cfg.head_dim});
    std::printf("%4zu  %12.2f  %12.2f  %10s\n", k, 1e3 * t3, 1e3 * t8,
                to_string(chosen));
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: adaptive computation-order selection "
              "(Theorem 2) ===\n");
  flop_grid();
  oracle_validation();
  wallclock_crossover();
  return 0;
}
