// Observability overhead: what does instrumentation cost when it is OFF?
//
// The tracing contract (obs/trace.h) is that a detached tracer reduces every
// instrumentation site to a null-pointer check — no clock reads, no locks,
// no allocation. This bench holds the repo to that claim on the hottest
// path, the decode step:
//
//   1. measures the per-site cost of a disabled TraceSpan + flow record
//      (through a volatile tracer pointer, so the null check really runs);
//   2. measures the real per-step latency of a DistributedDecoder with no
//      tracer attached, and — interleaved A/B, best-of per config — with a
//      tracer attached, for reference;
//   3. bounds the disabled-instrumentation share of a step as
//      sites_per_step * per_site_cost / step_latency and FAILS (exit 1) if
//      it reaches 1%.
//
// Writes the numbers as JSON (argv[1], default BENCH_obs_overhead.json —
// the repo root keeps a committed snapshot that CI regenerates).
//
//   ./build/bench/obs_overhead [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/trace.h"
#include "runtime/distributed_decoder.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Per-site cost of disabled instrumentation: one TraceSpan construction +
// attribute stamp + one flow record, against a tracer pointer the compiler
// cannot prove null.
double disabled_site_ns(std::size_t iters) {
  obs::Tracer* volatile detached = nullptr;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    obs::TraceSpan span(detached, "layer", "compute", 0);
    span.device(0).layer(static_cast<std::int64_t>(i));
    obs::record_flow(detached, obs::EventPhase::kFlowStart, i, 0, 1);
  }
  return seconds_since(start) * 1e9 / static_cast<double>(iters);
}

// Best-of per-step decode latency for one round: prime once, time `steps`
// cached steps.
double step_seconds(DistributedDecoder& decoder,
                    std::span<const TokenId> prompt, std::size_t steps) {
  Tensor logits = decoder.prime(prompt);
  TokenId next = static_cast<TokenId>(argmax_row(logits, 0));
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    logits = decoder.step(next);
    next = static_cast<TokenId>(argmax_row(logits, 0));
  }
  return seconds_since(start) / static_cast<double>(steps);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_obs_overhead.json";
  const TransformerModel model = make_model(mini_gpt2_spec());
  constexpr std::size_t kDevices = 2;
  constexpr std::size_t kPrompt = 16;
  constexpr std::size_t kSteps = 24;
  constexpr std::size_t kRounds = 3;
  const auto prompt = random_tokens(kPrompt, model.spec().vocab_size, 7);
  const std::size_t layers = model.spec().num_layers;

  const double site_ns = disabled_site_ns(2'000'000);

  // Interleaved A/B rounds (detached, attached, detached, ...) with best-of
  // per config, so drift hits both configs symmetrically. The tracer is
  // declared before the decoders: it must outlive them, since even the
  // shutdown handshake lands on the trace.
  obs::Tracer tracer;
  DistributedDecoder off(model, PartitionScheme::even(kDevices));
  DistributedDecoder on(model, PartitionScheme::even(kDevices));
  on.set_tracer(&tracer);
  double best_off = 1e18;
  double best_on = 1e18;
  for (std::size_t r = 0; r < kRounds; ++r) {
    best_off = std::min(
        best_off,
        step_seconds(off, std::span<const TokenId>(prompt), kSteps));
    best_on = std::min(
        best_on, step_seconds(on, std::span<const TokenId>(prompt), kSteps));
  }

  // Instrumentation sites one decode step can touch, counted generously:
  // per worker per layer one compute span, one merge comm span and up to
  // four flow records; plus the terminal's step span, command broadcast and
  // final receive. Overcounting is fine — it only makes the bound stricter.
  const double sites_per_step =
      static_cast<double>(kDevices * layers * 6 + kDevices * 4 + 8);
  const double disabled_fraction =
      sites_per_step * site_ns * 1e-9 / best_off;
  const double enabled_fraction = best_on / best_off - 1.0;

  std::printf("=== Observability overhead, %s, K=%zu ===\n\n",
              model.spec().name.c_str(), kDevices);
  std::printf("  disabled site cost        : %.2f ns\n", site_ns);
  std::printf("  decode step (no tracer)   : %.1f us\n", best_off * 1e6);
  std::printf("  decode step (tracer on)   : %.1f us\n", best_on * 1e6);
  std::printf("  sites/step (upper bound)  : %.0f\n", sites_per_step);
  std::printf("  disabled overhead bound   : %.4f%%  (budget 1%%)\n",
              disabled_fraction * 100.0);
  std::printf("  enabled overhead measured : %.2f%%\n",
              enabled_fraction * 100.0);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"model\": \"" << model.spec().name << "\",\n"
      << "  \"devices\": " << kDevices << ",\n"
      << "  \"layers\": " << layers << ",\n"
      << "  \"disabled_site_ns\": " << site_ns << ",\n"
      << "  \"step_us_no_tracer\": " << best_off * 1e6 << ",\n"
      << "  \"step_us_with_tracer\": " << best_on * 1e6 << ",\n"
      << "  \"sites_per_step\": " << sites_per_step << ",\n"
      << "  \"disabled_overhead_fraction\": " << disabled_fraction << ",\n"
      << "  \"enabled_overhead_fraction\": " << enabled_fraction << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (disabled_fraction >= 0.01) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL — disabled instrumentation bound "
                 "%.3f%% >= 1%% of a decode step\n",
                 disabled_fraction * 100.0);
    return 1;
  }
  std::printf("PASS: disabled instrumentation costs <1%% of a decode step\n");
  return 0;
}
