// Ablation: the full deployment-strategy landscape the paper discusses in
// §V-C, quantified on one cluster description —
//   * batch-1 request latency: single device / Voltage / tensor parallelism
//     (star and ring all-reduce) / pipeline parallelism;
//   * saturated-stream throughput, where pipelining finally pays off;
//   * heterogeneous clusters: even vs proportional vs optimizer-planned
//     partition schemes (DESIGN.md ablation #3);
//   * linear-attention extension: per-layer sync volume vs softmax Voltage.
#include <cstdio>

#include "bench_util.h"
#include "collective/cost.h"
#include "parallel/latency_model.h"
#include "parallel/pipeline.h"
#include "plan/planner.h"
#include "transformer/linear_attention.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

sim::DeviceSpec paper_device(double scale = 1.0) {
  return sim::DeviceSpec{.name = "vcpu",
                         .mac_rate = 25e9 * scale,
                         .elementwise_rate = 4e9 * scale};
}

void strategy_table() {
  const ModelSpec spec = bert_large_spec();
  const std::size_t n = 200;
  std::printf("\nBERT-Large, N=200, 500 Mbps — batch-1 latency and "
              "saturated throughput\n");
  std::printf("%3s  %10s %10s %10s %10s %10s  %12s\n", "K", "single",
              "voltage", "tp-star", "tp-ring", "pipeline", "pipe-thpt");
  bench::print_rule(76);
  const double single =
      simulate_single_device(
          spec, n, sim::Cluster::homogeneous(1, paper_device(),
                                             LinkModel::mbps(500)))
          .total;
  for (const std::size_t k : {2U, 4U, 6U}) {
    const auto cluster =
        sim::Cluster::homogeneous(k, paper_device(), LinkModel::mbps(500));
    const double voltage =
        simulate_voltage(spec, n, cluster, PartitionScheme::even(k),
                         OrderPolicy::kAdaptive)
            .total;
    const double tp_star =
        simulate_tensor_parallel(spec, n, cluster, AllReduceAlgo::kStar)
            .total;
    const double tp_ring =
        simulate_tensor_parallel(spec, n, cluster, AllReduceAlgo::kRing)
            .total;
    const PipelineReport pipe = simulate_pipeline(spec, n, cluster);
    std::printf("%3zu  %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs  %9.2f r/s\n", k,
                single, voltage, tp_star, tp_ring, pipe.request_latency,
                pipe.throughput_rps);
  }
  std::printf("single-device throughput: %.2f r/s — pipelining trades "
              "request latency for stream throughput (paper SV-C)\n",
              single_device_throughput(
                  spec, n,
                  sim::Cluster::homogeneous(1, paper_device(),
                                            LinkModel::mbps(500))));
}

void heterogeneous_table() {
  const ModelSpec spec = bert_large_spec();
  const std::size_t n = 200;
  sim::Cluster cluster;
  cluster.link = LinkModel::mbps(500);
  cluster.terminal = paper_device();
  for (const double s : {3.0, 1.5, 1.0, 0.5}) {
    cluster.workers.push_back(paper_device(s));
  }
  std::printf("\nheterogeneous cluster (speeds 3 : 1.5 : 1 : 0.5), "
              "BERT-Large N=200\n");
  const double even = simulate_voltage(spec, n, cluster,
                                       PartitionScheme::even(4),
                                       OrderPolicy::kAdaptive)
                          .total;
  const double proportional =
      simulate_voltage(spec, n, cluster, plan_proportional(cluster),
                       OrderPolicy::kAdaptive)
          .total;
  const PlanResult plan =
      optimize_scheme(spec, n, cluster, OrderPolicy::kAdaptive);
  std::printf("  even 1/K scheme        : %.3f s\n", even);
  std::printf("  speed-proportional     : %.3f s  (%.1f%% better)\n",
              proportional, 100.0 * (even - proportional) / even);
  std::printf("  optimizer (descent)    : %.3f s  (%zu evaluations)\n",
              plan.predicted_latency, plan.evaluations);
}

void linear_attention_table() {
  std::printf("\nlinear-attention extension (SVII-C): per-device per-layer "
              "sync volume\n");
  std::printf("%-28s %14s %16s\n", "layer geometry",
              "softmax (KB)", "linear-attn (KB)");
  bench::print_rule(62);
  struct Geo {
    const char* name;
    std::size_t n, f, h, fh;
  };
  for (const Geo g : {Geo{"BERT-Large (N=200)", 200, 1024, 16, 64},
                      Geo{"ViT-Base  (N=197)", 197, 768, 12, 64},
                      Geo{"GPT-2     (N=200)", 200, 768, 12, 64}}) {
    const LayerConfig cfg{.hidden = g.f,
                          .heads = g.h,
                          .head_dim = g.fh,
                          .ffn_dim = 4 * g.f,
                          .activation = Activation::kGelu};
    const double softmax_kb =
        static_cast<double>(voltage_elements_per_device_layer(g.n, g.f, 6)) *
        4.0 / 1024.0;
    const double linear_kb =
        static_cast<double>(linear_attention_sync_elements(cfg)) * 4.0 /
        1024.0;
    std::printf("%-28s %14.1f %16.1f\n", g.name, softmax_kb, linear_kb);
  }
  std::printf("(linear attention all-reduces H * F_H * (F_H + 1) state "
              "elements — independent of N)\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: deployment strategies and partition planning "
              "===\n");
  strategy_table();
  heterogeneous_table();
  linear_attention_table();
  return 0;
}
