// Extension: distributed autoregressive decoding — cached vs recompute.
//
// Greedy-decodes a long continuation on K devices two ways at every context
// checkpoint T:
//   recompute — VoltageRuntime::infer over the whole grown context (what
//               token generation costs without decode support: O(T) compute
//               and an O(T F) gather per layer, per token);
//   cached    — DistributedDecoder::step against the partition-resident
//               caches (O(1) wire bytes and O(T) attention reads per token).
// Prints tokens/s and wire bytes/token for both, and writes the series as
// JSON (argv[1], default BENCH_decode.json — the repo root keeps a committed
// snapshot that CI regenerates to catch decode-path regressions).
//
//   ./build/bench/extension_decoding [out.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

// mini-gpt2 with a context window large enough for prompt + 256 decoded
// tokens (the zoo spec stops at 128 positions).
ModelSpec long_context_spec() {
  ModelSpec spec = mini_gpt2_spec();
  spec.name = "mini-gpt2-long";
  spec.max_positions = 320;
  return spec;
}

struct Sample {
  std::size_t devices = 0;
  std::size_t context = 0;  // decoded tokens beyond the prompt
  double cached_tokens_per_s = 0.0;
  double recompute_tokens_per_s = 0.0;
  double cached_bytes_per_token = 0.0;
  double recompute_bytes_per_token = 0.0;

  [[nodiscard]] double speedup() const {
    return recompute_tokens_per_s > 0.0
               ? cached_tokens_per_s / recompute_tokens_per_s
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_decode.json";
  const TransformerModel model = make_model(long_context_spec());
  constexpr std::size_t kPrompt = 16;
  const auto prompt = random_tokens(kPrompt, model.spec().vocab_size, 7);
  const std::vector<std::size_t> checkpoints{32, 64, 128, 256};

  std::printf("=== Extension: distributed KV-cache decoding, %s, prompt %zu "
              "===\n\n",
              model.spec().name.c_str(), kPrompt);
  std::printf("  K    T   cached_tok/s  recompute_tok/s  speedup  "
              "cached_B/tok  recompute_B/tok\n");

  std::vector<Sample> samples;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    VoltageRuntime recompute(model, PartitionScheme::even(k));
    DistributedDecoder decoder(model, PartitionScheme::even(k));
    Tensor logits = decoder.prime(prompt);
    std::vector<TokenId> context(prompt.begin(), prompt.end());

    std::size_t decoded = 0;
    for (const std::size_t target : checkpoints) {
      // Cached path: every step from the previous checkpoint to this one.
      const std::uint64_t cached_bytes0 =
          decoder.fabric().total_stats().bytes_sent;
      const auto cached_start = std::chrono::steady_clock::now();
      const std::size_t window = target - decoded;
      while (decoded < target) {
        const auto next = static_cast<TokenId>(argmax_row(logits, 0));
        context.push_back(next);
        logits = decoder.step(next);
        ++decoded;
      }
      const double cached_s = voltage::bench::seconds_since(cached_start);
      const std::uint64_t cached_bytes =
          decoder.fabric().total_stats().bytes_sent - cached_bytes0;

      // Recompute path: one token at this context length costs one full
      // distributed forward over the whole grown context.
      const std::uint64_t recompute_bytes0 =
          recompute.fabric().total_stats().bytes_sent;
      (void)recompute.infer(context);
      const std::uint64_t recompute_bytes =
          recompute.fabric().total_stats().bytes_sent - recompute_bytes0;
      const double recompute_s = voltage::bench::time_best_of(
          3, [&] { (void)recompute.infer(context); });

      Sample s;
      s.devices = k;
      s.context = target;
      s.cached_tokens_per_s =
          cached_s > 0.0 ? static_cast<double>(window) / cached_s : 0.0;
      s.recompute_tokens_per_s = recompute_s > 0.0 ? 1.0 / recompute_s : 0.0;
      s.cached_bytes_per_token =
          static_cast<double>(cached_bytes) / static_cast<double>(window);
      s.recompute_bytes_per_token = static_cast<double>(recompute_bytes);
      samples.push_back(s);
      std::printf("  %zu  %3zu   %12.1f  %15.1f  %6.1fx  %12.0f  %15.0f\n",
                  s.devices, s.context, s.cached_tokens_per_s,
                  s.recompute_tokens_per_s, s.speedup(),
                  s.cached_bytes_per_token, s.recompute_bytes_per_token);
    }
    voltage::bench::print_rule(72);
  }

  voltage::bench::JsonReport report(out_path);
  report.field("benchmark", voltage::bench::quoted("distributed_decode"));
  report.field("model", voltage::bench::quoted(model.spec().name));
  report.field("prompt_tokens", std::to_string(kPrompt));
  report.begin_results();
  for (const Sample& s : samples) {
    report.result(
        "{\"devices\": " + std::to_string(s.devices) +
        ", \"context\": " + std::to_string(s.context) +
        ", \"cached_tokens_per_s\": " +
        voltage::bench::num(s.cached_tokens_per_s) +
        ", \"recompute_tokens_per_s\": " +
        voltage::bench::num(s.recompute_tokens_per_s) +
        ", \"speedup\": " + voltage::bench::num(s.speedup()) +
        ", \"cached_bytes_per_token\": " +
        voltage::bench::num(s.cached_bytes_per_token) +
        ", \"recompute_bytes_per_token\": " +
        voltage::bench::num(s.recompute_bytes_per_token) + "}");
  }
  report.end_results();
  return report.finish() ? 0 : 1;
}
