// Reproduces the paper's §V-C communication-size analysis as a table:
// per-device per-layer communication of Voltage ((K-1)NF/K elements, one
// all-gather) against tensor parallelism (4(K-1)NF/K, two all-reduces),
// for the three evaluated models — the headline "4x less communication".
//
// The analytic numbers are cross-checked against byte-accurate traffic
// measured on the real threaded runtimes (scaled-down models, same
// formulas).
#include <cstdio>

#include "bench_util.h"
#include "collective/cost.h"
#include "parallel/latency_model.h"
#include "runtime/tensor_parallel_runtime.h"
#include "runtime/voltage_runtime.h"
#include "tensor/serialize.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

void analytic_table(const ModelSpec& spec) {
  const std::size_t n = paper_sequence_length(spec);
  const std::size_t f = spec.layer.hidden;
  std::printf("\n%s  (N=%zu, F=%zu) — per device, per layer\n",
              spec.name.c_str(), n, f);
  std::printf("%3s  %14s  %14s  %7s\n", "K", "voltage (MB)", "tensor-par (MB)",
              "ratio");
  bench::print_rule(48);
  for (std::size_t k = 2; k <= 6; ++k) {
    const double v_mb = static_cast<double>(
                            voltage_elements_per_device_layer(n, f, k)) *
                        4.0 / 1.0e6;
    const double t_mb =
        static_cast<double>(tp_elements_per_device_layer(n, f, k)) * 4.0 /
        1.0e6;
    std::printf("%3zu  %14.3f  %14.3f  %6.2fx\n", k, v_mb, t_mb, t_mb / v_mb);
  }
}

void measured_check() {
  std::printf("\nmeasured on the real runtimes (mini-bert, K=4, N=32):\n");
  const TransformerModel model = make_model(mini_bert_spec());
  const auto tokens = random_tokens(32, model.spec().vocab_size, 5);

  VoltageRuntime voltage(model, PartitionScheme::even(4));
  (void)voltage.infer(tokens);
  TensorParallelRuntime tp(model, 4);
  (void)tp.infer(tokens);

  const auto vb = voltage.fabric().stats(0).bytes_sent;
  const auto tb = tp.fabric().stats(0).bytes_sent;
  std::printf("  voltage device-0 sent : %8llu bytes\n",
              static_cast<unsigned long long>(vb));
  std::printf("  tensor-par device-0   : %8llu bytes\n",
              static_cast<unsigned long long>(tb));
  std::printf("  measured ratio        : %.2fx  (steady-state analytic: 4x; "
              "short 4-layer model saves Voltage one all-gather)\n",
              static_cast<double>(tb) / static_cast<double>(vb));
}

}  // namespace

int main() {
  std::printf("=== Table: communication volume, Voltage vs tensor "
              "parallelism (paper SV-C) ===\n");
  analytic_table(bert_large_spec());
  analytic_table(vit_base_spec());
  analytic_table(gpt2_spec());
  measured_check();
  return 0;
}
