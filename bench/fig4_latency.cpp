// Reproduces paper Fig. 4: end-to-end inference latency vs device count
// (K = 1..6) for BERT-Large, ViT-Base and GPT-2 at the default 500 Mbps —
// Voltage vs tensor parallelism vs single-device deployment.
//
// Expected shape (paper §VI-B): Voltage decreases monotonically with K and
// beats single-device; tensor parallelism is slower than single-device at
// every K because its two all-reduces per layer dominate.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "parallel/latency_model.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

// Calibration of the paper's testbed: one weak vCPU per VM, 500 Mbps links
// (see EXPERIMENTS.md for how these constants were chosen).
sim::DeviceSpec paper_device() {
  return sim::DeviceSpec{
      .name = "vcpu", .mac_rate = 25e9, .elementwise_rate = 4e9};
}

void run_model(const ModelSpec& spec, bench::CsvWriter& csv) {
  const std::size_t n = paper_sequence_length(spec);
  std::printf("\n%s  (N=%zu, L=%zu, F=%zu, H=%zu)\n", spec.name.c_str(), n,
              spec.num_layers, spec.layer.hidden, spec.layer.heads);
  std::printf("%3s  %12s  %12s  %12s  %10s\n", "K", "single(s)",
              "tensor-par(s)", "voltage(s)", "volt-gain");
  bench::print_rule(60);

  const sim::Cluster one = sim::Cluster::homogeneous(1, paper_device(),
                                                     LinkModel::mbps(500));
  const double single = simulate_single_device(spec, n, one).total;

  double best_gain = 0.0;
  for (std::size_t k = 1; k <= 6; ++k) {
    const sim::Cluster cluster = sim::Cluster::homogeneous(
        k, paper_device(), LinkModel::mbps(500));
    const double voltage =
        simulate_voltage(spec, n, cluster, PartitionScheme::even(k),
                         OrderPolicy::kAdaptive)
            .total;
    const double tp = simulate_tensor_parallel(spec, n, cluster).total;
    const double gain = 100.0 * (single - voltage) / single;
    if (gain > best_gain) best_gain = gain;
    std::printf("%3zu  %12.3f  %12.3f  %12.3f  %8.1f%%\n", k, single, tp,
                voltage, gain);
    csv.row({spec.name, bench::num(static_cast<double>(k)),
             bench::num(single), bench::num(tp), bench::num(voltage)});
  }
  std::printf("max latency reduction vs single device: %.1f%%  "
              "(paper: 27.9%% BERT / 29.1%% ViT / 32.1%% GPT-2)\n",
              best_gain);
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: inference latency vs device number "
              "(500 Mbps, batch 1) ===\n");
  bench::CsvWriter csv("fig4_latency.csv");
  csv.row({"model", "devices", "single_s", "tensor_parallel_s", "voltage_s"});
  run_model(bert_large_spec(), csv);
  run_model(vit_base_spec(), csv);
  run_model(gpt2_spec(), csv);
  return 0;
}
