// Microbenchmarks of the per-layer synchronization collectives over the
// in-process Fabric: the seed all_gather + assemble_rows path vs the
// zero-copy all_gather_into rewrite, plus the ring all-reduce for the
// tensor-parallel comparison. Shapes follow the paper's models — activations
// are N x F with F = 1024 (BERT-Large) and 768 (GPT-2) — at K in {2, 4, 8}.
//
// Each benchmark drives a persistent K-rank mesh: rank 0 is the timed
// thread, ranks 1..K-1 loop on a pair of barriers so every iteration times
// one full collective with all ranks participating (barrier overhead is
// identical across variants).
#include <benchmark/benchmark.h>

#include <atomic>
#include <barrier>
#include <cstddef>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "collective/collectives.h"
#include "net/fabric.h"
#include "partition/range.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace {

using namespace voltage;

constexpr std::size_t kSeqLen = 200;

std::vector<Range> even_ranges(std::size_t n, std::size_t k) {
  std::vector<Range> ranges(k);
  for (std::size_t i = 0; i < k; ++i) {
    ranges[i] = Range{.begin = n * i / k, .end = n * (i + 1) / k};
  }
  return ranges;
}

// Runs `op(rank)` on all K ranks per benchmark iteration; rank 0 is timed.
template <typename Op>
void run_mesh(benchmark::State& state, std::size_t k, const Op& op) {
  std::barrier start(static_cast<std::ptrdiff_t>(k));
  std::barrier done(static_cast<std::ptrdiff_t>(k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> peers;
  peers.reserve(k - 1);
  for (std::size_t r = 1; r < k; ++r) {
    peers.emplace_back([&, r] {
      for (;;) {
        start.arrive_and_wait();
        if (stop.load(std::memory_order_relaxed)) return;
        op(r);
        done.arrive_and_wait();
      }
    });
  }
  for (auto _ : state) {
    start.arrive_and_wait();
    op(0);
    done.arrive_and_wait();
  }
  stop.store(true, std::memory_order_relaxed);
  start.arrive_and_wait();
  for (auto& t : peers) t.join();
}

// Seed path: serialize, exchange, allocate a tensor per message, then copy
// everything again through assemble_rows.
void BM_AllGatherSeed(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  const auto ranges = even_ranges(kSeqLen, k);
  std::vector<DeviceId> group(k);
  std::iota(group.begin(), group.end(), DeviceId{0});
  Fabric fabric(k);
  Rng rng(1);
  std::vector<Tensor> parts;
  parts.reserve(k);
  for (std::size_t r = 0; r < k; ++r) {
    parts.push_back(rng.normal_tensor(ranges[r].size(), f, 1.0F));
  }
  run_mesh(state, k, [&](std::size_t r) {
    const auto gathered = all_gather(fabric, group, r, parts[r], /*tag=*/1);
    Tensor x = assemble_rows(gathered, ranges, kSeqLen, f);
    benchmark::DoNotOptimize(x.data());
  });
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>((k - 1) * ranges[0].size() * f *
                                sizeof(float)));
}
BENCHMARK(BM_AllGatherSeed)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024})
    ->Args({2, 768})
    ->Args({4, 768})
    ->Args({8, 768})
    ->UseRealTime();

// Zero-copy path: sends borrow the partition's storage, peers land directly
// in a preallocated full-sequence buffer in arrival order.
void BM_AllGatherInto(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  const auto ranges = even_ranges(kSeqLen, k);
  std::vector<DeviceId> group(k);
  std::iota(group.begin(), group.end(), DeviceId{0});
  Fabric fabric(k);
  Rng rng(1);
  std::vector<std::shared_ptr<const Tensor>> parts;
  parts.reserve(k);
  std::vector<Tensor> dsts;
  dsts.reserve(k);
  for (std::size_t r = 0; r < k; ++r) {
    parts.push_back(std::make_shared<const Tensor>(
        rng.normal_tensor(ranges[r].size(), f, 1.0F)));
    dsts.emplace_back(kSeqLen, f);
  }
  run_mesh(state, k, [&](std::size_t r) {
    all_gather_into(fabric, group, r, parts[r], ranges, dsts[r], /*tag=*/1);
    benchmark::DoNotOptimize(dsts[r].data());
  });
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>((k - 1) * ranges[0].size() * f *
                                sizeof(float)));
}
BENCHMARK(BM_AllGatherInto)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024})
    ->Args({2, 768})
    ->Args({4, 768})
    ->Args({8, 768})
    ->UseRealTime();

// Tensor parallelism's sync primitive on the full N x F activation, for the
// §V-C comparison.
void BM_RingAllReduce(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  std::vector<DeviceId> group(k);
  std::iota(group.begin(), group.end(), DeviceId{0});
  Fabric fabric(k);
  Rng rng(2);
  std::vector<Tensor> inputs;
  inputs.reserve(k);
  for (std::size_t r = 0; r < k; ++r) {
    inputs.push_back(rng.normal_tensor(kSeqLen, f, 1.0F));
  }
  run_mesh(state, k, [&](std::size_t r) {
    Tensor sum = ring_all_reduce_sum(fabric, group, r, inputs[r], /*tag=*/1);
    benchmark::DoNotOptimize(sum.data());
  });
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * (k - 1) * (kSeqLen / k) * f *
                                sizeof(float)));
}
BENCHMARK(BM_RingAllReduce)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024})
    ->Args({2, 768})
    ->Args({4, 768})
    ->Args({8, 768})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
