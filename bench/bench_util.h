// Shared helpers for the benchmark binaries: fixed-width table printing,
// wall-clock timing of kernels and closed-loop step sweeps, percentiles,
// and the envelope of the committed BENCH_*.json reports.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace voltage::bench {

// Writes a figure's data series as CSV next to the printed table so the
// plots can be regenerated directly (one file per figure, in the CWD).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& filename) : out_(filename) {
    if (out_) std::printf("(writing %s)\n", filename.c_str());
  }

  void row(std::initializer_list<std::string> cells) {
    if (!out_) return;
    bool first = true;
    for (const std::string& cell : cells) {
      if (!first) out_ << ',';
      out_ << cell;
      first = false;
    }
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Best-of-`reps` wall time of `fn` in seconds.
inline double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double s =
        std::chrono::duration<double>(stop - start).count();
    if (s < best) best = s;
  }
  return best;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Nearest-rank percentile of unsorted samples, q in [0, 1].
inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

// One closed-loop sweep: `steps` invocations of `fn` timed individually (for
// percentiles) and in aggregate (for throughput). Warm up before calling.
struct StepTiming {
  std::vector<double> step_us;
  double total_s = 0.0;
};

inline StepTiming time_steps(std::size_t steps,
                             const std::function<void()>& fn) {
  StepTiming timing;
  timing.step_us.reserve(steps);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    timing.step_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  timing.total_s = seconds_since(start);
  return timing;
}

// The BENCH_*.json envelope every extension benchmark commits: scalar
// header fields, a "results" array of row objects, optional trailing
// fields (e.g. an "acceptance" verdict object), one closing brace. Values
// are emitted verbatim — wrap strings with quoted().
class JsonReport {
 public:
  explicit JsonReport(const std::string& path)
      : out_(path), path_(path) {
    out_ << "{";
  }

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void field(const std::string& key, const std::string& raw_value) {
    comma();
    out_ << "\n  \"" << key << "\": " << raw_value;
  }

  void begin_results(const std::string& key = "results") {
    comma();
    out_ << "\n  \"" << key << "\": [\n";
    first_row_ = true;
  }

  // One row of the open results array, a complete JSON object.
  void result(const std::string& raw_object) {
    if (!first_row_) out_ << ",\n";
    first_row_ = false;
    out_ << "    " << raw_object;
  }

  void end_results() { out_ << "\n  ]"; }

  // Closes the report; false (with a diagnostic) if any write failed.
  [[nodiscard]] bool finish() {
    out_ << "\n}\n";
    out_.flush();
    if (out_) {
      std::printf("(wrote %s)\n", path_.c_str());
      return true;
    }
    std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    return false;
  }

 private:
  void comma() {
    if (!first_field_) out_ << ",";
    first_field_ = false;
  }

  std::ofstream out_;
  std::string path_;
  bool first_field_ = true;
  bool first_row_ = true;
};

inline std::string quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace voltage::bench
