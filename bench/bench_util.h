// Shared helpers for the benchmark binaries: fixed-width table printing and
// wall-clock timing of tensor kernels.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <string>

namespace voltage::bench {

// Writes a figure's data series as CSV next to the printed table so the
// plots can be regenerated directly (one file per figure, in the CWD).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& filename) : out_(filename) {
    if (out_) std::printf("(writing %s)\n", filename.c_str());
  }

  void row(std::initializer_list<std::string> cells) {
    if (!out_) return;
    bool first = true;
    for (const std::string& cell : cells) {
      if (!first) out_ << ',';
      out_ << cell;
      first = false;
    }
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Best-of-`reps` wall time of `fn` in seconds.
inline double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double s =
        std::chrono::duration<double>(stop - start).count();
    if (s < best) best = s;
  }
  return best;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace voltage::bench
