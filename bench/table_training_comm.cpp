// Reproduces the paper's §V-C closing argument as a table: why Voltage
// "sacrifices communication efficiency of the backward pass, which will
// never happen [at inference]".
//
// Tensor parallelism pays its activation all-reduces in BOTH passes of
// every training sample (8(K-1)NF/K per device per layer). A
// replicated-weights (Voltage-style) step pays per-sample position
// exchanges plus ONE parameter-gradient ring all-reduce per batch — a cost
// that is enormous for a single sample (the whole model!) but amortizes
// with batch size. The table shows per-device training traffic and the
// batch size where the replicated-weights step overtakes TP; at inference
// (forward only, no weight sync) Voltage's 4x advantage is unconditional.
#include <cstdio>

#include "bench_util.h"
#include "collective/cost.h"
#include "train/comm.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

void run_model(const ModelSpec& spec, std::size_t n) {
  const double params_m =
      static_cast<double>(spec_parameter_count(spec)) / 1e6;
  std::printf("\n%s  (N=%zu, %.0fM parameters)\n", spec.name.c_str(), n,
              params_m);
  std::printf("%3s  %16s  %26s  %20s\n", "K", "TP train (MB/sample)",
              "replicated-weights @ batch=32", "crossover batch");
  bench::print_rule(76);
  for (const std::size_t k : {2U, 4U, 6U}) {
    const double tp_mb =
        static_cast<double>(tp_training_elements_per_device(spec, n, k)) *
        4.0 / 1e6;
    const double volt_mb =
        static_cast<double>(
            voltage_training_elements_per_device(spec, n, k, 32)) *
        4.0 / (32.0 * 1e6);
    const std::size_t crossover =
        training_comm_crossover_batch(spec, n, k, 1 << 14);
    std::printf("%3zu  %17.2f  %23.2f MB/sample  %17zu\n", k, tp_mb, volt_mb,
                crossover);
  }
  std::printf("inference (forward only): voltage %.2f MB vs TP %.2f MB per "
              "device per pass — unconditional 4x\n",
              static_cast<double>(
                  spec.num_layers *
                  voltage_elements_per_device_layer(n, spec.layer.hidden, 4)) *
                  4.0 / 1e6,
              static_cast<double>(
                  spec.num_layers *
                  tp_elements_per_device_layer(n, spec.layer.hidden, 4)) *
                  4.0 / 1e6);
}

}  // namespace

int main() {
  std::printf("=== Table: training-time communication (paper SV-C closing "
              "argument) ===\n");
  run_model(bert_large_spec(), 200);
  run_model(gpt2_spec(), 200);
  run_model(vit_base_spec(), 197);
  return 0;
}
