// Extension: multi-token speculative decoding on the distributed mesh.
//
// Greedy-decodes a fixed continuation on a K=4 mesh with
// DistributedDecoder::step_speculative, sweeping the draft plane:
//   none    — empty windows (the single-token baseline: one collective
//             round-trip per committed token);
//   lookup  — PromptLookupDrafter (n-gram self-drafting, no extra model);
//   model   — ModelDrafter drafting with the target model itself (100%
//             acceptance by construction — the protocol-efficiency ceiling).
// Every window shape rides the identical per-step message count (that is
// the tentpole claim), so accepted drafts turn directly into fewer wire
// round-trips per committed token.
//
// Acceptance thresholds, checked on the fp32 model-drafter sweep at the
// widest window (exit 1 on violation):
//   - tokens/s >= 1.3x the single-token baseline;
//   - measured collective round-trips per committed token < 1;
//   - per-step message count identical to the baseline's (window size never
//     buys extra messages).
// Writes the sweep as JSON (argv[1], default BENCH_speculative.json — the
// repo root keeps a committed snapshot that CI regenerates).
//
//   ./build/bench/extension_speculative [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/chaos.h"
#include "runtime/distributed_decoder.h"
#include "runtime/drafter.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

// mini-gpt2 with window room for the prompt plus the measured decode run.
ModelSpec speculative_spec() {
  ModelSpec spec = mini_gpt2_spec();
  spec.name = "mini-gpt2-speculative";
  spec.max_positions = 256;
  return spec;
}

enum class DrafterKind { kNone, kLookup, kModel };

const char* drafter_name(DrafterKind kind) {
  switch (kind) {
    case DrafterKind::kNone: return "none";
    case DrafterKind::kLookup: return "lookup";
    case DrafterKind::kModel: return "model";
  }
  return "?";
}

struct Sample {
  Precision precision = Precision::kFp32;
  DrafterKind drafter = DrafterKind::kNone;
  std::size_t window = 0;  // max drafts per verify round
  std::size_t rounds = 0;  // collective round-trips spent
  std::size_t tokens = 0;  // committed tokens
  std::size_t drafted = 0;
  std::size_t accepted = 0;
  double tokens_per_s = 0.0;
  double messages_per_step = 0.0;
  double bytes_per_token = 0.0;

  [[nodiscard]] double acceptance() const {
    return drafted > 0
               ? static_cast<double>(accepted) / static_cast<double>(drafted)
               : 0.0;
  }
  [[nodiscard]] double round_trips_per_token() const {
    return tokens > 0
               ? static_cast<double>(rounds) / static_cast<double>(tokens)
               : 0.0;
  }
};

Sample run_sweep(const TransformerModel& model, Precision precision,
                 DrafterKind kind, std::size_t window) {
  constexpr std::size_t kDecodeTokens = 96;
  // Real kernel sockets plus the repo's default edge-link delay (uniform
  // [0, 1ms] per message, seeded): the paper's mesh is edge devices on a
  // WLAN, where a collective round-trip costs milliseconds — the very cost
  // speculation amortizes. Loopback alone would understate it by ~1000x.
  auto transport = std::make_unique<ChaosTransport>(
      make_transport(TransportKind::kUnixSocket, 5),  // 4 workers + terminal
      ChaosOptions{.seed = 7});
  DistributedDecoder decoder(model, PartitionScheme::even(4),
                             OrderPolicy::kAdaptive, std::move(transport));
  decoder.set_precision(precision);
  const auto prompt = random_tokens(16, model.spec().vocab_size, 7);
  const auto primed = decoder.prime_slot(prompt);
  TokenId next = static_cast<TokenId>(argmax_row(primed.logits, 0));

  std::unique_ptr<Drafter> drafter;
  if (kind == DrafterKind::kLookup) {
    drafter = std::make_unique<PromptLookupDrafter>();
  } else if (kind == DrafterKind::kModel) {
    drafter = std::make_unique<ModelDrafter>(model);
  }
  SpeculationController controller(window);
  if (drafter != nullptr) {
    drafter->begin(prompt);
    drafter->observe(std::span<const TokenId>(&next, 1));
  }

  Sample s;
  s.precision = precision;
  s.drafter = kind;
  s.window = window;
  std::size_t generated = 1;  // the prefill's token
  // Let delayed in-flight deliveries from the prime step drain so the
  // measured message counts cover exactly the decode rounds.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const TrafficStats before = decoder.fabric().total_stats();
  const auto start = std::chrono::steady_clock::now();
  while (generated < kDecodeTokens) {
    const std::size_t remaining = kDecodeTokens - generated;
    const std::size_t want = std::min(controller.window(), remaining - 1);
    std::vector<TokenId> drafts;
    if (want > 0 && drafter != nullptr) {
      drafts = drafter->draft(want);
      if (drafts.size() > want) drafts.resize(want);
    }
    const SlotWindow lane{
        .slot = primed.slot,
        .token = next,
        .drafts = std::span<const TokenId>(drafts.data(), drafts.size())};
    const std::vector<LaneCommit> commits =
        decoder.step_speculative(std::span<const SlotWindow>(&lane, 1));
    const LaneCommit& commit = commits.front();
    next = commit.tokens.back();
    generated += commit.tokens.size();
    s.rounds += 1;
    s.drafted += commit.drafted;
    s.accepted += commit.accepted;
    if (drafter != nullptr) {
      drafter->observe(std::span<const TokenId>(commit.tokens.data(),
                                                commit.tokens.size()));
    }
    controller.update(commit.accepted, commit.drafted);
  }
  const double total_s = voltage::bench::seconds_since(start);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // drain tail
  const TrafficStats after = decoder.fabric().total_stats();

  s.tokens = generated - 1;  // committed by the measured rounds
  s.tokens_per_s =
      total_s > 0.0 ? static_cast<double>(s.tokens) / total_s : 0.0;
  s.messages_per_step =
      static_cast<double>(after.messages_sent - before.messages_sent) /
      static_cast<double>(s.rounds);
  s.bytes_per_token =
      static_cast<double>(after.bytes_sent - before.bytes_sent) /
      static_cast<double>(s.tokens);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_speculative.json";
  const TransformerModel model = make_model(speculative_spec());
  constexpr std::size_t kDevices = 4;

  std::printf("=== Extension: speculative decoding, %s, K=%zu ===\n\n",
              model.spec().name.c_str(), kDevices);
  std::printf("  wire  drafter  W   rounds  tokens   tok/s  accept  "
              "rt/token  msgs/step  bytes/tok\n");

  std::vector<Sample> samples;
  const Sample* fp32_baseline = nullptr;
  const Sample* fp32_model_w4 = nullptr;
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    const struct {
      DrafterKind kind;
      std::size_t window;
    } configs[] = {{DrafterKind::kNone, 0},
                   {DrafterKind::kLookup, 4},
                   {DrafterKind::kModel, 2},
                   {DrafterKind::kModel, 4}};
    for (const auto& config : configs) {
      const Sample s = run_sweep(model, precision, config.kind, config.window);
      samples.push_back(s);
      std::printf("  %-4s  %-7s  %zu  %6zu  %6zu  %6.1f  %5.0f%%  %8.3f  "
                  "%9.1f  %9.0f\n",
                  precision == Precision::kInt8 ? "int8" : "fp32",
                  drafter_name(s.drafter), s.window, s.rounds, s.tokens,
                  s.tokens_per_s, s.acceptance() * 100.0,
                  s.round_trips_per_token(), s.messages_per_step,
                  s.bytes_per_token);
    }
    voltage::bench::print_rule(80);
  }
  for (const Sample& s : samples) {
    if (s.precision != Precision::kFp32) continue;
    if (s.drafter == DrafterKind::kNone) fp32_baseline = &s;
    if (s.drafter == DrafterKind::kModel && s.window == 4) fp32_model_w4 = &s;
  }

  // Acceptance thresholds on the deterministic fp32 model-drafter sweep.
  const double speedup = fp32_baseline->tokens_per_s > 0.0
                             ? fp32_model_w4->tokens_per_s /
                                   fp32_baseline->tokens_per_s
                             : 0.0;
  const bool throughput_ok = speedup >= 1.3;
  const bool round_trips_ok = fp32_model_w4->round_trips_per_token() < 1.0;
  const bool messages_ok =
      fp32_model_w4->messages_per_step == fp32_baseline->messages_per_step;
  std::printf("\ntokens/s model-drafter W=4 vs baseline: %.2fx (need >= "
              "1.3x)\nround-trips per committed token: %.3f (need < 1)\n"
              "messages/step W=4 vs W=0: %.1f vs %.1f (need equal)\n",
              speedup, fp32_model_w4->round_trips_per_token(),
              fp32_model_w4->messages_per_step,
              fp32_baseline->messages_per_step);

  voltage::bench::JsonReport report(out_path);
  report.field("benchmark", voltage::bench::quoted("speculative_decoding"));
  report.field("model", voltage::bench::quoted(model.spec().name));
  report.field("devices", std::to_string(kDevices));
  report.field("transport",
               voltage::bench::quoted("unix_socket + uniform [0, 1ms] "
                                      "edge-link delay per message"));
  report.begin_results();
  for (const Sample& s : samples) {
    report.result(
        "{\"precision\": " +
        voltage::bench::quoted(s.precision == Precision::kInt8 ? "int8"
                                                               : "fp32") +
        ", \"drafter\": " + voltage::bench::quoted(drafter_name(s.drafter)) +
        ", \"max_drafts\": " + std::to_string(s.window) +
        ", \"rounds\": " + std::to_string(s.rounds) +
        ", \"tokens\": " + std::to_string(s.tokens) +
        ", \"tokens_per_s\": " + voltage::bench::num(s.tokens_per_s) +
        ", \"acceptance_rate\": " + voltage::bench::num(s.acceptance()) +
        ", \"round_trips_per_token\": " +
        voltage::bench::num(s.round_trips_per_token()) +
        ", \"messages_per_step\": " +
        voltage::bench::num(s.messages_per_step) +
        ", \"bytes_per_token\": " + voltage::bench::num(s.bytes_per_token) +
        "}");
  }
  report.end_results();
  report.field(
      "acceptance",
      "{\"speedup_model_w4\": " + voltage::bench::num(speedup) +
          ", \"throughput_ok\": " + (throughput_ok ? "true" : "false") +
          ", \"round_trips_per_token_lt_1\": " +
          (round_trips_ok ? "true" : "false") +
          ", \"messages_per_step_constant\": " +
          (messages_ok ? "true" : "false") + "}");
  const bool wrote = report.finish();

  if (!throughput_ok || !round_trips_ok || !messages_ok) {
    std::fprintf(stderr, "speculative acceptance thresholds not met\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
