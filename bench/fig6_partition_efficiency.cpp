// Reproduces paper Fig. 6: wall-clock speed-up of partitioned multi-head
// self-attention vs number of partitions K, for three synthetic layer
// settings (H=16,F_H=64), (H=8,F_H=128), (H=4,F_H=256) and input lengths
// N in {100, 200, 300}.
//
// Methodology follows the paper: measure the time to compute one output
// partition of length P = N/K and compare against the time to compute the
// full-size output; "Voltage" uses the adaptive order (Theorem 2), "Naive"
// always pre-computes K and V (Eq. 3). This benchmark uses REAL kernel
// timing (it is single-threaded sequential measurement, valid on any host).
//
// Expected shape: naive speed-up plateaus; Voltage keeps scaling ~linearly,
// with the gap growing with F_H (paper reports up to 3.4x at F_H=256).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "partition/partitioned_attention.h"
#include "tensor/rng.h"
#include "transformer/weights.h"

namespace {

using namespace voltage;

struct Setting {
  std::size_t heads;
  std::size_t head_dim;
};

void run_setting(const Setting& s, bench::CsvWriter& csv) {
  const std::size_t f = s.heads * s.head_dim;
  const LayerConfig cfg{.hidden = f,
                        .heads = s.heads,
                        .head_dim = s.head_dim,
                        .ffn_dim = 4 * f,  // unused by attention
                        .activation = Activation::kGelu};
  Rng rng(2024);
  const LayerWeights w = init_layer_weights(cfg, rng);

  std::printf("\nsetting: H=%zu, F_H=%zu (F=%zu)\n", s.heads, s.head_dim, f);
  std::printf("%4s %4s  %14s %14s  %9s\n", "N", "K", "voltage-speedup",
              "naive-speedup", "ratio");
  bench::print_rule(56);

  for (const std::size_t n : {100U, 200U, 300U}) {
    const Tensor x = rng.normal_tensor(n, f, 1.0F);
    const Range full{0, n};
    const int reps = 3;
    const double t_full = bench::time_best_of(reps, [&] {
      (void)multi_head_attention_partition(x, full, w.attention, cfg,
                                           OrderPolicy::kAlwaysNaive);
    });
    double max_ratio = 0.0;
    for (const std::size_t k : {2U, 4U, 6U, 8U, 10U}) {
      const Range p{0, n / k};
      const double t_voltage = bench::time_best_of(reps, [&] {
        (void)multi_head_attention_partition(x, p, w.attention, cfg,
                                             OrderPolicy::kAdaptive);
      });
      const double t_naive = bench::time_best_of(reps, [&] {
        (void)multi_head_attention_partition(x, p, w.attention, cfg,
                                             OrderPolicy::kAlwaysNaive);
      });
      const double su_voltage = t_full / t_voltage;
      const double su_naive = t_full / t_naive;
      if (su_voltage / su_naive > max_ratio) {
        max_ratio = su_voltage / su_naive;
      }
      std::printf("%4zu %4zu  %13.2fx %13.2fx  %8.2fx\n", n, k, su_voltage,
                  su_naive, su_voltage / su_naive);
      csv.row({bench::num(static_cast<double>(s.heads)),
               bench::num(static_cast<double>(s.head_dim)),
               bench::num(static_cast<double>(n)),
               bench::num(static_cast<double>(k)), bench::num(su_voltage),
               bench::num(su_naive)});
    }
    std::printf("  N=%zu: max voltage/naive advantage %.2fx\n", n, max_ratio);
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: speed-up of partitioned multi-head "
              "self-attention (real wall-clock) ===\n");
  bench::CsvWriter csv("fig6_partition_efficiency.csv");
  csv.row({"heads", "head_dim", "N", "K", "voltage_speedup",
           "naive_speedup"});
  run_setting({.heads = 16, .head_dim = 64}, csv);
  run_setting({.heads = 8, .head_dim = 128}, csv);
  run_setting({.heads = 4, .head_dim = 256}, csv);
  return 0;
}
