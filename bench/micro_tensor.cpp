// google-benchmark microbenchmarks of the tensor substrate and the two
// attention evaluation paths — the kernels whose cost the Γ model predicts.
#include <benchmark/benchmark.h>

#include "net/socket_fabric.h"
#include "partition/partitioned_attention.h"
#include "quant/quantized_tensor.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "transformer/linear_attention.h"
#include "transformer/weights.h"

namespace {

using namespace voltage;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTransposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, Trans::kNo, Trans::kYes));
  }
}
BENCHMARK(BM_MatmulTransposed)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = rng.normal_tensor(200, 200, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(x, 0.125F));
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = rng.normal_tensor(200, 1024, 1.0F);
  const Tensor gamma = Tensor::filled(1, 1024, 1.0F);
  const Tensor beta(1, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layernorm_rows(x, gamma, beta));
  }
}
BENCHMARK(BM_LayerNorm);

void BM_Gelu(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = rng.normal_tensor(200, 4096, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gelu(x));
  }
}
BENCHMARK(BM_Gelu);

void BM_TensorSerialize(benchmark::State& state) {
  Rng rng(6);
  const Tensor x = rng.normal_tensor(200, 1024, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_bytes(x));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.byte_size()));
}
BENCHMARK(BM_TensorSerialize);

// The two self-attention evaluation paths around a typical edge partition
// (N=200, P=25 -> reordered should win for BERT-like settings).
void BM_AttentionHead(benchmark::State& state) {
  const bool reordered = state.range(0) != 0;
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 16,
                        .head_dim = 64,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  Rng rng(7);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(200, cfg.hidden, 1.0F);
  const Range p{0, 25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_head_partition(
        x, p, w.attention.heads[0], cfg.head_dim, false,
        reordered ? AttentionOrder::kReordered : AttentionOrder::kNaive));
  }
}
BENCHMARK(BM_AttentionHead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"reordered"});

// INT8 GEMM vs the float path (same shape as BM_Matmul/256).
void BM_QuantizedMatmul(benchmark::State& state) {
  Rng rng(8);
  const Tensor x = rng.normal_tensor(256, 256, 1.0F);
  const QuantizedWeights w = quantize_weights(rng.normal_tensor(256, 256, 0.2F));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized_matmul(x, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256 * 256 * 256);
}
BENCHMARK(BM_QuantizedMatmul);

// Linear attention head vs the softmax head at full sequence length.
void BM_LinearAttentionHead(benchmark::State& state) {
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 16,
                        .head_dim = 64,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  Rng rng(9);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(200, cfg.hidden, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linear_attention_head_full(x, w.attention.heads[0]));
  }
}
BENCHMARK(BM_LinearAttentionHead);

// Round trip through a real kernel socket (message cost of the mesh).
void BM_SocketRoundTrip(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  SocketFabric fabric(2);
  const std::vector<std::byte> payload(bytes);
  for (auto _ : state) {
    fabric.send(Message{.source = 0, .destination = 1, .tag = 1,
                        .payload = payload});
    benchmark::DoNotOptimize(fabric.recv(1, 0, 1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SocketRoundTrip)->Arg(1024)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
