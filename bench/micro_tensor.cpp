// google-benchmark microbenchmarks of the tensor substrate and the two
// attention evaluation paths — the kernels whose cost the Γ model predicts.
#include <benchmark/benchmark.h>

#include "core/thread_pool.h"
#include "net/socket_fabric.h"
#include "partition/partitioned_attention.h"
#include "quant/quantized_tensor.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "transformer/linear_attention.h"
#include "transformer/weights.h"

namespace {

using namespace voltage;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// The pre-rewrite gemm_nn (row-blocked i-k-j, no packing, no register tile),
// kept verbatim as the perf-trajectory baseline: BENCH_kernels.json records
// BM_Matmul/256 vs BM_MatmulSeedKernel/256 on the same machine.
void seed_gemm_nn(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  constexpr std::size_t kRowBlock = 4;
  std::size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a0 = a[(i + 0) * k + p];
      const float a1 = a[(i + 1) * k + p];
      const float a2 = a[(i + 2) * k + p];
      const float a3 = a[(i + 3) * k + p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float bv = bp[j];
        c0[j] += a0 * bv;
        c1[j] += a1 * bv;
        c2[j] += a2 * bv;
        c3[j] += a3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* ci = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aip * bp[j];
      }
    }
  }
}

void BM_MatmulSeedKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    Tensor c(n, n);
    seed_gemm_nn(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_MatmulSeedKernel)->Arg(256);

void BM_MatmulTransposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, Trans::kNo, Trans::kYes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_MatmulTransposed)->Arg(128);

// Dedicated NT / TN kernels (attention's scores and reordered paths) at the
// BERT-Large score shape: no transposed copy is ever materialized.
void BM_MatmulNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, Trans::kNo, Trans::kYes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(256);

void BM_MatmulTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, Trans::kYes, Trans::kNo));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_MatmulTN)->Arg(256);

// Intra-op scaling of one GEMM across thread budgets (results are bitwise
// identical at every budget; see tests/gemm_test.cpp).
void BM_MatmulThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Rng rng(23);
  const Tensor a = rng.normal_tensor(n, n, 1.0F);
  const Tensor b = rng.normal_tensor(n, n, 1.0F);
  const IntraOpScope scope(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_MatmulThreaded)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->ArgNames({"n", "threads"});

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = rng.normal_tensor(200, 200, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(x, 0.125F));
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = rng.normal_tensor(200, 1024, 1.0F);
  const Tensor gamma = Tensor::filled(1, 1024, 1.0F);
  const Tensor beta(1, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layernorm_rows(x, gamma, beta));
  }
}
BENCHMARK(BM_LayerNorm);

void BM_Gelu(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = rng.normal_tensor(200, 4096, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gelu(x));
  }
}
BENCHMARK(BM_Gelu);

void BM_TensorSerialize(benchmark::State& state) {
  Rng rng(6);
  const Tensor x = rng.normal_tensor(200, 1024, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_bytes(x));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.byte_size()));
}
BENCHMARK(BM_TensorSerialize);

// The two self-attention evaluation paths around a typical edge partition
// (N=200, P=25 -> reordered should win for BERT-like settings).
void BM_AttentionHead(benchmark::State& state) {
  const bool reordered = state.range(0) != 0;
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 16,
                        .head_dim = 64,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  Rng rng(7);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(200, cfg.hidden, 1.0F);
  const Range p{0, 25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_head_partition(
        x, p, w.attention.heads[0], cfg.head_dim, false,
        reordered ? AttentionOrder::kReordered : AttentionOrder::kNaive));
  }
}
BENCHMARK(BM_AttentionHead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"reordered"});

// INT8 GEMM vs the float path (same shape as BM_Matmul/256).
void BM_QuantizedMatmul(benchmark::State& state) {
  Rng rng(8);
  const Tensor x = rng.normal_tensor(256, 256, 1.0F);
  const QuantizedWeights w = quantize_weights(rng.normal_tensor(256, 256, 0.2F));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized_matmul(x, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256 * 256 * 256);
}
BENCHMARK(BM_QuantizedMatmul);

// Linear attention head vs the softmax head at full sequence length.
void BM_LinearAttentionHead(benchmark::State& state) {
  const LayerConfig cfg{.hidden = 1024,
                        .heads = 16,
                        .head_dim = 64,
                        .ffn_dim = 4096,
                        .activation = Activation::kGelu};
  Rng rng(9);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const Tensor x = rng.normal_tensor(200, cfg.hidden, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linear_attention_head_full(x, w.attention.heads[0]));
  }
}
BENCHMARK(BM_LinearAttentionHead);

// Round trip through a real kernel socket (message cost of the mesh).
void BM_SocketRoundTrip(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  SocketFabric fabric(2);
  const std::vector<std::byte> payload(bytes);
  for (auto _ : state) {
    fabric.send(Message{.source = 0, .destination = 1, .tag = 1,
                        .payload = payload});
    benchmark::DoNotOptimize(fabric.recv(1, 0, 1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SocketRoundTrip)->Arg(1024)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
