// Reproduces paper Fig. 5: inference latency vs link bandwidth at K = 6
// for BERT-Large, ViT-Base and GPT-2; the single-device latency is the
// reference line.
//
// Expected shape (paper §VI-B): both strategies improve with bandwidth;
// Voltage outperforms tensor parallelism everywhere; TP needs ~1000 Mbps to
// reach single-device parity. The paper sweeps 200-1000 Mbps; we extend the
// sweep downward because our C++ fabric has far less per-byte software
// overhead than the paper's Python stack, which shifts Voltage's break-even
// point to lower bandwidths (the crossover still exists — see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "parallel/latency_model.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

sim::DeviceSpec paper_device() {
  return sim::DeviceSpec{
      .name = "vcpu", .mac_rate = 25e9, .elementwise_rate = 4e9};
}

void run_model(const ModelSpec& spec, bench::CsvWriter& csv) {
  constexpr std::size_t kDevices = 6;
  const std::size_t n = paper_sequence_length(spec);
  const sim::Cluster one = sim::Cluster::homogeneous(1, paper_device(),
                                                     LinkModel::mbps(500));
  const double single = simulate_single_device(spec, n, one).total;

  std::printf("\n%s  (N=%zu, K=%zu, single device = %.3f s)\n",
              spec.name.c_str(), n, kDevices, single);
  std::printf("%10s  %13s  %12s  %12s  %12s\n", "Mbps", "tensor-par(s)",
              "voltage(s)", "tp/single", "volt/single");
  bench::print_rule(68);
  for (const double mbps : {25.0, 50.0, 100.0, 200.0, 400.0, 600.0, 800.0,
                            1000.0}) {
    const sim::Cluster cluster = sim::Cluster::homogeneous(
        kDevices, paper_device(), LinkModel::mbps(mbps));
    const double tp = simulate_tensor_parallel(spec, n, cluster).total;
    const double voltage =
        simulate_voltage(spec, n, cluster, PartitionScheme::even(kDevices),
                         OrderPolicy::kAdaptive)
            .total;
    std::printf("%10.0f  %13.3f  %12.3f  %11.2fx  %11.2fx\n", mbps, tp,
                voltage, tp / single, voltage / single);
    csv.row({spec.name, bench::num(mbps), bench::num(single), bench::num(tp),
             bench::num(voltage)});
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: inference latency vs bandwidth "
              "(K=6, batch 1; ratios > 1 mean slower than single) ===\n");
  bench::CsvWriter csv("fig5_bandwidth.csv");
  csv.row({"model", "mbps", "single_s", "tensor_parallel_s", "voltage_s"});
  run_model(bert_large_spec(), csv);
  run_model(vit_base_spec(), csv);
  run_model(gpt2_spec(), csv);
  return 0;
}
