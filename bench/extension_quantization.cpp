// Extension: INT8 quantization composed with position-wise partitioning
// (paper §VII-A: "compressed transformer models can also leverage
// Voltage's distributed inference system for further acceleration").
//
// Reports (a) weight-memory reduction, (b) accuracy drift of the int8
// kernels, (c) real wall-clock of a partitioned layer in float vs int8 for
// several partition sizes.
#include <cstdio>

#include "bench_util.h"
#include "partition/partitioned_layer.h"
#include "quant/quantized_layer.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/layer.h"

namespace {

using namespace voltage;

}  // namespace

int main() {
  std::printf("=== Extension: INT8 quantization x position partitioning "
              "(SVII-A) ===\n\n");
  // A BERT-Base-geometry layer is large enough for meaningful timing.
  const LayerConfig cfg{.hidden = 768,
                        .heads = 12,
                        .head_dim = 64,
                        .ffn_dim = 3072,
                        .activation = Activation::kGelu};
  Rng rng(3);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const TransformerLayer layer(cfg, w);
  const QuantizedLayerWeights q = quantize_layer(w);

  std::printf("weight memory : float %.2f MB -> int8 %.2f MB (%.2fx)\n",
              static_cast<double>(float_layer_byte_size(w)) / 1e6,
              static_cast<double>(q.byte_size()) / 1e6,
              static_cast<double>(float_layer_byte_size(w)) /
                  static_cast<double>(q.byte_size()));

  const std::size_t n = 200;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor exact = layer.forward(x);
  const Tensor approx = quantized_layer_forward(cfg, q, x);
  std::printf("accuracy drift: max |out_int8 - out_float| = %.4f "
              "(LayerNormed outputs, O(1) scale)\n\n",
              max_abs_diff(approx, exact));

  std::printf("wall-clock per layer partition (N=%zu):\n", n);
  std::printf("%6s  %12s  %12s  %8s\n", "K", "float (ms)", "int8 (ms)",
              "speedup");
  bench::print_rule(46);
  for (const std::size_t k : {1U, 2U, 4U, 8U}) {
    const Range p{0, n / k};
    const double t_float = bench::time_best_of(3, [&] {
      (void)partitioned_layer_forward(layer, x, p, OrderPolicy::kAdaptive);
    });
    const double t_int8 = bench::time_best_of(3, [&] {
      (void)quantized_partitioned_layer_forward(cfg, q, x, p,
                                                OrderPolicy::kAdaptive);
    });
    std::printf("%6zu  %12.2f  %12.2f  %7.2fx\n", k, 1e3 * t_float,
                1e3 * t_int8, t_float / t_int8);
  }
  std::printf("\npartitioning scales both paths equally; on this scalar CPU "
              "kernel int8 compute is at parity\n(the win is the 3.7x "
              "memory cut — fitting larger models on smaller devices); with "
              "SIMD int8\ndot products the GEMMs would speed up too. The "
              "two techniques compose freely.\n");
  return 0;
}
