// Extension: INT8 quantization composed with position-wise partitioning
// (paper §VII-A: "compressed transformer models can also leverage
// Voltage's distributed inference system for further acceleration").
//
// Reports (a) weight-memory reduction, (b) accuracy drift of the int8
// kernels, (c) real wall-clock of a partitioned layer in float vs int8 for
// several partition sizes, and (d) the end-to-end quantized plane: a
// distributed run (VoltageRuntime::set_precision) at K in {2, 4, 8}, fp32
// vs int8 tokens/s and all-gather wire bytes per layer. The (d) series is
// written as JSON (argv[1], default BENCH_quant.json — the repo root keeps
// a committed snapshot that CI regenerates).
//
//   ./build/bench/extension_quantization [out.json]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "partition/partitioned_layer.h"
#include "quant/quantized_layer.h"
#include "runtime/voltage_runtime.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "transformer/layer.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

struct E2eSample {
  std::size_t devices = 0;
  double fp32_tokens_per_s = 0.0;
  double int8_tokens_per_s = 0.0;
  double fp32_bytes_per_layer = 0.0;
  double int8_bytes_per_layer = 0.0;

  [[nodiscard]] double speedup() const {
    return fp32_tokens_per_s > 0.0 ? int8_tokens_per_s / fp32_tokens_per_s
                                   : 0.0;
  }
  [[nodiscard]] double wire_cut() const {
    return int8_bytes_per_layer > 0.0
               ? fp32_bytes_per_layer / int8_bytes_per_layer
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_quant.json";
  std::printf("=== Extension: INT8 quantization x position partitioning "
              "(SVII-A) ===\n\n");
  // A BERT-Base-geometry layer is large enough for meaningful timing.
  const LayerConfig cfg{.hidden = 768,
                        .heads = 12,
                        .head_dim = 64,
                        .ffn_dim = 3072,
                        .activation = Activation::kGelu};
  Rng rng(3);
  const LayerWeights w = init_layer_weights(cfg, rng);
  const TransformerLayer layer(cfg, w);
  const QuantizedLayerWeights q = quantize_layer(w);

  std::printf("weight memory : float %.2f MB -> int8 %.2f MB (%.2fx)\n",
              static_cast<double>(float_layer_byte_size(w)) / 1e6,
              static_cast<double>(q.byte_size()) / 1e6,
              static_cast<double>(float_layer_byte_size(w)) /
                  static_cast<double>(q.byte_size()));

  const std::size_t n = 200;
  const Tensor x = rng.normal_tensor(n, cfg.hidden, 1.0F);
  const Tensor exact = layer.forward(x);
  const Tensor approx = quantized_layer_forward(cfg, q, x);
  std::printf("accuracy drift: max |out_int8 - out_float| = %.4f "
              "(LayerNormed outputs, O(1) scale)\n\n",
              max_abs_diff(approx, exact));

  std::printf("wall-clock per layer partition (N=%zu):\n", n);
  std::printf("%6s  %12s  %12s  %8s\n", "K", "float (ms)", "int8 (ms)",
              "speedup");
  bench::print_rule(46);
  for (const std::size_t k : {1U, 2U, 4U, 8U}) {
    const Range p{0, n / k};
    const double t_float = bench::time_best_of(3, [&] {
      (void)partitioned_layer_forward(layer, x, p, OrderPolicy::kAdaptive);
    });
    const double t_int8 = bench::time_best_of(3, [&] {
      (void)quantized_partitioned_layer_forward(cfg, q, x, p,
                                                OrderPolicy::kAdaptive);
    });
    std::printf("%6zu  %12.2f  %12.2f  %7.2fx\n", k, 1e3 * t_float,
                1e3 * t_int8, t_float / t_int8);
  }
  std::printf("\nthe two techniques compose freely: partitioning scales both "
              "paths equally, the int8\ntiled GEMM (tensor/gemm_s8.h) adds "
              "its kernel speedup on top of the 3.7x memory cut.\n\n");

  // --- (d) end-to-end quantized plane --------------------------------------
  const TransformerModel model = make_model(distilbert_spec());
  const std::size_t layers = model.spec().num_layers;
  constexpr std::size_t kSeq = 128;
  const auto tokens = random_tokens(kSeq, model.spec().vocab_size, 9);

  std::printf("end-to-end distributed inference, %s, N=%zu (fp32 vs "
              "Precision::kInt8):\n",
              model.spec().name.c_str(), kSeq);
  std::printf("%6s  %12s  %12s  %8s  %14s  %14s  %9s\n", "K", "fp32 tok/s",
              "int8 tok/s", "speedup", "fp32 B/layer", "int8 B/layer",
              "wire cut");
  bench::print_rule(88);

  std::vector<E2eSample> samples;
  for (const std::size_t k : {2U, 4U, 8U}) {
    E2eSample s;
    s.devices = k;
    for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
      VoltageRuntime runtime(model, PartitionScheme::even(k));
      runtime.set_precision(precision);
      (void)runtime.infer(tokens);  // warm-up (quantizes the stack once)
      const std::uint64_t bytes0 = runtime.fabric().total_stats().bytes_sent;
      (void)runtime.infer(tokens);
      const double bytes_per_layer =
          static_cast<double>(runtime.fabric().total_stats().bytes_sent -
                              bytes0) /
          static_cast<double>(layers);
      const double seconds =
          bench::time_best_of(3, [&] { (void)runtime.infer(tokens); });
      const double tokens_per_s =
          seconds > 0.0 ? static_cast<double>(kSeq) / seconds : 0.0;
      if (precision == Precision::kInt8) {
        s.int8_tokens_per_s = tokens_per_s;
        s.int8_bytes_per_layer = bytes_per_layer;
      } else {
        s.fp32_tokens_per_s = tokens_per_s;
        s.fp32_bytes_per_layer = bytes_per_layer;
      }
    }
    samples.push_back(s);
    std::printf("%6zu  %12.1f  %12.1f  %7.2fx  %14.0f  %14.0f  %8.2fx\n", k,
                s.fp32_tokens_per_s, s.int8_tokens_per_s, s.speedup(),
                s.fp32_bytes_per_layer, s.int8_bytes_per_layer, s.wire_cut());
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"quantized_path\",\n"
      << "  \"model\": \"" << model.spec().name << "\",\n"
      << "  \"sequence_tokens\": " << kSeq << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const E2eSample& s = samples[i];
    out << "    {\"devices\": " << s.devices << ", \"fp32_tokens_per_s\": "
        << bench::num(s.fp32_tokens_per_s)
        << ", \"int8_tokens_per_s\": " << bench::num(s.int8_tokens_per_s)
        << ", \"speedup\": " << bench::num(s.speedup())
        << ", \"fp32_bytes_per_layer\": " << bench::num(s.fp32_bytes_per_layer)
        << ", \"int8_bytes_per_layer\": " << bench::num(s.int8_bytes_per_layer)
        << ", \"wire_reduction\": " << bench::num(s.wire_cut()) << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("(wrote %s)\n", out_path.c_str());
  return 0;
}
