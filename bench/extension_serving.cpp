// Extension: tail latency under sporadic load (the paper's serving regime,
// §I and §V-C, made quantitative).
//
// BERT-Large requests arrive as a Poisson stream at a 6-device edge
// cluster. Each deployment strategy's end-to-end latency (from the Fig. 4/5
// models) becomes the service time of a queueing simulation; the table
// reports p50/p99 sojourn times across arrival rates. Voltage's lower
// per-request latency translates into a far larger stable operating region
// than single-device or TP; pipelining sustains high load but pays its deep
// latency floor on every request.
#include <cstdio>

#include "bench_util.h"
#include "parallel/latency_model.h"
#include "parallel/pipeline.h"
#include "sim/serving.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

void print_row(const char* name, double rate, const sim::ServingReport& r) {
  if (r.utilization >= 1.0) {
    std::printf("  %-14s rate %.2f r/s : UNSTABLE (utilization %.2f)\n",
                name, rate, r.utilization);
  } else {
    std::printf("  %-14s rate %.2f r/s : p50 %6.2f s   p99 %6.2f s   "
                "(util %.2f)\n",
                name, rate, r.p50, r.p99, r.utilization);
  }
}

}  // namespace

int main() {
  std::printf("=== Extension: sporadic-request serving, BERT-Large on 6 "
              "devices @ 500 Mbps ===\n\n");
  const ModelSpec spec = bert_large_spec();
  const sim::DeviceSpec device{
      .name = "vcpu", .mac_rate = 25e9, .elementwise_rate = 4e9};
  const auto cluster =
      sim::Cluster::homogeneous(6, device, LinkModel::mbps(500));
  const auto single_cluster =
      sim::Cluster::homogeneous(1, device, LinkModel::mbps(500));

  const double t_single = simulate_single_device(spec, 200, single_cluster).total;
  const double t_voltage =
      simulate_voltage(spec, 200, cluster, PartitionScheme::even(6),
                       OrderPolicy::kAdaptive)
          .total;
  const double t_tp = simulate_tensor_parallel(spec, 200, cluster).total;
  const PipelineReport pipe = simulate_pipeline(spec, 200, cluster);

  std::printf("service times: single %.2f s | voltage %.2f s | tp %.2f s | "
              "pipeline %.2f s (admit every %.2f s)\n\n",
              t_single, t_voltage, t_tp, pipe.request_latency,
              pipe.bottleneck_stage);

  for (const double rate : {0.1, 0.3, 0.6, 0.9, 1.5}) {
    const sim::ArrivalProcess arrivals{
        .rate_rps = rate, .num_requests = 4000, .seed = 11};
    std::printf("arrival rate %.1f requests/s\n", rate);
    print_row("single", rate, sim::simulate_serving(t_single, arrivals));
    print_row("voltage", rate, sim::simulate_serving(t_voltage, arrivals));
    print_row("tensor-par", rate, sim::simulate_serving(t_tp, arrivals));
    print_row("pipeline", rate,
              sim::simulate_pipeline_serving(pipe.request_latency,
                                             pipe.bottleneck_stage, arrivals));
    bench::print_rule(72);
  }
  return 0;
}
