// Extension: continuous-batching serving throughput (closed loop).
//
// Steady-state serving sweep on a K=4 mesh: B sequences stay resident in
// the DistributedDecoder's slots and every iteration advances all of them
// with one step_batch call — the closed-loop analogue of a server running
// at occupancy B. For B in {1, 4, 16} (fp32 and int8 wire) the table
// reports aggregate tokens/s, per-step p50/p99 latency, and the measured
// per-step wire cost from the fabric counters.
//
// The scheduling claim this benchmark enforces (exit 1 on violation, at
// K=4 fp32):
//   - batching pays: aggregate tokens/s at B=16 is >= 2x B=1;
//   - the wire cost is one command broadcast + one softmax-merge round per
//     batch step: the per-step MESSAGE count is identical at every B, and
//     per-step bytes grow sublinearly in B (the fixed per-step cost is
//     amortized across lanes).
//
// Writes the sweep as JSON (argv[1], default BENCH_serving.json — the repo
// root keeps a committed snapshot that CI regenerates to catch serving
// regressions).
//
//   ./build/bench/extension_serving [out.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/distributed_decoder.h"
#include "tensor/ops.h"
#include "transformer/tokenizer.h"
#include "transformer/zoo.h"

namespace {

using namespace voltage;

// mini-gpt2 with window room for the prompt plus the measured decode run.
ModelSpec serving_spec() {
  ModelSpec spec = mini_gpt2_spec();
  spec.name = "mini-gpt2-serving";
  spec.max_positions = 256;
  return spec;
}

struct Sample {
  Precision precision = Precision::kFp32;
  std::size_t batch = 0;
  std::size_t steps = 0;
  double tokens_per_s = 0.0;
  double p50_step_us = 0.0;
  double p99_step_us = 0.0;
  double messages_per_step = 0.0;
  double bytes_per_step = 0.0;

  [[nodiscard]] double bytes_per_token() const {
    return batch > 0 ? bytes_per_step / static_cast<double>(batch) : 0.0;
  }
};

Sample run_sweep(const TransformerModel& model, Precision precision,
                 std::size_t batch) {
  constexpr std::size_t kWarmup = 4;
  constexpr std::size_t kSteps = 96;
  DistributedDecoder decoder(model, PartitionScheme::even(4));
  decoder.set_precision(precision);
  std::vector<SlotToken> lanes;
  for (std::size_t s = 0; s < batch; ++s) {
    const auto primed = decoder.prime_slot(
        random_tokens(16, model.spec().vocab_size, 40 + s));
    lanes.push_back(SlotToken{
        .slot = primed.slot,
        .token = static_cast<TokenId>(argmax_row(primed.logits, 0))});
  }
  const auto advance = [&] {
    const Tensor logits = decoder.step_batch(lanes);
    for (std::size_t s = 0; s < batch; ++s) {
      lanes[s].token = static_cast<TokenId>(argmax_row(logits, s));
    }
  };
  for (std::size_t i = 0; i < kWarmup; ++i) advance();

  const TrafficStats before = decoder.fabric().total_stats();
  const voltage::bench::StepTiming timing =
      voltage::bench::time_steps(kSteps, advance);
  const TrafficStats after = decoder.fabric().total_stats();

  Sample s;
  s.precision = precision;
  s.batch = batch;
  s.steps = kSteps;
  s.tokens_per_s =
      timing.total_s > 0.0
          ? static_cast<double>(batch * kSteps) / timing.total_s
          : 0.0;
  s.p50_step_us = voltage::bench::percentile(timing.step_us, 0.50);
  s.p99_step_us = voltage::bench::percentile(timing.step_us, 0.99);
  s.messages_per_step =
      static_cast<double>(after.messages_sent - before.messages_sent) /
      static_cast<double>(kSteps);
  s.bytes_per_step =
      static_cast<double>(after.bytes_sent - before.bytes_sent) /
      static_cast<double>(kSteps);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const TransformerModel model = make_model(serving_spec());
  constexpr std::size_t kDevices = 4;

  std::printf("=== Extension: continuous-batching serving, %s, K=%zu "
              "(closed loop) ===\n\n",
              model.spec().name.c_str(), kDevices);
  std::printf("  wire  B    tok/s   p50_step_us  p99_step_us  msgs/step  "
              "bytes/step  bytes/tok\n");

  std::vector<Sample> samples;
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      const Sample s = run_sweep(model, precision, batch);
      samples.push_back(s);
      std::printf("  %-4s %2zu  %7.1f  %11.1f  %11.1f  %9.1f  %10.0f  %9.0f\n",
                  precision == Precision::kInt8 ? "int8" : "fp32", s.batch,
                  s.tokens_per_s, s.p50_step_us, s.p99_step_us,
                  s.messages_per_step, s.bytes_per_step, s.bytes_per_token());
    }
    voltage::bench::print_rule(72);
  }

  // Acceptance thresholds, checked on the fp32 sweep (samples 0..2).
  const Sample& b1 = samples[0];
  const Sample& b16 = samples[2];
  const double speedup =
      b1.tokens_per_s > 0.0 ? b16.tokens_per_s / b1.tokens_per_s : 0.0;
  const bool throughput_ok = speedup >= 2.0;
  const bool messages_ok = b16.messages_per_step == b1.messages_per_step;
  const bool bytes_sublinear = b16.bytes_per_step < 16.0 * b1.bytes_per_step;
  std::printf("\naggregate tokens/s at B=16 vs B=1: %.2fx (need >= 2x)\n"
              "messages/step B=16 vs B=1: %.1f vs %.1f (need equal)\n"
              "bytes/step B=16 vs B=1: %.0f vs %.0f (need < 16x)\n",
              speedup, b16.messages_per_step, b1.messages_per_step,
              b16.bytes_per_step, b1.bytes_per_step);

  voltage::bench::JsonReport report(out_path);
  report.field("benchmark",
               voltage::bench::quoted("continuous_batching_serving"));
  report.field("model", voltage::bench::quoted(model.spec().name));
  report.field("devices", std::to_string(kDevices));
  report.begin_results();
  for (const Sample& s : samples) {
    report.result(
        "{\"precision\": " +
        voltage::bench::quoted(s.precision == Precision::kInt8 ? "int8"
                                                               : "fp32") +
        ", \"batch\": " + std::to_string(s.batch) +
        ", \"steps\": " + std::to_string(s.steps) +
        ", \"tokens_per_s\": " + voltage::bench::num(s.tokens_per_s) +
        ", \"p50_step_us\": " + voltage::bench::num(s.p50_step_us) +
        ", \"p99_step_us\": " + voltage::bench::num(s.p99_step_us) +
        ", \"messages_per_step\": " +
        voltage::bench::num(s.messages_per_step) +
        ", \"bytes_per_step\": " + voltage::bench::num(s.bytes_per_step) +
        ", \"bytes_per_token\": " + voltage::bench::num(s.bytes_per_token()) +
        "}");
  }
  report.end_results();
  report.field(
      "acceptance",
      "{\"throughput_speedup_b16\": " + voltage::bench::num(speedup) +
          ", \"throughput_ok\": " + (throughput_ok ? "true" : "false") +
          ", \"messages_per_step_constant\": " +
          (messages_ok ? "true" : "false") +
          ", \"bytes_per_step_sublinear\": " +
          (bytes_sublinear ? "true" : "false") + "}");
  const bool wrote = report.finish();

  if (!throughput_ok || !messages_ok || !bytes_sublinear) {
    std::fprintf(stderr, "serving acceptance thresholds not met\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
