// Minimal JSON value + recursive-descent parser.
//
// Just enough to read back the Chrome trace-event files this repo writes
// (tools/trace_report, the round-trip tests): objects, arrays, strings with
// escapes, doubles, booleans, null. Throws std::runtime_error with a byte
// offset on malformed input. Not a general-purpose JSON library — no
// surrogate-pair decoding, no serialization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace voltage::obs::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  // std::vector supports incomplete element types, so the recursive
  // members below are fine without indirection.
  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parses exactly one JSON document (trailing whitespace allowed). Throws
// std::runtime_error on any syntax error.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace voltage::obs::json
