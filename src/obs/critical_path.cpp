#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <string_view>
#include <unordered_map>

namespace voltage::obs {

namespace {

using Interval = std::pair<Micros, Micros>;  // [start, end)

// Sorts and merges into disjoint intervals; drops empties.
std::vector<Interval> merged(std::vector<Interval> intervals) {
  std::erase_if(intervals,
                [](const Interval& i) { return i.second <= i.first; });
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> out;
  for (const Interval& i : intervals) {
    if (!out.empty() && i.first <= out.back().second) {
      out.back().second = std::max(out.back().second, i.second);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

Micros measure(const std::vector<Interval>& intervals) {
  Micros total = 0;
  for (const Interval& i : intervals) total += i.second - i.first;
  return total;
}

// |a ∩ b| for two merged interval sets.
Micros overlap(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  Micros total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const Micros lo = std::max(a[i].first, b[j].first);
    const Micros hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

Interval clip(Micros start, Micros end, const Interval& window) {
  return {std::max(start, window.first), std::min(end, window.second)};
}

struct CommSpan {
  const TraceEvent* event = nullptr;
  // Latest matched flow-start among the flow ends consumed inside this
  // span: the receiver could not possibly have finished waiting before the
  // last sender sent. 0 when the span consumed nothing (a pure send).
  Micros last_data_ready_us = 0;
};

struct TrackState {
  std::int64_t device = -1;           // device attr seen on this track
  std::vector<const TraceEvent*> compute;  // category "compute", by start
  std::vector<CommSpan> comm;              // category "comm", by start
  std::vector<const TraceEvent*> flow_ends;
  bool participant = false;  // has compute or comm activity
};

}  // namespace

CriticalPathReport analyze_critical_path(const LoadedTrace& trace) {
  CriticalPathReport report;

  // --- Pass 1: bucket events per track, index flow starts globally. ------
  std::map<std::int64_t, TrackState> tracks;
  std::unordered_map<std::uint64_t, Micros> flow_start_ts;
  std::vector<const TraceEvent*> window_spans;
  Micros first_ts = std::numeric_limits<Micros>::max();
  Micros last_ts = std::numeric_limits<Micros>::min();

  for (const TraceEvent& e : trace.events) {
    first_ts = std::min(first_ts, e.start_us);
    last_ts = std::max(last_ts, e.start_us + e.duration_us);
    const auto track = static_cast<std::int64_t>(e.track);
    if (e.phase == EventPhase::kFlowStart) {
      flow_start_ts.emplace(e.flow_id, e.start_us);
      continue;
    }
    if (e.phase == EventPhase::kFlowEnd) {
      tracks[track].flow_ends.push_back(&e);
      continue;
    }
    const std::string_view category(e.category);
    const std::string_view name(e.name);
    if (category == "compute") {
      TrackState& state = tracks[track];
      state.compute.push_back(&e);
      state.participant = true;
      if (e.device >= 0) state.device = e.device;
    } else if (category == "comm") {
      TrackState& state = tracks[track];
      state.comm.push_back(CommSpan{.event = &e, .last_data_ready_us = 0});
      state.participant = true;
      if (e.device >= 0) state.device = e.device;
    }
    if (name == "decode.prefill" || name == "decode.step" ||
        name == "service") {
      window_spans.push_back(&e);
    }
  }
  if (trace.events.empty()) return report;

  // --- Pass 2: assign each flow end to its innermost comm span and push
  // the span's data-ready time forward to the latest matched sender. ------
  for (auto& [track, state] : tracks) {
    (void)track;
    for (const TraceEvent* end : state.flow_ends) {
      const auto it = flow_start_ts.find(end->flow_id);
      if (it == flow_start_ts.end()) continue;  // dangling arrow; skip
      const Micros ready_us = it->second;
      // Innermost containing comm span: spans on one track nest properly,
      // so among those containing the timestamp, the latest-starting one
      // is innermost. comm is sorted by start (trace.events was).
      CommSpan* best = nullptr;
      for (auto rit = state.comm.rbegin(); rit != state.comm.rend(); ++rit) {
        const TraceEvent& s = *rit->event;
        if (s.start_us > end->start_us) continue;
        if (s.start_us + s.duration_us >= end->start_us) {
          best = &*rit;
          break;
        }
        // Started before the flow end yet finished before it: with proper
        // nesting no earlier span can contain it through this one's gap —
        // but an outer span still might, so keep scanning.
      }
      if (best != nullptr) {
        best->last_data_ready_us =
            std::max(best->last_data_ready_us, ready_us);
      }
    }
  }

  // --- Windows: decode spans if present, else service spans, else the
  // whole trace. ---------------------------------------------------------
  struct Window {
    std::string label;
    Interval interval;
    std::int64_t index = -1;
    std::int64_t trace_id = -1;
    std::int64_t batch = -1;
    std::int64_t tokens = -1;
    std::int64_t accepted = -1;
  };
  std::vector<Window> windows;
  const bool has_decode = std::any_of(
      window_spans.begin(), window_spans.end(), [](const TraceEvent* e) {
        const std::string_view n(e->name);
        return n == "decode.prefill" || n == "decode.step";
      });
  for (const TraceEvent* e : window_spans) {
    const std::string_view n(e->name);
    if (has_decode && n == "service") continue;
    windows.push_back(Window{
        .label = n == "decode.prefill" ? "prefill"
                 : n == "decode.step"  ? "step"
                                       : "service",
        .interval = {e->start_us, e->start_us + e->duration_us},
        .index = e->request,
        .trace_id = e->trace,
        .batch = e->batch,
        .tokens = e->tokens,
        .accepted = e->accepted,
    });
  }
  if (windows.empty()) {
    windows.push_back(Window{.label = "trace",
                             .interval = {first_ts, last_ts},
                             .index = -1,
                             .trace_id = -1});
  }
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              return a.interval.first < b.interval.first;
            });

  // --- Per window × track: the exact three-way decomposition. ------------
  std::map<std::int64_t, DeviceSlice> totals;
  for (const Window& w : windows) {
    WindowAttribution attribution;
    attribution.label = w.label;
    attribution.index = w.index;
    attribution.trace_id = w.trace_id;
    attribution.batch = w.batch;
    attribution.tokens = w.tokens;
    attribution.accepted = w.accepted;
    attribution.start_us = w.interval.first;
    attribution.wall_us = w.interval.second - w.interval.first;

    Micros worst_wait = -1;
    for (const auto& [track, state] : tracks) {
      if (!state.participant) continue;
      std::vector<Interval> compute_iv;
      for (const TraceEvent* e : state.compute) {
        compute_iv.push_back(
            clip(e->start_us, e->start_us + e->duration_us, w.interval));
      }
      std::vector<Interval> comm_iv;
      std::vector<Interval> wait_iv;
      for (const CommSpan& s : state.comm) {
        const TraceEvent& e = *s.event;
        comm_iv.push_back(
            clip(e.start_us, e.start_us + e.duration_us, w.interval));
        if (s.last_data_ready_us > e.start_us) {
          // Blocked from span entry until the last sender's data left.
          wait_iv.push_back(
              clip(e.start_us,
                   std::min(s.last_data_ready_us,
                            e.start_us + e.duration_us),
                   w.interval));
        }
      }
      const std::vector<Interval> compute_u = merged(std::move(compute_iv));
      const std::vector<Interval> comm_u = merged(std::move(comm_iv));
      const std::vector<Interval> wait_u = merged(std::move(wait_iv));

      DeviceSlice slice;
      slice.track = track;
      slice.device = state.device >= 0 ? state.device : track;
      // Comm nested inside compute spans counts as comm, not compute.
      slice.compute_us = measure(compute_u) - overlap(compute_u, comm_u);
      const Micros comm_us = measure(comm_u);
      const Micros blocked_us = measure(wait_u);  // wait_u ⊆ comm_u
      slice.wire_us = comm_us - blocked_us;
      // Everything not compute and not comm is idle: the device had
      // nothing to do for this window (it had finished, or the command
      // hadn't reached it yet). Idle + blocked is the wait bucket.
      const Micros idle_us =
          attribution.wall_us - slice.compute_us - comm_us;
      slice.wait_us = blocked_us + idle_us;
      if (slice.wait_us > worst_wait) {
        worst_wait = slice.wait_us;
        attribution.straggler_track = track;
      }

      DeviceSlice& total = totals[track];
      total.track = track;
      total.device = slice.device;
      total.compute_us += slice.compute_us;
      total.wire_us += slice.wire_us;
      total.wait_us += slice.wait_us;
      report.compute_us += slice.compute_us;
      report.wire_us += slice.wire_us;
      report.wait_us += slice.wait_us;

      attribution.devices.push_back(slice);
    }
    report.windows.push_back(std::move(attribution));
  }
  report.device_totals.reserve(totals.size());
  for (const auto& [track, slice] : totals) {
    (void)track;
    report.device_totals.push_back(slice);
  }

  // --- Prefill per-layer rows (the measured Eq.-3 terms). ----------------
  std::vector<Interval> prefill_iv;
  for (const Window& w : windows) {
    if (w.label == "prefill" || w.label == "service" || w.label == "trace") {
      prefill_iv.push_back(w.interval);
    }
  }
  const std::vector<Interval> prefill_u = merged(std::move(prefill_iv));
  const auto inside_prefill = [&](Micros ts) {
    for (const Interval& i : prefill_u) {
      if (ts >= i.first && ts < i.second) return true;
    }
    return false;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, LayerPath> layer_paths;
  for (const auto& [track, state] : tracks) {
    if (!state.participant) continue;
    for (const TraceEvent* e : state.compute) {
      if (e->layer < 0 || !inside_prefill(e->start_us)) continue;
      LayerPath& row = layer_paths[{e->layer, track}];
      row.layer = e->layer;
      row.track = track;
      row.device = state.device >= 0 ? state.device : track;
      row.compute_us += e->duration_us;
    }
    for (const CommSpan& s : state.comm) {
      const TraceEvent& e = *s.event;
      if (e.layer < 0 || !inside_prefill(e.start_us)) continue;
      // Skip nested waits ("gather_wait" lives inside "all_gather"): the
      // outer span already covers the same wall time.
      if (std::string_view(e.name) == "gather_wait") continue;
      LayerPath& row = layer_paths[{e.layer, track}];
      row.layer = e.layer;
      row.track = track;
      row.device = state.device >= 0 ? state.device : track;
      const Micros blocked =
          s.last_data_ready_us > e.start_us
              ? std::min(s.last_data_ready_us, e.start_us + e.duration_us) -
                    e.start_us
              : 0;
      row.wait_us += blocked;
      row.wire_us += e.duration_us - blocked;
    }
  }
  // The inner gather_wait consumed the flow ends, so pull its blocked time
  // up into the (layer, track) row the enclosing all_gather belongs to.
  for (const auto& [track, state] : tracks) {
    if (!state.participant) continue;
    for (const CommSpan& s : state.comm) {
      const TraceEvent& e = *s.event;
      if (e.layer < 0 || !inside_prefill(e.start_us)) continue;
      if (std::string_view(e.name) != "gather_wait") continue;
      const auto it = layer_paths.find({e.layer, track});
      if (it == layer_paths.end()) continue;
      const Micros blocked =
          s.last_data_ready_us > e.start_us
              ? std::min(s.last_data_ready_us, e.start_us + e.duration_us) -
                    e.start_us
              : 0;
      it->second.wait_us += blocked;
      it->second.wire_us -= std::min(blocked, it->second.wire_us);
    }
  }
  report.layers.reserve(layer_paths.size());
  for (auto& [key, row] : layer_paths) {
    (void)key;
    report.layers.push_back(row);
  }

  // --- Straggler per collective round. -----------------------------------
  struct RoundAccumulator {
    std::size_t rounds = 0;
    Micros max_spread_us = 0;
    Micros total_spread_us = 0;
    std::map<std::int64_t, std::size_t> straggler_counts;
  };
  std::map<std::pair<std::string, std::int64_t>, RoundAccumulator> round_acc;
  for (const Window& w : windows) {
    // Group this window's comm spans by (name, layer); entry-time skew
    // across devices is the straggler signature.
    struct Entry {
      Micros min_start = std::numeric_limits<Micros>::max();
    };
    std::map<std::pair<std::string, std::int64_t>, std::map<std::int64_t, Entry>>
        groups;
    for (const auto& [track, state] : tracks) {
      if (!state.participant) continue;
      for (const CommSpan& s : state.comm) {
        const TraceEvent& e = *s.event;
        if (e.start_us < w.interval.first || e.start_us >= w.interval.second) {
          continue;
        }
        if (std::string_view(e.name) == "gather_wait") continue;  // nested
        Entry& entry = groups[{std::string(e.name), e.layer}][track];
        entry.min_start = std::min(entry.min_start, e.start_us);
      }
    }
    for (const auto& [key, by_track] : groups) {
      if (by_track.size() < 2) continue;  // not a collective round
      Micros min_entry = std::numeric_limits<Micros>::max();
      Micros max_entry = std::numeric_limits<Micros>::min();
      std::int64_t last_track = -1;
      for (const auto& [track, entry] : by_track) {
        min_entry = std::min(min_entry, entry.min_start);
        if (entry.min_start > max_entry) {
          max_entry = entry.min_start;
          last_track = track;
        }
      }
      RoundAccumulator& acc = round_acc[key];
      acc.rounds += 1;
      const Micros spread = max_entry - min_entry;
      acc.max_spread_us = std::max(acc.max_spread_us, spread);
      acc.total_spread_us += spread;
      acc.straggler_counts[last_track] += 1;
    }
  }
  report.rounds.reserve(round_acc.size());
  for (const auto& [key, acc] : round_acc) {
    CollectiveRound round;
    round.name = key.first;
    round.layer = key.second;
    round.rounds = acc.rounds;
    round.max_spread_us = acc.max_spread_us;
    round.total_spread_us = acc.total_spread_us;
    for (const auto& [track, count] : acc.straggler_counts) {
      if (count > round.straggler_count) {
        round.straggler_count = count;
        round.straggler_track = track;
      }
    }
    report.rounds.push_back(std::move(round));
  }

  return report;
}

std::string format_critical_path(const CriticalPathReport& report) {
  std::string out;
  char line[256];

  std::size_t prefills = 0;
  std::size_t steps = 0;
  for (const WindowAttribution& w : report.windows) {
    if (w.label == "prefill") prefills += 1;
    if (w.label == "step") steps += 1;
  }
  std::snprintf(line, sizeof(line),
                "critical path: %zu windows (%zu prefill, %zu steps), "
                "%zu devices\n",
                report.windows.size(), prefills, steps,
                report.device_totals.size());
  out += line;
  std::snprintf(line, sizeof(line),
                "totals: compute %lldus  wire %lldus  wait %lldus  "
                "(comm fraction %.3f, wait fraction %.3f)\n\n",
                static_cast<long long>(report.compute_us),
                static_cast<long long>(report.wire_us),
                static_cast<long long>(report.wait_us),
                report.comm_fraction(), report.wait_fraction());
  out += line;

  out += "device totals:\n";
  out += "track  device  compute_us  wire_us  wait_us  busy_frac\n";
  for (const DeviceSlice& d : report.device_totals) {
    const double total = static_cast<double>(d.total_us());
    std::snprintf(line, sizeof(line),
                  "%5lld  %6lld  %10lld  %7lld  %7lld  %9.3f\n",
                  static_cast<long long>(d.track),
                  static_cast<long long>(d.device),
                  static_cast<long long>(d.compute_us),
                  static_cast<long long>(d.wire_us),
                  static_cast<long long>(d.wait_us),
                  total > 0.0
                      ? static_cast<double>(d.compute_us + d.wire_us) / total
                      : 0.0);
    out += line;
  }

  out += "\nwindows:\n";
  out +=
      "window    idx  trace  batch  tokens  accepted       wall_us  "
      "straggler  per-device compute/wire/wait (us)\n";
  for (const WindowAttribution& w : report.windows) {
    std::snprintf(line, sizeof(line),
                  "%-8s  %3lld  %5lld  %5lld  %6lld  %8lld  %12lld  "
                  "%9lld  ",
                  w.label.c_str(), static_cast<long long>(w.index),
                  static_cast<long long>(w.trace_id),
                  static_cast<long long>(w.batch),
                  static_cast<long long>(w.tokens),
                  static_cast<long long>(w.accepted),
                  static_cast<long long>(w.wall_us),
                  static_cast<long long>(w.straggler_track));
    out += line;
    for (const DeviceSlice& d : w.devices) {
      std::snprintf(line, sizeof(line), "[%lld: %lld/%lld/%lld] ",
                    static_cast<long long>(d.track),
                    static_cast<long long>(d.compute_us),
                    static_cast<long long>(d.wire_us),
                    static_cast<long long>(d.wait_us));
      out += line;
    }
    out += "\n";
  }

  if (!report.layers.empty()) {
    out += "\nprefill layers:\n";
    out += "layer  track  compute_us  wire_us  wait_us\n";
    for (const LayerPath& row : report.layers) {
      std::snprintf(line, sizeof(line), "%5lld  %5lld  %10lld  %7lld  %7lld\n",
                    static_cast<long long>(row.layer),
                    static_cast<long long>(row.track),
                    static_cast<long long>(row.compute_us),
                    static_cast<long long>(row.wire_us),
                    static_cast<long long>(row.wait_us));
      out += line;
    }
  }

  if (!report.rounds.empty()) {
    out += "\ncollective rounds:\n";
    out +=
        "collective       layer  rounds  straggler  straggler_n  "
        "max_spread_us  mean_spread_us\n";
    for (const CollectiveRound& round : report.rounds) {
      std::snprintf(
          line, sizeof(line), "%-15s  %5lld  %6zu  %9lld  %11zu  %13lld  %14.1f\n",
          round.name.c_str(), static_cast<long long>(round.layer),
          round.rounds, static_cast<long long>(round.straggler_track),
          round.straggler_count,
          static_cast<long long>(round.max_spread_us),
          round.rounds > 0 ? static_cast<double>(round.total_spread_us) /
                                 static_cast<double>(round.rounds)
                           : 0.0);
      out += line;
    }
  }
  return out;
}

}  // namespace voltage::obs
