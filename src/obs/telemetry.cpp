#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

namespace voltage::obs {

// --- FlightRecorder --------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t capacity, std::ostream* auto_dump)
    : capacity_(std::max<std::size_t>(1, capacity)), auto_dump_(auto_dump) {
  ring_.resize(capacity_);
}

void FlightRecorder::note(Entry entry) {
  const std::lock_guard lock(mutex_);
  ring_[next_] = entry;
  next_ = (next_ + 1) % capacity_;
  count_ = std::min(count_ + 1, capacity_);
}

void FlightRecorder::note_send(std::uint64_t source, std::uint64_t destination,
                               std::uint64_t tag, std::uint64_t trace_id,
                               std::uint64_t bytes) {
  note(Entry{.us = now_us(),
             .kind = Kind::kSend,
             .source = source,
             .destination = destination,
             .tag = tag,
             .trace_id = trace_id,
             .bytes = bytes});
}

void FlightRecorder::note_recv(std::uint64_t source, std::uint64_t destination,
                               std::uint64_t tag, std::uint64_t trace_id,
                               std::uint64_t bytes) {
  note(Entry{.us = now_us(),
             .kind = Kind::kRecv,
             .source = source,
             .destination = destination,
             .tag = tag,
             .trace_id = trace_id,
             .bytes = bytes});
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  const std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(count_);
  // Oldest entry sits at `next_` once the ring has wrapped, at 0 before.
  const std::size_t start = count_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void FlightRecorder::clear() {
  const std::lock_guard lock(mutex_);
  next_ = 0;
  count_ = 0;
}

void FlightRecorder::dump(std::ostream& out, std::string_view reason) const {
  const std::vector<Entry> snapshot = entries();
  out << "flight recorder: " << reason << " (last " << snapshot.size()
      << " events)\n";
  for (const Entry& e : snapshot) {
    const char* kind = e.kind == Kind::kSend   ? "send"
                       : e.kind == Kind::kRecv ? "recv"
                                               : "note";
    out << "  t=" << e.us << "us " << kind << " " << e.source << "->"
        << e.destination << " tag=" << e.tag << " bytes=" << e.bytes;
    if (e.trace_id != 0) out << " trace=" << e.trace_id;
    out << "\n";
  }
}

void FlightRecorder::auto_dump(std::string_view reason) const {
  std::ostream* out;
  {
    const std::lock_guard lock(mutex_);
    out = auto_dump_;
  }
  if (out != nullptr) dump(*out, reason);
}

void FlightRecorder::set_auto_dump(std::ostream* out) {
  const std::lock_guard lock(mutex_);
  auto_dump_ = out;
}

// --- TelemetryHub ----------------------------------------------------------

TelemetryHub::TelemetryHub(double window_seconds)
    : window_us_(static_cast<Micros>(
          std::max(1.0, window_seconds * 1e6))) {}

void TelemetryHub::register_rate(std::string name,
                                 std::function<double()> cumulative) {
  const std::lock_guard lock(mutex_);
  rates_.push_back(Series{.name = std::move(name),
                          .read = std::move(cumulative),
                          .history = {}});
}

void TelemetryHub::register_gauge(std::string name,
                                  std::function<double()> value) {
  const std::lock_guard lock(mutex_);
  gauges_.emplace_back(std::move(name), std::move(value));
}

void TelemetryHub::unregister(std::string_view name) {
  const std::lock_guard lock(mutex_);
  std::erase_if(rates_, [&](const Series& s) { return s.name == name; });
  std::erase_if(gauges_, [&](const auto& g) { return g.first == name; });
}

void TelemetryHub::add_device_busy(std::size_t device, Micros busy_us) {
  const std::lock_guard lock(mutex_);
  if (device >= device_busy_totals_.size()) {
    device_busy_totals_.resize(device + 1, 0.0);
    while (device_busy_.size() < device + 1) {
      device_busy_.push_back(Series{
          .name = "device" + std::to_string(device_busy_.size()) + "_busy_us",
          .read = {},  // read inline from device_busy_totals_
          .history = {}});
    }
  }
  device_busy_totals_[device] += static_cast<double>(busy_us);
}

double TelemetryHub::windowed_rate(const Series& series) {
  if (series.history.size() < 2) return 0.0;
  const auto& [t0, v0] = series.history.front();
  const auto& [t1, v1] = series.history.back();
  if (t1 <= t0) return 0.0;
  return (v1 - v0) / (static_cast<double>(t1 - t0) / 1e6);
}

TelemetryHub::Snapshot TelemetryHub::sample() {
  Snapshot snapshot;
  snapshot.steady_us = now_us();
  snapshot.wall_unix_us = to_wall_unix_us(snapshot.steady_us);

  // Read the cumulative counters outside the lock: they may themselves take
  // locks (MetricsRegistry counters, transport stats) and must not nest
  // under ours.
  std::vector<std::function<double()>> rate_reads;
  std::vector<std::pair<std::string, std::function<double()>>> gauge_reads;
  {
    const std::lock_guard lock(mutex_);
    rate_reads.reserve(rates_.size());
    for (const Series& s : rates_) rate_reads.push_back(s.read);
    gauge_reads = gauges_;
  }
  std::vector<double> rate_values;
  rate_values.reserve(rate_reads.size());
  for (const auto& read : rate_reads) rate_values.push_back(read());
  std::vector<std::pair<std::string, double>> gauge_values;
  gauge_values.reserve(gauge_reads.size());
  for (const auto& [name, read] : gauge_reads) {
    gauge_values.emplace_back(name, read());
  }

  const std::lock_guard lock(mutex_);
  const auto advance = [&](Series& series, double value) {
    series.history.emplace_back(snapshot.steady_us, value);
    while (series.history.size() > 2 &&
           series.history.front().first < snapshot.steady_us - window_us_) {
      series.history.pop_front();
    }
  };
  for (std::size_t i = 0; i < rates_.size() && i < rate_values.size(); ++i) {
    advance(rates_[i], rate_values[i]);
    snapshot.values.emplace_back(rates_[i].name + "_per_s",
                                 windowed_rate(rates_[i]));
  }
  for (std::size_t i = 0; i < device_busy_.size(); ++i) {
    advance(device_busy_[i], device_busy_totals_[i]);
    // Δbusy_us / Δwall_us: the fraction of the window this device spent
    // serving commands.
    snapshot.values.emplace_back(
        "device" + std::to_string(i) + "_utilization",
        windowed_rate(device_busy_[i]) / 1e6);
  }
  for (auto& [name, value] : gauge_values) {
    snapshot.values.emplace_back(std::move(name), value);
  }
  return snapshot;
}

namespace {

// JSON numbers must be finite; a gauge returning NaN/inf becomes 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) return "_" + out;
  return out;
}

}  // namespace

void TelemetryHub::write_jsonl(const Snapshot& snapshot, std::ostream& out) {
  out << "{\"wall_unix_us\":" << snapshot.wall_unix_us
      << ",\"steady_us\":" << snapshot.steady_us;
  for (const auto& [name, value] : snapshot.values) {
    out << ",\"";
    // Metric names are code-chosen identifiers; escape the two characters
    // that could break the JSON anyway.
    for (const char c : name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\":" << finite(value);
  }
  out << "}\n";
}

void TelemetryHub::write_prometheus(const Snapshot& snapshot,
                                    std::ostream& out) {
  for (const auto& [name, value] : snapshot.values) {
    const std::string sanitized = prometheus_name("voltage_" + name);
    out << "# TYPE " << sanitized << " gauge\n"
        << sanitized << " " << finite(value) << "\n";
  }
}

}  // namespace voltage::obs
