#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace voltage::obs {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::runtime_error("trace: " + what);
}

std::int64_t require_int(const json::Value& event, std::string_view key) {
  const json::Value* v = event.find(key);
  if (v == nullptr || !v->is_number()) {
    invalid("duration event missing numeric \"" + std::string(key) + "\"");
  }
  return static_cast<std::int64_t>(v->as_number());
}

const char* intern(LoadedTrace& trace, const std::string& s) {
  trace.strings.push_back(std::make_unique<std::string>(s));
  return trace.strings.back()->c_str();
}

// Fills the attribute fields from the event's "args" object, if present.
void read_args(const json::Value& event, TraceEvent& out) {
  const json::Value* args = event.find("args");
  if (args == nullptr || !args->is_object()) return;
  if (const json::Value* v = args->find("device");
      v != nullptr && v->is_number()) {
    out.device = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("layer");
      v != nullptr && v->is_number()) {
    out.layer = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("bytes");
      v != nullptr && v->is_number()) {
    out.bytes = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("raw_bytes");
      v != nullptr && v->is_number()) {
    out.raw_bytes = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("request");
      v != nullptr && v->is_number()) {
    out.request = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("trace");
      v != nullptr && v->is_number()) {
    out.trace = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("batch");
      v != nullptr && v->is_number()) {
    out.batch = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("tokens");
      v != nullptr && v->is_number()) {
    out.tokens = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("drafts");
      v != nullptr && v->is_number()) {
    out.drafts = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("accepted");
      v != nullptr && v->is_number()) {
    out.accepted = static_cast<std::int64_t>(v->as_number());
  }
  if (const json::Value* v = args->find("tag");
      v != nullptr && v->is_string()) {
    out.tag = v->as_string();
  }
}

}  // namespace

LoadedTrace load_chrome_trace(std::string_view json_text) {
  const json::Value root = json::parse(json_text);
  const json::Value* trace_events = root.find("traceEvents");
  if (trace_events == nullptr) {
    // A bare array of events is also a valid Chrome trace.
    if (!root.is_array()) invalid("no \"traceEvents\" array");
    trace_events = &root;
  }
  if (!trace_events->is_array()) invalid("\"traceEvents\" is not an array");

  LoadedTrace trace;
  // Open "B" events per track, awaiting their "E".
  std::map<TrackId, std::vector<TraceEvent>> open;
  Micros last_ts = std::numeric_limits<Micros>::min();

  for (const json::Value& entry : trace_events->as_array()) {
    if (!entry.is_object()) invalid("event is not an object");
    const json::Value* ph = entry.find("ph");
    if (ph == nullptr || !ph->is_string()) invalid("event without \"ph\"");
    const std::string& phase = ph->as_string();
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) {
      invalid("event without \"name\"");
    }

    if (phase == "M") {
      if (name->as_string() == "thread_name") {
        const json::Value* args = entry.find("args");
        const json::Value* label =
            args != nullptr ? args->find("name") : nullptr;
        if (label != nullptr && label->is_string()) {
          trace.track_names.emplace_back(
              static_cast<TrackId>(require_int(entry, "tid")),
              label->as_string());
        }
      } else if (name->as_string() == "clock_sync") {
        const json::Value* args = entry.find("args");
        const json::Value* steady =
            args != nullptr ? args->find("steady_us") : nullptr;
        const json::Value* wall =
            args != nullptr ? args->find("wall_unix_us") : nullptr;
        if (steady != nullptr && steady->is_number() && wall != nullptr &&
            wall->is_number()) {
          trace.has_clock_anchor = true;
          trace.clock_anchor.steady_us =
              static_cast<Micros>(steady->as_number());
          trace.clock_anchor.wall_unix_us =
              static_cast<std::int64_t>(wall->as_number());
        }
      }
      continue;  // other metadata is legal and ignored
    }

    if (phase != "X" && phase != "B" && phase != "E" && phase != "s" &&
        phase != "f") {
      invalid("unsupported event phase \"" + phase + "\"");
    }

    TraceEvent e;
    e.name = intern(trace, name->as_string());
    if (const json::Value* cat = entry.find("cat");
        cat != nullptr && cat->is_string()) {
      e.category = intern(trace, cat->as_string());
    }
    (void)require_int(entry, "pid");  // structural requirement only
    e.track = static_cast<TrackId>(require_int(entry, "tid"));
    e.start_us = require_int(entry, "ts");
    if (e.start_us < last_ts) invalid("timestamps not sorted");
    last_ts = e.start_us;
    read_args(entry, e);

    if (phase == "X") {
      e.duration_us = require_int(entry, "dur");
      if (e.duration_us < 0) invalid("negative duration");
      trace.events.push_back(std::move(e));
    } else if (phase == "s" || phase == "f") {
      e.phase = phase == "s" ? EventPhase::kFlowStart : EventPhase::kFlowEnd;
      const std::int64_t id = require_int(entry, "id");
      if (id < 0) invalid("negative flow id");
      e.flow_id = static_cast<std::uint64_t>(id);
      trace.events.push_back(std::move(e));
    } else if (phase == "B") {
      open[e.track].push_back(std::move(e));
    } else {  // "E"
      auto& stack = open[e.track];
      if (stack.empty()) invalid("\"E\" event without matching \"B\"");
      TraceEvent begun = std::move(stack.back());
      stack.pop_back();
      if (std::string_view(begun.name) != std::string_view(e.name)) {
        invalid("mismatched B/E pair: \"" + std::string(begun.name) +
                "\" closed by \"" + e.name + "\"");
      }
      begun.duration_us = e.start_us - begun.start_us;
      trace.events.push_back(std::move(begun));
    }
  }

  for (const auto& [track, stack] : open) {
    if (!stack.empty()) {
      invalid("unclosed \"B\" event \"" + std::string(stack.back().name) +
              "\" on track " + std::to_string(track));
    }
  }

  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return trace;
}

LoadedTrace load_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return load_chrome_trace(text.str());
}

std::vector<std::string> flow_problems(const LoadedTrace& trace) {
  std::vector<std::string> problems;
  // Events are sorted by ts, so walking in order sees every start before
  // its end (the transports stamp the start before delivery).
  std::map<std::uint64_t, const TraceEvent*> open;  // flow id → start event
  for (const TraceEvent& e : trace.events) {
    if (e.phase == EventPhase::kFlowStart) {
      const auto [it, inserted] = open.emplace(e.flow_id, &e);
      if (!inserted) {
        problems.push_back("duplicate flow start id " +
                           std::to_string(e.flow_id) + " at t=" +
                           std::to_string(e.start_us) + "us");
      }
    } else if (e.phase == EventPhase::kFlowEnd) {
      const auto it = open.find(e.flow_id);
      if (it == open.end()) {
        problems.push_back("flow end without start: id " +
                           std::to_string(e.flow_id) + " on track " +
                           std::to_string(e.track) + " at t=" +
                           std::to_string(e.start_us) + "us");
      } else {
        open.erase(it);
      }
    }
  }
  for (const auto& [id, start] : open) {
    problems.push_back("flow start without end: id " + std::to_string(id) +
                       " on track " + std::to_string(start->track) +
                       " at t=" + std::to_string(start->start_us) +
                       "us (sent but never received)");
  }
  return problems;
}

TraceReport build_report(const LoadedTrace& trace) {
  TraceReport report;
  report.events = trace.events.size();

  std::map<std::pair<std::int64_t, std::int64_t>, LayerRow> layers;
  std::map<std::int64_t, DeviceRow> devices;
  std::map<std::int64_t, DecodeBatchRow> batches;
  Micros first = std::numeric_limits<Micros>::max();
  Micros last = std::numeric_limits<Micros>::min();

  for (const TraceEvent& e : trace.events) {
    first = std::min(first, e.start_us);
    last = std::max(last, e.start_us + e.duration_us);

    // Flow endpoints are instants, not spans — they carry no durations to
    // aggregate here (critical_path.h consumes them).
    if (e.phase != EventPhase::kComplete) continue;

    const std::int64_t device =
        e.device >= 0 ? e.device : static_cast<std::int64_t>(e.track);
    const std::string_view category(e.category);
    DeviceRow& dev = devices[device];
    dev.device = device;
    dev.spans += 1;
    if (category == "compute") dev.compute_us += e.duration_us;
    if (category == "kernel") dev.gemm_us += e.duration_us;
    if (category == "comm") {
      dev.comm_us += e.duration_us;
      if (e.bytes > 0) dev.bytes_sent += e.bytes;
    }

    const std::string_view span_name(e.name);
    if (span_name == "decode.prefill") {
      report.decode.prefills += 1;
      report.decode.prefill_us += e.duration_us;
    } else if (span_name == "decode.step") {
      const std::int64_t b = e.batch > 0 ? e.batch : 1;
      // Speculative-era spans carry the committed-token count; older traces
      // fall back to one token per lane.
      const std::size_t committed =
          e.tokens >= 0 ? static_cast<std::size_t>(e.tokens)
                        : static_cast<std::size_t>(b);
      report.decode.steps += 1;
      report.decode.tokens += committed;
      report.decode.step_us += e.duration_us;
      if (e.bytes > 0) report.decode.step_bytes += e.bytes;
      DecodeBatchRow& row = batches[b];
      row.batch = b;
      row.steps += 1;
      row.step_us += e.duration_us;
      row.tokens += committed;
      if (e.bytes > 0) row.step_bytes += e.bytes;
      if (e.drafts > 0) {
        report.decode.drafts += static_cast<std::size_t>(e.drafts);
        row.drafts += static_cast<std::size_t>(e.drafts);
        if (e.accepted > 0) {
          report.decode.accepted += static_cast<std::size_t>(e.accepted);
          row.accepted += static_cast<std::size_t>(e.accepted);
        }
      }
    }

    if (e.layer < 0) continue;
    LayerRow& row = layers[{e.layer, device}];
    row.device = device;
    row.layer = e.layer;
    const std::string_view name(e.name);
    if (name == "layer") {
      row.compute_us += e.duration_us;
      if (!e.tag.empty()) row.order = e.tag;
    } else if (name == "gemm") {
      row.gemm_us += e.duration_us;
    } else if (name == "all_gather") {
      row.all_gather_us += e.duration_us;
      if (e.bytes > 0) {
        row.all_gather_bytes += e.bytes;
        // Quantized spans report the fp32-equivalent in raw_bytes; fp32
        // spans have none, so their encoded size is their raw size.
        row.all_gather_raw_bytes += e.raw_bytes >= 0 ? e.raw_bytes : e.bytes;
      }
    } else if (name == "gather_wait") {
      row.gather_wait_us += e.duration_us;
    } else if (name == "overlap_compute") {
      row.overlap_us += e.duration_us;
    }
  }

  if (!trace.events.empty()) report.wall_us = last - first;
  report.layers.reserve(layers.size());
  for (auto& [key, row] : layers) report.layers.push_back(std::move(row));
  report.devices.reserve(devices.size());
  for (auto& [key, row] : devices) report.devices.push_back(std::move(row));
  report.decode.by_batch.reserve(batches.size());
  for (auto& [key, row] : batches) report.decode.by_batch.push_back(row);
  return report;
}

std::string format_report(const TraceReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "trace: %zu events, wall time %.3f ms\n\n", report.events,
                static_cast<double>(report.wall_us) / 1000.0);
  out += line;

  if (!report.layers.empty()) {
    out +=
        "layer  device  compute_us  gemm_us  all_gather_us  gather_wait_us  "
        "overlap_us  all_gather_bytes  fp32_equiv_bytes  order\n";
    for (const LayerRow& row : report.layers) {
      std::snprintf(
          line, sizeof(line),
          "%5lld  %6lld  %10lld  %7lld  %13lld  %14lld  %10lld  %16lld  "
          "%16lld  %s\n",
          static_cast<long long>(row.layer),
          static_cast<long long>(row.device),
          static_cast<long long>(row.compute_us),
          static_cast<long long>(row.gemm_us),
          static_cast<long long>(row.all_gather_us),
          static_cast<long long>(row.gather_wait_us),
          static_cast<long long>(row.overlap_us),
          static_cast<long long>(row.all_gather_bytes),
          static_cast<long long>(row.all_gather_raw_bytes),
          row.order.empty() ? "-" : row.order.c_str());
      out += line;
    }
    out += "\n";
  }

  out += "device  compute_us  gemm_us  comm_us  bytes_sent  spans\n";
  for (const DeviceRow& row : report.devices) {
    std::snprintf(line, sizeof(line),
                  "%6lld  %10lld  %7lld  %7lld  %10lld  %5zu\n",
                  static_cast<long long>(row.device),
                  static_cast<long long>(row.compute_us),
                  static_cast<long long>(row.gemm_us),
                  static_cast<long long>(row.comm_us),
                  static_cast<long long>(row.bytes_sent), row.spans);
    out += line;
  }

  if (report.decode.steps > 0 || report.decode.prefills > 0) {
    out += "\ndecode  prefill_us  steps  tokens  tok_per_step  tokens_per_s"
           "  bytes_per_token  accept_rate\n";
    char accept[32] = "-";
    if (report.decode.drafts > 0) {
      std::snprintf(accept, sizeof(accept), "%.3f",
                    report.decode.acceptance_rate());
    }
    std::snprintf(line, sizeof(line),
                  "%6zu  %10lld  %5zu  %6zu  %12.2f  %12.1f  %15.0f  %11s\n",
                  report.decode.prefills,
                  static_cast<long long>(report.decode.prefill_us),
                  report.decode.steps, report.decode.tokens,
                  report.decode.tokens_per_step(),
                  report.decode.tokens_per_second(),
                  report.decode.bytes_per_token(), accept);
    out += line;
  }

  if (!report.decode.by_batch.empty()) {
    out += "\nbatch  steps  step_us_mean  step_bytes_mean  tok_per_step"
           "  accept_rate\n";
    for (const DecodeBatchRow& row : report.decode.by_batch) {
      const double n = static_cast<double>(row.steps);
      char accept[32] = "-";
      if (row.drafts > 0) {
        std::snprintf(accept, sizeof(accept), "%.3f",
                      static_cast<double>(row.accepted) /
                          static_cast<double>(row.drafts));
      }
      std::snprintf(line, sizeof(line),
                    "%5lld  %5zu  %12.1f  %15.1f  %12.2f  %11s\n",
                    static_cast<long long>(row.batch), row.steps,
                    n > 0.0 ? static_cast<double>(row.step_us) / n : 0.0,
                    n > 0.0 ? static_cast<double>(row.step_bytes) / n : 0.0,
                    n > 0.0 ? static_cast<double>(row.tokens) / n : 0.0,
                    accept);
      out += line;
    }
  }
  return out;
}

}  // namespace voltage::obs
