// Process-local metrics: named counters and histograms.
//
// Counters are single relaxed atomics — cheap enough for the transport send
// path. Histograms keep exact samples under a mutex (requests are the unit
// of recording here, not packets) and snapshot to the repo-wide nearest-rank
// percentile convention (obs/percentile.h), shared with the serving stats
// and the fleet simulator.
//
// A MetricsRegistry hands out stable references, so hot paths resolve a
// metric once at attach time and never touch the name map again.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace voltage::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

struct HistogramSnapshot {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  void record(double value);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates; the returned reference stays valid for the registry's
  // lifetime. Thread-safe.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  // Name-sorted snapshots of everything registered.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histograms() const;

  // Human-readable dump, one metric per line.
  [[nodiscard]] std::string report() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace voltage::obs
