// Loading, structural validation and aggregation of Chrome trace-event
// files — the library behind tools/trace_report and the trace round-trip
// tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace voltage::obs {

// A trace read back from Chrome trace-event JSON. Metadata ("M") events are
// consumed into track_names (and the clock_sync anchor); duration and flow
// events become TraceEvents (name, category and tag own their storage via
// `strings`).
struct LoadedTrace {
  std::vector<TraceEvent> events;  // sorted by start_us
  std::vector<std::pair<TrackId, std::string>> track_names;
  // The steady↔wall anchor from the "clock_sync" metadata record, if the
  // trace carries one (traces written by this repo's Tracer always do).
  bool has_clock_anchor = false;
  ClockAnchor clock_anchor;

  // Backing store for the const char* fields of `events`.
  std::vector<std::unique_ptr<std::string>> strings;
};

// Parses and structurally validates trace JSON. Accepts complete ("X")
// events, matched begin/end ("B"/"E") pairs and flow endpoints ("s"/"f",
// which require an "id"); requires the traceEvents array be sorted by "ts",
// every event carry pid/tid, and B/E events nest properly per track. Throws
// std::runtime_error describing the first violation.
[[nodiscard]] LoadedTrace load_chrome_trace(std::string_view json_text);

// Same, reading the file at `path`.
[[nodiscard]] LoadedTrace load_chrome_trace_file(const std::string& path);

// Flow-graph validation: every flow end ("f") must match exactly one
// earlier flow start ("s") with the same id, and every start must be
// consumed by an end — an unmatched endpoint means a send whose receive
// never happened (or vice versa) and renders as a dangling arrow. Returns
// one human-readable line per problem; empty means the flow graph is
// closed.
[[nodiscard]] std::vector<std::string> flow_problems(const LoadedTrace& trace);

// Per-(device, layer) and per-device aggregation of a loaded trace.
struct LayerRow {
  std::int64_t device = -1;
  std::int64_t layer = -1;
  Micros compute_us = 0;    // "layer" spans (attention+FFN nested inside)
  Micros gemm_us = 0;       // "gemm" kernel spans nested inside the layer
  Micros all_gather_us = 0;
  // Blocking tail of the all-gather ("gather_wait" spans) — nested within
  // all_gather_us, so all_gather_us - gather_wait_us is the send/copy part.
  Micros gather_wait_us = 0;
  // Next-layer attention prologue overlapped with this layer's gather
  // ("overlap_compute" spans; attributed to the layer they compute *for*).
  Micros overlap_us = 0;
  std::int64_t all_gather_bytes = 0;
  // fp32-equivalent of the gather traffic: quantized comm spans carry the
  // encoded size in `bytes` and the would-have-been-fp32 size in
  // `raw_bytes`; fp32 spans carry no raw_bytes and count their encoded size
  // here too, so the two columns are equal on an unquantized trace and
  // their ratio is the wire reduction on a quantized one.
  std::int64_t all_gather_raw_bytes = 0;
  std::string order;        // attention order tag seen on the layer span
};

struct DeviceRow {
  std::int64_t device = -1;
  Micros compute_us = 0;
  // Time inside "kernel"-category spans (the matmul GEMM kernels). Nested
  // within compute_us, not additional to it: the non-GEMM remainder of a
  // layer is compute_us - gemm_us.
  Micros gemm_us = 0;
  Micros comm_us = 0;
  std::int64_t bytes_sent = 0;
  std::size_t spans = 0;
};

// Steps aggregated by the batch size they ran at (the "batch" attr on
// "decode.step" spans; unannotated steps count as batch 1). Comparing
// step_us/steps and step_bytes/steps across rows shows how step latency
// and wire cost scale with occupancy — the continuous-batching win is
// visible as near-flat per-step cost while tokens-per-step grows.
struct DecodeBatchRow {
  std::int64_t batch = 1;
  std::size_t steps = 0;
  Micros step_us = 0;
  std::int64_t step_bytes = 0;
  std::size_t tokens = 0;    // committed tokens (see DecodeStats::tokens)
  std::size_t drafts = 0;    // drafts verified by these steps
  std::size_t accepted = 0;  // drafts accepted
};

// Aggregation of the decoding spans ("decode.prefill" / "decode.step",
// emitted by DistributedDecoder's terminal): step throughput and the wire
// cost per committed token. Speculative-era spans carry the committed-token
// count in the "tokens" attr (1 + accepted drafts per lane) plus the
// verified/accepted draft counts; pre-speculation traces lack the attrs, so
// `tokens` falls back to max(1, batch) per step and the acceptance columns
// stay unreported (drafts == 0).
struct DecodeStats {
  std::size_t prefills = 0;
  Micros prefill_us = 0;
  std::size_t steps = 0;          // batched decode iterations
  std::size_t tokens = 0;         // committed tokens
  std::size_t drafts = 0;         // draft tokens verified
  std::size_t accepted = 0;       // draft tokens accepted
  Micros step_us = 0;             // summed step durations
  std::int64_t step_bytes = 0;    // summed per-step wire bytes
  std::vector<DecodeBatchRow> by_batch;  // sorted by batch size

  [[nodiscard]] double tokens_per_second() const noexcept {
    return step_us > 0 ? static_cast<double>(tokens) * 1e6 /
                             static_cast<double>(step_us)
                       : 0.0;
  }
  [[nodiscard]] double bytes_per_token() const noexcept {
    return tokens > 0 ? static_cast<double>(step_bytes) /
                            static_cast<double>(tokens)
                      : 0.0;
  }
  // Committed tokens per verify step — > 1 when speculation is landing.
  [[nodiscard]] double tokens_per_step() const noexcept {
    return steps > 0 ? static_cast<double>(tokens) /
                           static_cast<double>(steps)
                     : 0.0;
  }
  // Accepted / verified drafts; 0 when the trace carries no draft data.
  [[nodiscard]] double acceptance_rate() const noexcept {
    return drafts > 0 ? static_cast<double>(accepted) /
                            static_cast<double>(drafts)
                      : 0.0;
  }
};

struct TraceReport {
  std::vector<LayerRow> layers;    // sorted by (layer, device)
  std::vector<DeviceRow> devices;  // sorted by device
  DecodeStats decode;
  Micros wall_us = 0;              // last end - first start
  std::size_t events = 0;
};

[[nodiscard]] TraceReport build_report(const LoadedTrace& trace);

// Fixed-width tables: per-layer/per-device compute + all-gather time and
// bytes, then per-device totals.
[[nodiscard]] std::string format_report(const TraceReport& report);

}  // namespace voltage::obs
