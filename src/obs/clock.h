// Monotonic microsecond clock shared by every trace producer.
//
// All spans stamp times from one steady-clock epoch (captured on first use),
// so events recorded by different threads and different Tracer instances
// land on a single comparable timeline — exactly what a Chrome trace needs.
#pragma once

#include <chrono>
#include <cstdint>

namespace voltage::obs {

// Microseconds on the shared steady timeline.
using Micros = std::int64_t;

// Now, in microseconds since the process trace epoch. Thread-safe.
[[nodiscard]] inline Micros now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

// One steady↔wall correspondence, captured once per process: the wall-clock
// (Unix epoch) time observed at a known point on the steady timeline. Trace
// timestamps are steady-clock microseconds, server logs are wall-clock —
// `wall_unix_us + (t - steady_us)` aligns the two, so an exported Perfetto
// trace can be matched line-for-line against log files.
struct ClockAnchor {
  Micros steady_us = 0;          // position on the now_us() timeline
  std::int64_t wall_unix_us = 0;  // system_clock at that same instant
};

// The process-wide anchor (captured on first use, typically at tracer
// start). Thread-safe; every call returns the same anchor.
[[nodiscard]] inline const ClockAnchor& clock_anchor() noexcept {
  static const ClockAnchor anchor = [] {
    ClockAnchor a;
    a.steady_us = now_us();
    a.wall_unix_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    return a;
  }();
  return anchor;
}

// Wall-clock Unix microseconds for a steady timestamp, via the anchor.
[[nodiscard]] inline std::int64_t to_wall_unix_us(Micros steady_us) noexcept {
  const ClockAnchor& a = clock_anchor();
  return a.wall_unix_us + (steady_us - a.steady_us);
}

}  // namespace voltage::obs
