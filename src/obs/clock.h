// Monotonic microsecond clock shared by every trace producer.
//
// All spans stamp times from one steady-clock epoch (captured on first use),
// so events recorded by different threads and different Tracer instances
// land on a single comparable timeline — exactly what a Chrome trace needs.
#pragma once

#include <chrono>
#include <cstdint>

namespace voltage::obs {

// Microseconds on the shared steady timeline.
using Micros = std::int64_t;

// Now, in microseconds since the process trace epoch. Thread-safe.
[[nodiscard]] inline Micros now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

}  // namespace voltage::obs
