#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace voltage::obs::json {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " +
                           std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return v;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::make_bool(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return Value::make_bool(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return Value::make_null();
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value::make_object(std::move(members));
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value::make_array(std::move(items));
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_, "bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the code point (BMP only; no surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_ ||
        start == pos_) {
      fail(start, "bad number");
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not a ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch("string");
  return string_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch("array");
  return array_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_mismatch("object");
  return object_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace voltage::obs::json
