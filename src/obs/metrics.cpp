#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/percentile.h"

namespace voltage::obs {

void Histogram::record(double value) {
  const std::lock_guard lock(mutex_);
  samples_.push_back(value);
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> samples;
  {
    const std::lock_guard lock(mutex_);
    samples = samples_;
  }
  HistogramSnapshot snap;
  snap.count = samples.size();
  if (samples.empty()) return snap;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double s : samples) sum += s;
  snap.min = samples.front();
  snap.max = samples.back();
  snap.mean = sum / static_cast<double>(samples.size());
  snap.p50 = nearest_rank(samples, 0.50);
  snap.p95 = nearest_rank(samples, 0.95);
  snap.p99 = nearest_rank(samples, 0.99);
  return snap;
}

void Histogram::reset() {
  const std::lock_guard lock(mutex_);
  samples_.clear();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  const std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const {
  std::vector<std::pair<std::string, const Histogram*>> refs;
  {
    const std::lock_guard lock(mutex_);
    refs.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      refs.emplace_back(name, histogram.get());
    }
  }
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(refs.size());
  for (const auto& [name, histogram] : refs) {
    out.emplace_back(name, histogram->snapshot());
  }
  return out;
}

std::string MetricsRegistry::report() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters()) {
    std::snprintf(line, sizeof(line), "%-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, snap] : histograms()) {
    std::snprintf(line, sizeof(line),
                  "%-36s count=%zu mean=%.6g p50=%.6g p95=%.6g p99=%.6g "
                  "max=%.6g\n",
                  name.c_str(), snap.count, snap.mean, snap.p50, snap.p95,
                  snap.p99, snap.max);
    out += line;
  }
  return out;
}

}  // namespace voltage::obs
