#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace voltage::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

thread_local Tracer* t_ambient_tracer = nullptr;
thread_local std::uint64_t t_ambient_trace_id = 0;

// JSON string escaping for the few fields that carry free-form text.
void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()) {}

Tracer::Buffer& Tracer::local_buffer() {
  // Each thread remembers the buffers it already owns, keyed by the
  // tracer's process-unique id (ids are never reused, so a stale entry for
  // a destroyed tracer can never be confused with a live one). The list is
  // tiny — almost always one entry — so a linear scan beats any map.
  thread_local std::vector<std::pair<std::uint64_t, Buffer*>> cache;
  for (const auto& [id, buffer] : cache) {
    if (id == id_) return *buffer;
  }
  auto owned = std::make_unique<Buffer>();
  Buffer* buffer = owned.get();
  {
    const std::lock_guard lock(mutex_);
    buffers_.push_back(std::move(owned));
  }
  cache.emplace_back(id_, buffer);
  return *buffer;
}

void Tracer::record(TraceEvent event) {
  Buffer& buffer = local_buffer();
  const std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Tracer::set_track_name(TrackId track, std::string name) {
  const std::lock_guard lock(mutex_);
  track_names_[track] = std::move(name);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> merged;
  {
    const std::lock_guard lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard buffer_lock(buffer->mutex);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return merged;
}

std::size_t Tracer::size() const {
  const std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::lock_guard buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

void Tracer::clear() {
  const std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> sorted = events();
  std::map<TrackId, std::string> track_names;
  {
    const std::lock_guard lock(mutex_);
    track_names = track_names_;
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  // Metadata first: Perfetto uses thread_name to label tracks, and the
  // clock_sync record carries the steady↔wall anchor so trace timestamps
  // can be aligned with server log wall-times.
  const ClockAnchor& anchor = clock_anchor();
  comma();
  out << "{\"name\":\"clock_sync\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      << "\"args\":{\"steady_us\":" << anchor.steady_us
      << ",\"wall_unix_us\":" << anchor.wall_unix_us << "}}";
  for (const auto& [track, name] : track_names) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << track << ",\"args\":{\"name\":";
    write_escaped(out, name);
    out << "}}";
  }
  for (const TraceEvent& e : sorted) {
    comma();
    out << "{\"name\":";
    write_escaped(out, e.name);
    out << ",\"cat\":";
    write_escaped(out, e.category);
    if (e.phase == EventPhase::kComplete) {
      out << ",\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":"
          << e.duration_us;
    } else {
      // Flow endpoints: "s" starts the arrow at the sender, "f" with
      // bp:"e" ends it at the receiver bound to the enclosing slice.
      out << ",\"ph\":\"" << (e.phase == EventPhase::kFlowStart ? 's' : 'f')
          << "\"";
      if (e.phase == EventPhase::kFlowEnd) out << ",\"bp\":\"e\"";
      out << ",\"id\":" << e.flow_id << ",\"ts\":" << e.start_us;
    }
    out << ",\"pid\":1,\"tid\":" << e.track << ",\"args\":{";
    bool first_arg = true;
    const auto arg_comma = [&] {
      if (!first_arg) out << ",";
      first_arg = false;
    };
    if (e.device >= 0) {
      arg_comma();
      out << "\"device\":" << e.device;
    }
    if (e.layer >= 0) {
      arg_comma();
      out << "\"layer\":" << e.layer;
    }
    if (e.bytes >= 0) {
      arg_comma();
      out << "\"bytes\":" << e.bytes;
    }
    if (e.raw_bytes >= 0) {
      arg_comma();
      out << "\"raw_bytes\":" << e.raw_bytes;
    }
    if (e.request >= 0) {
      arg_comma();
      out << "\"request\":" << e.request;
    }
    if (e.batch >= 0) {
      arg_comma();
      out << "\"batch\":" << e.batch;
    }
    if (e.tokens >= 0) {
      arg_comma();
      out << "\"tokens\":" << e.tokens;
    }
    if (e.drafts >= 0) {
      arg_comma();
      out << "\"drafts\":" << e.drafts;
    }
    if (e.accepted >= 0) {
      arg_comma();
      out << "\"accepted\":" << e.accepted;
    }
    if (e.trace >= 0) {
      arg_comma();
      out << "\"trace\":" << e.trace;
    }
    if (!e.tag.empty()) {
      arg_comma();
      out << "\"tag\":";
      write_escaped(out, e.tag);
    }
    out << "}}";
  }
  out << "]}";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Tracer: cannot open trace file " + path);
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("Tracer: failed writing trace file " + path);
  }
}

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t thread_trace_id() noexcept { return t_ambient_trace_id; }

std::uint64_t ensure_trace_id() noexcept {
  const std::uint64_t ambient = t_ambient_trace_id;
  return ambient != 0 ? ambient : next_trace_id();
}

void adopt_thread_trace_id(std::uint64_t id) noexcept {
  if (id != 0) t_ambient_trace_id = id;
}

TraceIdScope::TraceIdScope(std::uint64_t id) noexcept
    : previous_(t_ambient_trace_id) {
  t_ambient_trace_id = id;
}

TraceIdScope::~TraceIdScope() { t_ambient_trace_id = previous_; }

void record_flow(Tracer* tracer, EventPhase phase, std::uint64_t flow_id,
                 TrackId track, std::uint64_t trace_id) {
  if (tracer == nullptr) return;
  TraceEvent event;
  event.name = "msg";
  event.category = "flow";
  event.track = track;
  event.start_us = now_us();
  event.trace = static_cast<std::int64_t>(trace_id);
  event.phase = phase;
  event.flow_id = flow_id;
  tracer->record(std::move(event));
}

Tracer* thread_tracer() noexcept { return t_ambient_tracer; }

ThreadTracerScope::ThreadTracerScope(Tracer* tracer) noexcept
    : previous_(t_ambient_tracer) {
  t_ambient_tracer = tracer;
}

ThreadTracerScope::~ThreadTracerScope() { t_ambient_tracer = previous_; }

namespace {
thread_local TrackId t_ambient_track = 0;
thread_local std::int64_t t_ambient_layer = -1;
}  // namespace

TrackId thread_track() noexcept { return t_ambient_track; }

ThreadTrackScope::ThreadTrackScope(TrackId track) noexcept
    : previous_(t_ambient_track) {
  t_ambient_track = track;
}

ThreadTrackScope::~ThreadTrackScope() { t_ambient_track = previous_; }

std::int64_t thread_layer() noexcept { return t_ambient_layer; }

ThreadLayerScope::ThreadLayerScope(std::int64_t layer) noexcept
    : previous_(t_ambient_layer) {
  t_ambient_layer = layer;
}

ThreadLayerScope::~ThreadLayerScope() { t_ambient_layer = previous_; }

}  // namespace voltage::obs
