// Nearest-rank percentile, the one quantile convention of the repo.
//
// PR 4 standardized serve's LatencyStats and obs::Histogram::snapshot on
// nearest-rank (rank ceil(q*n), 1-based): the smallest sample such that at
// least a fraction q of the distribution is at or below it. This header is
// the single implementation all of them — and the serving simulator — call,
// so identical samples yield bit-identical percentiles everywhere.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace voltage::obs {

// `sorted` must be ascending and non-empty; q in [0, 1].
[[nodiscard]] inline double nearest_rank(const std::vector<double>& sorted,
                                         double q) {
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto idx = static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace voltage::obs
