// Span tracer with Chrome-trace-event export (Perfetto / chrome://tracing).
//
// Design constraints, in order:
//   1. Off by default, near-zero cost when off. Instrumentation sites hold a
//      `Tracer*` that is null unless the user attached one; a TraceSpan built
//      from a null tracer reads no clock, takes no lock and allocates
//      nothing — it is a branch.
//   2. Lock-cheap when on. Each thread appends to its own buffer; the only
//      mutex a span ever touches is that buffer's own (contended only by a
//      concurrent snapshot/export, never by other producer threads).
//   3. One timeline. All timestamps come from obs::now_us(), so spans from
//      the K device threads, the terminal and the server dispatcher sort
//      into a single coherent trace.
//
// Producers either hold an explicit Tracer* (VoltageRuntime,
// InferenceServer) or read the ambient per-thread tracer (collectives and
// partitioned kernels, whose signatures stay collective-shaped); the runtime
// installs the ambient tracer on each device thread via ThreadTracerScope.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace voltage::obs {

// Chrome "tid" of a span. Device threads use their DeviceId, the terminal
// uses K, and the serving plane uses kServeTrack.
using TrackId = std::uint32_t;

inline constexpr TrackId kServeTrack = 9000;

// What kind of trace-event record this is. Spans are complete ("X") events;
// flow start/end pairs are the Perfetto arrows that connect a send on one
// track to the matching receive on another.
enum class EventPhase : std::uint8_t {
  kComplete,   // ph:"X" — a span with a duration
  kFlowStart,  // ph:"s" — message left the sender (binds to enclosing slice)
  kFlowEnd,    // ph:"f" — message consumed by the receiver
};

// One completed span. `name` and `category` must be string literals (or
// otherwise outlive the tracer) — spans never copy them.
struct TraceEvent {
  const char* name = "";
  const char* category = "";  // "compute" | "comm" | "serve"
  TrackId track = 0;
  Micros start_us = 0;
  Micros duration_us = 0;
  // Optional attributes; negative means "not set".
  std::int64_t device = -1;
  std::int64_t layer = -1;
  std::int64_t bytes = -1;
  // What the same transfer would have cost at fp32 — set by comm spans
  // whose payloads travel through the quantized wire codec, so reports can
  // show encoded vs fp32-equivalent volume side by side.
  std::int64_t raw_bytes = -1;
  std::int64_t request = -1;
  // In-flight requests covered by this span: the batch size of a batched
  // decode step ("decode.step" spans and the worker-side compute spans under
  // them). -1 on spans that serve a single sequence, so reports can count
  // generated tokens as max(1, batch) per step.
  std::int64_t batch = -1;
  // Speculative-decode accounting on "decode.step" spans: tokens the step
  // committed (1 + accepted drafts per lane), drafts it verified and drafts
  // it accepted. -1 on pre-speculation traces, so reports fall back to the
  // max(1, batch) committed-token estimate and omit acceptance columns.
  std::int64_t tokens = -1;
  std::int64_t drafts = -1;
  std::int64_t accepted = -1;
  // Request-scoped trace id (see next_trace_id); -1 means "not set". Spans
  // stamp it automatically from the ambient thread trace id.
  std::int64_t trace = -1;
  EventPhase phase = EventPhase::kComplete;
  // Flow binding id; meaningful only for kFlowStart/kFlowEnd. A start/end
  // pair with the same id renders as one arrow.
  std::uint64_t flow_id = 0;
  std::string tag;  // free-form, e.g. the attention order Theorem 2 chose
};

// Thread-safe span sink. record() appends to a per-thread buffer created on
// the calling thread's first use; events()/export merge and sort all
// buffers.
class Tracer {
 public:
  Tracer();
  ~Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Appends one finished event (called by ~TraceSpan; usable directly for
  // retroactive spans such as queue-wait, whose start predates the call).
  void record(TraceEvent event);

  // Human-readable label for a track, shown by Perfetto ("device 0",
  // "terminal", "server").
  void set_track_name(TrackId track, std::string name);

  // Merged snapshot of every thread's events, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Total events recorded so far.
  [[nodiscard]] std::size_t size() const;

  // Chrome trace-event JSON: {"traceEvents":[...]} with complete ("X")
  // events sorted by timestamp plus thread_name metadata. Load it at
  // https://ui.perfetto.dev or chrome://tracing.
  void write_chrome_trace(std::ostream& out) const;

  // Convenience: write_chrome_trace to `path`; throws std::runtime_error on
  // I/O failure.
  void write_chrome_trace_file(const std::string& path) const;

  // Drops all recorded events (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  const std::uint64_t id_;  // process-unique, never reused
  mutable std::mutex mutex_;  // guards buffers_ (the list) and track_names_
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<TrackId, std::string> track_names_;
};

// --- Request trace context -------------------------------------------------
//
// A trace id names one causally-connected unit of work — one inference
// request — across every thread and device that touches it. The originator
// (runtime infer(), decoder prime()/step(), server dispatch) installs a
// TraceIdScope; transports stamp the ambient id onto outgoing messages and
// receivers adopt the id of whatever message they consume, so the context
// follows the data through gathers, broadcasts and softmax merges without
// widening any signature.

// A fresh process-unique trace id (never 0; 0 means "no context").
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

// Ambient trace id of the calling thread (0 = none).
[[nodiscard]] std::uint64_t thread_trace_id() noexcept;

// The ambient id if one is set, else a fresh one — what a request
// originator wants: respect an enclosing context, mint one otherwise.
[[nodiscard]] std::uint64_t ensure_trace_id() noexcept;

// Overwrites the calling thread's ambient trace id (receivers adopting the
// context of a consumed message). Id 0 is ignored — an untraced message
// must not erase a live context.
void adopt_thread_trace_id(std::uint64_t id) noexcept;

// Installs `id` as the ambient trace id for the scope's lifetime.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id) noexcept;
  ~TraceIdScope();

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t previous_;
};

// Records a flow endpoint ("s" on the sender, "f" on the receiver) on
// `track` at the current time. No-op with a null tracer. The event binds to
// whatever slice encloses its timestamp on that track, which is what makes
// Perfetto draw the send→recv arrow between device tracks.
void record_flow(Tracer* tracer, EventPhase phase, std::uint64_t flow_id,
                 TrackId track, std::uint64_t trace_id);

// RAII span. Construction stamps the start, destruction stamps the duration
// and records the event. With a null tracer every member is a no-op.
class TraceSpan {
 public:
  TraceSpan() noexcept = default;

  TraceSpan(Tracer* tracer, const char* name, const char* category,
            TrackId track) noexcept {
    if (tracer == nullptr) return;
    tracer_ = tracer;
    event_.name = name;
    event_.category = category;
    event_.track = track;
    if (const std::uint64_t id = thread_trace_id(); id != 0) {
      event_.trace = static_cast<std::int64_t>(id);
    }
    event_.start_us = now_us();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  [[nodiscard]] bool enabled() const noexcept { return tracer_ != nullptr; }

  // Attribute setters; no-ops (no allocation) when disabled.
  TraceSpan& device(std::int64_t d) noexcept {
    if (tracer_ != nullptr) event_.device = d;
    return *this;
  }
  TraceSpan& layer(std::int64_t l) noexcept {
    if (tracer_ != nullptr) event_.layer = l;
    return *this;
  }
  TraceSpan& bytes(std::int64_t b) noexcept {
    if (tracer_ != nullptr) event_.bytes = b;
    return *this;
  }
  TraceSpan& raw_bytes(std::int64_t b) noexcept {
    if (tracer_ != nullptr) event_.raw_bytes = b;
    return *this;
  }
  TraceSpan& request(std::int64_t r) noexcept {
    if (tracer_ != nullptr) event_.request = r;
    return *this;
  }
  TraceSpan& batch(std::int64_t b) noexcept {
    if (tracer_ != nullptr) event_.batch = b;
    return *this;
  }
  TraceSpan& tokens(std::int64_t t) noexcept {
    if (tracer_ != nullptr) event_.tokens = t;
    return *this;
  }
  TraceSpan& drafts(std::int64_t d) noexcept {
    if (tracer_ != nullptr) event_.drafts = d;
    return *this;
  }
  TraceSpan& accepted(std::int64_t a) noexcept {
    if (tracer_ != nullptr) event_.accepted = a;
    return *this;
  }
  TraceSpan& tag(const char* t) {
    if (tracer_ != nullptr) event_.tag = t;
    return *this;
  }
  TraceSpan& tag(std::string t) {
    if (tracer_ != nullptr) event_.tag = std::move(t);
    return *this;
  }

  // Ends the span now (idempotent; the destructor calls it).
  void finish() {
    if (tracer_ == nullptr) return;
    event_.duration_us = now_us() - event_.start_us;
    tracer_->record(std::move(event_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

// Ambient tracer of the calling thread (null unless a ThreadTracerScope is
// live). Read by instrumentation that cannot carry a Tracer* through its
// signature — the collectives and the partitioned layer kernels.
[[nodiscard]] Tracer* thread_tracer() noexcept;

// Installs `tracer` (may be null) as the calling thread's ambient tracer for
// the scope's lifetime; restores the previous one on exit.
class ThreadTracerScope {
 public:
  explicit ThreadTracerScope(Tracer* tracer) noexcept;
  ~ThreadTracerScope();

  ThreadTracerScope(const ThreadTracerScope&) = delete;
  ThreadTracerScope& operator=(const ThreadTracerScope&) = delete;

 private:
  Tracer* previous_;
};

// Ambient track of the calling thread (0 by default). The runtime pins each
// device thread's spans to its device id so nested instrumentation (kernels,
// collectives) lands on the right Perfetto row.
[[nodiscard]] TrackId thread_track() noexcept;

class ThreadTrackScope {
 public:
  explicit ThreadTrackScope(TrackId track) noexcept;
  ~ThreadTrackScope();

  ThreadTrackScope(const ThreadTrackScope&) = delete;
  ThreadTrackScope& operator=(const ThreadTrackScope&) = delete;

 private:
  TrackId previous_;
};

// Ambient layer index of the calling thread (-1 outside any layer). The
// runtime sets it around each layer so spans emitted below it — the
// collectives' all-gather, the partitioned kernels — can attribute
// themselves to the layer they serve without widening every signature.
[[nodiscard]] std::int64_t thread_layer() noexcept;

class ThreadLayerScope {
 public:
  explicit ThreadLayerScope(std::int64_t layer) noexcept;
  ~ThreadLayerScope();

  ThreadLayerScope(const ThreadLayerScope&) = delete;
  ThreadLayerScope& operator=(const ThreadLayerScope&) = delete;

 private:
  std::int64_t previous_;
};

}  // namespace voltage::obs
