// Critical-path attribution over a loaded trace: where did each token's
// latency actually go?
//
// The paper's model (Eq. 3 / Theorem 2) splits a distributed layer into a
// compute term and a (K-1)NF/K wire term; a real mesh adds a third bucket
// the model hides — waiting for the straggler. This pass reconstructs all
// three from a causally-connected trace (spans + the flow events the
// transports emit, see net/message.h):
//
//   compute — time covered by "compute"-category spans (minus any comm
//             nested inside them);
//   wire    — time inside "comm"-category spans actually spent moving or
//             copying bytes;
//   wait    — the rest: blocked inside a comm span before the last sender
//             had even sent (straggler skew, measured from the matched
//             flow-start timestamps), plus idle time outside any span.
//
// The decomposition is exact by construction: per window and device,
// compute + wire + wait == the window's wall time.
//
// Windows are the decoder's per-token spans ("decode.prefill" /
// "decode.step") when present, else the server's "service" spans, else the
// whole trace as one window. Straggler identification per collective round
// comes from grouping same-(name, layer) comm spans across devices and
// comparing their entry times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.h"

namespace voltage::obs {

// One device's share of one window.
struct DeviceSlice {
  std::int64_t track = -1;
  std::int64_t device = -1;  // device attr when spans carry one, else track
  Micros compute_us = 0;
  Micros wire_us = 0;
  Micros wait_us = 0;  // straggler-blocked + idle

  [[nodiscard]] Micros total_us() const noexcept {
    return compute_us + wire_us + wait_us;
  }
};

// One attribution window: a prefill, one decode step, one served request,
// or the whole trace.
struct WindowAttribution {
  std::string label;       // "prefill" | "step" | "service" | "trace"
  std::int64_t index = -1;  // the span's request attr (token position), -1
  std::int64_t trace_id = -1;
  // Requests served by this window (the span's batch attr): a batched
  // decode step advanced this many lanes in one wall-clock window. -1 when
  // the span carries no batch annotation.
  std::int64_t batch = -1;
  // Tokens this window committed (the span's tokens attr): > batch when a
  // speculative verify round accepted drafts, so per-token cost is the
  // decomposition below divided by tokens. -1 on pre-speculation traces
  // (then one token per lane). `accepted` is the window's accepted-draft
  // count (-1 when unannotated).
  std::int64_t tokens = -1;
  std::int64_t accepted = -1;
  Micros start_us = 0;
  Micros wall_us = 0;
  std::vector<DeviceSlice> devices;  // sorted by track
  std::int64_t straggler_track = -1;  // max wait_us in this window
};

// Per-(layer, device) decomposition of the prefill windows — the paper's
// per-layer Eq. 3 terms, measured. No idle bucket here: wait is only the
// straggler-blocked part of the layer's own collectives.
struct LayerPath {
  std::int64_t layer = -1;
  std::int64_t track = -1;
  std::int64_t device = -1;
  Micros compute_us = 0;
  Micros wire_us = 0;
  Micros wait_us = 0;
};

// One collective "round" = the same-(name, layer) comm spans across
// devices, aggregated over all windows they appear in. The straggler is
// the device that reached the collective last (largest entry time) most
// often; the spread is the entry-time skew it caused.
struct CollectiveRound {
  std::string name;
  std::int64_t layer = -1;
  std::size_t rounds = 0;           // occurrences (e.g. one per decode step)
  std::int64_t straggler_track = -1;
  std::size_t straggler_count = 0;  // rounds in which that track was last
  Micros max_spread_us = 0;
  Micros total_spread_us = 0;
};

struct CriticalPathReport {
  std::vector<WindowAttribution> windows;
  std::vector<LayerPath> layers;         // prefill only; (layer, track) order
  std::vector<CollectiveRound> rounds;   // (name, layer) order
  std::vector<DeviceSlice> device_totals;  // summed across windows

  Micros compute_us = 0;  // grand totals
  Micros wire_us = 0;
  Micros wait_us = 0;

  // The Theorem-2-relevant communication fraction: wire / (compute + wire
  // + wait). `wait_fraction` is the straggler/idle analogue.
  [[nodiscard]] double comm_fraction() const noexcept {
    const double total =
        static_cast<double>(compute_us + wire_us + wait_us);
    return total > 0.0 ? static_cast<double>(wire_us) / total : 0.0;
  }
  [[nodiscard]] double wait_fraction() const noexcept {
    const double total =
        static_cast<double>(compute_us + wire_us + wait_us);
    return total > 0.0 ? static_cast<double>(wait_us) / total : 0.0;
  }
};

[[nodiscard]] CriticalPathReport analyze_critical_path(
    const LoadedTrace& trace);

// Fixed-width tables: totals, per-device totals, per-window rows, prefill
// per-layer rows, straggler rounds.
[[nodiscard]] std::string format_critical_path(
    const CriticalPathReport& report);

}  // namespace voltage::obs
