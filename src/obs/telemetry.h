// Live telemetry plane: rolling windowed rates and a crash flight recorder.
//
// The Tracer answers "what happened, in full detail, after the fact"; the
// TelemetryHub answers "what is happening right now, cheaply, forever". It
// keeps a short history of cumulative-counter samples and derives
// time-windowed rates (tokens/s, wire bytes/s) plus instantaneous gauges
// (queue depth) and per-device utilization, and serializes snapshots as
// JSONL (one object per sample, append-friendly) and as the Prometheus text
// exposition format (textfile-collector friendly).
//
// The FlightRecorder is the companion for failures: a fixed-size ring of
// the last N transport events that a poisoned transport dumps together with
// its close reason, so a containment event (PR 4) arrives with the message
// history that led up to it instead of a bare error string.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

namespace voltage::obs {

// --- FlightRecorder --------------------------------------------------------

class FlightRecorder {
 public:
  enum class Kind : std::uint8_t { kSend, kRecv, kNote };

  struct Entry {
    Micros us = 0;
    Kind kind = Kind::kNote;
    std::uint64_t source = 0;
    std::uint64_t destination = 0;
    std::uint64_t tag = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t bytes = 0;
  };

  // `auto_dump` (may be null) is where auto_dump() writes — typically
  // &std::cerr in production, an ostringstream in tests.
  explicit FlightRecorder(std::size_t capacity = 256,
                          std::ostream* auto_dump = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one entry, overwriting the oldest once full. Thread-safe and
  // cheap: one mutex, no allocation after construction.
  void note(Entry entry);
  void note_send(std::uint64_t source, std::uint64_t destination,
                 std::uint64_t tag, std::uint64_t trace_id,
                 std::uint64_t bytes);
  void note_recv(std::uint64_t source, std::uint64_t destination,
                 std::uint64_t tag, std::uint64_t trace_id,
                 std::uint64_t bytes);

  // Oldest-first copy of the ring.
  [[nodiscard]] std::vector<Entry> entries() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Empties the ring (per-request use: clear at request start so a dump
  // shows only the doomed request's history).
  void clear();

  // Writes `reason` and the ring, oldest first, one line per entry.
  void dump(std::ostream& out, std::string_view reason) const;

  // dump() to the stream configured at construction (or via
  // set_auto_dump); no-op when none is set. Called by Transport::close.
  void auto_dump(std::string_view reason) const;

  void set_auto_dump(std::ostream* out);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Entry> ring_;
  std::size_t next_ = 0;   // ring insertion cursor
  std::size_t count_ = 0;  // min(total notes, capacity)
  std::ostream* auto_dump_ = nullptr;
};

// --- TelemetryHub ----------------------------------------------------------

class TelemetryHub {
 public:
  // `window_seconds` is the width of the rolling window rates are computed
  // over: rate = Δcounter / Δt between the newest sample and the oldest one
  // still inside the window.
  explicit TelemetryHub(double window_seconds = 10.0);

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  // A windowed rate: `cumulative` is sampled at every sample() call and the
  // exported value is its growth per second over the window. The callable
  // must be thread-safe and monotone non-decreasing (counter semantics).
  // Exported under "<name>_per_s".
  void register_rate(std::string name, std::function<double()> cumulative);

  // An instantaneous value, read at sample() time. Exported under `name`.
  void register_gauge(std::string name, std::function<double()> value);

  // Removes every rate and gauge registered under `name` (no-op when none
  // is). Registrants whose callables capture shorter-lived objects (the
  // server's counters, say) MUST unregister before those objects die — the
  // hub may well outlive them and be sampled again.
  void unregister(std::string_view name);

  // Utilization accounting: device threads report busy time (time spent
  // serving a command, including collective waits — as opposed to idle
  // between requests). Exported as "device<N>_utilization" in [0, 1],
  // computed as Δbusy/Δt over the window. Thread-safe, lock-free-ish (one
  // mutex shared with sample(); calls are per-command, not per-message).
  void add_device_busy(std::size_t device, Micros busy_us);

  struct Snapshot {
    Micros steady_us = 0;            // sample time on the trace timeline
    std::int64_t wall_unix_us = 0;   // same instant, wall clock
    // Name → value, registration order (rates first, then utilization,
    // then gauges).
    std::vector<std::pair<std::string, double>> values;
  };

  // Takes one sample: reads every cumulative counter and gauge, advances
  // the rolling window, returns the derived snapshot. The first sample has
  // no window yet — rates are 0 until a second sample exists.
  [[nodiscard]] Snapshot sample();

  // One JSON object on one line: {"wall_unix_us":..,"steady_us":..,"k":v,..}
  static void write_jsonl(const Snapshot& snapshot, std::ostream& out);

  // Prometheus text exposition format: one "# TYPE <name> gauge" + value
  // line per entry, names sanitized to [a-zA-Z0-9_:]. Overwrite-in-place
  // (textfile collector style), not append.
  static void write_prometheus(const Snapshot& snapshot, std::ostream& out);

 private:
  struct Series {
    std::string name;
    std::function<double()> read;
    // (sample time, cumulative value) history inside the window.
    std::deque<std::pair<Micros, double>> history;
  };

  [[nodiscard]] static double windowed_rate(const Series& series);

  const Micros window_us_;
  mutable std::mutex mutex_;
  std::vector<Series> rates_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  // Per-device cumulative busy time; a Series is lazily created per device
  // so utilization reuses the windowed-rate machinery.
  std::vector<Series> device_busy_;
  std::vector<double> device_busy_totals_;
};

}  // namespace voltage::obs
