// Messages exchanged over the in-process fabric. Payloads are raw bytes —
// tensors go through tensor/serialize.h — so measured traffic equals what a
// socket implementation would put on the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace voltage {

using DeviceId = std::size_t;

// Tags namespace the per-layer collectives so messages from adjacent
// phases can never be confused.
using MessageTag = std::uint64_t;

struct Message {
  DeviceId source = 0;
  DeviceId destination = 0;
  MessageTag tag = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return payload.size();
  }
};

}  // namespace voltage
