// Messages exchanged over the in-process fabric. Payloads are wire bytes —
// tensors go through tensor/serialize.h — so measured traffic equals what a
// socket implementation would put on the wire.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace voltage {

using DeviceId = std::size_t;

// Tags namespace the per-layer collectives so messages from adjacent
// phases can never be confused.
using MessageTag = std::uint64_t;

// Payload of a fabric message. Two representations behind one interface:
//
//   - owned: a flat byte vector — the general case (and the only shape a
//     socket receiver can produce);
//   - view: a small inline header plus a non-owning span of the sender's
//     row storage, pinned by a keep-alive handle. Large activations are
//     sent by borrowing the tensor's memory instead of serializing it into
//     a fresh buffer, so the in-memory Fabric moves zero payload bytes on
//     send and the SocketFabric writes straight from the tensor.
//
// Both representations expose the same wire bytes as head() followed by
// body() (body is empty for owned payloads), and size() is always the exact
// on-the-wire byte count, so traffic accounting is representation-blind.
class Payload {
 public:
  // Enough for the tensor wire header (2 × u64); see tensor/serialize.h.
  static constexpr std::size_t kInlineHeaderCapacity = 16;

  Payload() = default;
  // Implicit so `.payload = to_bytes(t)` and byte-vector literals keep
  // working unchanged.
  Payload(std::vector<std::byte> bytes)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(bytes)) {}

  // Borrowing payload: `header_len` leading bytes stored inline, then
  // `body` read from the caller's memory at transmit/consume time.
  // `keep_alive` must pin whatever `body` points into for at least as long
  // as any copy of this payload (messages travel and sit in mailboxes —
  // pass real ownership, not a raw borrow, unless an outside protocol
  // guarantees the storage outlives consumption).
  [[nodiscard]] static Payload view(
      std::array<std::byte, kInlineHeaderCapacity> header,
      std::size_t header_len, std::span<const std::byte> body,
      std::shared_ptr<const void> keep_alive) {
    assert(header_len > 0 && header_len <= kInlineHeaderCapacity);
    Payload p;
    p.header_ = header;
    p.header_len_ = header_len;
    p.body_ = body;
    p.keep_alive_ = std::move(keep_alive);
    return p;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return header_len_ > 0 ? header_len_ + body_.size() : owned_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  // First wire chunk: the whole buffer of an owned payload, the inline
  // header of a view.
  [[nodiscard]] std::span<const std::byte> head() const noexcept {
    return header_len_ > 0
               ? std::span<const std::byte>(header_.data(), header_len_)
               : std::span<const std::byte>(owned_);
  }
  // Second wire chunk: the borrowed storage of a view; empty when owned.
  [[nodiscard]] std::span<const std::byte> body() const noexcept {
    return body_;
  }

  [[nodiscard]] std::byte operator[](std::size_t i) const noexcept {
    const auto h = head();
    return i < h.size() ? h[i] : body_[i - h.size()];
  }

  // Flat owned copy of the wire bytes (head ++ body).
  [[nodiscard]] std::vector<std::byte> flatten() const {
    std::vector<std::byte> out(size());
    copy_to(out.data());
    return out;
  }

  void copy_to(std::byte* dst) const {
    const auto h = head();
    if (!h.empty()) std::memcpy(dst, h.data(), h.size());
    if (!body_.empty()) std::memcpy(dst + h.size(), body_.data(), body_.size());
  }

 private:
  std::vector<std::byte> owned_;
  std::array<std::byte, kInlineHeaderCapacity> header_{};
  std::size_t header_len_ = 0;  // 0 → owned representation
  std::span<const std::byte> body_;
  std::shared_ptr<const void> keep_alive_;
};

// Per-message framing overhead: the socket fabric prefixes every payload
// with a fixed frame header (source, tag, trace_id, seq, length — 5 × u64).
// The in-memory Fabric charges the same framing so traffic accounting is
// transport-blind and tests measure true wire cost, not just body bytes.
inline constexpr std::size_t kWireFrameBytes = 5 * sizeof(std::uint64_t);

struct Message {
  DeviceId source = 0;
  DeviceId destination = 0;
  MessageTag tag = 0;
  // Trace context, stamped by the transport on send (see obs/trace.h): the
  // request-scoped trace id this message belongs to (0 = untraced) and a
  // per-sender sequence number (0 = unassigned; transports assign 1, 2, …).
  // Together with the sender they name the message uniquely, which is what
  // a Perfetto flow arrow needs to connect the send to the recv.
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;
  Payload payload;

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return payload.size();
  }

  // Payload plus framing — what the message actually costs on the wire.
  // Transport stats and comm-span byte counts use this.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return kWireFrameBytes + payload.size();
  }
};

}  // namespace voltage
