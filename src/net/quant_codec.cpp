#include "net/quant_codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/serialize.h"

namespace voltage {

Payload quantized_payload(const Tensor& t) {
  const std::size_t rows = t.rows();
  const std::size_t cols = t.cols();
  // One owned body buffer shared by every copy of the payload: scales
  // first, then the int8 rows. The header lives inline in the Payload.
  auto body = std::make_shared<std::vector<std::byte>>(rows * sizeof(float) +
                                                       rows * cols);
  std::byte* scales = body->data();
  auto* q = reinterpret_cast<std::int8_t*>(body->data() + rows * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * cols;
    float absmax = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      absmax = std::max(absmax, std::fabs(row[c]));
    }
    // Same policy as quant/quantized_tensor.cpp: zero rows quantize
    // exactly with a unit scale; otherwise absmax maps to 127 and values
    // clamp symmetrically (never -128).
    const float scale = absmax == 0.0F ? 1.0F : absmax / 127.0F;
    std::memcpy(scales + r * sizeof(float), &scale, sizeof(float));
    std::int8_t* out = q + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      // Round half away from zero via truncation — same libm-free
      // expression as quant/quantized_tensor.cpp's quantize_value, so the
      // wire and compute planes quantize bit-identically.
      const float t = row[c] / scale;
      const float v = static_cast<float>(
          static_cast<std::int32_t>(t + std::copysign(0.5F, t)));
      out[c] = static_cast<std::int8_t>(std::clamp(v, -127.0F, 127.0F));
    }
  }
  std::array<std::byte, Payload::kInlineHeaderCapacity> header{};
  const std::uint64_t wire_rows = rows;
  const std::uint64_t wire_cols = static_cast<std::uint64_t>(cols) |
                                  kQuantColsFlag;
  std::memcpy(header.data(), &wire_rows, sizeof(wire_rows));
  std::memcpy(header.data() + sizeof(wire_rows), &wire_cols,
              sizeof(wire_cols));
  const std::span<const std::byte> view(body->data(), body->size());
  return Payload::view(header, kTensorWireHeaderBytes, view, std::move(body));
}

}  // namespace voltage
