#include "net/chaos.h"

#include <chrono>
#include <exception>
#include <utility>

#include "obs/trace.h"

namespace voltage {

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               ChaosOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  courier_ = std::thread([this] { courier_loop(); });
}

ChaosTransport::~ChaosTransport() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  pending_cv_.notify_all();
  if (courier_.joinable()) courier_.join();
}

void ChaosTransport::send(Message message) {
  // Stamp the trace context here, on the sending thread: the courier that
  // performs the inner send later runs with no ambient request context.
  if (message.trace_id == 0) message.trace_id = obs::thread_trace_id();
  if (inner_->closed()) {
    // Fail fast instead of queueing onto a poisoned mesh; the inner send
    // throws TransportClosedError carrying the close reason.
    inner_->send(std::move(message));
    return;
  }
  double delay = 0.0;
  bool duplicate = false;
  {
    const std::lock_guard lock(mutex_);
    if (options_.crash.has_value() &&
        message.source == options_.crash->device) {
      if (crash_device_sends_ >= options_.crash->after_sends) {
        stats_.crashed_sends += 1;
        throw TransportClosedError(
            "ChaosTransport: device " + std::to_string(message.source) +
            " crashed after " + std::to_string(crash_device_sends_) +
            " sends");
      }
      crash_device_sends_ += 1;
    }
    if (options_.drop_probability > 0.0 &&
        rng_.next_uniform() < options_.drop_probability) {
      stats_.dropped += 1;
      return;  // silently lost; only a recv deadline can notice
    }
    delay = options_.max_delay_seconds * rng_.next_uniform();
    duplicate = options_.duplicate_probability > 0.0 &&
                rng_.next_uniform() < options_.duplicate_probability;
    const auto due =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(delay));
    if (duplicate) {
      stats_.duplicated += 1;
      pending_.push(Pending{.due = due, .seq = next_seq_++, .message = message});
    }
    pending_.push(
        Pending{.due = due, .seq = next_seq_++, .message = std::move(message)});
  }
  pending_cv_.notify_one();
}

void ChaosTransport::courier_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) return;
      pending_cv_.wait(lock);
      continue;
    }
    // Once the transport is stopping, residual delays are meaningless —
    // drain everything immediately so teardown stays prompt.
    if (!stopping_ && pending_.top().due > std::chrono::steady_clock::now()) {
      pending_cv_.wait_until(lock, pending_.top().due);
      continue;
    }
    Message message = std::move(const_cast<Pending&>(pending_.top()).message);
    pending_.pop();
    lock.unlock();
    std::exception_ptr error;
    try {
      inner_->send(std::move(message));
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error == nullptr) {
      stats_.delivered += 1;
    } else {
      // Record instead of letting the exception escape the courier thread
      // (which would std::terminate): a delivery onto a poisoned or torn-
      // down transport is an expected fault, not a crash.
      stats_.delivery_errors += 1;
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        last_error_ = e.what();
      } catch (...) {
        last_error_ = "unknown delivery error";
      }
    }
  }
}

ChaosStats ChaosTransport::chaos_stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::string ChaosTransport::last_delivery_error() const {
  const std::lock_guard lock(mutex_);
  return last_error_;
}

}  // namespace voltage
