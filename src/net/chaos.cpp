#include "net/chaos.h"

#include <chrono>

namespace voltage {

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               ChaosOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

ChaosTransport::~ChaosTransport() {
  std::vector<std::thread> pending;
  {
    const std::lock_guard lock(mutex_);
    pending.swap(couriers_);
  }
  for (std::thread& t : pending) t.join();
}

void ChaosTransport::send(Message message) {
  double delay = 0.0;
  {
    const std::lock_guard lock(mutex_);
    delay = options_.max_delay_seconds * rng_.next_uniform();
  }
  std::thread courier([this, delay, msg = std::move(message)]() mutable {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    inner_->send(std::move(msg));
  });
  const std::lock_guard lock(mutex_);
  couriers_.push_back(std::move(courier));
}

}  // namespace voltage
