// Transport abstraction for the device mesh.
//
// Two implementations ship: the in-memory Fabric (deterministic, zero-copy,
// used by tests and fast benchmarks) and the SocketFabric (a full mesh of
// real kernel sockets — what an actual edge deployment would look like on
// one host). Collectives and runtimes are written against this interface,
// so the choice is a construction-time flag.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/message.h"

namespace voltage::obs {
class Counter;
class FlightRecorder;
class MetricsRegistry;
}  // namespace voltage::obs

namespace voltage {

// Cached counter handles a transport increments on its hot path — resolved
// once at attach time so send/recv never touch the registry's name map.
struct TransportCounters {
  obs::Counter* messages_sent = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* messages_received = nullptr;
  obs::Counter* bytes_received = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return messages_sent != nullptr;
  }
};

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

// Thrown by send/recv/recv_any once a transport has been poisoned via
// close(). The message carries the close reason, so every thread that was
// blocked on the mesh reports why the mesh died, not just that it did.
class TransportClosedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by recv/recv_any when RecvOptions::deadline passes before a
// matching message arrives. Distinct from TransportClosedError: the mesh is
// still alive, one peer is just too slow (or wedged).
class RecvTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Per-call receive options. Default-constructed = block forever (the
// pre-failure-model behavior).
struct RecvOptions {
  // Absolute deadline; once it passes without a matching message the recv
  // throws RecvTimeoutError. Absolute (not a relative timeout) so one
  // request-level budget can be threaded through many blocking calls.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  // Deadline `seconds` from now; non-positive means no deadline.
  [[nodiscard]] static RecvOptions within(double seconds) {
    RecvOptions options;
    if (seconds > 0.0) {
      options.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
    }
    return options;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::size_t devices() const noexcept = 0;

  // Delivers to the destination's mailbox; thread-safe; throws on bad ids
  // or self-send, and TransportClosedError after close().
  virtual void send(Message message) = 0;

  // Blocks until a message with this (source, tag) arrives at `receiver`,
  // the options deadline passes (RecvTimeoutError), or the transport is
  // poisoned (TransportClosedError). Messages already queued are always
  // matched first, even on a closed transport.
  [[nodiscard]] virtual Message recv(DeviceId receiver, DeviceId source,
                                     MessageTag tag,
                                     const RecvOptions& options = {}) = 0;

  // Blocks until any message with this tag arrives at `receiver`; same
  // deadline/poisoning semantics as recv.
  [[nodiscard]] virtual Message recv_any(DeviceId receiver, MessageTag tag,
                                         const RecvOptions& options = {}) = 0;

  // Poisons the transport: every blocked and future send/recv/recv_any
  // throws TransportClosedError carrying `reason`. Idempotent — the first
  // reason wins; later calls are no-ops. This is how a failing device
  // unblocks its peers instead of deadlocking the mesh; poisoning is
  // permanent (build a fresh transport to recover).
  virtual void close(std::string reason) = 0;
  [[nodiscard]] virtual bool closed() const noexcept = 0;

  // Cumulative per-device and mesh-wide traffic counters.
  [[nodiscard]] virtual TrafficStats stats(DeviceId device) const = 0;
  [[nodiscard]] virtual TrafficStats total_stats() const = 0;
  virtual void reset_stats() = 0;

  // Attaches a metrics registry: sends and receives increment the
  // "transport.{messages,bytes}_{sent,received}" counters. Pass nullptr to
  // detach. Not synchronized against in-flight traffic — attach before the
  // mesh is busy (construction time). Default: no-op for transports without
  // an instrumented hot path.
  virtual void set_metrics(obs::MetricsRegistry* /*metrics*/) {}

  // Attaches a flight recorder (non-owning; nullptr detaches): sends and
  // receives append to its last-N ring, and close() dumps it with the
  // poison reason, so a containment event carries its recent message
  // history. Same attach-before-traffic contract as set_metrics. Default:
  // no-op for transports without the hook.
  virtual void set_flight_recorder(obs::FlightRecorder* /*recorder*/) {}
};

namespace detail {

// Process-unique id per transport instance. Flow ids are namespaced by it
// so two meshes tracing into one Tracer (a server's runtime and its
// decoder) can never collide on (sender, seq).
[[nodiscard]] std::uint64_t next_transport_uid();

// Flow binding id for one message: unique per (transport, sender, seq).
[[nodiscard]] constexpr std::uint64_t make_flow_id(
    std::uint64_t transport_uid, DeviceId source, std::uint64_t seq) noexcept {
  return (transport_uid << 48) ^ (static_cast<std::uint64_t>(source) << 40) ^
         seq;
}

}  // namespace detail

// Resolves the standard transport counters in `metrics` (nullptr in, empty
// handles out). Shared by every instrumented Transport implementation.
[[nodiscard]] TransportCounters resolve_transport_counters(
    obs::MetricsRegistry* metrics);

enum class TransportKind : std::uint8_t {
  kInMemory,    // lock-guarded mailboxes, zero syscalls (default)
  kUnixSocket,  // full mesh of real kernel sockets (SocketFabric)
};

[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind,
                                                        std::size_t devices);

}  // namespace voltage
