// Quantized wire codec for collective traffic (paper §VII-A applied to the
// wire): symmetric per-row int8 with an fp32 scale sidecar, cutting a
// [rows x cols] activation payload from 16 + 4*rows*cols bytes to
// 16 + 4*rows + rows*cols — ~4x for the wide rows the all-gather ships.
//
// The encoder quantizes once into a single owned buffer and hands out
// Payload views borrowing it, so a K-1-way fan-out shares one encode and
// moves zero extra bytes per send (the same zero-copy discipline as
// tensor_payload_view). Decoding is transparent: the header carries
// kQuantColsFlag (tensor/serialize.h) and every receive path —
// tensor_from_payload, deserialize_into — dequantizes on sight, so
// receivers never need to know the sender's precision.
//
// Quantization policy matches src/quant (Q8BERT-style): scale = absmax/127
// per row, zero rows get scale 1.0, values round-to-nearest and clamp to
// [-127, 127] (never -128). The softmax-merge triples stay fp32 — the
// log-sum-exp merge is exact and must remain so.
#pragma once

#include <cstdint>
#include <memory>

#include "net/message.h"
#include "tensor/tensor.h"

namespace voltage {

// Wire + compute precision knob, threaded from InferenceServer::Options
// down to VoltageRuntime and DistributedDecoder.
enum class Precision : std::uint8_t {
  kFp32,  // exact float path (default)
  kInt8,  // int8 weights/GEMM + quantized collective payloads
};

// Encodes `t` into a quantized wire payload: inline 16-byte header (rows,
// cols | kQuantColsFlag), body = rows fp32 row scales then rows*cols int8.
// The returned payload owns its buffer via the keep-alive; copies of it
// (one per peer in a fan-out) all borrow the same encode.
[[nodiscard]] Payload quantized_payload(const Tensor& t);

}  // namespace voltage
