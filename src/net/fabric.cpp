#include "net/fabric.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace voltage {

Fabric::Fabric(std::size_t devices) {
  if (devices == 0) throw std::invalid_argument("Fabric: zero devices");
  mailboxes_.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Fabric::Mailbox& Fabric::box(DeviceId id) {
  if (id >= mailboxes_.size()) throw std::out_of_range("Fabric: device id");
  return *mailboxes_[id];
}

const Fabric::Mailbox& Fabric::box(DeviceId id) const {
  if (id >= mailboxes_.size()) throw std::out_of_range("Fabric: device id");
  return *mailboxes_[id];
}

void Fabric::throw_closed(const char* verb) const {
  std::string reason;
  {
    const std::lock_guard lock(close_mutex_);
    reason = close_reason_;
  }
  throw TransportClosedError("Fabric: transport closed during " +
                             std::string(verb) +
                             (reason.empty() ? "" : ": " + reason));
}

void Fabric::close(std::string reason) {
  {
    const std::lock_guard lock(close_mutex_);
    if (closed_.load(std::memory_order_acquire)) return;  // first reason wins
    close_reason_ = std::move(reason);
    closed_.store(true, std::memory_order_release);
  }
  // The poisoning is the event the flight recorder exists for: dump the
  // last-N message history together with the reason before waking anyone.
  if (recorder_ != nullptr) {
    std::string what;
    {
      const std::lock_guard lock(close_mutex_);
      what = close_reason_;
    }
    recorder_->auto_dump("Fabric closed: " + what);
  }
  // Lock each mailbox before notifying: a receiver that checked the flag
  // just before we flipped it is either already in wait (the notify wakes
  // it) or still holds the mailbox mutex (we block until it waits).
  for (const auto& mb : mailboxes_) {
    { const std::lock_guard lock(mb->mutex); }
    mb->arrived.notify_all();
  }
}

void Fabric::send(Message message) {
  if (message.source == message.destination) {
    throw std::invalid_argument("Fabric: self-send");
  }
  if (closed()) throw_closed("send");
  const std::size_t bytes = message.wire_size();
  // Trace context: inherit the sender thread's request id unless the caller
  // stamped one already (ChaosTransport couriers deliver from their own
  // thread and pre-stamp at enqueue).
  if (message.trace_id == 0) message.trace_id = obs::thread_trace_id();
  if (metrics_.enabled()) {
    metrics_.messages_sent->add(1);
    metrics_.bytes_sent->add(bytes);
  }
  {
    Mailbox& src = box(message.source);
    const std::lock_guard lock(src.mutex);
    src.stats.messages_sent += 1;
    src.stats.bytes_sent += bytes;
    message.seq = ++src.next_seq;
  }
  if (recorder_ != nullptr) {
    recorder_->note_send(message.source, message.destination, message.tag,
                         message.trace_id, bytes);
  }
  // Flow start before delivery, so the arrow's tail can never be stamped
  // after its head: a receiver may consume the message the instant it is
  // queued.
  if (message.trace_id != 0) {
    obs::record_flow(obs::thread_tracer(), obs::EventPhase::kFlowStart,
                     detail::make_flow_id(uid_, message.source, message.seq),
                     obs::thread_track(), message.trace_id);
  }
  Mailbox& dst = box(message.destination);
  {
    const std::lock_guard lock(dst.mutex);
    dst.stats.messages_received += 1;
    dst.stats.bytes_received += bytes;
    dst.queue.push_back(std::move(message));
  }
  dst.arrived.notify_all();
}

void Fabric::note_received(const Message& message) const {
  if (metrics_.enabled()) {
    metrics_.messages_received->add(1);
    metrics_.bytes_received->add(message.wire_size());
  }
  if (recorder_ != nullptr) {
    recorder_->note_recv(message.source, message.destination, message.tag,
                         message.trace_id, message.wire_size());
  }
  // The receiver adopts the message's request context — this is how one
  // trace id follows the data across all K device threads — and closes the
  // flow arrow the sender opened.
  obs::adopt_thread_trace_id(message.trace_id);
  if (message.trace_id != 0) {
    obs::record_flow(obs::thread_tracer(), obs::EventPhase::kFlowEnd,
                     detail::make_flow_id(uid_, message.source, message.seq),
                     obs::thread_track(), message.trace_id);
  }
}

Message Fabric::recv(DeviceId receiver, DeviceId source, MessageTag tag,
                     const RecvOptions& options) {
  Mailbox& mb = box(receiver);
  std::unique_lock lock(mb.mutex);
  for (;;) {
    const auto it = std::find_if(
        mb.queue.begin(), mb.queue.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != mb.queue.end()) {
      Message out = std::move(*it);
      mb.queue.erase(it);
      note_received(out);
      return out;
    }
    if (closed()) throw_closed("recv");
    if (options.deadline.has_value()) {
      if (std::chrono::steady_clock::now() >= *options.deadline) {
        throw RecvTimeoutError("Fabric: recv deadline exceeded");
      }
      mb.arrived.wait_until(lock, *options.deadline);
    } else {
      mb.arrived.wait(lock);
    }
  }
}

Message Fabric::recv_any(DeviceId receiver, MessageTag tag,
                         const RecvOptions& options) {
  Mailbox& mb = box(receiver);
  std::unique_lock lock(mb.mutex);
  for (;;) {
    const auto it =
        std::find_if(mb.queue.begin(), mb.queue.end(),
                     [&](const Message& m) { return m.tag == tag; });
    if (it != mb.queue.end()) {
      Message out = std::move(*it);
      mb.queue.erase(it);
      note_received(out);
      return out;
    }
    if (closed()) throw_closed("recv_any");
    if (options.deadline.has_value()) {
      if (std::chrono::steady_clock::now() >= *options.deadline) {
        throw RecvTimeoutError("Fabric: recv_any deadline exceeded");
      }
      mb.arrived.wait_until(lock, *options.deadline);
    } else {
      mb.arrived.wait(lock);
    }
  }
}

TrafficStats Fabric::stats(DeviceId device) const {
  const Mailbox& mb = box(device);
  const std::lock_guard lock(mb.mutex);
  return mb.stats;
}

TrafficStats Fabric::total_stats() const {
  TrafficStats total;
  for (const auto& mb : mailboxes_) {
    const std::lock_guard lock(mb->mutex);
    total.messages_sent += mb->stats.messages_sent;
    total.bytes_sent += mb->stats.bytes_sent;
    total.messages_received += mb->stats.messages_received;
    total.bytes_received += mb->stats.bytes_received;
  }
  return total;
}

void Fabric::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = resolve_transport_counters(metrics);
}

void Fabric::set_flight_recorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
}

void Fabric::reset_stats() {
  for (const auto& mb : mailboxes_) {
    const std::lock_guard lock(mb->mutex);
    mb->stats = TrafficStats{};
  }
}

}  // namespace voltage
