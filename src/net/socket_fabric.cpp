#include "net/socket_fabric.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace voltage {

namespace {

struct FrameHeader {
  std::uint64_t source;
  std::uint64_t tag;
  std::uint64_t trace_id;
  std::uint64_t seq;
  std::uint64_t length;
};
static_assert(sizeof(FrameHeader) == kWireFrameBytes,
              "kWireFrameBytes must match the socket frame header");

void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a send racing close()'s shutdown must fail with EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "SocketFabric: write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Returns false on orderly EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::byte*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "SocketFabric: read");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean shutdown between frames
      throw std::runtime_error("SocketFabric: truncated frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketFabric::SocketFabric(std::size_t devices) {
  if (devices == 0) {
    throw std::invalid_argument("SocketFabric: zero devices");
  }
  endpoints_.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->peer_fd.assign(devices, -1);
    for (std::size_t j = 0; j < devices; ++j) {
      ep->write_mutex.push_back(std::make_unique<std::mutex>());
    }
    endpoints_.push_back(std::move(ep));
  }
  for (std::size_t i = 0; i < devices; ++i) {
    for (std::size_t j = i + 1; j < devices; ++j) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        throw std::system_error(errno, std::generic_category(),
                                "SocketFabric: socketpair");
      }
      endpoints_[i]->peer_fd[j] = fds[0];
      endpoints_[j]->peer_fd[i] = fds[1];
    }
  }
  for (std::size_t i = 0; i < devices; ++i) {
    endpoints_[i]->reader = std::thread([this, i] { reader_loop(i); });
  }
}

SocketFabric::~SocketFabric() {
  // Shut the sockets down so the readers drain and exit, then join.
  shutdown_sockets();
  for (const auto& ep : endpoints_) {
    if (ep->reader.joinable()) ep->reader.join();
  }
  for (const auto& ep : endpoints_) {
    for (const int fd : ep->peer_fd) {
      if (fd >= 0) ::close(fd);
    }
  }
}

void SocketFabric::shutdown_sockets() {
  for (const auto& ep : endpoints_) {
    for (const int fd : ep->peer_fd) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
}

void SocketFabric::close(std::string reason) {
  {
    const std::lock_guard lock(close_mutex_);
    if (closed_.load(std::memory_order_acquire)) return;  // first reason wins
    close_reason_ = std::move(reason);
    closed_.store(true, std::memory_order_release);
  }
  // The poisoning is the event the flight recorder exists for: dump the
  // last-N message history together with the reason before tearing down.
  if (recorder_ != nullptr) {
    std::string what;
    {
      const std::lock_guard lock(close_mutex_);
      what = close_reason_;
    }
    recorder_->auto_dump("SocketFabric closed: " + what);
  }
  // Readers see EOF on the shut-down sockets, mark their endpoints closed
  // and wake every blocked receiver, which then throws with the reason.
  shutdown_sockets();
}

void SocketFabric::throw_closed(const char* verb) const {
  std::string reason;
  {
    const std::lock_guard lock(close_mutex_);
    reason = close_reason_;
  }
  throw TransportClosedError("SocketFabric: transport closed during " +
                             std::string(verb) +
                             (reason.empty() ? "" : ": " + reason));
}

SocketFabric::Endpoint& SocketFabric::endpoint(DeviceId id) {
  if (id >= endpoints_.size()) {
    throw std::out_of_range("SocketFabric: device id");
  }
  return *endpoints_[id];
}

const SocketFabric::Endpoint& SocketFabric::endpoint(DeviceId id) const {
  if (id >= endpoints_.size()) {
    throw std::out_of_range("SocketFabric: device id");
  }
  return *endpoints_[id];
}

void SocketFabric::reader_loop(std::size_t device) {
  Endpoint& ep = *endpoints_[device];
  std::vector<pollfd> fds;
  std::vector<DeviceId> owner;
  for (std::size_t j = 0; j < endpoints_.size(); ++j) {
    if (ep.peer_fd[j] < 0) continue;
    fds.push_back(pollfd{.fd = ep.peer_fd[j], .events = POLLIN, .revents = 0});
    owner.push_back(j);
  }
  std::size_t open = fds.size();
  while (open > 0) {
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t idx = 0; idx < fds.size(); ++idx) {
      if (fds[idx].fd < 0 ||
          (fds[idx].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      FrameHeader header{};
      bool ok = false;
      try {
        ok = read_all(fds[idx].fd, &header, sizeof(header));
      } catch (...) {
        ok = false;  // peer torn down mid-frame during shutdown
      }
      if (!ok) {
        fds[idx].fd = -1;  // peer closed
        --open;
        continue;
      }
      Message msg;
      msg.source = header.source;
      msg.destination = device;
      msg.tag = header.tag;
      msg.trace_id = header.trace_id;
      msg.seq = header.seq;
      std::vector<std::byte> body(header.length);
      if (header.length > 0) {
        try {
          if (!read_all(fds[idx].fd, body.data(), header.length)) {
            fds[idx].fd = -1;
            --open;
            continue;
          }
        } catch (...) {
          fds[idx].fd = -1;
          --open;
          continue;
        }
      }
      msg.payload = std::move(body);
      {
        const std::lock_guard lock(ep.mutex);
        ep.stats.messages_received += 1;
        ep.stats.bytes_received += msg.wire_size();
        ep.inbox.push_back(std::move(msg));
      }
      ep.arrived.notify_all();
    }
  }
  {
    const std::lock_guard lock(ep.mutex);
    ep.closed = true;
  }
  ep.arrived.notify_all();
}

void SocketFabric::send(Message message) {
  if (message.source == message.destination) {
    throw std::invalid_argument("SocketFabric: self-send");
  }
  Endpoint& src = endpoint(message.source);
  (void)endpoint(message.destination);  // id validation
  if (closed()) throw_closed("send");
  const int fd = src.peer_fd[message.destination];
  // Trace context: inherit the sender thread's request id unless the caller
  // stamped one already (ChaosTransport couriers deliver from their own
  // thread and pre-stamp at enqueue).
  if (message.trace_id == 0) message.trace_id = obs::thread_trace_id();
  // Stats commit before the bytes hit the wire: once the receiver can
  // observe the message (and unblock a thread that then reads
  // total_stats()), the counters must already include it — otherwise
  // per-step byte accounting sees a straggler send slide into the next
  // measurement window. A send that subsequently fails is still counted;
  // by then the fabric is poisoned and exact totals no longer matter.
  if (metrics_.enabled()) {
    metrics_.messages_sent->add(1);
    metrics_.bytes_sent->add(message.wire_size());
  }
  {
    const std::lock_guard lock(src.mutex);
    src.stats.messages_sent += 1;
    src.stats.bytes_sent += message.wire_size();
    message.seq = ++src.next_seq;
  }
  const FrameHeader header{.source = message.source,
                           .tag = message.tag,
                           .trace_id = message.trace_id,
                           .seq = message.seq,
                           .length = message.payload.size()};
  if (recorder_ != nullptr) {
    recorder_->note_send(message.source, message.destination, message.tag,
                         message.trace_id, message.wire_size());
  }
  // Flow start before the bytes leave, so the arrow's tail can never be
  // stamped after its head on the receiving side.
  if (message.trace_id != 0) {
    obs::record_flow(obs::thread_tracer(), obs::EventPhase::kFlowStart,
                     detail::make_flow_id(uid_, message.source, message.seq),
                     obs::thread_track(), message.trace_id);
  }
  try {
    // View payloads are written straight from the borrowed storage (header
    // chunk then body chunk) — no flattening copy on the send path.
    const std::lock_guard wlock(*src.write_mutex[message.destination]);
    write_all(fd, &header, sizeof(header));
    const auto head = message.payload.head();
    if (!head.empty()) write_all(fd, head.data(), head.size());
    const auto body = message.payload.body();
    if (!body.empty()) write_all(fd, body.data(), body.size());
  } catch (const std::system_error&) {
    // A send that lost the race against close() (EPIPE on the shut-down
    // socket) reports the poisoning, not the raw socket error.
    if (closed()) throw_closed("send");
    throw;
  }
}

Message SocketFabric::recv(DeviceId receiver, DeviceId source, MessageTag tag,
                           const RecvOptions& options) {
  Endpoint& ep = endpoint(receiver);
  std::unique_lock lock(ep.mutex);
  for (;;) {
    const auto it =
        std::find_if(ep.inbox.begin(), ep.inbox.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != ep.inbox.end()) {
      Message out = std::move(*it);
      ep.inbox.erase(it);
      note_received(out);
      return out;
    }
    if (ep.closed) throw_closed("recv");
    if (options.deadline.has_value()) {
      if (std::chrono::steady_clock::now() >= *options.deadline) {
        throw RecvTimeoutError("SocketFabric: recv deadline exceeded");
      }
      ep.arrived.wait_until(lock, *options.deadline);
    } else {
      ep.arrived.wait(lock);
    }
  }
}

Message SocketFabric::recv_any(DeviceId receiver, MessageTag tag,
                               const RecvOptions& options) {
  Endpoint& ep = endpoint(receiver);
  std::unique_lock lock(ep.mutex);
  for (;;) {
    const auto it =
        std::find_if(ep.inbox.begin(), ep.inbox.end(),
                     [&](const Message& m) { return m.tag == tag; });
    if (it != ep.inbox.end()) {
      Message out = std::move(*it);
      ep.inbox.erase(it);
      note_received(out);
      return out;
    }
    if (ep.closed) throw_closed("recv_any");
    if (options.deadline.has_value()) {
      if (std::chrono::steady_clock::now() >= *options.deadline) {
        throw RecvTimeoutError("SocketFabric: recv_any deadline exceeded");
      }
      ep.arrived.wait_until(lock, *options.deadline);
    } else {
      ep.arrived.wait(lock);
    }
  }
}

TrafficStats SocketFabric::stats(DeviceId device) const {
  const Endpoint& ep = endpoint(device);
  const std::lock_guard lock(ep.mutex);
  return ep.stats;
}

TrafficStats SocketFabric::total_stats() const {
  TrafficStats total;
  for (const auto& ep : endpoints_) {
    const std::lock_guard lock(ep->mutex);
    total.messages_sent += ep->stats.messages_sent;
    total.bytes_sent += ep->stats.bytes_sent;
    total.messages_received += ep->stats.messages_received;
    total.bytes_received += ep->stats.bytes_received;
  }
  return total;
}

void SocketFabric::note_received(const Message& message) const {
  if (metrics_.enabled()) {
    metrics_.messages_received->add(1);
    metrics_.bytes_received->add(message.wire_size());
  }
  if (recorder_ != nullptr) {
    recorder_->note_recv(message.source, message.destination, message.tag,
                         message.trace_id, message.wire_size());
  }
  // Runs on the consuming thread (never the reader thread), so the adopted
  // context and the flow end land on the right track.
  obs::adopt_thread_trace_id(message.trace_id);
  if (message.trace_id != 0) {
    obs::record_flow(obs::thread_tracer(), obs::EventPhase::kFlowEnd,
                     detail::make_flow_id(uid_, message.source, message.seq),
                     obs::thread_track(), message.trace_id);
  }
}

void SocketFabric::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = resolve_transport_counters(metrics);
}

void SocketFabric::set_flight_recorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
}

void SocketFabric::reset_stats() {
  for (const auto& ep : endpoints_) {
    const std::lock_guard lock(ep->mutex);
    ep->stats = TrafficStats{};
  }
}

}  // namespace voltage
