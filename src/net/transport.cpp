#include "net/transport.h"

#include <atomic>
#include <stdexcept>

#include "net/fabric.h"
#include "net/socket_fabric.h"
#include "obs/metrics.h"

namespace voltage {

namespace detail {

std::uint64_t next_transport_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

TransportCounters resolve_transport_counters(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return {};
  return TransportCounters{
      .messages_sent = &metrics->counter("transport.messages_sent"),
      .bytes_sent = &metrics->counter("transport.bytes_sent"),
      .messages_received = &metrics->counter("transport.messages_received"),
      .bytes_received = &metrics->counter("transport.bytes_received"),
  };
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::size_t devices) {
  switch (kind) {
    case TransportKind::kInMemory:
      return std::make_unique<Fabric>(devices);
    case TransportKind::kUnixSocket:
      return std::make_unique<SocketFabric>(devices);
  }
  throw std::logic_error("make_transport: bad kind");
}

}  // namespace voltage
