#include "net/transport.h"

#include <stdexcept>

#include "net/fabric.h"
#include "net/socket_fabric.h"

namespace voltage {

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::size_t devices) {
  switch (kind) {
    case TransportKind::kInMemory:
      return std::make_unique<Fabric>(devices);
    case TransportKind::kUnixSocket:
      return std::make_unique<SocketFabric>(devices);
  }
  throw std::logic_error("make_transport: bad kind");
}

}  // namespace voltage
