// SocketFabric: the device mesh over real kernel sockets.
//
// A full mesh of AF_UNIX stream socket pairs connects the devices — every
// byte crosses a genuine socket boundary with framing, partial reads and
// copies, exactly like the paper's multi-VM TCP deployment modulo the wire
// itself. One reader thread per device demultiplexes incoming frames into
// a tagged mailbox with the same matching semantics as the in-memory
// Fabric, so the two transports are drop-in interchangeable.
//
// Frame format: u64 source | u64 tag | u64 trace_id | u64 seq |
// u64 payload_length | payload bytes. trace_id/seq carry the request trace
// context across the wire (see net/message.h) — a real TCP deployment would
// ship the same two words.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace voltage {

class SocketFabric final : public Transport {
 public:
  // Builds the (devices choose 2) socket mesh and starts reader threads.
  // Throws std::system_error if socketpair(2) fails.
  explicit SocketFabric(std::size_t devices);
  ~SocketFabric() override;

  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  [[nodiscard]] std::size_t devices() const noexcept override {
    return endpoints_.size();
  }

  void send(Message message) override;
  [[nodiscard]] Message recv(DeviceId receiver, DeviceId source,
                             MessageTag tag,
                             const RecvOptions& options = {}) override;
  [[nodiscard]] Message recv_any(DeviceId receiver, MessageTag tag,
                                 const RecvOptions& options = {}) override;

  // Poisons the mesh: shuts every socket down, so readers drain to EOF and
  // every blocked receiver throws TransportClosedError(reason). Sends that
  // race the shutdown surface the same error (never SIGPIPE — frames go out
  // with MSG_NOSIGNAL). Idempotent; first reason wins.
  void close(std::string reason) override;
  [[nodiscard]] bool closed() const noexcept override {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] TrafficStats stats(DeviceId device) const override;
  [[nodiscard]] TrafficStats total_stats() const override;
  void reset_stats() override;

  void set_metrics(obs::MetricsRegistry* metrics) override;
  void set_flight_recorder(obs::FlightRecorder* recorder) override;

 private:
  struct Endpoint {
    // peer_fd[j]: this endpoint's socket to device j (-1 for self).
    std::vector<int> peer_fd;
    std::vector<std::unique_ptr<std::mutex>> write_mutex;  // per peer fd
    std::thread reader;

    mutable std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> inbox;
    bool closed = false;
    TrafficStats stats;
    // Per-sender message sequence; not reset by reset_stats() (flow ids
    // derived from it must stay unique for the fabric's lifetime).
    std::uint64_t next_seq = 0;
  };

  void reader_loop(std::size_t device);
  Endpoint& endpoint(DeviceId id);
  [[nodiscard]] const Endpoint& endpoint(DeviceId id) const;
  void shutdown_sockets();
  [[noreturn]] void throw_closed(const char* verb) const;
  void note_received(const Message& message) const;

  const std::uint64_t uid_ = detail::next_transport_uid();
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  TransportCounters metrics_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::atomic<bool> closed_{false};
  mutable std::mutex close_mutex_;
  std::string close_reason_;
};

}  // namespace voltage
