// Link/NIC timing model for edge networks.
//
// The paper's testbed caps bandwidth at 500 Mbps between VMs; every message
// additionally pays a fixed per-message cost (TCP/serialization/syscall
// overhead) that dominates chatty collectives. transfer_time models one
// message: latency + bytes * 8 / bandwidth.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace voltage {

using Seconds = double;

struct LinkModel {
  double bandwidth_bps = 500e6;        // paper default: 500 Mbps
  Seconds per_message_latency = 2e-3;  // fixed cost per message

  [[nodiscard]] static LinkModel mbps(double mbps,
                                      Seconds latency = 2e-3) {
    if (mbps <= 0.0) throw std::invalid_argument("LinkModel: bandwidth <= 0");
    return LinkModel{.bandwidth_bps = mbps * 1e6,
                     .per_message_latency = latency};
  }

  // Time to push `bytes` through the link as one message.
  [[nodiscard]] Seconds transfer_time(std::size_t bytes) const {
    return per_message_latency +
           static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }

  // Serialization time only (no per-message cost) — used when several
  // messages are pipelined through one NIC back-to-back.
  [[nodiscard]] Seconds wire_time(std::size_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

}  // namespace voltage
