// ChaosTransport: failure-injection decorator for any Transport.
//
// Real edge networks deliver across links with wildly different delays, and
// real edge devices drop packets, deliver duplicates, and die mid-request.
// The protocols (collectives, Algorithm 2) must be correct purely through
// their (source, tag) matching and must *fail* through the failure-
// containment layer (poisoning + deadlines) — never by hanging. This
// decorator makes both testable:
//
//   - delay: every send is queued with a deterministic pseudo-random delay,
//     which scrambles arrival order across senders and tags;
//   - drop: a message is lost with probability drop_probability (the recv
//     side only notices via a deadline);
//   - duplicate: a message is delivered twice with probability
//     duplicate_probability;
//   - crash-at-send: device crash->device dies after its crash->after_sends'th
//     send — every later send from it throws TransportClosedError, exactly
//     what a runtime device thread sees when its host process dies.
//
// One courier thread drains a due-time priority queue; delivery errors are
// recorded in stats (never std::terminate), and no thread handles accumulate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "tensor/rng.h"

namespace voltage {

struct ChaosOptions {
  // Delivery delay is uniform in [0, max_delay].
  double max_delay_seconds = 1e-3;
  std::uint64_t seed = 1;
  // Per-message fault probabilities (independent draws, in [0, 1]).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  // Crash-at-send fault: after `after_sends` successful sends, every further
  // send from `device` throws TransportClosedError — the device went dark.
  struct Crash {
    DeviceId device = 0;
    std::uint64_t after_sends = 0;
  };
  std::optional<Crash> crash;
};

// Fault accounting, for tests that assert the injected faults actually fired.
struct ChaosStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t crashed_sends = 0;
  // Deliveries whose inner send threw (e.g. transport poisoned while the
  // message was in flight); the last error text is kept for diagnostics.
  std::uint64_t delivery_errors = 0;
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosOptions options);
  // Drains all in-flight deliveries (immediately, ignoring residual delays),
  // then stops the courier.
  ~ChaosTransport() override;

  [[nodiscard]] std::size_t devices() const noexcept override {
    return inner_->devices();
  }
  void send(Message message) override;
  [[nodiscard]] Message recv(DeviceId receiver, DeviceId source,
                             MessageTag tag,
                             const RecvOptions& options = {}) override {
    return inner_->recv(receiver, source, tag, options);
  }
  [[nodiscard]] Message recv_any(DeviceId receiver, MessageTag tag,
                                 const RecvOptions& options = {}) override {
    return inner_->recv_any(receiver, tag, options);
  }
  void close(std::string reason) override { inner_->close(std::move(reason)); }
  [[nodiscard]] bool closed() const noexcept override {
    return inner_->closed();
  }
  [[nodiscard]] TrafficStats stats(DeviceId device) const override {
    return inner_->stats(device);
  }
  [[nodiscard]] TrafficStats total_stats() const override {
    return inner_->total_stats();
  }
  void reset_stats() override { inner_->reset_stats(); }
  void set_metrics(obs::MetricsRegistry* metrics) override {
    inner_->set_metrics(metrics);
  }
  void set_flight_recorder(obs::FlightRecorder* recorder) override {
    inner_->set_flight_recorder(recorder);
  }

  [[nodiscard]] ChaosStats chaos_stats() const;
  // Last delivery error text ("" when none) — see ChaosStats.delivery_errors.
  [[nodiscard]] std::string last_delivery_error() const;

 private:
  struct Pending {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  // FIFO tie-break for equal due times
    Message message;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void courier_loop();

  std::unique_ptr<Transport> inner_;
  ChaosOptions options_;
  mutable std::mutex mutex_;  // guards everything below
  std::condition_variable pending_cv_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> pending_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t crash_device_sends_ = 0;
  ChaosStats stats_;
  std::string last_error_;
  bool stopping_ = false;
  std::thread courier_;
};

}  // namespace voltage
