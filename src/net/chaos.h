// ChaosTransport: failure-injection decorator for any Transport.
//
// Real edge networks deliver across links with wildly different delays, so
// messages from different senders arrive interleaved and out of order. The
// protocols (collectives, Algorithm 2) must be correct purely through their
// (source, tag) matching — never through delivery timing. This decorator
// makes that assumption testable: every send is handed to a delivery thread
// that sleeps a deterministic pseudo-random delay before forwarding, which
// scrambles arrival order across senders and tags.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "tensor/rng.h"

namespace voltage {

struct ChaosOptions {
  // Delivery delay is uniform in [0, max_delay].
  double max_delay_seconds = 1e-3;
  std::uint64_t seed = 1;
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosOptions options);
  // Joins all in-flight deliveries.
  ~ChaosTransport() override;

  [[nodiscard]] std::size_t devices() const noexcept override {
    return inner_->devices();
  }
  void send(Message message) override;
  [[nodiscard]] Message recv(DeviceId receiver, DeviceId source,
                             MessageTag tag) override {
    return inner_->recv(receiver, source, tag);
  }
  [[nodiscard]] Message recv_any(DeviceId receiver, MessageTag tag) override {
    return inner_->recv_any(receiver, tag);
  }
  [[nodiscard]] TrafficStats stats(DeviceId device) const override {
    return inner_->stats(device);
  }
  [[nodiscard]] TrafficStats total_stats() const override {
    return inner_->total_stats();
  }
  void reset_stats() override { inner_->reset_stats(); }
  void set_metrics(obs::MetricsRegistry* metrics) override {
    inner_->set_metrics(metrics);
  }

 private:
  std::unique_ptr<Transport> inner_;
  ChaosOptions options_;
  std::mutex mutex_;  // guards rng_ and couriers_
  Rng rng_;
  std::vector<std::thread> couriers_;
};

}  // namespace voltage
