// In-process message-passing fabric: a full mesh of mailboxes, one per
// device, with blocking tagged receive. This is the transport under the real
// (threaded) runtime and the real collectives; it records byte-accurate
// traffic statistics that the communication-volume experiments read.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.h"

namespace voltage {

class Fabric final : public Transport {
 public:
  // `devices` mailboxes, ids 0 .. devices-1.
  explicit Fabric(std::size_t devices);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::size_t devices() const noexcept override {
    return mailboxes_.size();
  }

  // Delivers to the destination mailbox; thread-safe; throws on bad ids or
  // self-send (a device never needs the fabric to talk to itself).
  void send(Message message) override;

  // Blocks until a message with this (source, tag) arrives at `receiver`.
  [[nodiscard]] Message recv(DeviceId receiver, DeviceId source,
                             MessageTag tag) override;

  // Blocks until any message with this tag arrives at `receiver`.
  [[nodiscard]] Message recv_any(DeviceId receiver, MessageTag tag) override;

  // Per-device cumulative traffic counters.
  [[nodiscard]] TrafficStats stats(DeviceId device) const override;
  [[nodiscard]] TrafficStats total_stats() const override;
  void reset_stats() override;

  void set_metrics(obs::MetricsRegistry* metrics) override;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
    TrafficStats stats;
  };

  Mailbox& box(DeviceId id);
  [[nodiscard]] const Mailbox& box(DeviceId id) const;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TransportCounters metrics_;
};

}  // namespace voltage
