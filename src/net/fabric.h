// In-process message-passing fabric: a full mesh of mailboxes, one per
// device, with blocking tagged receive. This is the transport under the real
// (threaded) runtime and the real collectives; it records byte-accurate
// traffic statistics that the communication-volume experiments read.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace voltage {

class Fabric final : public Transport {
 public:
  // `devices` mailboxes, ids 0 .. devices-1.
  explicit Fabric(std::size_t devices);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::size_t devices() const noexcept override {
    return mailboxes_.size();
  }

  // Delivers to the destination mailbox; thread-safe; throws on bad ids or
  // self-send (a device never needs the fabric to talk to itself), and
  // TransportClosedError once poisoned.
  void send(Message message) override;

  // Blocks until a message with this (source, tag) arrives at `receiver`,
  // the deadline passes, or the fabric is poisoned. Queued messages match
  // before the closed/deadline checks.
  [[nodiscard]] Message recv(DeviceId receiver, DeviceId source,
                             MessageTag tag,
                             const RecvOptions& options = {}) override;

  // Blocks until any message with this tag arrives at `receiver`; same
  // semantics as recv.
  [[nodiscard]] Message recv_any(DeviceId receiver, MessageTag tag,
                                 const RecvOptions& options = {}) override;

  // Poisons every mailbox: all blocked receivers wake and throw
  // TransportClosedError(reason). Idempotent; first reason wins.
  void close(std::string reason) override;
  [[nodiscard]] bool closed() const noexcept override {
    return closed_.load(std::memory_order_acquire);
  }

  // Per-device cumulative traffic counters.
  [[nodiscard]] TrafficStats stats(DeviceId device) const override;
  [[nodiscard]] TrafficStats total_stats() const override;
  void reset_stats() override;

  void set_metrics(obs::MetricsRegistry* metrics) override;
  void set_flight_recorder(obs::FlightRecorder* recorder) override;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
    TrafficStats stats;
    // Per-sender message sequence, assigned at send. Not reset by
    // reset_stats() — flow ids derived from it must stay unique for the
    // fabric's lifetime.
    std::uint64_t next_seq = 0;
  };

  Mailbox& box(DeviceId id);
  [[nodiscard]] const Mailbox& box(DeviceId id) const;
  [[noreturn]] void throw_closed(const char* verb) const;
  void note_received(const Message& message) const;

  const std::uint64_t uid_ = detail::next_transport_uid();
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TransportCounters metrics_;
  obs::FlightRecorder* recorder_ = nullptr;
  // Poison state: the flag is checked inside every mailbox's wait loop (the
  // mailbox mutex orders it against close()'s notify), the reason is set
  // once before the flag flips.
  std::atomic<bool> closed_{false};
  mutable std::mutex close_mutex_;
  std::string close_reason_;
};

}  // namespace voltage
