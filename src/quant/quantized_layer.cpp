#include "quant/quantized_layer.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "transformer/attention.h"

namespace voltage {

namespace {

// `xq`/`xpq` are the full input and the partition rows quantized once by the
// caller — every head's Q/K/V projection reuses them instead of re-running
// the per-row quantize pass (3H times per layer on the same operand).
Tensor quantized_head_partition(const LayerConfig& config,
                                const QuantizedHeadWeights& w,
                                const Tensor& x,
                                const QuantizedActivations& xq,
                                const QuantizedActivations& xpq, Range p,
                                AttentionOrder order) {
  const float inv_sqrt =
      1.0F / std::sqrt(static_cast<float>(config.head_dim));
  if (order == AttentionOrder::kReordered) {
    const Tensor qp = quantized_matmul(xpq, w.wq);
    const Tensor qk = quantized_matmul(qp, w.wk_t);  // P x F
    Tensor scores = matmul(qk, x, Trans::kNo, Trans::kYes);
    if (config.causal) apply_causal_mask(scores, p.begin);
    const Tensor s = softmax_rows(scores, inv_sqrt);
    return quantized_matmul(matmul(s, x), w.wv);
  }
  const Tensor qp = quantized_matmul(xpq, w.wq);
  const Tensor k = quantized_matmul(xq, w.wk);
  Tensor scores = matmul(qp, k, Trans::kNo, Trans::kYes);
  if (config.causal) apply_causal_mask(scores, p.begin);
  const Tensor s = softmax_rows(scores, inv_sqrt);
  return matmul(s, quantized_matmul(xq, w.wv));
}

}  // namespace

std::size_t QuantizedLayerWeights::byte_size() const {
  std::size_t bytes = 0;
  for (const QuantizedHeadWeights& h : heads) {
    bytes += h.wq.byte_size() + h.wk.byte_size() + h.wv.byte_size() +
             h.wk_t.byte_size();
  }
  bytes += wo.byte_size() + w1.byte_size() + w2.byte_size();
  bytes += (bo.size() + b1.size() + b2.size()) * sizeof(float);
  bytes += (ln_attention.gamma.size() + ln_attention.beta.size() +
            ln_ffn.gamma.size() + ln_ffn.beta.size()) *
           sizeof(float);
  return bytes;
}

QuantizedLayerWeights quantize_layer(const LayerWeights& w) {
  QuantizedLayerWeights q;
  q.heads.reserve(w.attention.heads.size());
  for (const HeadWeights& h : w.attention.heads) {
    q.heads.push_back(QuantizedHeadWeights{
        .wq = quantize_weights(h.wq),
        .wk = quantize_weights(h.wk),
        .wk_t = quantize_weights(h.wk.transposed()),
        .wv = quantize_weights(h.wv),
    });
  }
  q.wo = quantize_weights(w.attention.wo);
  q.bo = w.attention.bo;
  q.ln_attention = w.ln_attention;
  q.w1 = quantize_weights(w.ffn.w1);
  q.b1 = w.ffn.b1;
  q.w2 = quantize_weights(w.ffn.w2);
  q.b2 = w.ffn.b2;
  q.ln_ffn = w.ln_ffn;
  return q;
}

std::size_t float_layer_byte_size(const LayerWeights& w) {
  return w.parameter_count() * sizeof(float);
}

Tensor quantized_partitioned_layer_forward(const LayerConfig& config,
                                           const QuantizedLayerWeights& w,
                                           const Tensor& x, Range p,
                                           OrderPolicy policy) {
  config.validate();
  if (p.end > x.rows()) {
    throw std::out_of_range("quantized layer: range exceeds input");
  }
  if (p.empty()) return Tensor(0, config.hidden);
  if (w.heads.size() != config.heads) {
    throw std::invalid_argument("quantized layer: head count mismatch");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  const AttentionDims dims{.n = x.rows(),
                           .p = p.size(),
                           .f = config.hidden,
                           .fh = config.head_dim};
  const AttentionOrder order = select_order(policy, dims);

  const QuantizedActivations xq = quantize_activations(x);
  const QuantizedActivations xpq = quantize_activations(xp);
  std::vector<Tensor> heads;
  heads.reserve(config.heads);
  for (const QuantizedHeadWeights& head : w.heads) {
    heads.push_back(
        quantized_head_partition(config, head, x, xq, xpq, p, order));
  }
  Tensor r = quantized_matmul(concat_cols(heads), w.wo);
  add_bias_inplace(r, w.bo);
  add_inplace(r, xp);
  const Tensor y =
      layernorm_rows(r, w.ln_attention.gamma, w.ln_attention.beta);

  Tensor hidden = quantized_matmul(y, w.w1);
  add_bias_inplace(hidden, w.b1);
  hidden =
      config.activation == Activation::kGelu ? gelu(hidden) : relu(hidden);
  Tensor out = quantized_matmul(hidden, w.w2);
  add_bias_inplace(out, w.b2);
  add_inplace(out, y);
  return layernorm_rows(out, w.ln_ffn.gamma, w.ln_ffn.beta);
}

Tensor quantized_layer_forward(const LayerConfig& config,
                               const QuantizedLayerWeights& w,
                               const Tensor& x) {
  return quantized_partitioned_layer_forward(
      config, w, x, Range{0, x.rows()}, OrderPolicy::kAlwaysNaive);
}

}  // namespace voltage
