// INT8-quantized transformer layer with position-wise partitioning.
//
// Every weight GEMM of Algorithm 1 runs through the int8 kernel; the
// position-dependent products (scores, attention-weighted sums) stay in
// float, as do biases and LayerNorm — the Q8BERT recipe. The adaptive
// Theorem-2 order selection applies unchanged: complexity is a property of
// shapes, not dtypes, so quantization (≈4x smaller weights) and Voltage's
// partitioning (linear per-layer scaling) compose.
#pragma once

#include <vector>

#include "partition/order.h"
#include "partition/range.h"
#include "quant/quantized_tensor.h"
#include "transformer/weights.h"

namespace voltage {

struct QuantizedHeadWeights {
  QuantizedWeights wq;    // F x F_H
  QuantizedWeights wk;    // F x F_H   (Eq. 3 path: K = x W_K)
  QuantizedWeights wk_t;  // F_H x F   (Eq. 8 path: (x_p W_Q) W_K^T)
  QuantizedWeights wv;    // F x F_H
};

struct QuantizedLayerWeights {
  std::vector<QuantizedHeadWeights> heads;
  QuantizedWeights wo;
  Tensor bo;
  LayerNormWeights ln_attention;
  QuantizedWeights w1;
  Tensor b1;
  QuantizedWeights w2;
  Tensor b2;
  LayerNormWeights ln_ffn;

  // Weight-memory footprint in bytes (int8 data + scales).
  [[nodiscard]] std::size_t byte_size() const;
};

// Quantizes a trained float layer (weights only; biases/LN stay float).
[[nodiscard]] QuantizedLayerWeights quantize_layer(const LayerWeights& w);

// Byte size of the float weights of `w` — the 4x comparison baseline.
[[nodiscard]] std::size_t float_layer_byte_size(const LayerWeights& w);

// Algorithm 1 over quantized weights: output partition T_p(x) for the
// positions in `p`, with per-geometry order selection.
[[nodiscard]] Tensor quantized_partitioned_layer_forward(
    const LayerConfig& config, const QuantizedLayerWeights& w,
    const Tensor& x, Range p, OrderPolicy policy = OrderPolicy::kAdaptive);

// Full-sequence forward (the P = N special case).
[[nodiscard]] Tensor quantized_layer_forward(const LayerConfig& config,
                                             const QuantizedLayerWeights& w,
                                             const Tensor& x);

}  // namespace voltage
