// INT8 quantization primitives (Q8BERT-style, paper §VII-A).
//
// The paper notes that compression techniques are orthogonal to Voltage:
// a quantized model still has the transformer structure, so it can be
// position-partitioned for a further, multiplicative speed-up. This module
// provides the substrate: symmetric per-row/per-column int8 quantization
// and an int8 x int8 -> int32 GEMM with float rescaling.
//
// Conventions:
//   activations x ∈ R^{N x F}  -> per-ROW scales (each position quantized
//                                 independently — "dynamic" quantization);
//   weights     W ∈ R^{F x O}  -> per-COLUMN scales (each output channel).
// Then (x W)_ij ≈ Σ_k xq_ik wq_kj * sx_i * sw_j with int32 accumulation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace voltage {

struct QuantizedActivations {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> data;  // row-major
  std::vector<float> row_scales;  // rows entries: x ≈ data * scale[row]
};

struct QuantizedWeights {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> data;  // row-major
  std::vector<float> col_scales;  // cols entries: W ≈ data * scale[col]

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return data.size() + col_scales.size() * sizeof(float);
  }
};

// Symmetric absmax quantization.
[[nodiscard]] QuantizedActivations quantize_activations(const Tensor& x);
[[nodiscard]] QuantizedWeights quantize_weights(const Tensor& w);

[[nodiscard]] Tensor dequantize(const QuantizedActivations& x);
[[nodiscard]] Tensor dequantize(const QuantizedWeights& w);

// Float activations times quantized weights: dynamically quantizes x per
// row, runs the int8 GEMM, rescales to float. The workhorse that replaces
// matmul(x, W) on the weight side of every transformer GEMM.
[[nodiscard]] Tensor quantized_matmul(const Tensor& x,
                                      const QuantizedWeights& w);

// Pre-quantized activations variant: the layer forward quantizes x once and
// reuses it across every head's Q/K/V projection (3H GEMMs share the same
// operand — re-quantizing per GEMM used to dominate the int8 layer's
// wall-clock). Bitwise identical to the Tensor overload on dequantized
// inputs.
[[nodiscard]] Tensor quantized_matmul(const QuantizedActivations& x,
                                      const QuantizedWeights& w);

}  // namespace voltage
