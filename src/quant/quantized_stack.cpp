#include "quant/quantized_stack.h"

#include <stdexcept>

namespace voltage {

QuantizedStack::QuantizedStack(const TransformerModel& model)
    : config_(model.spec().layer) {
  layers_.reserve(model.spec().num_layers);
  for (const TransformerLayer& layer : model.layers()) {
    layers_.push_back(quantize_layer(layer.weights()));
    float_bytes_ += float_layer_byte_size(layer.weights());
  }
}

Tensor QuantizedStack::partition_forward(std::size_t layer, const Tensor& x,
                                         Range p, OrderPolicy policy) const {
  if (layer >= layers_.size()) {
    throw std::out_of_range("QuantizedStack: layer index");
  }
  return quantized_partitioned_layer_forward(config_, layers_[layer], x, p,
                                             policy);
}

Tensor QuantizedStack::forward_layers(Tensor x) const {
  for (const QuantizedLayerWeights& layer : layers_) {
    x = quantized_layer_forward(config_, layer, x);
  }
  return x;
}

std::size_t QuantizedStack::byte_size() const {
  std::size_t bytes = 0;
  for (const QuantizedLayerWeights& layer : layers_) {
    bytes += layer.byte_size();
  }
  return bytes;
}

}  // namespace voltage
