#include "quant/quantized_stack.h"

#include <stdexcept>

#include "partition/decode_attention.h"
#include "tensor/ops.h"

namespace voltage {

QuantizedStack::QuantizedStack(const TransformerModel& model)
    : config_(model.spec().layer) {
  layers_.reserve(model.spec().num_layers);
  for (const TransformerLayer& layer : model.layers()) {
    layers_.push_back(quantize_layer(layer.weights()));
    float_bytes_ += float_layer_byte_size(layer.weights());
  }
}

Tensor QuantizedStack::partition_forward(std::size_t layer, const Tensor& x,
                                         Range p, OrderPolicy policy) const {
  if (layer >= layers_.size()) {
    throw std::out_of_range("QuantizedStack: layer index");
  }
  return quantized_partitioned_layer_forward(config_, layers_[layer], x, p,
                                             policy);
}

Tensor QuantizedStack::forward_layers(Tensor x) const {
  for (const QuantizedLayerWeights& layer : layers_) {
    x = quantized_layer_forward(config_, layer, x);
  }
  return x;
}

Tensor QuantizedStack::decode_step_tail(std::size_t layer,
                                        const Tensor& merged,
                                        const Tensor& x) const {
  if (layer >= layers_.size()) {
    throw std::out_of_range("QuantizedStack: layer index");
  }
  const QuantizedLayerWeights& w = layers_[layer];
  Tensor r = quantized_matmul(
      softmax_merge_concat(merged, config_.heads, config_.head_dim), w.wo);
  add_bias_inplace(r, w.bo);
  add_inplace(r, x);
  const Tensor y =
      layernorm_rows(r, w.ln_attention.gamma, w.ln_attention.beta);

  Tensor hidden = quantized_matmul(y, w.w1);
  add_bias_inplace(hidden, w.b1);
  hidden =
      config_.activation == Activation::kGelu ? gelu(hidden) : relu(hidden);
  Tensor out = quantized_matmul(hidden, w.w2);
  add_bias_inplace(out, w.b2);
  add_inplace(out, y);
  return layernorm_rows(out, w.ln_ffn.gamma, w.ln_ffn.beta);
}

std::size_t QuantizedStack::byte_size() const {
  std::size_t bytes = 0;
  for (const QuantizedLayerWeights& layer : layers_) {
    bytes += layer.byte_size();
  }
  return bytes;
}

}  // namespace voltage
