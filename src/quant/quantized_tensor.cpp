#include "quant/quantized_tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/flops.h"

namespace voltage {

namespace {

// Scale for symmetric int8: absmax / 127 (0 tensors get scale 1 so the
// round trip stays exact).
float absmax_scale(const float* begin, const float* end, std::ptrdiff_t stride) {
  float absmax = 0.0F;
  for (const float* p = begin; p < end; p += stride) {
    absmax = std::max(absmax, std::fabs(*p));
  }
  return absmax == 0.0F ? 1.0F : absmax / 127.0F;
}

std::int8_t quantize_value(float v, float scale) {
  const float q = std::round(v / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F));
}

}  // namespace

QuantizedActivations quantize_activations(const Tensor& x) {
  QuantizedActivations out;
  out.rows = x.rows();
  out.cols = x.cols();
  out.data.resize(x.size());
  out.row_scales.resize(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    const float scale = absmax_scale(row.data(), row.data() + row.size(), 1);
    out.row_scales[r] = scale;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.data[r * x.cols() + c] = quantize_value(row[c], scale);
    }
  }
  flops::add_elementwise(2 * x.size());
  return out;
}

QuantizedWeights quantize_weights(const Tensor& w) {
  QuantizedWeights out;
  out.rows = w.rows();
  out.cols = w.cols();
  out.data.resize(w.size());
  out.col_scales.resize(w.cols());
  for (std::size_t c = 0; c < w.cols(); ++c) {
    out.col_scales[c] = absmax_scale(w.data() + c,
                                     w.data() + w.size(),
                                     static_cast<std::ptrdiff_t>(w.cols()));
  }
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out.data[r * w.cols() + c] =
          quantize_value(w(r, c), out.col_scales[c]);
    }
  }
  return out;
}

Tensor dequantize(const QuantizedActivations& x) {
  Tensor out(x.rows, x.cols);
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < x.cols; ++c) {
      out(r, c) = static_cast<float>(x.data[r * x.cols + c]) *
                  x.row_scales[r];
    }
  }
  return out;
}

Tensor dequantize(const QuantizedWeights& w) {
  Tensor out(w.rows, w.cols);
  for (std::size_t r = 0; r < w.rows; ++r) {
    for (std::size_t c = 0; c < w.cols; ++c) {
      out(r, c) = static_cast<float>(w.data[r * w.cols + c]) *
                  w.col_scales[c];
    }
  }
  return out;
}

Tensor quantized_matmul(const Tensor& x, const QuantizedWeights& w) {
  if (x.cols() != w.rows) {
    throw std::invalid_argument("quantized_matmul: inner dim mismatch");
  }
  const QuantizedActivations xq = quantize_activations(x);
  const std::size_t m = xq.rows;
  const std::size_t k = xq.cols;
  const std::size_t n = w.cols;

  Tensor out(m, n);
  std::vector<std::int32_t> acc(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(acc.begin(), acc.end(), 0);
    const std::int8_t* xrow = xq.data.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t xv = xrow[p];
      if (xv == 0) continue;
      const std::int8_t* wrow = w.data.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        acc[j] += xv * static_cast<std::int32_t>(wrow[j]);
      }
    }
    const float sx = xq.row_scales[i];
    auto orow = out.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      orow[j] = static_cast<float>(acc[j]) * sx * w.col_scales[j];
    }
  }
  flops::add_matmul_macs(static_cast<std::uint64_t>(m) * k * n);
  return out;
}

}  // namespace voltage
