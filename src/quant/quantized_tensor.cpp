#include "quant/quantized_tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "obs/trace.h"
#include "tensor/flops.h"
#include "tensor/gemm_s8.h"

namespace voltage {

namespace {

// Scale for symmetric int8: absmax / 127 (0 tensors get scale 1 so the
// round trip stays exact).
float absmax_scale(const float* begin, const float* end, std::ptrdiff_t stride) {
  float absmax = 0.0F;
  for (const float* p = begin; p < end; p += stride) {
    absmax = std::max(absmax, std::fabs(*p));
  }
  return absmax == 0.0F ? 1.0F : absmax / 127.0F;
}

std::int8_t quantize_value(float v, float scale) {
  // Round half away from zero via truncation (libm-free: std::round is an
  // out-of-line call per element at the base ISA, and this loop runs over
  // every activation on the int8 hot path). net/quant_codec.cpp uses the
  // same expression so wire and compute quantization stay identical.
  const float t = v / scale;
  const float q = static_cast<float>(
      static_cast<std::int32_t>(t + std::copysign(0.5F, t)));
  return static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F));
}

}  // namespace

QuantizedActivations quantize_activations(const Tensor& x) {
  QuantizedActivations out;
  out.rows = x.rows();
  out.cols = x.cols();
  out.data.resize(x.size());
  out.row_scales.resize(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    const float scale = absmax_scale(row.data(), row.data() + row.size(), 1);
    out.row_scales[r] = scale;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.data[r * x.cols() + c] = quantize_value(row[c], scale);
    }
  }
  flops::add_elementwise(2 * x.size());
  return out;
}

QuantizedWeights quantize_weights(const Tensor& w) {
  QuantizedWeights out;
  out.rows = w.rows();
  out.cols = w.cols();
  out.data.resize(w.size());
  out.col_scales.resize(w.cols());
  for (std::size_t c = 0; c < w.cols(); ++c) {
    out.col_scales[c] = absmax_scale(w.data() + c,
                                     w.data() + w.size(),
                                     static_cast<std::ptrdiff_t>(w.cols()));
  }
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out.data[r * w.cols() + c] =
          quantize_value(w(r, c), out.col_scales[c]);
    }
  }
  return out;
}

Tensor dequantize(const QuantizedActivations& x) {
  Tensor out(x.rows, x.cols);
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < x.cols; ++c) {
      out(r, c) = static_cast<float>(x.data[r * x.cols + c]) *
                  x.row_scales[r];
    }
  }
  return out;
}

Tensor dequantize(const QuantizedWeights& w) {
  Tensor out(w.rows, w.cols);
  for (std::size_t r = 0; r < w.rows; ++r) {
    for (std::size_t c = 0; c < w.cols; ++c) {
      out(r, c) = static_cast<float>(w.data[r * w.cols + c]) *
                  w.col_scales[c];
    }
  }
  return out;
}

Tensor quantized_matmul(const Tensor& x, const QuantizedWeights& w) {
  if (x.cols() != w.rows) {
    throw std::invalid_argument("quantized_matmul: inner dim mismatch");
  }
  return quantized_matmul(quantize_activations(x), w);
}

Tensor quantized_matmul(const QuantizedActivations& xq,
                        const QuantizedWeights& w) {
  if (xq.cols != w.rows) {
    throw std::invalid_argument("quantized_matmul: inner dim mismatch");
  }
  const std::size_t m = xq.rows;
  const std::size_t k = xq.cols;
  const std::size_t n = w.cols;

  Tensor out(m, n);
  if (m != 0 && n != 0 && k != 0) {
    obs::TraceSpan span(obs::thread_tracer(), "gemm_s8", "kernel",
                        obs::thread_track());
    if (span.enabled()) {
      span.layer(obs::thread_layer());
      span.tag("s8 " + std::to_string(m) + "x" + std::to_string(k) + "x" +
               std::to_string(n));
    }
    // int8 x int8 -> int32 through the tiled multi-ISA kernel
    // (tensor/gemm_s8.h), then one rescale pass by the per-row activation
    // and per-column weight scales. Row-panel parallelism as in matmul
    // (ops.cpp); the integer accumulation is exact, so the result is
    // identical at any thread count and on every ISA.
    std::vector<std::int32_t> acc(m * n, 0);
    constexpr std::uint64_t kMacsPerTask = 1ULL << 18;
    const std::uint64_t row_macs = static_cast<std::uint64_t>(k) * n;
    const std::size_t grain = static_cast<std::size_t>(
        std::max<std::uint64_t>(detail::kGemmS8Mr, kMacsPerTask / row_macs));
    parallel_for(0, m, grain, [&](std::size_t r0, std::size_t r1) {
      detail::gemm_s8_blocked(xq.data.data(), w.data.data(), acc.data(), m,
                              r0, r1, k, n);
      for (std::size_t i = r0; i < r1; ++i) {
        const float sx = xq.row_scales[i];
        const std::int32_t* arow = acc.data() + i * n;
        auto orow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          orow[j] = static_cast<float>(arow[j]) * sx * w.col_scales[j];
        }
      }
    });
  }
  flops::add_matmul_macs(static_cast<std::uint64_t>(m) * k * n);
  return out;
}

}  // namespace voltage
