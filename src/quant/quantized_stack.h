// Whole-model INT8 quantization: every transformer layer of a float model
// quantized once, plus the forward paths needed to deploy it — full
// single-device and position-partitioned (for Voltage distribution via
// VoltageRuntime::set_partition_executor).
#pragma once

#include <vector>

#include "quant/quantized_layer.h"
#include "transformer/model.h"

namespace voltage {

class QuantizedStack {
 public:
  // Quantizes all layers of `model` (weights copied; `model` unchanged).
  explicit QuantizedStack(const TransformerModel& model);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }

  // T_p(x) of one layer under int8 weights (thread-safe, read-only).
  [[nodiscard]] Tensor partition_forward(
      std::size_t layer, const Tensor& x, Range p,
      OrderPolicy policy = OrderPolicy::kAdaptive) const;

  // Full single-device forward through all quantized layers.
  [[nodiscard]] Tensor forward_layers(Tensor x) const;

  // The quantized post-attention tail of one decode step (see
  // DistributedDecoder::worker_step): merged softmax partials -> int8 W_O
  // projection + b_O, residual with the layer input rows `x`, LayerNorm,
  // int8 FFN, residual, LayerNorm. Deterministic, so every device running
  // it redundantly leaves the layer with identical rows.
  [[nodiscard]] Tensor decode_step_tail(std::size_t layer,
                                        const Tensor& merged,
                                        const Tensor& x) const;

  [[nodiscard]] const QuantizedLayerWeights& layer(std::size_t i) const {
    return layers_.at(i);
  }
  [[nodiscard]] const LayerConfig& config() const noexcept { return config_; }

  // Weight memory of the int8 stack vs the float original.
  [[nodiscard]] std::size_t byte_size() const;
  [[nodiscard]] std::size_t float_byte_size() const noexcept {
    return float_bytes_;
  }

 private:
  LayerConfig config_;
  std::vector<QuantizedLayerWeights> layers_;
  std::size_t float_bytes_ = 0;
};

}  // namespace voltage
