// Draft-token proposers for speculative decoding.
//
// A Drafter guesses the next few greedy tokens of a sequence so that
// DistributedDecoder::step_speculative can verify the whole guess in one
// collective round-trip (see DESIGN.md "Speculative decoding"). Drafts are
// pure hints: the verifier commits exactly the longest prefix that matches
// the target model's own greedy choices, so a bad drafter costs speed,
// never correctness.
//
// Built-ins:
//   PromptLookupDrafter — n-gram self-drafting (prompt lookup decoding): the
//     continuation of the longest recent-suffix match within the sequence's
//     own history. No second model, no extra compute; shines on repetitive
//     text (code, templated prose, retrieval-heavy prompts).
//   ModelDrafter — a replicated TransformerModel stepped greedily through an
//     IncrementalDecoder, rolled back to the committed frontier after every
//     verify round. Drafting with the target model itself yields 100%
//     acceptance (useful as a harness baseline); the intended deployment is
//     a smaller model with the same tokenizer.
//
// SpeculationController adapts the per-slot draft window to the observed
// acceptance rate, so a sequence that stops being predictable stops paying
// for rejected drafts.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "transformer/decoder.h"
#include "transformer/model.h"

namespace voltage {

class Drafter {
 public:
  virtual ~Drafter() = default;

  // Starts a new sequence from its prompt, discarding prior state.
  virtual void begin(std::span<const TokenId> prompt) = 0;

  // Feeds tokens the verifier committed (in order). Every committed token
  // is observed exactly once; drafts are never observed.
  virtual void observe(std::span<const TokenId> tokens) = 0;

  // Proposes up to `max_tokens` continuation tokens. May return fewer —
  // including none, when the drafter has no confident guess (the verify
  // round then degenerates to a normal single-token step).
  [[nodiscard]] virtual std::vector<TokenId> draft(std::size_t max_tokens) = 0;
};

// N-gram prompt-lookup drafter: finds the longest suffix of the history
// (up to `max_ngram` tokens) that re-occurs earlier, and proposes the
// tokens that followed the earlier occurrence. Most recent match wins.
class PromptLookupDrafter final : public Drafter {
 public:
  explicit PromptLookupDrafter(std::size_t max_ngram = 4);

  void begin(std::span<const TokenId> prompt) override;
  void observe(std::span<const TokenId> tokens) override;
  [[nodiscard]] std::vector<TokenId> draft(std::size_t max_tokens) override;

 private:
  std::size_t max_ngram_;
  std::vector<TokenId> history_;
};

// Greedy draft chain through a (usually smaller) replicated model. Keeps an
// IncrementalDecoder in lock-step with the committed sequence; draft() runs
// ahead greedily and rolls the decoder's caches back to the committed
// frontier, so rejected guesses leave no trace.
class ModelDrafter final : public Drafter {
 public:
  // `model` must outlive the drafter and share the target's tokenizer space.
  explicit ModelDrafter(const TransformerModel& model);

  void begin(std::span<const TokenId> prompt) override;
  void observe(std::span<const TokenId> tokens) override;
  [[nodiscard]] std::vector<TokenId> draft(std::size_t max_tokens) override;

 private:
  IncrementalDecoder decoder_;
  std::size_t max_positions_;
  // Greedy choice implied by the last committed token — the head of every
  // draft chain. Empty until begin() has run.
  Tensor last_logits_;
  bool primed_ = false;
};

// Adapts the draft window to the slot's recent acceptance rate (EWMA over
// verify rounds). A hot streak widens the window toward `max_drafts`; a
// cold one shrinks it toward 1 so the slot stops wasting verify compute.
class SpeculationController {
 public:
  explicit SpeculationController(std::size_t max_drafts = 4,
                                 double smoothing = 0.25);

  // Drafts to request for the next round (0 when speculation is disabled
  // via max_drafts == 0, else in [1, max_drafts]).
  [[nodiscard]] std::size_t window() const noexcept;

  // Feeds one verify round's outcome; rounds that verified no drafts
  // (drafted == 0) carry no acceptance signal and are ignored.
  void update(std::size_t accepted, std::size_t drafted) noexcept;

  [[nodiscard]] double acceptance_rate() const noexcept { return rate_; }
  [[nodiscard]] std::size_t max_drafts() const noexcept { return max_drafts_; }

 private:
  std::size_t max_drafts_;
  double smoothing_;
  double rate_ = 1.0;  // optimistic start: probe the full window first
};

}  // namespace voltage
