#include "runtime/pipeline_runtime.h"

#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_pool.h"
#include "runtime/failure.h"
#include "tensor/serialize.h"

namespace voltage {

namespace {

constexpr MessageTag kTagRequestBase = 1;

}  // namespace

PipelineRuntime::PipelineRuntime(const TransformerModel& model,
                                 std::size_t devices, TransportKind transport)
    : PipelineRuntime(
          model, devices,
          make_transport(transport, devices == 0 ? 1 : devices + 1)) {}

PipelineRuntime::PipelineRuntime(const TransformerModel& model,
                                 std::size_t devices,
                                 std::unique_ptr<Transport> transport)
    : model_(model), devices_(devices), transport_(std::move(transport)) {
  if (devices == 0) {
    throw std::invalid_argument("PipelineRuntime: zero devices");
  }
  if (devices > model.spec().num_layers) {
    throw std::invalid_argument(
        "PipelineRuntime: more stages than transformer layers");
  }
  if (transport_->devices() != devices + 1) {
    throw std::invalid_argument(
        "PipelineRuntime: transport must have one endpoint per stage plus "
        "the terminal");
  }
}

Range PipelineRuntime::stage_layers(std::size_t stage) const {
  const std::size_t layers = model_.spec().num_layers;
  return Range{.begin = layers * stage / devices_,
               .end = layers * (stage + 1) / devices_};
}

void PipelineRuntime::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  for (std::size_t i = 0; i < devices_; ++i) {
    tracer_->set_track_name(static_cast<obs::TrackId>(i),
                            "stage " + std::to_string(i));
  }
  tracer_->set_track_name(static_cast<obs::TrackId>(devices_), "terminal");
}

std::vector<Tensor> PipelineRuntime::infer_batch(
    std::span<const InferenceInput> requests) {
  const std::size_t k = devices_;
  const DeviceId terminal = k;
  const auto layers = model_.layers();

  std::vector<std::exception_ptr> errors(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (std::size_t stage = 0; stage < k; ++stage) {
    threads.emplace_back([&, stage] {
      const obs::ThreadTracerScope tracer_scope(tracer_);
      const obs::ThreadTrackScope track_scope(
          static_cast<obs::TrackId>(stage));
      // Stages are the parallelism; keep each stage's kernels
      // single-threaded so K stages don't oversubscribe the host.
      const IntraOpScope intra_scope(1);
      try {
        const Range mine = stage_layers(stage);
        const DeviceId upstream = stage == 0 ? terminal : stage - 1;
        const DeviceId downstream = stage + 1 == k ? terminal : stage + 1;
        for (std::size_t r = 0; r < requests.size(); ++r) {
          const MessageTag tag = kTagRequestBase + r;
          Tensor x(0, 0);
          {
            // Receiving adopts the request's trace id, so the stage span
            // below and the downstream send share it.
            obs::TraceSpan span(tracer_, "recv_activation", "comm",
                                static_cast<obs::TrackId>(stage));
            span.device(static_cast<std::int64_t>(stage))
                .request(static_cast<std::int64_t>(r));
            x = tensor_from_payload(
                transport_->recv(stage, upstream, tag).payload);
          }
          {
            obs::TraceSpan span(tracer_, "stage", "compute",
                                static_cast<obs::TrackId>(stage));
            span.device(static_cast<std::int64_t>(stage))
                .request(static_cast<std::int64_t>(r));
            for (std::size_t l = mine.begin; l < mine.end; ++l) {
              x = layers[l].forward(x);
            }
          }
          Payload payload = to_bytes(x);
          obs::TraceSpan span(tracer_, "send_activation", "comm",
                              static_cast<obs::TrackId>(stage));
          span.device(static_cast<std::int64_t>(stage))
              .request(static_cast<std::int64_t>(r))
              .bytes(static_cast<std::int64_t>(payload.size()));
          transport_->send(Message{.source = stage,
                                   .destination = downstream,
                                   .tag = tag,
                                   .payload = std::move(payload)});
        }
      } catch (...) {
        errors[stage] = std::current_exception();
        // Poison the fabric: upstream/downstream stages and the terminal
        // block on this stage's sends, so a dead stage must unwedge them.
        detail::poison(*transport_, "stage " + std::to_string(stage),
                       errors[stage]);
      }
    });
  }

  // Terminal: pre-process and inject every request, then collect results
  // in order. Injection does not wait for completions, so the stages fill.
  const obs::ThreadTracerScope tracer_scope(tracer_);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal));
  std::vector<Tensor> results(requests.size());
  std::exception_ptr terminal_error;
  try {
    for (std::size_t r = 0; r < requests.size(); ++r) {
      // One trace id per injected request (or the caller's ambient id for
      // all of them, e.g. under a server's per-request scope): the stages
      // adopt it from the activation they receive.
      const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
      const Tensor features = std::visit(
          [&](const auto& input) {
            if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                         Image>) {
              return model_.preprocess(input);
            } else {
              return model_.preprocess(
                  std::span<const TokenId>(input.data(), input.size()));
            }
          },
          requests[r]);
      Payload payload = to_bytes(features);
      obs::TraceSpan span(tracer_, "send_activation", "comm",
                          static_cast<obs::TrackId>(terminal));
      span.device(static_cast<std::int64_t>(terminal))
          .request(static_cast<std::int64_t>(r))
          .bytes(static_cast<std::int64_t>(payload.size()));
      transport_->send(Message{.source = terminal,
                               .destination = 0,
                               .tag = kTagRequestBase + r,
                               .payload = std::move(payload)});
    }
    for (std::size_t r = 0; r < requests.size(); ++r) {
      Tensor hidden(0, 0);
      {
        obs::TraceSpan span(tracer_, "collect_final", "comm",
                            static_cast<obs::TrackId>(terminal));
        span.device(static_cast<std::int64_t>(terminal))
            .request(static_cast<std::int64_t>(r));
        hidden = tensor_from_payload(
            transport_->recv(terminal, k - 1, kTagRequestBase + r).payload);
      }
      results[r] = model_.postprocess(hidden);
    }
  } catch (...) {
    terminal_error = std::current_exception();
    detail::poison(*transport_, "terminal", terminal_error);
  }

  for (std::thread& t : threads) t.join();
  detail::rethrow_failure(errors, terminal_error);
  return results;
}

Tensor PipelineRuntime::infer(std::span<const TokenId> tokens) {
  const InferenceInput request =
      std::vector<TokenId>(tokens.begin(), tokens.end());
  return infer_batch(std::span<const InferenceInput>(&request, 1)).front();
}

Tensor PipelineRuntime::infer(const Image& image) {
  const InferenceInput request = image;
  return infer_batch(std::span<const InferenceInput>(&request, 1)).front();
}

}  // namespace voltage
