#include "runtime/pipeline_runtime.h"

#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_pool.h"
#include "runtime/failure.h"
#include "tensor/serialize.h"

namespace voltage {

namespace {

constexpr MessageTag kTagRequestBase = 1;

}  // namespace

PipelineRuntime::PipelineRuntime(const TransformerModel& model,
                                 std::size_t devices, TransportKind transport)
    : PipelineRuntime(
          model, devices,
          make_transport(transport, devices == 0 ? 1 : devices + 1)) {}

PipelineRuntime::PipelineRuntime(const TransformerModel& model,
                                 std::size_t devices,
                                 std::unique_ptr<Transport> transport)
    : model_(model), devices_(devices), transport_(std::move(transport)) {
  if (devices == 0) {
    throw std::invalid_argument("PipelineRuntime: zero devices");
  }
  if (devices > model.spec().num_layers) {
    throw std::invalid_argument(
        "PipelineRuntime: more stages than transformer layers");
  }
  if (transport_->devices() != devices + 1) {
    throw std::invalid_argument(
        "PipelineRuntime: transport must have one endpoint per stage plus "
        "the terminal");
  }
}

Range PipelineRuntime::stage_layers(std::size_t stage) const {
  const std::size_t layers = model_.spec().num_layers;
  return Range{.begin = layers * stage / devices_,
               .end = layers * (stage + 1) / devices_};
}

std::vector<Tensor> PipelineRuntime::infer_batch(
    std::span<const InferenceInput> requests) {
  const std::size_t k = devices_;
  const DeviceId terminal = k;
  const auto layers = model_.layers();

  std::vector<std::exception_ptr> errors(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (std::size_t stage = 0; stage < k; ++stage) {
    threads.emplace_back([&, stage] {
      // Stages are the parallelism; keep each stage's kernels
      // single-threaded so K stages don't oversubscribe the host.
      const IntraOpScope intra_scope(1);
      try {
        const Range mine = stage_layers(stage);
        const DeviceId upstream = stage == 0 ? terminal : stage - 1;
        const DeviceId downstream = stage + 1 == k ? terminal : stage + 1;
        for (std::size_t r = 0; r < requests.size(); ++r) {
          const MessageTag tag = kTagRequestBase + r;
          Tensor x = tensor_from_payload(
              transport_->recv(stage, upstream, tag).payload);
          for (std::size_t l = mine.begin; l < mine.end; ++l) {
            x = layers[l].forward(x);
          }
          transport_->send(Message{.source = stage,
                                   .destination = downstream,
                                   .tag = tag,
                                   .payload = to_bytes(x)});
        }
      } catch (...) {
        errors[stage] = std::current_exception();
        // Poison the fabric: upstream/downstream stages and the terminal
        // block on this stage's sends, so a dead stage must unwedge them.
        detail::poison(*transport_, "stage " + std::to_string(stage),
                       errors[stage]);
      }
    });
  }

  // Terminal: pre-process and inject every request, then collect results
  // in order. Injection does not wait for completions, so the stages fill.
  std::vector<Tensor> results(requests.size());
  std::exception_ptr terminal_error;
  try {
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const Tensor features = std::visit(
          [&](const auto& input) {
            if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                         Image>) {
              return model_.preprocess(input);
            } else {
              return model_.preprocess(
                  std::span<const TokenId>(input.data(), input.size()));
            }
          },
          requests[r]);
      transport_->send(Message{.source = terminal,
                               .destination = 0,
                               .tag = kTagRequestBase + r,
                               .payload = to_bytes(features)});
    }
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const Tensor hidden = tensor_from_payload(
          transport_->recv(terminal, k - 1, kTagRequestBase + r).payload);
      results[r] = model_.postprocess(hidden);
    }
  } catch (...) {
    terminal_error = std::current_exception();
    detail::poison(*transport_, "terminal", terminal_error);
  }

  for (std::thread& t : threads) t.join();
  detail::rethrow_failure(errors, terminal_error);
  return results;
}

Tensor PipelineRuntime::infer(std::span<const TokenId> tokens) {
  const InferenceInput request =
      std::vector<TokenId>(tokens.begin(), tokens.end());
  return infer_batch(std::span<const InferenceInput>(&request, 1)).front();
}

Tensor PipelineRuntime::infer(const Image& image) {
  const InferenceInput request = image;
  return infer_batch(std::span<const InferenceInput>(&request, 1)).front();
}

}  // namespace voltage
