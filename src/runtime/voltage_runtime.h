// Real (threaded) execution of distributed inference — paper Algorithm 2.
//
// Device k = worker thread k; the calling thread acts as the terminal
// device. All intermediate results travel serialized through the Fabric, so
// the traffic counters measure true wire volume. Weights are conceptually
// replicated on every device (the paper's deployment); in-process we share
// the one read-only model.
#pragma once

#include <span>

#include <functional>
#include <memory>

#include "net/quant_codec.h"
#include "net/transport.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/order.h"
#include "partition/schedule.h"
#include "partition/scheme.h"
#include "quant/quantized_stack.h"
#include "transformer/model.h"

namespace voltage {

// Computes one layer's output partition T_p(x). The default executor runs
// float Algorithm 1 on the model's weights; alternatives swap the kernel
// while keeping the distribution protocol (e.g. the INT8 layers from
// src/quant, or a custom attention variant). Called concurrently from all
// device threads — must be thread-safe and read-only.
using PartitionExecutor = std::function<Tensor(
    std::size_t layer, const Tensor& x, Range p, OrderPolicy policy)>;

class VoltageRuntime {
 public:
  // `scheme.devices()` worker devices will be simulated as threads; every
  // layer shares the scheme (the paper's default). `transport` picks the
  // wire: in-memory mailboxes or a mesh of real kernel sockets.
  VoltageRuntime(const TransformerModel& model, PartitionScheme scheme,
                 OrderPolicy policy = OrderPolicy::kAdaptive,
                 TransportKind transport = TransportKind::kInMemory);

  // Per-layer partition schedule (paper §V-B future work): each layer may
  // distribute positions differently. `schedule.num_layers()` must match
  // the model's layer count.
  VoltageRuntime(const TransformerModel& model, LayerSchedule schedule,
                 OrderPolicy policy = OrderPolicy::kAdaptive,
                 TransportKind transport = TransportKind::kInMemory);

  // Bring-your-own transport (e.g. a ChaosTransport for fault-injection
  // tests). Must have devices() == scheme devices + 1 (the terminal).
  VoltageRuntime(const TransformerModel& model, LayerSchedule schedule,
                 OrderPolicy policy, std::unique_ptr<Transport> transport);

  // End-to-end distributed inference; returns the task logits.
  [[nodiscard]] Tensor infer(std::span<const TokenId> tokens);
  [[nodiscard]] Tensor infer(const Image& image);

  // Byte-accurate traffic since construction (worker ids 0..K-1, terminal
  // id K).
  [[nodiscard]] const Transport& fabric() const noexcept {
    return *transport_;
  }
  [[nodiscard]] DeviceId terminal_id() const noexcept {
    return schedule_.devices();
  }
  [[nodiscard]] const LayerSchedule& schedule() const noexcept {
    return schedule_;
  }

  // Swaps the per-layer kernel (see PartitionExecutor). Pass {} to restore
  // the default float Algorithm 1 path.
  void set_partition_executor(PartitionExecutor executor) {
    executor_ = std::move(executor);
  }

  // Attaches a span tracer (nullptr detaches — the default). When attached,
  // every run emits per-device per-layer "layer" spans tagged with the
  // attention order Theorem 2 selected, embed/attention/ffn phase spans, and
  // all-gather/broadcast/final-send communication spans with byte counts.
  // When detached, instrumentation is a null-pointer check per site: no
  // clock reads, no allocation, no locking.
  void set_tracer(obs::Tracer* tracer);
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  // Attaches transport.* counters (see Transport::set_metrics).
  void set_metrics(obs::MetricsRegistry* metrics) {
    transport_->set_metrics(metrics);
  }

  // Attaches the live telemetry hub (nullptr detaches). When attached,
  // every run reports each device thread's busy time so the hub can expose
  // windowed per-device utilization.
  void set_telemetry(obs::TelemetryHub* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  // Attaches the crash-dump flight recorder to the transport (see
  // Transport::set_flight_recorder): the last wire events are dumped
  // automatically when the transport is poisoned/closed.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    transport_->set_flight_recorder(recorder);
  }

  // Comm/compute overlap (default on): while a layer's all-gather is in
  // flight, each device computes the next layer's attention prologue from
  // the rows it already owns (Eq. (8)'s Q-chain depends only on x_p). Off
  // switches to the plain gather-then-compute schedule — useful for A/B
  // timing; results are bitwise identical either way. Overlap is skipped
  // automatically when a custom PartitionExecutor is installed or when the
  // next layer's partition is not covered by this device's current rows.
  void set_overlap(bool enabled) noexcept { overlap_ = enabled; }
  [[nodiscard]] bool overlap() const noexcept { return overlap_; }

  // Per-request receive budget in seconds (default 0: wait forever). When
  // set, every blocking receive of a run — broadcast, layer gathers, the
  // terminal's final collect — shares one absolute deadline computed at
  // infer() entry, so a wedged-but-alive peer surfaces as RecvTimeoutError
  // within the budget instead of hanging the mesh. The timing-out thread
  // poisons the transport, so every other thread unwinds too.
  void set_recv_timeout(double seconds) noexcept {
    recv_timeout_seconds_ = seconds;
  }
  [[nodiscard]] double recv_timeout() const noexcept {
    return recv_timeout_seconds_;
  }

  // The installed per-layer kernel (empty = default float path). Exposed so
  // a serving layer that rebuilds a poisoned runtime can carry it over.
  [[nodiscard]] const PartitionExecutor& partition_executor() const noexcept {
    return executor_;
  }

  // Precision::kInt8 moves the hot paths to the quantized plane: layer
  // compute runs the int8 stack (quant/quantized_stack.h) and the per-layer
  // all-gathers ship int8 + per-row scales (net/quant_codec.h), ~4x fewer
  // wire bytes. The feature broadcast and final partition sends stay fp32
  // (one-time O(NF) cost; the L gathers dominate). Ignored while a custom
  // PartitionExecutor is installed. Quantizes the model once on first use;
  // call between requests, like set_recv_timeout.
  void set_precision(Precision precision);
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  // Intra-op thread budget for each device thread's kernels (default 1:
  // device threads already are the parallelism, and K devices times a
  // many-way GEMM split would oversubscribe the host). Raising it lets a
  // device use `n` pool threads per GEMM / attention op — results are
  // bitwise identical at any value. 0 is clamped to 1.
  void set_intra_op_threads(std::size_t n) noexcept {
    intra_op_threads_ = n == 0 ? 1 : n;
  }
  [[nodiscard]] std::size_t intra_op_threads() const noexcept {
    return intra_op_threads_;
  }

 private:
  [[nodiscard]] Tensor run(Tensor features);

  const TransformerModel& model_;
  LayerSchedule schedule_;
  OrderPolicy policy_;
  PartitionExecutor executor_;  // empty = default float path
  Precision precision_ = Precision::kFp32;
  std::unique_ptr<QuantizedStack> qstack_;  // built by set_precision(kInt8)
  std::unique_ptr<Transport> transport_;
  obs::Tracer* tracer_ = nullptr;  // non-owning; nullptr = tracing off
  obs::TelemetryHub* telemetry_ = nullptr;  // non-owning; nullptr = off
  std::size_t intra_op_threads_ = 1;
  double recv_timeout_seconds_ = 0.0;  // <= 0: no deadline
  bool overlap_ = true;
};

}  // namespace voltage
