#include "runtime/tensor_parallel_runtime.h"

#include <exception>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "collective/collectives.h"
#include "core/thread_pool.h"
#include "runtime/failure.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "transformer/attention.h"
#include "transformer/ffn.h"

namespace voltage {

namespace {

constexpr MessageTag kTagBroadcast = 1;
constexpr MessageTag kTagFinal = 2;
// Each ring all-reduce consumes up to 2*(K-1) consecutive tags; stride the
// per-layer bases far apart.
constexpr MessageTag kTagLayerBase = 1024;
constexpr MessageTag kTagLayerStride = 64;

Range even_shard(std::size_t total, std::size_t parts, std::size_t index) {
  return Range{.begin = total * index / parts,
               .end = total * (index + 1) / parts};
}

}  // namespace

TensorParallelRuntime::TensorParallelRuntime(const TransformerModel& model,
                                             std::size_t devices,
                                             TransportKind transport,
                                             bool star_allreduce)
    : TensorParallelRuntime(
          model, devices,
          make_transport(transport, devices == 0 ? 1 : devices + 1),
          star_allreduce) {}

TensorParallelRuntime::TensorParallelRuntime(
    const TransformerModel& model, std::size_t devices,
    std::unique_ptr<Transport> transport, bool star_allreduce)
    : model_(model),
      devices_(devices),
      star_allreduce_(star_allreduce),
      transport_(std::move(transport)) {
  if (devices == 0) {
    throw std::invalid_argument("TensorParallelRuntime: zero devices");
  }
  if (devices > model.spec().layer.heads) {
    throw std::invalid_argument(
        "TensorParallelRuntime: more devices than attention heads");
  }
  if (transport_->devices() != devices + 1) {
    throw std::invalid_argument(
        "TensorParallelRuntime: transport must have one endpoint per worker "
        "plus the terminal");
  }
}

Range TensorParallelRuntime::head_shard(std::size_t device) const {
  return even_shard(model_.spec().layer.heads, devices_, device);
}

Range TensorParallelRuntime::ffn_shard(std::size_t device) const {
  return even_shard(model_.spec().layer.ffn_dim, devices_, device);
}

void TensorParallelRuntime::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  for (std::size_t i = 0; i < devices_; ++i) {
    tracer_->set_track_name(static_cast<obs::TrackId>(i),
                            "device " + std::to_string(i));
  }
  tracer_->set_track_name(static_cast<obs::TrackId>(terminal_id()),
                          "terminal");
}

Tensor TensorParallelRuntime::infer(std::span<const TokenId> tokens) {
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  return run(model_.preprocess(tokens));
}

Tensor TensorParallelRuntime::infer(const Image& image) {
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  return run(model_.preprocess(image));
}

Tensor TensorParallelRuntime::run(Tensor features) {
  const std::size_t k = devices_;
  const std::size_t n = features.rows();
  const std::size_t f = features.cols();
  const DeviceId terminal = terminal_id();

  std::vector<DeviceId> everyone(k + 1);
  std::iota(everyone.begin(), everyone.end(), DeviceId{0});
  std::vector<DeviceId> workers(k);
  std::iota(workers.begin(), workers.end(), DeviceId{0});

  const auto layers = model_.layers();

  // Worker threads inherit the request's trace id (see infer()); their
  // collective spans and flow arrows land on per-device tracks.
  const std::uint64_t run_trace = obs::thread_trace_id();

  std::vector<std::exception_ptr> errors(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      const obs::ThreadTracerScope tracer_scope(tracer_);
      const obs::ThreadTrackScope track_scope(static_cast<obs::TrackId>(i));
      const obs::TraceIdScope trace_scope(run_trace);
      // One shard per core is the parallelism here; keep each shard's
      // kernels single-threaded so K shards don't oversubscribe the host.
      const IntraOpScope intra_scope(1);
      try {
        const Range heads = head_shard(i);
        const Range ffn_cols = ffn_shard(i);

        Tensor x(0, 0);
        broadcast(*transport_, everyone, i, k, x, kTagBroadcast);
        for (std::size_t l = 0; l < layers.size(); ++l) {
          // The whole per-layer body is one compute span; the two
          // all-reduce comm spans nest inside it (critical-path analysis
          // subtracts nested comm from compute, so nothing double-counts).
          obs::TraceSpan layer_span(tracer_, "layer", "compute",
                                    static_cast<obs::TrackId>(i));
          layer_span.device(static_cast<std::int64_t>(i))
              .layer(static_cast<std::int64_t>(l));
          const obs::ThreadLayerScope layer_scope(
              static_cast<std::int64_t>(l));
          const LayerConfig& cfg = layers[l].config();
          const LayerWeights& w = layers[l].weights();
          const MessageTag tag = kTagLayerBase + l * kTagLayerStride;

          // --- attention: own heads, matching W_O rows, partial sum ------
          Tensor partial(n, f);
          if (!heads.empty()) {
            std::vector<Tensor> outs;
            outs.reserve(heads.size());
            for (std::size_t h = heads.begin; h < heads.end; ++h) {
              outs.push_back(attention_head_full(x, w.attention.heads[h],
                                                 cfg.head_dim, cfg.causal));
            }
            const Tensor wo_rows = w.attention.wo.slice_rows(
                heads.begin * cfg.head_dim, heads.end * cfg.head_dim);
            partial = matmul(concat_cols(outs), wo_rows);
          }
          Tensor attn =
              k == 1 ? std::move(partial)
              : star_allreduce_
                  ? naive_all_reduce_sum(*transport_, workers, i,
                                         std::move(partial), tag)
                  : ring_all_reduce_sum(*transport_, workers, i,
                                        std::move(partial), tag);
          // Replicated position-wise tail of the attention block.
          add_bias_inplace(attn, w.attention.bo);
          add_inplace(attn, x);
          const Tensor y = layernorm_rows(attn, w.ln_attention.gamma,
                                          w.ln_attention.beta);

          // --- FFN: column shard of W1, row shard of W2, partial sum -----
          Tensor ffn_partial(n, f);
          if (!ffn_cols.empty()) {
            Tensor hidden = matmul(
                y, w.ffn.w1.slice_cols(ffn_cols.begin, ffn_cols.end));
            add_bias_inplace(hidden,
                             w.ffn.b1.slice_cols(ffn_cols.begin, ffn_cols.end));
            hidden = cfg.activation == Activation::kGelu ? gelu(hidden)
                                                         : relu(hidden);
            ffn_partial = matmul(
                hidden, w.ffn.w2.slice_rows(ffn_cols.begin, ffn_cols.end));
          }
          Tensor ffn =
              k == 1 ? std::move(ffn_partial)
              : star_allreduce_
                  ? naive_all_reduce_sum(*transport_, workers, i,
                                         std::move(ffn_partial),
                                         tag + kTagLayerStride / 2)
                  : ring_all_reduce_sum(*transport_, workers, i,
                                        std::move(ffn_partial),
                                        tag + kTagLayerStride / 2);
          add_bias_inplace(ffn, w.ffn.b2);
          add_inplace(ffn, y);
          x = layernorm_rows(ffn, w.ln_ffn.gamma, w.ln_ffn.beta);
        }
        // Everyone holds the full output; the first worker reports it.
        if (i == 0) {
          Payload payload = to_bytes(x);
          obs::TraceSpan span(tracer_, "send_final", "comm",
                              static_cast<obs::TrackId>(i));
          span.device(static_cast<std::int64_t>(i))
              .bytes(static_cast<std::int64_t>(payload.size()));
          transport_->send(Message{.source = i,
                               .destination = terminal,
                               .tag = kTagFinal,
                               .payload = std::move(payload)});
        }
      } catch (...) {
        errors[i] = std::current_exception();
        // Poison the fabric so shards blocked in an all-reduce and the
        // terminal blocked on the final tensor unwind instead of hanging.
        detail::poison(*transport_, "device " + std::to_string(i), errors[i]);
      }
    });
  }

  const obs::ThreadTracerScope tracer_scope(tracer_);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal));
  Tensor hidden(0, 0);
  std::exception_ptr terminal_error;
  try {
    broadcast(*transport_, everyone, k, k, features, kTagBroadcast);
    obs::TraceSpan span(tracer_, "collect_final", "comm",
                        static_cast<obs::TrackId>(terminal));
    span.device(static_cast<std::int64_t>(terminal));
    hidden =
        tensor_from_payload(transport_->recv(terminal, 0, kTagFinal).payload);
  } catch (...) {
    terminal_error = std::current_exception();
    detail::poison(*transport_, "terminal", terminal_error);
  }

  for (std::thread& t : threads) t.join();
  detail::rethrow_failure(errors, terminal_error);
  return model_.postprocess(hidden);
}

}  // namespace voltage
