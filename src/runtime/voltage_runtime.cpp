#include "runtime/voltage_runtime.h"

#include <array>
#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "collective/collectives.h"
#include "core/thread_pool.h"
#include "partition/partitioned_layer.h"
#include "runtime/failure.h"
#include "tensor/serialize.h"

namespace voltage {

namespace {

// Tag layout: one tag per layer's all-gather, well clear of the
// broadcast/final tags.
constexpr MessageTag kTagBroadcast = 1;
constexpr MessageTag kTagFinal = 2;
constexpr MessageTag kTagLayerBase = 16;

}  // namespace

VoltageRuntime::VoltageRuntime(const TransformerModel& model,
                               PartitionScheme scheme, OrderPolicy policy,
                               TransportKind transport)
    : VoltageRuntime(model,
                     LayerSchedule::uniform(std::move(scheme),
                                            model.spec().num_layers),
                     policy, transport) {}

VoltageRuntime::VoltageRuntime(const TransformerModel& model,
                               LayerSchedule schedule, OrderPolicy policy,
                               TransportKind transport)
    : VoltageRuntime(model, schedule, policy,
                     make_transport(transport, schedule.devices() + 1)) {}

VoltageRuntime::VoltageRuntime(const TransformerModel& model,
                               LayerSchedule schedule, OrderPolicy policy,
                               std::unique_ptr<Transport> transport)
    : model_(model),
      schedule_(std::move(schedule)),
      policy_(policy),
      transport_(std::move(transport)) {
  if (schedule_.num_layers() != model_.spec().num_layers) {
    throw std::invalid_argument(
        "VoltageRuntime: schedule layer count does not match the model");
  }
  if (transport_->devices() != schedule_.devices() + 1) {
    throw std::invalid_argument(
        "VoltageRuntime: transport must have one endpoint per worker plus "
        "the terminal");
  }
}

void VoltageRuntime::set_precision(Precision precision) {
  if (precision == Precision::kInt8 && qstack_ == nullptr) {
    qstack_ = std::make_unique<QuantizedStack>(model_);
  }
  precision_ = precision;
}

void VoltageRuntime::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  for (std::size_t i = 0; i < schedule_.devices(); ++i) {
    tracer_->set_track_name(static_cast<obs::TrackId>(i),
                            "device " + std::to_string(i));
  }
  tracer_->set_track_name(static_cast<obs::TrackId>(terminal_id()),
                          "terminal");
}

Tensor VoltageRuntime::infer(std::span<const TokenId> tokens) {
  // Adopt the caller's request trace id (e.g. the server's per-request id)
  // or mint a fresh one, so every span and wire message of this run — on
  // all K device threads — carries the same causal id.
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  Tensor features(0, 0);
  {
    obs::TraceSpan span(tracer_, "embed", "compute",
                        static_cast<obs::TrackId>(terminal_id()));
    span.device(static_cast<std::int64_t>(terminal_id()));
    features = model_.preprocess(tokens);
  }
  return run(std::move(features));
}

Tensor VoltageRuntime::infer(const Image& image) {
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  Tensor features(0, 0);
  {
    obs::TraceSpan span(tracer_, "embed", "compute",
                        static_cast<obs::TrackId>(terminal_id()));
    span.device(static_cast<std::int64_t>(terminal_id()));
    features = model_.preprocess(image);
  }
  return run(std::move(features));
}

Tensor VoltageRuntime::run(Tensor features) {
  const std::size_t k = schedule_.devices();
  const std::size_t n = features.rows();
  const std::size_t f = features.cols();
  const DeviceId terminal = terminal_id();
  // Per-layer position assignments (identical rows when the schedule is
  // uniform — the paper's default).
  std::vector<std::vector<Range>> ranges(schedule_.num_layers());
  for (std::size_t l = 0; l < schedule_.num_layers(); ++l) {
    ranges[l] = schedule_.scheme_for(l).ranges(n);
  }

  // Broadcast group: workers + terminal (root).
  std::vector<DeviceId> everyone(k + 1);
  std::iota(everyone.begin(), everyone.end(), DeviceId{0});
  std::vector<DeviceId> workers(k);
  std::iota(workers.begin(), workers.end(), DeviceId{0});

  const auto layers = model_.layers();

  // Attention dimensions only vary with the partition length, so the
  // Theorem-2 annotation on each layer span can be derived up front.
  const LayerConfig& config = model_.spec().layer;

  // One absolute deadline for the whole request (see set_recv_timeout);
  // default-constructed options wait forever, the pre-failure behavior.
  const RecvOptions recv_opts = RecvOptions::within(recv_timeout_seconds_);

  // The quantized plane, when selected and no custom kernel overrides it:
  // int8 layer compute + int8 gather payloads. The fp32 attention prologue
  // overlap does not apply (the int8 kernel has no prologue input).
  const bool int8 = precision_ == Precision::kInt8 && !executor_;
  const Precision wire = int8 ? Precision::kInt8 : Precision::kFp32;

  // Device threads start with an empty ambient trace id; hand them the
  // request's so their spans and sends are stamped even before the first
  // receive would have adopted it.
  const std::uint64_t run_trace = obs::thread_trace_id();

  std::vector<std::exception_ptr> errors(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      // Device thread i publishes the tracer and its track so the
      // collectives and kernels below emit onto the right timeline row, and
      // pins its kernels' intra-op budget (bitwise-neutral; see gemm.h).
      const obs::ThreadTracerScope tracer_scope(tracer_);
      const obs::ThreadTrackScope track_scope(static_cast<obs::TrackId>(i));
      const obs::TraceIdScope trace_scope(run_trace);
      const IntraOpScope intra_scope(intra_op_threads_);
      const obs::Micros busy_start =
          telemetry_ != nullptr ? obs::now_us() : 0;
      try {
        // Algorithm 2, step 3: receive the distributed input features.
        Tensor x(0, 0);
        broadcast(*transport_, everyone, i, k, x, kTagBroadcast, recv_opts);
        // Comm-path buffers, allocated once and reused for every layer:
        // two full-sequence buffers (gather l writes seq[l%2] while layer l
        // still reads its input from seq[(l-1)%2]) and two shared partition
        // holders whose storage outgoing payloads borrow. holders[l%2] is
        // safe to reuse at layer l+2: completing gather l+1 means every peer
        // finished gather l first, i.e. consumed the layer-l message, and
        // that consumption happens-before our reuse via the mailbox mutex
        // chain. The use_count check below is a defensive fallback (e.g. a
        // slow terminal still holding the final payload) — it never fires in
        // the steady-state layer loop, which therefore performs zero heap
        // allocations on the comm path.
        std::array<Tensor, 2> seq{Tensor(n, f), Tensor(n, f)};
        std::array<std::shared_ptr<Tensor>, 2> holders{
            std::make_shared<Tensor>(0, 0), std::make_shared<Tensor>(0, 0)};
        const Tensor* input = &x;
        AttentionPrologue prologue;
        bool have_prologue = false;
        for (std::size_t l = 0; l < layers.size(); ++l) {
          const obs::ThreadLayerScope layer_scope(
              static_cast<std::int64_t>(l));
          // Step 6: compute the assigned output partition (Algorithm 1,
          // or whatever kernel the executor substitutes). If the previous
          // iteration overlapped this layer's attention prologue with its
          // gather, resume from it — bitwise-identical chains either way.
          Tensor part(0, 0);
          {
            obs::TraceSpan span(tracer_, "layer", "compute",
                                static_cast<obs::TrackId>(i));
            if (span.enabled()) {
              const AttentionDims dims{.n = n,
                                       .p = ranges[l][i].size(),
                                       .f = config.hidden,
                                       .fh = config.head_dim};
              span.device(static_cast<std::int64_t>(i))
                  .layer(static_cast<std::int64_t>(l))
                  .tag(to_string(select_order(policy_, dims)));
            }
            part = executor_ ? executor_(l, *input, ranges[l][i], policy_)
                 : int8     ? qstack_->partition_forward(l, *input,
                                                         ranges[l][i], policy_)
                            : partitioned_layer_forward(
                                  layers[l], *input, ranges[l][i], policy_,
                                  have_prologue ? &prologue : nullptr);
          }
          have_prologue = false;
          // Park the partition in a shared holder; outgoing messages borrow
          // its rows instead of serializing them.
          auto& holder = holders[l % 2];
          if (holder.use_count() == 1) {
            *holder = std::move(part);
          } else {
            holder = std::make_shared<Tensor>(std::move(part));
          }
          if (l + 1 == layers.size()) {
            // Step 8: last layer goes straight to the terminal.
            Payload payload = tensor_payload_view(holder);
            obs::TraceSpan span(tracer_, "send_final", "comm",
                                static_cast<obs::TrackId>(i));
            span.device(static_cast<std::int64_t>(i))
                .layer(static_cast<std::int64_t>(l))
                .bytes(static_cast<std::int64_t>(payload.size() +
                                                 kWireFrameBytes));
            transport_->send(Message{.source = i,
                                     .destination = terminal,
                                     .tag = kTagFinal,
                                     .payload = std::move(payload)});
          } else {
            // Steps 10-13: post the zero-copy gather, overlap the next
            // layer's Q-chain (which reads only rows this device already
            // owns) with the in-flight peer rows, then block for the rest.
            const Range own = ranges[l][i];
            AllGatherInto gather(*transport_, workers, i, holder, ranges[l],
                                 seq[l % 2], kTagLayerBase + l, recv_opts,
                                 wire);
            const Range next = ranges[l + 1][i];
            if (overlap_ && !executor_ && !int8 && !next.empty() &&
                own.begin <= next.begin && next.end <= own.end) {
              obs::TraceSpan span(tracer_, "overlap_compute", "compute",
                                  static_cast<obs::TrackId>(i));
              span.device(static_cast<std::int64_t>(i))
                  .layer(static_cast<std::int64_t>(l + 1));
              const Tensor xp = holder->slice_rows(next.begin - own.begin,
                                                   next.end - own.begin);
              prologue = attention_prologue(xp, n, next,
                                            layers[l + 1].weights().attention,
                                            config, policy_);
              have_prologue = true;
            }
            gather.wait();
            input = &seq[l % 2];
          }
        }
      } catch (...) {
        errors[i] = std::current_exception();
        // Containment: poison the fabric so peers blocked in a collective
        // and the terminal blocked in recv_any unwind with a descriptive
        // error instead of deadlocking on a device that will never send.
        detail::poison(*transport_, "device " + std::to_string(i), errors[i]);
      }
      if (telemetry_ != nullptr) {
        telemetry_->add_device_busy(i, obs::now_us() - busy_start);
      }
    });
  }

  // Terminal role: distribute features, collect final partitions.
  const obs::ThreadTracerScope tracer_scope(tracer_);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal));
  Tensor hidden(n, f);
  std::exception_ptr terminal_error;
  try {
    broadcast(*transport_, everyone, k, k, features, kTagBroadcast, recv_opts);
    {
      // Final partitions land in arrival order, each deserialized straight
      // into the assembled hidden buffer at its range's row offset.
      obs::TraceSpan span(tracer_, "collect_final", "comm",
                          static_cast<obs::TrackId>(terminal));
      span.device(static_cast<std::int64_t>(terminal));
      const std::vector<Range>& final_ranges = ranges.back();
      std::vector<bool> seen(k, false);
      for (std::size_t received = 0; received < k; ++received) {
        const Message m = transport_->recv_any(terminal, kTagFinal, recv_opts);
        if (m.source >= k || seen[m.source]) {
          throw std::runtime_error("VoltageRuntime: unexpected final sender");
        }
        seen[m.source] = true;
        const WireShape shape =
            deserialize_into(m.payload, hidden, final_ranges[m.source].begin);
        if (shape.rows != final_ranges[m.source].size()) {
          throw std::runtime_error(
              "VoltageRuntime: final partition size mismatch");
        }
      }
    }
  } catch (...) {
    // Poison before joining: device threads may still be blocked in a
    // gather (e.g. when the terminal's deadline fired first) and would
    // otherwise never let the join below finish.
    terminal_error = std::current_exception();
    detail::poison(*transport_, "terminal", terminal_error);
  }

  for (std::thread& t : threads) t.join();
  detail::rethrow_failure(errors, terminal_error);
  // Steps 16-17: terminal post-processes into the user-facing result.
  obs::TraceSpan span(tracer_, "postprocess", "compute",
                      static_cast<obs::TrackId>(terminal));
  span.device(static_cast<std::int64_t>(terminal));
  return model_.postprocess(hidden);
}

}  // namespace voltage
