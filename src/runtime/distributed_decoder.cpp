#include "runtime/distributed_decoder.h"

#include <algorithm>
#include <array>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <string>

#include "collective/collectives.h"
#include "collective/softmax_merge.h"
#include "core/thread_pool.h"
#include "partition/partitioned_layer.h"
#include "runtime/failure.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "transformer/ffn.h"

namespace voltage {

namespace {

// Command protocol: the terminal broadcasts one [1 x kCmdCols] (or, for an
// fp32 step, [1 x kCmdCols+F] with the embedded token row appended) tensor
// per call. Floats carry the fields exactly — positions and opcodes are tiny
// integers, far below 2^24. Column 2 flags the int8 plane for this command;
// an int8 step keeps the command at kCmdCols and ships the token row as a
// separate quantized broadcast on kTagToken (per-row scales don't mix with
// opcodes).
constexpr std::size_t kCmdCols = 4;  // {opcode, arg, int8_flag, timeout_s}
constexpr float kOpPrime = 1.0F;
constexpr float kOpStep = 2.0F;
constexpr float kOpShutdown = 3.0F;
constexpr float kOpRefresh = 4.0F;  // re-read tracer_; no other effect

// Tag layout. Commands, prefill features, the final row and the int8 step
// token row live on fixed tags; each layer gets one prefill-gather tag and a
// pair of merge tags (softmax_merge uses tag and tag+1). Reusing tags across
// steps is safe: transport matching is FIFO per (source, tag).
constexpr MessageTag kTagCmd = 1;
constexpr MessageTag kTagFeatures = 2;
constexpr MessageTag kTagFinal = 4;
constexpr MessageTag kTagToken = 5;
constexpr MessageTag kTagPrefillGatherBase = 64;
constexpr MessageTag kTagMergeBase = 4096;

}  // namespace

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       TransportKind transport)
    : DistributedDecoder(model, scheme, policy,
                         make_transport(transport, scheme.devices() + 1)) {}

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       std::unique_ptr<Transport> transport)
    : model_(model),
      scheme_(std::move(scheme)),
      policy_(policy),
      transport_(std::move(transport)) {
  if (model_.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("DistributedDecoder: needs a causal LM");
  }
  const std::size_t k = scheme_.devices();
  if (transport_->devices() != k + 1) {
    throw std::invalid_argument(
        "DistributedDecoder: transport must have one endpoint per worker "
        "plus the terminal");
  }
  everyone_.resize(k + 1);
  std::iota(everyone_.begin(), everyone_.end(), DeviceId{0});
  workers_.resize(k);
  std::iota(workers_.begin(), workers_.end(), DeviceId{0});
  errors_.resize(k);
  threads_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

DistributedDecoder::~DistributedDecoder() {
  if (!dead_) {
    try {
      // Flow-free but byte-accounted, like the set_tracer handshake: the
      // shutdown broadcast's comm span keeps Σ comm-span bytes equal to
      // the transport's bytes_sent through teardown.
      const obs::ThreadTracerScope scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track(
          static_cast<obs::TrackId>(terminal_id()));
      const obs::TraceIdScope untraced(0);
      Tensor cmd(1, kCmdCols);
      cmd(0, 0) = kOpShutdown;
      const std::size_t k = scheme_.devices();
      broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
    } catch (...) {
      // Mesh already poisoned (a worker died and no call noticed): the
      // workers are unwinding on their own; just make sure of it.
      detail::poison(*transport_, "terminal", std::current_exception());
    }
  }
  join_workers();
}

void DistributedDecoder::join_workers() noexcept {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void DistributedDecoder::ensure_alive() const {
  if (dead_) {
    throw std::logic_error(
        "DistributedDecoder: mesh failed; build a new decoder");
  }
}

void DistributedDecoder::fail_request() {
  std::exception_ptr terminal_error = std::current_exception();
  detail::poison(*transport_, "terminal", terminal_error);
  join_workers();
  dead_ = true;
  detail::rethrow_failure(errors_, terminal_error);
  std::rethrow_exception(terminal_error);  // unreachable: error is non-null
}

void DistributedDecoder::set_tracer(obs::Tracer* tracer) {
  obs::Tracer* const previous = tracer_.load(std::memory_order_relaxed);
  tracer_.store(tracer, std::memory_order_release);
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < scheme_.devices(); ++i) {
      tracer->set_track_name(static_cast<obs::TrackId>(i),
                             "device " + std::to_string(i));
    }
    tracer->set_track_name(static_cast<obs::TrackId>(terminal_id()),
                           "terminal");
  }
  // Workers read tracer_ at the top of their command loop, so a worker that
  // started idling before this store would serve the next command with the
  // stale tracer — its sends would open no flow arrows and its receives
  // would close none. A no-op refresh command forces every idle worker
  // through the loop top; receiving it happens-after this store, so the
  // reload is guaranteed to see the new tracer. Trace id 0 keeps the
  // handshake flow-free, but its comm span is still emitted — into the new
  // tracer on attach, the outgoing one on detach (alive: it must outlive
  // the decoder) — so Σ comm-span bytes stays equal to
  // Transport::total_stats().bytes_sent.
  if (dead_) return;
  try {
    const obs::ThreadTracerScope scope(tracer != nullptr ? tracer : previous);
    const obs::ThreadTrackScope track(
        static_cast<obs::TrackId>(terminal_id()));
    const obs::TraceIdScope untraced(0);
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpRefresh;
    const std::size_t k = scheme_.devices();
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
  } catch (...) {
    // Mesh already poisoned: the workers are unwinding and will never read
    // tracer_ again, so there is nobody left to refresh.
  }
}

void DistributedDecoder::set_precision(Precision precision) {
  if (precision == Precision::kInt8 && qstack_ == nullptr) {
    qstack_ = std::make_unique<QuantizedStack>(model_);
  }
  precision_ = precision;
}

void DistributedDecoder::set_metrics(obs::MetricsRegistry* metrics) {
  transport_->set_metrics(metrics);
  decode_tokens_ = metrics == nullptr ? nullptr
                                      : &metrics->counter("decode.tokens");
}

// ---------------------------------------------------------------------------
// Worker side

void DistributedDecoder::worker_main(std::size_t i) {
  const std::size_t k = scheme_.devices();
  std::vector<DecodeLayerCache> caches(model_.spec().num_layers);
  std::size_t prompt_len = 0;  // 0 = not primed yet
  try {
    for (;;) {
      // Publish the tracer and track *before* blocking for the command, so
      // the wait itself is a span on this device's timeline and the command
      // broadcast's flow arrow has a track to land on. Receiving the
      // command adopts its trace id (net/fabric.cpp), so everything this
      // worker emits while serving it shares the request's causal id.
      const obs::ThreadTracerScope tracer_scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track_scope(static_cast<obs::TrackId>(i));
      const obs::ThreadLayerScope layer_reset(-1);
      Tensor cmd(0, 0);
      {
        // Idle wait: no deadline — the decoder may sit unused between
        // calls. Poisoning wakes us (TransportClosedError) if the mesh
        // dies.
        obs::TraceSpan span(obs::thread_tracer(), "wait_command", "wait",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i));
        broadcast(*transport_, everyone_, i, k, cmd, kTagCmd);
      }
      if (cmd.rows() != 1 || cmd.cols() < kCmdCols) {
        throw std::runtime_error("DistributedDecoder: malformed command");
      }
      const float op = cmd(0, 0);
      if (op == kOpShutdown) return;
      if (op == kOpRefresh) continue;  // loop top re-reads tracer_
      const IntraOpScope intra_scope(
          intra_op_threads_.load(std::memory_order_relaxed));
      obs::TelemetryHub* const hub =
          telemetry_.load(std::memory_order_acquire);
      const obs::Micros busy_start = hub != nullptr ? obs::now_us() : 0;
      // Per-request deadline, fixed by the terminal at call entry and shared
      // by every blocking receive this command triggers.
      const RecvOptions options =
          RecvOptions::within(static_cast<double>(cmd(0, 3)));
      const Precision wire =
          cmd(0, 2) != 0.0F ? Precision::kInt8 : Precision::kFp32;
      if (wire == Precision::kInt8 && qstack_ == nullptr) {
        throw std::logic_error(
            "DistributedDecoder: int8 command without a quantized stack");
      }
      if (op == kOpPrime) {
        prompt_len = static_cast<std::size_t>(cmd(0, 1));
        worker_prefill(i, prompt_len, caches, options, obs::thread_tracer(),
                       wire);
      } else if (op == kOpStep) {
        if (prompt_len == 0) {
          throw std::logic_error("DistributedDecoder: step before prime");
        }
        worker_step(i, static_cast<std::size_t>(cmd(0, 1)), prompt_len,
                    caches, cmd, options, obs::thread_tracer(), wire);
      } else {
        throw std::runtime_error("DistributedDecoder: unknown opcode");
      }
      if (hub != nullptr) {
        hub->add_device_busy(i, obs::now_us() - busy_start);
      }
    }
  } catch (...) {
    errors_[i] = std::current_exception();
    detail::poison(*transport_, "device " + std::to_string(i), errors_[i]);
  }
}

void DistributedDecoder::worker_prefill(std::size_t i, std::size_t n,
                                        std::vector<DecodeLayerCache>& caches,
                                        const RecvOptions& options,
                                        obs::Tracer* tracer, Precision wire) {
  const std::size_t k = scheme_.devices();
  const bool int8 = wire == Precision::kInt8;
  const auto layers = model_.layers();
  // Algorithm 2 prefill with two decode twists: every layer banks this
  // device's input rows into its resident cache, and the last layer skips
  // the gather entirely — only the owner of row n-1 sends that single row
  // (the LM head reads nothing else).
  Tensor x(0, 0);
  broadcast(*transport_, everyone_, i, k, x, kTagFeatures, options);
  const std::size_t f = x.cols();
  const std::vector<Range> ranges = scheme_.ranges(n);
  const Range own = ranges[i];
  std::array<Tensor, 2> seq{Tensor(n, f), Tensor(n, f)};
  std::array<std::shared_ptr<Tensor>, 2> holders{
      std::make_shared<Tensor>(0, 0), std::make_shared<Tensor>(0, 0)};
  const Tensor* input = &x;
  AttentionPrologue prologue;
  bool have_prologue = false;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    // Theorem 2 at the prefill shape fixes this (layer, device)'s resident
    // form for the whole sequence: naive layers cache K/V, reordered layers
    // cache the raw input rows.
    const AttentionDims dims{.n = n,
                             .p = own.size(),
                             .f = config.hidden,
                             .fh = config.head_dim};
    const AttentionOrder resident = select_order(policy_, dims);
    caches[l].init(resident, config);
    if (!own.empty()) {
      caches[l].append(input->slice_rows(own.begin, own.end),
                       layers[l].weights().attention);
    }
    Tensor part(0, 0);
    {
      obs::TraceSpan span(tracer, "layer", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .tag(int8 ? std::string("int8 ") + to_string(resident)
                    : std::string(to_string(resident)));
      part = int8 ? qstack_->partition_forward(l, *input, own, policy_)
                  : partitioned_layer_forward(
                        layers[l], *input, own, policy_,
                        have_prologue ? &prologue : nullptr);
    }
    have_prologue = false;
    auto& holder = holders[l % 2];
    if (holder.use_count() == 1) {
      *holder = std::move(part);
    } else {
      holder = std::make_shared<Tensor>(std::move(part));
    }
    if (l + 1 == layers.size()) {
      if (own.contains(n - 1)) {
        auto last_row = std::make_shared<const Tensor>(
            holder->slice_rows(n - 1 - own.begin, n - own.begin));
        Payload payload = tensor_payload_view(std::move(last_row));
        obs::TraceSpan span(tracer, "send_final", "comm",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l))
            .bytes(static_cast<std::int64_t>(payload.size() +
                                             kWireFrameBytes));
        transport_->send(Message{.source = i,
                                 .destination = terminal_id(),
                                 .tag = kTagFinal,
                                 .payload = std::move(payload)});
      }
    } else {
      // PR-3 overlap: post the zero-copy gather, compute the next layer's
      // attention prologue from the rows already in hand (the scheme is
      // uniform across layers, so the next partition is exactly `own`),
      // then block for the peer rows. The prologue precomputes fp32 Q/K
      // projections, which the int8 plane never consumes — under kInt8 the
      // gather ships quantized rows and the overlap window stays empty.
      AllGatherInto gather(*transport_, workers_, i, holder, ranges,
                           seq[l % 2], kTagPrefillGatherBase + l, options,
                           wire);
      if (!int8 && !own.empty()) {
        obs::TraceSpan span(tracer, "overlap_compute", "compute",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l + 1));
        prologue =
            attention_prologue(*holder, n, own,
                               layers[l + 1].weights().attention,
                               layers[l + 1].config(), policy_);
        have_prologue = true;
      }
      gather.wait();
      input = &seq[l % 2];
    }
  }
}

void DistributedDecoder::worker_step(std::size_t i, std::size_t t,
                                     std::size_t prompt_len,
                                     std::vector<DecodeLayerCache>& caches,
                                     const Tensor& cmd,
                                     const RecvOptions& options,
                                     obs::Tracer* tracer, Precision wire) {
  const std::size_t k = scheme_.devices();
  const auto layers = model_.layers();
  const std::size_t f = model_.spec().layer.hidden;
  const bool int8 = wire == Precision::kInt8;
  Tensor x(1, f);
  if (int8) {
    // The token row follows the command as its own quantized broadcast;
    // every worker dequantizes the same payload, so x is identical on all
    // ranks (the redundant-tail invariant below depends on this).
    if (cmd.cols() != kCmdCols) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    Tensor row(0, 0);
    broadcast(*transport_, everyone_, i, k, row, kTagToken, options);
    if (row.rows() != 1 || row.cols() != f) {
      throw std::runtime_error("DistributedDecoder: malformed token row");
    }
    x = std::move(row);
  } else {
    if (cmd.cols() != kCmdCols + f) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    std::copy_n(cmd.row(0).data() + kCmdCols, f, x.row(0).data());
  }
  // New decode positions go round-robin, keeping cache growth balanced
  // regardless of how the prefill ratios split the prompt.
  const std::size_t owner = (t - prompt_len) % k;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    const LayerWeights& w = layers[l].weights();
    // The owner banks the new row *before* attending, so the token sees
    // itself (causal attention includes the query's own position).
    if (owner == i) caches[l].append(x, w.attention);
    Tensor partial(0, 0);
    {
      obs::TraceSpan span(tracer, "decode_attention", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .tag(to_string(caches[l].resident()));
      partial = decode_partial_attention(x, caches[l], w.attention, config);
    }
    const Tensor merged = all_reduce_softmax_merge(
        *transport_, workers_, i, l % k, partial, config.heads,
        config.head_dim, kTagMergeBase + 2 * l, options);
    // Post-attention tail on the single row, redundantly on every device —
    // all ranks leave the layer with the bitwise-identical x, so the layer
    // output is never gathered. The int8 plane runs the same tail through
    // the quantized W_O/FFN; it is deterministic, so the invariant holds.
    if (int8) {
      x = qstack_->decode_step_tail(l, merged, x);
    } else {
      Tensor attn = softmax_merge_finalize(merged, w.attention, config);
      add_inplace(attn, x);
      const Tensor y =
          layernorm_rows(attn, w.ln_attention.gamma, w.ln_attention.beta);
      Tensor ff = ffn_forward(y, w.ffn, config.activation);
      add_inplace(ff, y);
      x = layernorm_rows(ff, w.ln_ffn.gamma, w.ln_ffn.beta);
    }
  }
  if (i == 0) {
    // Every worker holds the identical final row; rank 0 reports it.
    Payload payload =
        tensor_payload_view(std::make_shared<const Tensor>(std::move(x)));
    obs::TraceSpan span(tracer, "send_final", "comm",
                        static_cast<obs::TrackId>(i));
    span.device(static_cast<std::int64_t>(i))
        .bytes(static_cast<std::int64_t>(payload.size() + kWireFrameBytes));
    transport_->send(Message{.source = i,
                             .destination = terminal_id(),
                             .tag = kTagFinal,
                             .payload = std::move(payload)});
  }
}

// ---------------------------------------------------------------------------
// Terminal side

Tensor DistributedDecoder::prime(std::span<const TokenId> prompt) {
  ensure_alive();
  if (prompt.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty prompt");
  }
  if (prompt.size() > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: prompt exceeds the window");
  }
  const std::size_t k = scheme_.devices();
  // Embed before touching the mesh: a bad token id throws here without
  // poisoning anything.
  Tensor features = model_.preprocess(prompt);
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  // One causal id per request: adopt the caller's (e.g. the server's
  // per-request scope) or mint a fresh one. The command broadcast carries
  // it to every worker.
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.prefill", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(prompt.size()));
  try {
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpPrime;
    cmd(0, 1) = static_cast<float>(prompt.size());
    cmd(0, 2) = precision_ == Precision::kInt8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    broadcast(*transport_, everyone_, k, k, features, kTagFeatures, options);
    const Tensor last_row = tensor_from_payload(
        transport_->recv_any(terminal_id(), kTagFinal, options).payload);
    position_ = prompt.size();
    primed_ = true;
    span.bytes(
        static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                  bytes_before));
    return model_.postprocess(last_row);
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::step(TokenId token) {
  ensure_alive();
  if (!primed_) {
    throw std::logic_error("DistributedDecoder: prime() before step()");
  }
  if (position_ + 1 > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: context window exhausted");
  }
  const std::size_t k = scheme_.devices();
  const std::size_t f = model_.spec().layer.hidden;
  const TokenId ids[] = {token};
  Tensor row = model_.preprocess_at(std::span<const TokenId>(ids), position_);
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.step", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(position_));
  try {
    // fp32 step command with the embedded row inlined: one broadcast
    // carries both the control word and the O(F) activation payload. The
    // int8 plane keeps the command minimal and ships the row as its own
    // quantized broadcast — F bytes plus one scale instead of 4F.
    const bool int8 = precision_ == Precision::kInt8;
    Tensor cmd(1, int8 ? kCmdCols : kCmdCols + f);
    cmd(0, 0) = kOpStep;
    cmd(0, 1) = static_cast<float>(position_);
    cmd(0, 2) = int8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    if (!int8) std::copy_n(row.row(0).data(), f, cmd.row(0).data() + kCmdCols);
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    if (int8) {
      broadcast(*transport_, everyone_, k, k, row, kTagToken, options,
                Precision::kInt8);
    }
    const Tensor last_row = tensor_from_payload(
        transport_->recv(terminal_id(), DeviceId{0}, kTagFinal, options)
            .payload);
    ++position_;
    if (decode_tokens_ != nullptr) decode_tokens_->add(1);
    span.bytes(
        static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                  bytes_before));
    return model_.postprocess(last_row);
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::extend(std::span<const TokenId> tokens) {
  if (tokens.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty extension");
  }
  Tensor logits(0, 0);
  for (const TokenId token : tokens) logits = step(token);
  return logits;
}

}  // namespace voltage
