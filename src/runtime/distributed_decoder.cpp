#include "runtime/distributed_decoder.h"

#include <algorithm>
#include <array>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <string>

#include "collective/collectives.h"
#include "collective/softmax_merge.h"
#include "core/thread_pool.h"
#include "partition/partitioned_layer.h"
#include "runtime/failure.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "transformer/ffn.h"

namespace voltage {

namespace {

// Command protocol: the terminal broadcasts one [B x kCmdCols] (or, for an
// fp32 step, [B x kCmdCols+F] with each lane's embedded token row appended)
// tensor per call — B is 1 for everything except a batched step, whose row r
// carries lane r's fields. Floats carry the fields exactly — positions,
// opcodes and slot ids are tiny integers, far below 2^24. Column 2 flags the
// int8 plane for this command; an int8 step keeps the command at kCmdCols
// and ships the token rows as one separate quantized [B x F] broadcast on
// kTagToken (per-row scales don't mix with opcodes).
constexpr std::size_t kCmdCols = 5;  // {opcode, arg, int8_flag, timeout_s,
                                     //  slot}
constexpr float kOpPrime = 1.0F;     // arg = prompt length; col 4 = slot
constexpr float kOpStep = 2.0F;      // per row: arg = position, col 4 = slot
constexpr float kOpShutdown = 3.0F;
constexpr float kOpRefresh = 4.0F;  // re-read tracer_; no other effect
constexpr float kOpRelease = 5.0F;  // col 4 = slot: free its KV blocks

// Tag layout. Commands, prefill features, the final row and the int8 step
// token rows live on fixed tags; each layer gets one prefill-gather tag and a
// pair of merge tags (softmax_merge uses tag and tag+1). Reusing tags across
// steps is safe: transport matching is FIFO per (source, tag).
constexpr MessageTag kTagCmd = 1;
constexpr MessageTag kTagFeatures = 2;
constexpr MessageTag kTagFinal = 4;
constexpr MessageTag kTagToken = 5;
constexpr MessageTag kTagPrefillGatherBase = 64;
constexpr MessageTag kTagMergeBase = 4096;

}  // namespace

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       TransportKind transport)
    : DistributedDecoder(model, scheme, policy,
                         make_transport(transport, scheme.devices() + 1)) {}

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       std::unique_ptr<Transport> transport)
    : model_(model),
      scheme_(std::move(scheme)),
      policy_(policy),
      transport_(std::move(transport)) {
  if (model_.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("DistributedDecoder: needs a causal LM");
  }
  const std::size_t k = scheme_.devices();
  if (transport_->devices() != k + 1) {
    throw std::invalid_argument(
        "DistributedDecoder: transport must have one endpoint per worker "
        "plus the terminal");
  }
  everyone_.resize(k + 1);
  std::iota(everyone_.begin(), everyone_.end(), DeviceId{0});
  workers_.resize(k);
  std::iota(workers_.begin(), workers_.end(), DeviceId{0});
  errors_.resize(k);
  threads_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

DistributedDecoder::~DistributedDecoder() {
  if (!dead_) {
    try {
      // Flow-free but byte-accounted, like the set_tracer handshake: the
      // shutdown broadcast's comm span keeps Σ comm-span bytes equal to
      // the transport's bytes_sent through teardown.
      const obs::ThreadTracerScope scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track(
          static_cast<obs::TrackId>(terminal_id()));
      const obs::TraceIdScope untraced(0);
      Tensor cmd(1, kCmdCols);
      cmd(0, 0) = kOpShutdown;
      const std::size_t k = scheme_.devices();
      broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
    } catch (...) {
      // Mesh already poisoned (a worker died and no call noticed): the
      // workers are unwinding on their own; just make sure of it.
      detail::poison(*transport_, "terminal", std::current_exception());
    }
  }
  join_workers();
}

void DistributedDecoder::join_workers() noexcept {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void DistributedDecoder::ensure_alive() const {
  if (dead_) {
    throw std::logic_error(
        "DistributedDecoder: mesh failed; build a new decoder");
  }
}

void DistributedDecoder::fail_request() {
  std::exception_ptr terminal_error = std::current_exception();
  detail::poison(*transport_, "terminal", terminal_error);
  join_workers();
  dead_ = true;
  detail::rethrow_failure(errors_, terminal_error);
  std::rethrow_exception(terminal_error);  // unreachable: error is non-null
}

void DistributedDecoder::set_tracer(obs::Tracer* tracer) {
  obs::Tracer* const previous = tracer_.load(std::memory_order_relaxed);
  tracer_.store(tracer, std::memory_order_release);
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < scheme_.devices(); ++i) {
      tracer->set_track_name(static_cast<obs::TrackId>(i),
                             "device " + std::to_string(i));
    }
    tracer->set_track_name(static_cast<obs::TrackId>(terminal_id()),
                           "terminal");
  }
  // Workers read tracer_ at the top of their command loop, so a worker that
  // started idling before this store would serve the next command with the
  // stale tracer — its sends would open no flow arrows and its receives
  // would close none. A no-op refresh command forces every idle worker
  // through the loop top; receiving it happens-after this store, so the
  // reload is guaranteed to see the new tracer. Trace id 0 keeps the
  // handshake flow-free, but its comm span is still emitted — into the new
  // tracer on attach, the outgoing one on detach (alive: it must outlive
  // the decoder) — so Σ comm-span bytes stays equal to
  // Transport::total_stats().bytes_sent.
  if (dead_) return;
  try {
    const obs::ThreadTracerScope scope(tracer != nullptr ? tracer : previous);
    const obs::ThreadTrackScope track(
        static_cast<obs::TrackId>(terminal_id()));
    const obs::TraceIdScope untraced(0);
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpRefresh;
    const std::size_t k = scheme_.devices();
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
  } catch (...) {
    // Mesh already poisoned: the workers are unwinding and will never read
    // tracer_ again, so there is nobody left to refresh.
  }
}

void DistributedDecoder::set_precision(Precision precision) {
  if (precision == Precision::kInt8 && qstack_ == nullptr) {
    qstack_ = std::make_unique<QuantizedStack>(model_);
  }
  precision_ = precision;
}

void DistributedDecoder::set_metrics(obs::MetricsRegistry* metrics) {
  transport_->set_metrics(metrics);
  decode_tokens_ = metrics == nullptr ? nullptr
                                      : &metrics->counter("decode.tokens");
}

std::size_t DistributedDecoder::slot_position(SlotId slot) const {
  if (!slot_active(slot)) {
    throw std::out_of_range("DistributedDecoder: inactive slot");
  }
  return slots_[slot].position;
}

// ---------------------------------------------------------------------------
// Worker side

void DistributedDecoder::worker_main(std::size_t i) {
  const std::size_t k = scheme_.devices();
  // One KV arena per device, shared by every (slot, layer) cache: a
  // released sequence's blocks are immediately reusable by the next one.
  // Created lazily at the first prefill so set_kv_block_limit can run after
  // construction.
  std::unique_ptr<KvBlockPool> pool;
  std::vector<WorkerSlot> slots;
  try {
    for (;;) {
      // Publish the tracer and track *before* blocking for the command, so
      // the wait itself is a span on this device's timeline and the command
      // broadcast's flow arrow has a track to land on. Receiving the
      // command adopts its trace id (net/fabric.cpp), so everything this
      // worker emits while serving it shares the request's causal id.
      const obs::ThreadTracerScope tracer_scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track_scope(static_cast<obs::TrackId>(i));
      const obs::ThreadLayerScope layer_reset(-1);
      Tensor cmd(0, 0);
      {
        // Idle wait: no deadline — the decoder may sit unused between
        // calls. Poisoning wakes us (TransportClosedError) if the mesh
        // dies.
        obs::TraceSpan span(obs::thread_tracer(), "wait_command", "wait",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i));
        broadcast(*transport_, everyone_, i, k, cmd, kTagCmd);
      }
      if (cmd.rows() < 1 || cmd.cols() < kCmdCols) {
        throw std::runtime_error("DistributedDecoder: malformed command");
      }
      const float op = cmd(0, 0);
      if (op == kOpShutdown) return;
      if (op == kOpRefresh) continue;  // loop top re-reads tracer_
      const IntraOpScope intra_scope(
          intra_op_threads_.load(std::memory_order_relaxed));
      obs::TelemetryHub* const hub =
          telemetry_.load(std::memory_order_acquire);
      const obs::Micros busy_start = hub != nullptr ? obs::now_us() : 0;
      // Per-request deadline, fixed by the terminal at call entry and shared
      // by every blocking receive this command triggers.
      const RecvOptions options =
          RecvOptions::within(static_cast<double>(cmd(0, 3)));
      const Precision wire =
          cmd(0, 2) != 0.0F ? Precision::kInt8 : Precision::kFp32;
      if (wire == Precision::kInt8 && qstack_ == nullptr) {
        throw std::logic_error(
            "DistributedDecoder: int8 command without a quantized stack");
      }
      if (op == kOpPrime) {
        const auto slot = static_cast<std::size_t>(cmd(0, 4));
        const auto n = static_cast<std::size_t>(cmd(0, 1));
        if (pool == nullptr) {
          pool = std::make_unique<KvBlockPool>(
              kv_block_floats(model_.spec().layer),
              kv_block_limit_.load(std::memory_order_relaxed));
        }
        if (slot >= slots.size()) slots.resize(slot + 1);
        WorkerSlot& s = slots[slot];
        s.caches.resize(model_.spec().num_layers);
        s.prompt_len = n;
        s.active = true;
        worker_prefill(i, n, s.caches, pool.get(), options,
                       obs::thread_tracer(), wire);
      } else if (op == kOpStep) {
        worker_step_batch(i, slots, cmd, options, obs::thread_tracer(), wire);
      } else if (op == kOpRelease) {
        const auto slot = static_cast<std::size_t>(cmd(0, 4));
        if (slot < slots.size()) {
          for (DecodeLayerCache& cache : slots[slot].caches) cache.release();
          slots[slot].active = false;
          slots[slot].prompt_len = 0;
        }
      } else {
        throw std::runtime_error("DistributedDecoder: unknown opcode");
      }
      if (hub != nullptr) {
        hub->add_device_busy(i, obs::now_us() - busy_start);
      }
    }
  } catch (...) {
    errors_[i] = std::current_exception();
    detail::poison(*transport_, "device " + std::to_string(i), errors_[i]);
  }
}

void DistributedDecoder::worker_prefill(std::size_t i, std::size_t n,
                                        std::vector<DecodeLayerCache>& caches,
                                        KvBlockPool* pool,
                                        const RecvOptions& options,
                                        obs::Tracer* tracer, Precision wire) {
  const std::size_t k = scheme_.devices();
  const bool int8 = wire == Precision::kInt8;
  const auto layers = model_.layers();
  // Algorithm 2 prefill with two decode twists: every layer banks this
  // device's input rows into its resident cache, and the last layer skips
  // the gather entirely — only the owner of row n-1 sends that single row
  // (the LM head reads nothing else).
  Tensor x(0, 0);
  broadcast(*transport_, everyone_, i, k, x, kTagFeatures, options);
  const std::size_t f = x.cols();
  const std::vector<Range> ranges = scheme_.ranges(n);
  const Range own = ranges[i];
  std::array<Tensor, 2> seq{Tensor(n, f), Tensor(n, f)};
  std::array<std::shared_ptr<Tensor>, 2> holders{
      std::make_shared<Tensor>(0, 0), std::make_shared<Tensor>(0, 0)};
  const Tensor* input = &x;
  AttentionPrologue prologue;
  bool have_prologue = false;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    // Theorem 2 at the prefill shape fixes this (layer, device)'s resident
    // form for the whole sequence: naive layers cache K/V, reordered layers
    // cache the raw input rows.
    const AttentionDims dims{.n = n,
                             .p = own.size(),
                             .f = config.hidden,
                             .fh = config.head_dim};
    const AttentionOrder resident = select_order(policy_, dims);
    caches[l].init(resident, config, pool);
    if (!own.empty()) {
      caches[l].append(input->slice_rows(own.begin, own.end),
                       layers[l].weights().attention);
    }
    Tensor part(0, 0);
    {
      obs::TraceSpan span(tracer, "layer", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .tag(int8 ? std::string("int8 ") + to_string(resident)
                    : std::string(to_string(resident)));
      part = int8 ? qstack_->partition_forward(l, *input, own, policy_)
                  : partitioned_layer_forward(
                        layers[l], *input, own, policy_,
                        have_prologue ? &prologue : nullptr);
    }
    have_prologue = false;
    auto& holder = holders[l % 2];
    if (holder.use_count() == 1) {
      *holder = std::move(part);
    } else {
      holder = std::make_shared<Tensor>(std::move(part));
    }
    if (l + 1 == layers.size()) {
      if (own.contains(n - 1)) {
        auto last_row = std::make_shared<const Tensor>(
            holder->slice_rows(n - 1 - own.begin, n - own.begin));
        Payload payload = tensor_payload_view(std::move(last_row));
        obs::TraceSpan span(tracer, "send_final", "comm",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l))
            .bytes(static_cast<std::int64_t>(payload.size() +
                                             kWireFrameBytes));
        transport_->send(Message{.source = i,
                                 .destination = terminal_id(),
                                 .tag = kTagFinal,
                                 .payload = std::move(payload)});
      }
    } else {
      // PR-3 overlap: post the zero-copy gather, compute the next layer's
      // attention prologue from the rows already in hand (the scheme is
      // uniform across layers, so the next partition is exactly `own`),
      // then block for the peer rows. The prologue precomputes fp32 Q/K
      // projections, which the int8 plane never consumes — under kInt8 the
      // gather ships quantized rows and the overlap window stays empty.
      AllGatherInto gather(*transport_, workers_, i, holder, ranges,
                           seq[l % 2], kTagPrefillGatherBase + l, options,
                           wire);
      if (!int8 && !own.empty()) {
        obs::TraceSpan span(tracer, "overlap_compute", "compute",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l + 1));
        prologue =
            attention_prologue(*holder, n, own,
                               layers[l + 1].weights().attention,
                               layers[l + 1].config(), policy_);
        have_prologue = true;
      }
      gather.wait();
      input = &seq[l % 2];
    }
  }
}

void DistributedDecoder::worker_step_batch(std::size_t i,
                                           std::vector<WorkerSlot>& slots,
                                           const Tensor& cmd,
                                           const RecvOptions& options,
                                           obs::Tracer* tracer,
                                           Precision wire) {
  const std::size_t k = scheme_.devices();
  const auto layers = model_.layers();
  const std::size_t f = model_.spec().layer.hidden;
  const bool int8 = wire == Precision::kInt8;
  const std::size_t b = cmd.rows();
  Tensor x(b, f);
  if (int8) {
    // The token rows follow the command as one quantized [B x F] broadcast;
    // every worker dequantizes the same payload, so x is identical on all
    // ranks (the redundant-tail invariant below depends on this). Per-row
    // scales make each dequantized row independent of its batch-mates.
    if (cmd.cols() != kCmdCols) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    Tensor rows(0, 0);
    broadcast(*transport_, everyone_, i, k, rows, kTagToken, options);
    if (rows.rows() != b || rows.cols() != f) {
      throw std::runtime_error("DistributedDecoder: malformed token rows");
    }
    x = std::move(rows);
  } else {
    if (cmd.cols() != kCmdCols + f) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    for (std::size_t r = 0; r < b; ++r) {
      std::copy_n(cmd.row(r).data() + kCmdCols, f, x.row(r).data());
    }
  }
  // Resolve every lane before computing: each lane names a primed slot, and
  // its new position's owner is round-robin *within that slot* — exactly the
  // assignment a sequential run of the slot would make, which is what keeps
  // per-slot cache contents (and thus the math) identical under batching.
  std::vector<WorkerSlot*> lane(b);
  std::vector<std::size_t> owner(b);
  for (std::size_t r = 0; r < b; ++r) {
    const auto slot = static_cast<std::size_t>(cmd(r, 4));
    const auto t = static_cast<std::size_t>(cmd(r, 1));
    if (slot >= slots.size() || !slots[slot].active) {
      throw std::logic_error("DistributedDecoder: step before prime");
    }
    lane[r] = &slots[slot];
    owner[r] = (t - lane[r]->prompt_len) % k;
  }
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    const LayerWeights& w = layers[l].weights();
    Tensor partials(b, softmax_partial_cols(config.heads, config.head_dim));
    {
      obs::TraceSpan span(tracer, "decode_attention", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .batch(static_cast<std::int64_t>(b));
      for (std::size_t r = 0; r < b; ++r) {
        const Tensor x_row = x.slice_rows(r, r + 1);
        DecodeLayerCache& cache = lane[r]->caches[l];
        // The owner banks the new row *before* attending, so the token sees
        // itself (causal attention includes the query's own position).
        if (owner[r] == i) cache.append(x_row, w.attention);
        const Tensor partial =
            decode_partial_attention(x_row, cache, w.attention, config);
        std::copy_n(partial.row(0).data(), partials.cols(),
                    partials.row(r).data());
      }
    }
    // One merge round for the whole batch: row r of every rank's partial is
    // lane r, and the root folds each row in the same fixed rank order a
    // single-lane step uses.
    const Tensor merged = all_reduce_softmax_merge(
        *transport_, workers_, i, l % k, partials, config.heads,
        config.head_dim, kTagMergeBase + 2 * l, options);
    // Post-attention tail on the B rows, redundantly on every device — all
    // ranks leave the layer with bitwise-identical x, so the layer output
    // is never gathered. Every tail op (merge-finalize GEMM, residual,
    // LayerNorm, FFN) is bitwise row-independent, so lane r's row equals a
    // sequential step of its slot; the int8 tail keeps the invariant via
    // per-row activation scales.
    if (int8) {
      x = qstack_->decode_step_tail(l, merged, x);
    } else {
      Tensor attn = softmax_merge_finalize(merged, w.attention, config);
      add_inplace(attn, x);
      const Tensor y =
          layernorm_rows(attn, w.ln_attention.gamma, w.ln_attention.beta);
      Tensor ff = ffn_forward(y, w.ffn, config.activation);
      add_inplace(ff, y);
      x = layernorm_rows(ff, w.ln_ffn.gamma, w.ln_ffn.beta);
    }
  }
  if (i == 0) {
    // Every worker holds the identical final rows; rank 0 reports them.
    Payload payload =
        tensor_payload_view(std::make_shared<const Tensor>(std::move(x)));
    obs::TraceSpan span(tracer, "send_final", "comm",
                        static_cast<obs::TrackId>(i));
    span.device(static_cast<std::int64_t>(i))
        .batch(static_cast<std::int64_t>(b))
        .bytes(static_cast<std::int64_t>(payload.size() + kWireFrameBytes));
    transport_->send(Message{.source = i,
                             .destination = terminal_id(),
                             .tag = kTagFinal,
                             .payload = std::move(payload)});
  }
}

// ---------------------------------------------------------------------------
// Terminal side

Tensor DistributedDecoder::prime(std::span<const TokenId> prompt) {
  ensure_alive();
  if (prompt.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty prompt");
  }
  if (prompt.size() > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: prompt exceeds the window");
  }
  // Starting over: free every live slot so the prompt lands in slot 0 with
  // the whole KV arena available.
  for (SlotId s = 0; s < slots_.size(); ++s) {
    if (slots_[s].active) release_slot(s);
  }
  return prime_slot(prompt).logits;
}

DistributedDecoder::PrimedSlot DistributedDecoder::prime_slot(
    std::span<const TokenId> prompt) {
  ensure_alive();
  if (prompt.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty prompt");
  }
  if (prompt.size() > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: prompt exceeds the window");
  }
  // Lowest free slot; ids recycle after release so the command field and
  // worker-side vectors stay small.
  SlotId slot = slots_.size();
  for (SlotId s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].active) {
      slot = s;
      break;
    }
  }
  if (slot == slots_.size()) slots_.emplace_back();
  const std::size_t k = scheme_.devices();
  // Embed before touching the mesh: a bad token id throws here without
  // poisoning anything.
  Tensor features = model_.preprocess(prompt);
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  // One causal id per request: adopt the caller's (e.g. the server's
  // per-request scope) or mint a fresh one. The command broadcast carries
  // it to every worker.
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.prefill", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(prompt.size()));
  try {
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpPrime;
    cmd(0, 1) = static_cast<float>(prompt.size());
    cmd(0, 2) = precision_ == Precision::kInt8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    cmd(0, 4) = static_cast<float>(slot);
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    broadcast(*transport_, everyone_, k, k, features, kTagFeatures, options);
    const Tensor last_row = tensor_from_payload(
        transport_->recv_any(terminal_id(), kTagFinal, options).payload);
    slots_[slot] = SlotMeta{.active = true,
                            .position = prompt.size(),
                            .prompt_len = prompt.size()};
    span.bytes(
        static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                  bytes_before));
    return PrimedSlot{.slot = slot, .logits = model_.postprocess(last_row)};
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::step(TokenId token) {
  ensure_alive();
  if (slots_.empty() || !slots_[0].active) {
    throw std::logic_error("DistributedDecoder: prime() before step()");
  }
  const SlotToken lane{.slot = 0, .token = token};
  return step_batch(std::span<const SlotToken>(&lane, 1));
}

Tensor DistributedDecoder::step_batch(std::span<const SlotToken> batch) {
  ensure_alive();
  if (batch.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty batch");
  }
  const std::size_t b = batch.size();
  // Validate every lane before touching the mesh: a bad slot or an
  // exhausted window throws without poisoning anything.
  for (std::size_t r = 0; r < b; ++r) {
    if (!slot_active(batch[r].slot)) {
      throw std::logic_error("DistributedDecoder: prime() before step()");
    }
    if (slots_[batch[r].slot].position + 1 > model_.spec().max_positions) {
      throw std::length_error("DistributedDecoder: context window exhausted");
    }
    for (std::size_t q = 0; q < r; ++q) {
      if (batch[q].slot == batch[r].slot) {
        throw std::invalid_argument(
            "DistributedDecoder: duplicate slot in batch");
      }
    }
  }
  const std::size_t k = scheme_.devices();
  const std::size_t f = model_.spec().layer.hidden;
  // Embed every lane's token at its own position before touching the mesh.
  Tensor rows(b, f);
  for (std::size_t r = 0; r < b; ++r) {
    const Tensor row = model_.preprocess_at(
        std::span<const TokenId>(&batch[r].token, 1),
        slots_[batch[r].slot].position);
    std::copy_n(row.row(0).data(), f, rows.row(r).data());
  }
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.step", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(slots_[batch[0].slot].position))
      .batch(static_cast<std::int64_t>(b));
  try {
    // fp32 step command with the embedded rows inlined: one broadcast
    // carries both the per-lane control words and the O(B*F) activation
    // payload. The int8 plane keeps the command minimal and ships the rows
    // as one quantized broadcast — B*F bytes plus B scales instead of 4BF.
    const bool int8 = precision_ == Precision::kInt8;
    Tensor cmd(b, int8 ? kCmdCols : kCmdCols + f);
    for (std::size_t r = 0; r < b; ++r) {
      cmd(r, 0) = kOpStep;
      cmd(r, 1) = static_cast<float>(slots_[batch[r].slot].position);
      cmd(r, 2) = int8 ? 1.0F : 0.0F;
      cmd(r, 3) = static_cast<float>(recv_timeout_seconds_);
      cmd(r, 4) = static_cast<float>(batch[r].slot);
      if (!int8) {
        std::copy_n(rows.row(r).data(), f, cmd.row(r).data() + kCmdCols);
      }
    }
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    if (int8) {
      broadcast(*transport_, everyone_, k, k, rows, kTagToken, options,
                Precision::kInt8);
    }
    const Tensor last_rows = tensor_from_payload(
        transport_->recv(terminal_id(), DeviceId{0}, kTagFinal, options)
            .payload);
    if (last_rows.rows() != b) {
      throw std::runtime_error("DistributedDecoder: malformed final rows");
    }
    for (std::size_t r = 0; r < b; ++r) {
      ++slots_[batch[r].slot].position;
    }
    if (decode_tokens_ != nullptr) {
      decode_tokens_->add(static_cast<std::uint64_t>(b));
    }
    span.bytes(
        static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                  bytes_before));
    return model_.postprocess_rows(last_rows);
  } catch (...) {
    fail_request();
  }
}

void DistributedDecoder::release_slot(SlotId slot) {
  ensure_alive();
  if (!slot_active(slot)) {
    throw std::out_of_range("DistributedDecoder: inactive slot");
  }
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  try {
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpRelease;
    cmd(0, 2) = precision_ == Precision::kInt8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    cmd(0, 4) = static_cast<float>(slot);
    const std::size_t k = scheme_.devices();
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
    slots_[slot] = SlotMeta{};
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::extend(std::span<const TokenId> tokens) {
  if (tokens.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty extension");
  }
  Tensor logits(0, 0);
  for (const TokenId token : tokens) logits = step(token);
  return logits;
}

}  // namespace voltage
