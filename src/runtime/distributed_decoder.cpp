#include "runtime/distributed_decoder.h"

#include <algorithm>
#include <array>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <string>

#include "collective/collectives.h"
#include "collective/softmax_merge.h"
#include "core/thread_pool.h"
#include "partition/partitioned_layer.h"
#include "runtime/failure.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "transformer/ffn.h"

namespace voltage {

namespace {

// Command protocol: the terminal broadcasts one [R x kCmdCols] (or, for an
// fp32 step, [R x kCmdCols+F] with each row's embedded token row appended)
// tensor per call — R is 1 for everything except a step round, where each
// row is one window position of one lane: consecutive rows naming the same
// slot form that slot's verify window (committed prefix first, then
// drafts), so a batched step, an extend and a speculative verify are all
// the same wire shape. Floats carry the fields exactly — positions,
// opcodes, slot and token ids are small integers, far below 2^24. Column 2
// flags the int8 plane for this command; an int8 step keeps the command at
// kCmdCols and ships the token rows as one separate quantized [R x F]
// broadcast on kTagToken (per-row scales don't mix with opcodes).
constexpr std::size_t kCmdCols = 7;  // {opcode, arg, int8_flag, timeout_s,
                                     //  slot, token, committed}
constexpr float kOpPrime = 1.0F;     // arg = prompt length; col 4 = slot
constexpr float kOpStep = 2.0F;      // per row: arg = position, col 4 = slot,
                                     // col 5 = token id, col 6 = 1 if the
                                     // row is pre-committed (0 = draft)
constexpr float kOpShutdown = 3.0F;
constexpr float kOpRefresh = 4.0F;  // re-read tracer_; no other effect
constexpr float kOpRelease = 5.0F;  // col 4 = slot: free its KV blocks

// Tag layout. Commands, prefill features, the final row and the int8 step
// token rows live on fixed tags; each layer gets one prefill-gather tag and a
// pair of merge tags (softmax_merge uses tag and tag+1). Reusing tags across
// steps is safe: transport matching is FIFO per (source, tag).
constexpr MessageTag kTagCmd = 1;
constexpr MessageTag kTagFeatures = 2;
constexpr MessageTag kTagFinal = 4;
constexpr MessageTag kTagToken = 5;
constexpr MessageTag kTagPrefillGatherBase = 64;
constexpr MessageTag kTagMergeBase = 4096;

}  // namespace

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       TransportKind transport)
    : DistributedDecoder(model, scheme, policy,
                         make_transport(transport, scheme.devices() + 1)) {}

DistributedDecoder::DistributedDecoder(const TransformerModel& model,
                                       PartitionScheme scheme,
                                       OrderPolicy policy,
                                       std::unique_ptr<Transport> transport)
    : model_(model),
      scheme_(std::move(scheme)),
      policy_(policy),
      transport_(std::move(transport)) {
  if (model_.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("DistributedDecoder: needs a causal LM");
  }
  const std::size_t k = scheme_.devices();
  if (transport_->devices() != k + 1) {
    throw std::invalid_argument(
        "DistributedDecoder: transport must have one endpoint per worker "
        "plus the terminal");
  }
  everyone_.resize(k + 1);
  std::iota(everyone_.begin(), everyone_.end(), DeviceId{0});
  workers_.resize(k);
  std::iota(workers_.begin(), workers_.end(), DeviceId{0});
  errors_.resize(k);
  threads_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

DistributedDecoder::~DistributedDecoder() {
  if (!dead_) {
    try {
      // Flow-free but byte-accounted, like the set_tracer handshake: the
      // shutdown broadcast's comm span keeps Σ comm-span bytes equal to
      // the transport's bytes_sent through teardown.
      const obs::ThreadTracerScope scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track(
          static_cast<obs::TrackId>(terminal_id()));
      const obs::TraceIdScope untraced(0);
      Tensor cmd(1, kCmdCols);
      cmd(0, 0) = kOpShutdown;
      const std::size_t k = scheme_.devices();
      broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
    } catch (...) {
      // Mesh already poisoned (a worker died and no call noticed): the
      // workers are unwinding on their own; just make sure of it.
      detail::poison(*transport_, "terminal", std::current_exception());
    }
  }
  join_workers();
}

void DistributedDecoder::join_workers() noexcept {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void DistributedDecoder::ensure_alive() const {
  if (dead_) {
    throw std::logic_error(
        "DistributedDecoder: mesh failed; build a new decoder");
  }
}

void DistributedDecoder::fail_request() {
  std::exception_ptr terminal_error = std::current_exception();
  detail::poison(*transport_, "terminal", terminal_error);
  join_workers();
  dead_ = true;
  detail::rethrow_failure(errors_, terminal_error);
  std::rethrow_exception(terminal_error);  // unreachable: error is non-null
}

void DistributedDecoder::set_tracer(obs::Tracer* tracer) {
  obs::Tracer* const previous = tracer_.load(std::memory_order_relaxed);
  tracer_.store(tracer, std::memory_order_release);
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < scheme_.devices(); ++i) {
      tracer->set_track_name(static_cast<obs::TrackId>(i),
                             "device " + std::to_string(i));
    }
    tracer->set_track_name(static_cast<obs::TrackId>(terminal_id()),
                           "terminal");
  }
  // Workers read tracer_ at the top of their command loop, so a worker that
  // started idling before this store would serve the next command with the
  // stale tracer — its sends would open no flow arrows and its receives
  // would close none. A no-op refresh command forces every idle worker
  // through the loop top; receiving it happens-after this store, so the
  // reload is guaranteed to see the new tracer. Trace id 0 keeps the
  // handshake flow-free, but its comm span is still emitted — into the new
  // tracer on attach, the outgoing one on detach (alive: it must outlive
  // the decoder) — so Σ comm-span bytes stays equal to
  // Transport::total_stats().bytes_sent.
  if (dead_) return;
  try {
    const obs::ThreadTracerScope scope(tracer != nullptr ? tracer : previous);
    const obs::ThreadTrackScope track(
        static_cast<obs::TrackId>(terminal_id()));
    const obs::TraceIdScope untraced(0);
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpRefresh;
    const std::size_t k = scheme_.devices();
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
  } catch (...) {
    // Mesh already poisoned: the workers are unwinding and will never read
    // tracer_ again, so there is nobody left to refresh.
  }
}

void DistributedDecoder::set_precision(Precision precision) {
  if (precision == Precision::kInt8 && qstack_ == nullptr) {
    qstack_ = std::make_unique<QuantizedStack>(model_);
  }
  precision_ = precision;
}

void DistributedDecoder::set_metrics(obs::MetricsRegistry* metrics) {
  transport_->set_metrics(metrics);
  decode_tokens_ = metrics == nullptr ? nullptr
                                      : &metrics->counter("decode.tokens");
}

std::size_t DistributedDecoder::slot_position(SlotId slot) const {
  if (!slot_active(slot)) {
    throw std::out_of_range("DistributedDecoder: inactive slot");
  }
  return slots_[slot].position;
}

// ---------------------------------------------------------------------------
// Worker side

void DistributedDecoder::worker_main(std::size_t i) {
  const std::size_t k = scheme_.devices();
  // One KV arena per device, shared by every (slot, layer) cache: a
  // released sequence's blocks are immediately reusable by the next one.
  // Created lazily at the first prefill so set_kv_block_limit can run after
  // construction.
  std::unique_ptr<KvBlockPool> pool;
  std::vector<WorkerSlot> slots;
  try {
    for (;;) {
      // Publish the tracer and track *before* blocking for the command, so
      // the wait itself is a span on this device's timeline and the command
      // broadcast's flow arrow has a track to land on. Receiving the
      // command adopts its trace id (net/fabric.cpp), so everything this
      // worker emits while serving it shares the request's causal id.
      const obs::ThreadTracerScope tracer_scope(
          tracer_.load(std::memory_order_acquire));
      const obs::ThreadTrackScope track_scope(static_cast<obs::TrackId>(i));
      const obs::ThreadLayerScope layer_reset(-1);
      Tensor cmd(0, 0);
      {
        // Idle wait: no deadline — the decoder may sit unused between
        // calls. Poisoning wakes us (TransportClosedError) if the mesh
        // dies.
        obs::TraceSpan span(obs::thread_tracer(), "wait_command", "wait",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i));
        broadcast(*transport_, everyone_, i, k, cmd, kTagCmd);
      }
      if (cmd.rows() < 1 || cmd.cols() < kCmdCols) {
        throw std::runtime_error("DistributedDecoder: malformed command");
      }
      const float op = cmd(0, 0);
      if (op == kOpShutdown) return;
      if (op == kOpRefresh) continue;  // loop top re-reads tracer_
      const IntraOpScope intra_scope(
          intra_op_threads_.load(std::memory_order_relaxed));
      obs::TelemetryHub* const hub =
          telemetry_.load(std::memory_order_acquire);
      const obs::Micros busy_start = hub != nullptr ? obs::now_us() : 0;
      // Per-request deadline, fixed by the terminal at call entry and shared
      // by every blocking receive this command triggers.
      const RecvOptions options =
          RecvOptions::within(static_cast<double>(cmd(0, 3)));
      const Precision wire =
          cmd(0, 2) != 0.0F ? Precision::kInt8 : Precision::kFp32;
      if (wire == Precision::kInt8 && qstack_ == nullptr) {
        throw std::logic_error(
            "DistributedDecoder: int8 command without a quantized stack");
      }
      if (op == kOpPrime) {
        const auto slot = static_cast<std::size_t>(cmd(0, 4));
        const auto n = static_cast<std::size_t>(cmd(0, 1));
        if (pool == nullptr) {
          pool = std::make_unique<KvBlockPool>(
              kv_block_floats(model_.spec().layer),
              kv_block_limit_.load(std::memory_order_relaxed));
        }
        if (slot >= slots.size()) slots.resize(slot + 1);
        WorkerSlot& s = slots[slot];
        s.caches.resize(model_.spec().num_layers);
        s.prompt_len = n;
        s.active = true;
        worker_prefill(i, n, s.caches, pool.get(), options,
                       obs::thread_tracer(), wire);
      } else if (op == kOpStep) {
        worker_step_windows(i, slots, cmd, options, obs::thread_tracer(),
                            wire);
      } else if (op == kOpRelease) {
        const auto slot = static_cast<std::size_t>(cmd(0, 4));
        if (slot < slots.size()) {
          for (DecodeLayerCache& cache : slots[slot].caches) cache.release();
          slots[slot].active = false;
          slots[slot].prompt_len = 0;
        }
      } else {
        throw std::runtime_error("DistributedDecoder: unknown opcode");
      }
      if (hub != nullptr) {
        hub->add_device_busy(i, obs::now_us() - busy_start);
      }
    }
  } catch (...) {
    errors_[i] = std::current_exception();
    detail::poison(*transport_, "device " + std::to_string(i), errors_[i]);
  }
}

void DistributedDecoder::worker_prefill(std::size_t i, std::size_t n,
                                        std::vector<DecodeLayerCache>& caches,
                                        KvBlockPool* pool,
                                        const RecvOptions& options,
                                        obs::Tracer* tracer, Precision wire) {
  const std::size_t k = scheme_.devices();
  const bool int8 = wire == Precision::kInt8;
  const auto layers = model_.layers();
  // Algorithm 2 prefill with two decode twists: every layer banks this
  // device's input rows into its resident cache, and the last layer skips
  // the gather entirely — only the owner of row n-1 sends that single row
  // (the LM head reads nothing else).
  Tensor x(0, 0);
  broadcast(*transport_, everyone_, i, k, x, kTagFeatures, options);
  const std::size_t f = x.cols();
  const std::vector<Range> ranges = scheme_.ranges(n);
  const Range own = ranges[i];
  std::array<Tensor, 2> seq{Tensor(n, f), Tensor(n, f)};
  std::array<std::shared_ptr<Tensor>, 2> holders{
      std::make_shared<Tensor>(0, 0), std::make_shared<Tensor>(0, 0)};
  const Tensor* input = &x;
  AttentionPrologue prologue;
  bool have_prologue = false;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    // Theorem 2 at the prefill shape fixes this (layer, device)'s resident
    // form for the whole sequence: naive layers cache K/V, reordered layers
    // cache the raw input rows.
    const AttentionDims dims{.n = n,
                             .p = own.size(),
                             .f = config.hidden,
                             .fh = config.head_dim};
    const AttentionOrder resident = select_order(policy_, dims);
    caches[l].init(resident, config, pool);
    if (!own.empty()) {
      caches[l].append(input->slice_rows(own.begin, own.end),
                       layers[l].weights().attention);
    }
    Tensor part(0, 0);
    {
      obs::TraceSpan span(tracer, "layer", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .tag(int8 ? std::string("int8 ") + to_string(resident)
                    : std::string(to_string(resident)));
      part = int8 ? qstack_->partition_forward(l, *input, own, policy_)
                  : partitioned_layer_forward(
                        layers[l], *input, own, policy_,
                        have_prologue ? &prologue : nullptr);
    }
    have_prologue = false;
    auto& holder = holders[l % 2];
    if (holder.use_count() == 1) {
      *holder = std::move(part);
    } else {
      holder = std::make_shared<Tensor>(std::move(part));
    }
    if (l + 1 == layers.size()) {
      if (own.contains(n - 1)) {
        auto last_row = std::make_shared<const Tensor>(
            holder->slice_rows(n - 1 - own.begin, n - own.begin));
        Payload payload = tensor_payload_view(std::move(last_row));
        obs::TraceSpan span(tracer, "send_final", "comm",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l))
            .bytes(static_cast<std::int64_t>(payload.size() +
                                             kWireFrameBytes));
        transport_->send(Message{.source = i,
                                 .destination = terminal_id(),
                                 .tag = kTagFinal,
                                 .payload = std::move(payload)});
      }
    } else {
      // PR-3 overlap: post the zero-copy gather, compute the next layer's
      // attention prologue from the rows already in hand (the scheme is
      // uniform across layers, so the next partition is exactly `own`),
      // then block for the peer rows. The prologue precomputes fp32 Q/K
      // projections, which the int8 plane never consumes — under kInt8 the
      // gather ships quantized rows and the overlap window stays empty.
      AllGatherInto gather(*transport_, workers_, i, holder, ranges,
                           seq[l % 2], kTagPrefillGatherBase + l, options,
                           wire);
      if (!int8 && !own.empty()) {
        obs::TraceSpan span(tracer, "overlap_compute", "compute",
                            static_cast<obs::TrackId>(i));
        span.device(static_cast<std::int64_t>(i))
            .layer(static_cast<std::int64_t>(l + 1));
        prologue =
            attention_prologue(*holder, n, own,
                               layers[l + 1].weights().attention,
                               layers[l + 1].config(), policy_);
        have_prologue = true;
      }
      gather.wait();
      input = &seq[l % 2];
    }
  }
}

void DistributedDecoder::worker_step_windows(std::size_t i,
                                             std::vector<WorkerSlot>& slots,
                                             const Tensor& cmd,
                                             const RecvOptions& options,
                                             obs::Tracer* tracer,
                                             Precision wire) {
  const std::size_t k = scheme_.devices();
  const auto layers = model_.layers();
  const std::size_t f = model_.spec().layer.hidden;
  const bool int8 = wire == Precision::kInt8;
  const std::size_t rows_total = cmd.rows();
  Tensor x(rows_total, f);
  if (int8) {
    // The token rows follow the command as one quantized [R x F] broadcast;
    // every worker dequantizes the same payload, so x is identical on all
    // ranks (the redundant-tail invariant below depends on this). Per-row
    // scales make each dequantized row independent of its batch-mates.
    if (cmd.cols() != kCmdCols) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    Tensor rows(0, 0);
    broadcast(*transport_, everyone_, i, k, rows, kTagToken, options);
    if (rows.rows() != rows_total || rows.cols() != f) {
      throw std::runtime_error("DistributedDecoder: malformed token rows");
    }
    x = std::move(rows);
  } else {
    if (cmd.cols() != kCmdCols + f) {
      throw std::runtime_error("DistributedDecoder: malformed step command");
    }
    for (std::size_t r = 0; r < rows_total; ++r) {
      std::copy_n(cmd.row(r).data() + kCmdCols, f, x.row(r).data());
    }
  }
  // Group the command rows into per-slot verify windows (consecutive rows
  // naming the same slot) and resolve every row before computing: each
  // window names a primed slot, and each row's owner is round-robin *within
  // that slot* — exactly the assignment a sequential run of the slot would
  // make, which is what keeps per-slot cache contents (and thus the math)
  // identical under batching and speculation.
  struct WorkerWindow {
    std::size_t begin = 0;      // first command row
    std::size_t end = 0;        // one past the last
    std::size_t committed = 0;  // leading pre-committed rows
    WorkerSlot* slot = nullptr;
  };
  std::vector<WorkerWindow> windows;
  std::vector<std::size_t> owner(rows_total);
  for (std::size_t r = 0; r < rows_total; ++r) {
    const auto slot = static_cast<std::size_t>(cmd(r, 4));
    const auto t = static_cast<std::size_t>(cmd(r, 1));
    if (slot >= slots.size() || !slots[slot].active) {
      throw std::logic_error("DistributedDecoder: step before prime");
    }
    owner[r] = (t - slots[slot].prompt_len) % k;
    const bool committed = cmd(r, 6) != 0.0F;
    if (windows.empty() || windows.back().slot != &slots[slot]) {
      windows.push_back(WorkerWindow{.begin = r,
                                     .end = r + 1,
                                     .committed = committed ? 1U : 0U,
                                     .slot = &slots[slot]});
      if (!committed) {
        throw std::runtime_error(
            "DistributedDecoder: window starts with a draft row");
      }
    } else {
      WorkerWindow& w = windows.back();
      if (committed && w.committed != w.end - w.begin) {
        throw std::runtime_error(
            "DistributedDecoder: committed row after a draft row");
      }
      w.end = r + 1;
      if (committed) ++w.committed;
    }
  }
  // Per-window ownership masks, shared by every layer's attention call.
  std::vector<std::vector<bool>> owned_masks(windows.size());
  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const WorkerWindow& win = windows[wi];
    owned_masks[wi].resize(win.end - win.begin);
    for (std::size_t j = 0; j < owned_masks[wi].size(); ++j) {
      owned_masks[wi][j] = owner[win.begin + j] == i;
    }
  }
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const obs::ThreadLayerScope layer_scope(static_cast<std::int64_t>(l));
    const LayerConfig& config = layers[l].config();
    const LayerWeights& w = layers[l].weights();
    Tensor partials(0, 0);
    {
      obs::TraceSpan span(tracer, "decode_attention", "compute",
                          static_cast<obs::TrackId>(i));
      span.device(static_cast<std::int64_t>(i))
          .layer(static_cast<std::int64_t>(l))
          .batch(static_cast<std::int64_t>(rows_total));
      // One batched attention call covers every window: the query-side
      // projections are hoisted into per-head [R x .] GEMMs, while each
      // owned row is still appended *before* it attends, in window order —
      // rows see themselves and the window's earlier positions, never a
      // later draft (the intra-window causal mask, by construction).
      std::vector<DecodeWindowRef> refs;
      refs.reserve(windows.size());
      for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        refs.push_back(DecodeWindowRef{.begin = windows[wi].begin,
                                       .end = windows[wi].end,
                                       .owned = &owned_masks[wi],
                                       .cache = &windows[wi].slot->caches[l]});
      }
      partials = decode_windows_partial_attention(
          x, std::span<const DecodeWindowRef>(refs.data(), refs.size()),
          w.attention, config);
    }
    // One merge round for every window position of every lane: row r of
    // every rank's partial is command row r, and the root folds each row in
    // the same fixed rank order a single-lane step uses — k draft positions
    // ride the message count of one token.
    const Tensor merged = all_reduce_softmax_merge(
        *transport_, workers_, i, l % k, partials, config.heads,
        config.head_dim, kTagMergeBase + 2 * l, options);
    // Post-attention tail on the R rows, redundantly on every device — all
    // ranks leave the layer with bitwise-identical x, so the layer output
    // is never gathered. Every tail op (merge-finalize GEMM, residual,
    // LayerNorm, FFN) is bitwise row-independent, so each row equals a
    // sequential step of its slot; the int8 tail keeps the invariant via
    // per-row activation scales.
    if (int8) {
      x = qstack_->decode_step_tail(l, merged, x);
    } else {
      Tensor attn = softmax_merge_finalize(merged, w.attention, config);
      add_inplace(attn, x);
      const Tensor y =
          layernorm_rows(attn, w.ln_attention.gamma, w.ln_attention.beta);
      Tensor ff = ffn_forward(y, w.ffn, config.activation);
      add_inplace(ff, y);
      x = layernorm_rows(ff, w.ln_ffn.gamma, w.ln_ffn.beta);
    }
  }
  // Every worker holds the identical final rows; rank 0 reports them first
  // so the terminal's LM head overlaps with the workers' acceptance pass.
  const auto final_rows = std::make_shared<const Tensor>(std::move(x));
  if (i == 0) {
    Payload payload = tensor_payload_view(final_rows);
    obs::TraceSpan span(tracer, "send_final", "comm",
                        static_cast<obs::TrackId>(i));
    span.device(static_cast<std::int64_t>(i))
        .batch(static_cast<std::int64_t>(rows_total))
        .bytes(static_cast<std::int64_t>(payload.size() + kWireFrameBytes));
    transport_->send(Message{.source = i,
                             .destination = terminal_id(),
                             .tag = kTagFinal,
                             .payload = std::move(payload)});
  }
  // Greedy longest-prefix acceptance, redundantly on every rank: the LM
  // head is row-independent (postprocess_rows row r is bitwise equal to
  // postprocess on that row alone), so all ranks — and the terminal — derive
  // the *same* accepted count from the same final rows, with zero extra
  // wire traffic. Each rank then truncates the rejected tail rows it owns
  // from its own caches, restoring exactly the sequential-decode state.
  for (const WorkerWindow& win : windows) {
    const std::size_t width = win.end - win.begin;
    if (win.committed == width) continue;  // no drafts to judge
    obs::TraceSpan span(tracer, "spec_commit", "compute",
                        static_cast<obs::TrackId>(i));
    span.device(static_cast<std::int64_t>(i));
    const Tensor logits = model_.postprocess_rows(final_rows->slice_rows(
        win.begin + win.committed - 1, win.end - 1));
    std::size_t accepted = 0;
    while (accepted < width - win.committed) {
      const std::size_t draft_row = win.begin + win.committed + accepted;
      const auto draft = static_cast<TokenId>(cmd(draft_row, 5));
      if (static_cast<TokenId>(argmax_row(logits, accepted)) != draft) break;
      ++accepted;
    }
    span.accepted(static_cast<std::int64_t>(accepted));
    std::size_t drop_owned = 0;
    for (std::size_t j = win.committed + accepted; j < width; ++j) {
      if (owner[win.begin + j] == i) ++drop_owned;
    }
    if (drop_owned == 0) continue;
    for (DecodeLayerCache& cache : win.slot->caches) {
      cache.truncate(drop_owned);
    }
  }
}

// ---------------------------------------------------------------------------
// Terminal side

Tensor DistributedDecoder::prime(std::span<const TokenId> prompt) {
  ensure_alive();
  if (prompt.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty prompt");
  }
  if (prompt.size() > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: prompt exceeds the window");
  }
  // Starting over: free every live slot so the prompt lands in slot 0 with
  // the whole KV arena available.
  for (SlotId s = 0; s < slots_.size(); ++s) {
    if (slots_[s].active) release_slot(s);
  }
  return prime_slot(prompt).logits;
}

DistributedDecoder::PrimedSlot DistributedDecoder::prime_slot(
    std::span<const TokenId> prompt) {
  ensure_alive();
  if (prompt.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty prompt");
  }
  if (prompt.size() > model_.spec().max_positions) {
    throw std::length_error("DistributedDecoder: prompt exceeds the window");
  }
  // Lowest free slot; ids recycle after release so the command field and
  // worker-side vectors stay small.
  SlotId slot = slots_.size();
  for (SlotId s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].active) {
      slot = s;
      break;
    }
  }
  if (slot == slots_.size()) slots_.emplace_back();
  const std::size_t k = scheme_.devices();
  // Embed before touching the mesh: a bad token id throws here without
  // poisoning anything.
  Tensor features = model_.preprocess(prompt);
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  // One causal id per request: adopt the caller's (e.g. the server's
  // per-request scope) or mint a fresh one. The command broadcast carries
  // it to every worker.
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.prefill", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(prompt.size()));
  try {
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpPrime;
    cmd(0, 1) = static_cast<float>(prompt.size());
    cmd(0, 2) = precision_ == Precision::kInt8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    cmd(0, 4) = static_cast<float>(slot);
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    broadcast(*transport_, everyone_, k, k, features, kTagFeatures, options);
    const Tensor last_row = tensor_from_payload(
        transport_->recv_any(terminal_id(), kTagFinal, options).payload);
    slots_[slot] = SlotMeta{.active = true,
                            .position = prompt.size(),
                            .prompt_len = prompt.size()};
    span.bytes(
        static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                  bytes_before));
    return PrimedSlot{.slot = slot, .logits = model_.postprocess(last_row)};
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::step(TokenId token) {
  ensure_alive();
  if (slots_.empty() || !slots_[0].active) {
    throw std::logic_error("DistributedDecoder: prime() before step()");
  }
  const SlotToken lane{.slot = 0, .token = token};
  return step_batch(std::span<const SlotToken>(&lane, 1));
}

DistributedDecoder::WindowRound DistributedDecoder::run_window_round(
    std::span<const WindowSpec> windows) {
  ensure_alive();
  if (windows.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty batch");
  }
  // Validate every window before touching the mesh: a bad slot or an
  // exhausted context window throws without poisoning anything. Drafts
  // were already trimmed to the remaining window by the caller, so any
  // overflow here is a committed-token overflow.
  std::size_t rows_total = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const WindowSpec& win = windows[w];
    if (!slot_active(win.slot)) {
      throw std::logic_error("DistributedDecoder: prime() before step()");
    }
    if (win.committed < 1 || win.committed > win.tokens.size()) {
      throw std::invalid_argument("DistributedDecoder: malformed window");
    }
    if (slots_[win.slot].position + win.tokens.size() >
        model_.spec().max_positions) {
      throw std::length_error("DistributedDecoder: context window exhausted");
    }
    for (std::size_t q = 0; q < w; ++q) {
      if (windows[q].slot == win.slot) {
        throw std::invalid_argument(
            "DistributedDecoder: duplicate slot in batch");
      }
    }
    rows_total += win.tokens.size();
  }
  const std::size_t k = scheme_.devices();
  const std::size_t f = model_.spec().layer.hidden;
  // Embed every window row at its own position before touching the mesh —
  // a bad token id (draft or committed) throws here, mesh untouched.
  Tensor rows(rows_total, f);
  std::vector<std::size_t> row_begin(windows.size());
  {
    std::size_t r = 0;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      row_begin[w] = r;
      const Tensor block = model_.preprocess_at(
          std::span<const TokenId>(windows[w].tokens),
          slots_[windows[w].slot].position);
      for (std::size_t j = 0; j < block.rows(); ++j, ++r) {
        std::copy_n(block.row(j).data(), f, rows.row(r).data());
      }
    }
  }
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  const RecvOptions options = RecvOptions::within(recv_timeout_seconds_);
  const std::uint64_t bytes_before = transport_->total_stats().bytes_sent;
  obs::TraceSpan span(tracer, "decode.step", "serve",
                      static_cast<obs::TrackId>(terminal_id()));
  span.device(static_cast<std::int64_t>(terminal_id()))
      .request(static_cast<std::int64_t>(slots_[windows[0].slot].position))
      .batch(static_cast<std::int64_t>(windows.size()));
  try {
    // fp32 step command with the embedded rows inlined: one broadcast
    // carries both the per-row control words and the O(R*F) activation
    // payload. The int8 plane keeps the command minimal and ships the rows
    // as one quantized broadcast — R*F bytes plus R scales instead of 4RF.
    // Either way the round's *message count* is that of a single-token
    // step: the draft rows ride broadcasts and merges that happen anyway.
    const bool int8 = precision_ == Precision::kInt8;
    Tensor cmd(rows_total, int8 ? kCmdCols : kCmdCols + f);
    {
      std::size_t r = 0;
      for (const WindowSpec& win : windows) {
        for (std::size_t j = 0; j < win.tokens.size(); ++j, ++r) {
          cmd(r, 0) = kOpStep;
          cmd(r, 1) = static_cast<float>(slots_[win.slot].position + j);
          cmd(r, 2) = int8 ? 1.0F : 0.0F;
          cmd(r, 3) = static_cast<float>(recv_timeout_seconds_);
          cmd(r, 4) = static_cast<float>(win.slot);
          cmd(r, 5) = static_cast<float>(win.tokens[j]);
          cmd(r, 6) = j < win.committed ? 1.0F : 0.0F;
          if (!int8) {
            std::copy_n(rows.row(r).data(), f, cmd.row(r).data() + kCmdCols);
          }
        }
      }
    }
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd, options);
    if (int8) {
      broadcast(*transport_, everyone_, k, k, rows, kTagToken, options,
                Precision::kInt8);
    }
    const Tensor last_rows = tensor_from_payload(
        transport_->recv(terminal_id(), DeviceId{0}, kTagFinal, options)
            .payload);
    if (last_rows.rows() != rows_total) {
      throw std::runtime_error("DistributedDecoder: malformed final rows");
    }
    WindowRound round{.logits = model_.postprocess_rows(last_rows),
                      .row_begin = std::move(row_begin),
                      .accepted = std::vector<std::size_t>(windows.size(), 0)};
    // Greedy longest-prefix acceptance — the same pass every worker runs on
    // the identical final rows (postprocess_rows is row-independent), so
    // terminal and workers agree on the commit frontier without another
    // round-trip.
    std::size_t committed_total = 0;
    std::size_t drafts_total = 0;
    std::size_t accepted_total = 0;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const WindowSpec& win = windows[w];
      const std::size_t drafts = win.tokens.size() - win.committed;
      std::size_t accepted = 0;
      while (accepted < drafts) {
        const std::size_t logits_row =
            round.row_begin[w] + win.committed - 1 + accepted;
        const TokenId draft = win.tokens[win.committed + accepted];
        if (static_cast<TokenId>(argmax_row(round.logits, logits_row)) !=
            draft) {
          break;
        }
        ++accepted;
      }
      round.accepted[w] = accepted;
      slots_[win.slot].position += win.committed + accepted;
      committed_total += win.committed + accepted;
      drafts_total += drafts;
      accepted_total += accepted;
    }
    if (decode_tokens_ != nullptr) {
      decode_tokens_->add(static_cast<std::uint64_t>(committed_total));
    }
    span.tokens(static_cast<std::int64_t>(committed_total))
        .drafts(static_cast<std::int64_t>(drafts_total))
        .accepted(static_cast<std::int64_t>(accepted_total))
        .bytes(
            static_cast<std::int64_t>(transport_->total_stats().bytes_sent -
                                      bytes_before));
    return round;
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::step_batch(std::span<const SlotToken> batch) {
  ensure_alive();
  if (batch.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty batch");
  }
  std::vector<WindowSpec> windows(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    windows[r] = WindowSpec{.slot = batch[r].slot,
                            .tokens = {batch[r].token},
                            .committed = 1};
  }
  // Single-row windows: command row r IS lane r, so the round's logits are
  // already the [B x vocab] contract (row-aligned, bitwise identical to
  // stepping each slot alone).
  return run_window_round(windows).logits;
}

std::vector<LaneCommit> DistributedDecoder::step_speculative(
    std::span<const SlotWindow> lanes) {
  ensure_alive();
  if (lanes.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty batch");
  }
  std::vector<WindowSpec> windows(lanes.size());
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    const SlotWindow& lane = lanes[w];
    if (!slot_active(lane.slot)) {
      throw std::logic_error("DistributedDecoder: prime() before step()");
    }
    const std::size_t position = slots_[lane.slot].position;
    if (position + 1 > model_.spec().max_positions) {
      throw std::length_error("DistributedDecoder: context window exhausted");
    }
    // Trim the drafts to the remaining context window: a draft that could
    // never be committed is not worth verifying.
    const std::size_t room = model_.spec().max_positions - position - 1;
    const std::size_t drafted = std::min(lane.drafts.size(), room);
    WindowSpec& win = windows[w];
    win.slot = lane.slot;
    win.committed = 1;
    win.tokens.reserve(1 + drafted);
    win.tokens.push_back(lane.token);
    win.tokens.insert(win.tokens.end(), lane.drafts.begin(),
                      lane.drafts.begin() + static_cast<std::ptrdiff_t>(
                                                drafted));
  }
  WindowRound round = run_window_round(windows);
  std::vector<LaneCommit> commits(lanes.size());
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    LaneCommit& commit = commits[w];
    commit.accepted = round.accepted[w];
    commit.drafted = windows[w].tokens.size() - 1;
    // Greedy output: the model's own choice after every committed input —
    // the accepted drafts re-derived (bitwise, from the real logits) plus
    // the "bonus" token after the last accepted position.
    commit.tokens.reserve(commit.accepted + 1);
    for (std::size_t j = 0; j <= commit.accepted; ++j) {
      commit.tokens.push_back(static_cast<TokenId>(
          argmax_row(round.logits, round.row_begin[w] + j)));
    }
    const std::size_t last = round.row_begin[w] + commit.accepted;
    commit.logits = round.logits.slice_rows(last, last + 1);
  }
  return commits;
}

void DistributedDecoder::release_slot(SlotId slot) {
  ensure_alive();
  if (!slot_active(slot)) {
    throw std::out_of_range("DistributedDecoder: inactive slot");
  }
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  const obs::ThreadTracerScope tracer_scope(tracer);
  const obs::ThreadTrackScope track_scope(
      static_cast<obs::TrackId>(terminal_id()));
  const obs::TraceIdScope trace_scope(obs::ensure_trace_id());
  try {
    Tensor cmd(1, kCmdCols);
    cmd(0, 0) = kOpRelease;
    cmd(0, 2) = precision_ == Precision::kInt8 ? 1.0F : 0.0F;
    cmd(0, 3) = static_cast<float>(recv_timeout_seconds_);
    cmd(0, 4) = static_cast<float>(slot);
    const std::size_t k = scheme_.devices();
    broadcast(*transport_, everyone_, k, k, cmd, kTagCmd);
    slots_[slot] = SlotMeta{};
  } catch (...) {
    fail_request();
  }
}

Tensor DistributedDecoder::extend(std::span<const TokenId> tokens) {
  ensure_alive();
  if (tokens.empty()) {
    throw std::invalid_argument("DistributedDecoder: empty extension");
  }
  if (slots_.empty() || !slots_[0].active) {
    throw std::logic_error("DistributedDecoder: prime() before step()");
  }
  // One all-committed window: every token is appended in a single wire
  // round (the caches grow exactly as if each token had been step()ed) and
  // the last row's logits come back — N committed tokens, one round-trip.
  const std::vector<WindowSpec> windows{
      WindowSpec{.slot = 0,
                 .tokens = {tokens.begin(), tokens.end()},
                 .committed = tokens.size()}};
  WindowRound round = run_window_round(windows);
  return round.logits.slice_rows(round.logits.rows() - 1,
                                 round.logits.rows());
}

}  // namespace voltage
