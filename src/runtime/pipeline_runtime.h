// Real (threaded) pipeline-parallel inference — the PipeEdge-style baseline
// the paper discusses in §V-C, executed over the transport rather than just
// modeled.
//
// Layers are split into K contiguous stages, one device (thread) per stage;
// activations flow stage to stage tagged by request index, so a stream of
// requests overlaps naturally: stage 0 works on request r+1 while stage 1
// handles request r. A single request still traverses every layer
// sequentially — which is exactly why this baseline cannot beat
// single-device latency at batch size 1.
#pragma once

#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "net/transport.h"
#include "obs/trace.h"
#include "partition/range.h"
#include "transformer/model.h"

namespace voltage {

// One inference request: token ids or an image.
using InferenceInput = std::variant<std::vector<TokenId>, Image>;

class PipelineRuntime {
 public:
  // Requires 1 <= devices <= model layers.
  PipelineRuntime(const TransformerModel& model, std::size_t devices,
                  TransportKind transport = TransportKind::kInMemory);

  // Bring-your-own transport (e.g. a ChaosTransport for fault-injection
  // tests). Must have devices() == devices + 1 (the terminal).
  PipelineRuntime(const TransformerModel& model, std::size_t devices,
                  std::unique_ptr<Transport> transport);

  // Runs a stream of requests through the pipeline; returns the logits in
  // request order. Requests overlap across stages.
  [[nodiscard]] std::vector<Tensor> infer_batch(
      std::span<const InferenceInput> requests);

  // Convenience single-request forms.
  [[nodiscard]] Tensor infer(std::span<const TokenId> tokens);
  [[nodiscard]] Tensor infer(const Image& image);

  [[nodiscard]] const Transport& fabric() const noexcept {
    return *transport_;
  }
  // Layer range owned by `stage` (exposed for tests).
  [[nodiscard]] Range stage_layers(std::size_t stage) const;

  // Attaches a span tracer (nullptr detaches). Each stage emits one
  // "stage" compute span per request plus activation send/recv comm spans;
  // every request carries its own trace id end to end, so overlapping
  // requests render as distinct causal chains through the pipeline.
  void set_tracer(obs::Tracer* tracer);
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  // Attaches transport.* counters (see Transport::set_metrics).
  void set_metrics(obs::MetricsRegistry* metrics) {
    transport_->set_metrics(metrics);
  }

 private:
  const TransformerModel& model_;
  std::size_t devices_;
  std::unique_ptr<Transport> transport_;
  obs::Tracer* tracer_ = nullptr;  // non-owning; nullptr = tracing off
};

}  // namespace voltage
