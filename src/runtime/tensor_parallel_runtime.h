// Real (threaded) Megatron-style tensor-parallel inference — the baseline
// the paper compares against (Fig. 2).
//
// Each device owns a subset of attention heads (with the matching rows of
// W_O) and a column shard of the FFN; two ring all-reduces per layer merge
// the partial sums. Produces the same output as single-device execution up
// to float reassociation.
#pragma once

#include <span>
#include <vector>

#include <memory>

#include "net/transport.h"
#include "obs/trace.h"
#include "partition/range.h"
#include "transformer/model.h"

namespace voltage {

class TensorParallelRuntime {
 public:
  // Requires devices <= attention heads. `star_allreduce` swaps the
  // chunked ring for the gather-to-root+broadcast schedule (the variant
  // the latency simulation models by default — see EXPERIMENTS.md).
  TensorParallelRuntime(const TransformerModel& model, std::size_t devices,
                        TransportKind transport = TransportKind::kInMemory,
                        bool star_allreduce = false);

  // Bring-your-own transport (e.g. a ChaosTransport for fault-injection
  // tests). Must have devices() == devices + 1 (the terminal).
  TensorParallelRuntime(const TransformerModel& model, std::size_t devices,
                        std::unique_ptr<Transport> transport,
                        bool star_allreduce = false);

  [[nodiscard]] Tensor infer(std::span<const TokenId> tokens);
  [[nodiscard]] Tensor infer(const Image& image);

  [[nodiscard]] const Transport& fabric() const noexcept {
    return *transport_;
  }
  [[nodiscard]] DeviceId terminal_id() const noexcept { return devices_; }

  // Head / FFN-column shards owned by `device` (exposed for tests).
  [[nodiscard]] Range head_shard(std::size_t device) const;
  [[nodiscard]] Range ffn_shard(std::size_t device) const;

  // Attaches a span tracer (nullptr detaches). Workers emit per-layer
  // "layer" compute spans and the ring/star all-reduce comm spans; every
  // run shares one trace id, so the baseline renders causally connected
  // just like VoltageRuntime.
  void set_tracer(obs::Tracer* tracer);
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  // Attaches transport.* counters (see Transport::set_metrics).
  void set_metrics(obs::MetricsRegistry* metrics) {
    transport_->set_metrics(metrics);
  }

 private:
  [[nodiscard]] Tensor run(Tensor features);

  const TransformerModel& model_;
  std::size_t devices_;
  bool star_allreduce_;
  std::unique_ptr<Transport> transport_;
  obs::Tracer* tracer_ = nullptr;  // non-owning; nullptr = tracing off
};

}  // namespace voltage
