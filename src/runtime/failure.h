// Failure-containment plumbing shared by the threaded runtimes.
//
// All three runtimes (Voltage, tensor-parallel, pipeline) run one thread per
// device plus the calling thread as the terminal, all blocking on one
// Transport. Without containment a single throwing device deadlocks the
// rest of the mesh in recv. The protocol here: whichever thread fails first
// poisons the transport (Transport::close) so every peer unwinds with
// TransportClosedError, then the terminal reports the *root cause* — the
// original exception, not the secondary closed errors it triggered.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "net/transport.h"

namespace voltage::detail {

// Human-readable what() of an exception_ptr ("unknown error" when it is not
// a std::exception).
[[nodiscard]] std::string describe(const std::exception_ptr& error);

// True when the error is a TransportClosedError — i.e. a secondary failure
// caused by someone else's poisoning, not a root cause.
[[nodiscard]] bool is_transport_closed(const std::exception_ptr& error);

// Poisons `transport`, naming the failing party and its error in the close
// reason. Never throws (containment must not raise while unwinding).
void poison(Transport& transport, const std::string& who,
            const std::exception_ptr& error) noexcept;

// Rethrows the most informative failure, preferring root causes over the
// secondary TransportClosedErrors that poisoning fans out: first any
// non-closed device error, then the terminal's own error, then any device
// error at all. Returns normally only when every pointer is null.
void rethrow_failure(const std::vector<std::exception_ptr>& device_errors,
                     const std::exception_ptr& terminal_error);

}  // namespace voltage::detail
