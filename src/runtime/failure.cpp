#include "runtime/failure.h"

namespace voltage::detail {

std::string describe(const std::exception_ptr& error) {
  if (error == nullptr) return "no error";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

bool is_transport_closed(const std::exception_ptr& error) {
  if (error == nullptr) return false;
  try {
    std::rethrow_exception(error);
  } catch (const TransportClosedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

void poison(Transport& transport, const std::string& who,
            const std::exception_ptr& error) noexcept {
  try {
    transport.close(who + " failed: " + describe(error));
  } catch (...) {
    // close() is idempotent and should not throw; swallow defensively — we
    // are already unwinding a failure.
  }
}

void rethrow_failure(const std::vector<std::exception_ptr>& device_errors,
                     const std::exception_ptr& terminal_error) {
  for (const std::exception_ptr& e : device_errors) {
    if (e != nullptr && !is_transport_closed(e)) std::rethrow_exception(e);
  }
  if (terminal_error != nullptr) std::rethrow_exception(terminal_error);
  for (const std::exception_ptr& e : device_errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace voltage::detail
