// Distributed KV-cache decoding: O(T) token steps over the device mesh.
//
// VoltageRuntime accelerates the *prefill*; regenerating every token through
// it costs O(T^2) compute and a full (K-1)NF/K gather per layer per token.
// This decoder keeps the paper's position partition but makes the attention
// state partition-resident: one distributed prefill fills per-device caches
// (each device permanently holds its own positions' rows — K/V for Eq.(3)
// layers, the raw x for Eq.(8) layers, per Theorem 2's selection at the
// prefill shape) and each decode step ships only
//   - one K-wide broadcast of the new token's F-wide embedded row, and
//   - per layer, one softmax-merge all-reduce of per-head
//     (max, denominator, weighted-value) triples — 2(K-1) messages of
//     H*(F_H+2) floats (collective/softmax_merge.h).
// Every device then finishes the layer (residual, LayerNorms, FFN) on the
// single row redundantly, so the layer output never needs to be gathered:
// per-token wire volume is O(K*F + L*K*H*F_H), independent of the context
// length T. The log-sum-exp merge is mathematically exact, so the decoded
// tokens match IncrementalDecoder and full-recompute distributed decoding.
//
// Device k = persistent worker thread k (spawned once at construction; the
// caches live on them across calls); the calling thread is the terminal
// device K, running embedding and the LM head. New decode positions are
// assigned round-robin so cache growth stays balanced. Failure containment
// follows the runtimes: first failing thread poisons the transport, the
// terminal joins everyone and rethrows the root cause; the decoder is dead
// afterwards (build a new one).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "net/quant_codec.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/decode_attention.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "quant/quantized_stack.h"
#include "transformer/model.h"

namespace voltage {

class DistributedDecoder {
 public:
  // Requires a causal LM; `scheme.devices()` workers plus the terminal.
  DistributedDecoder(const TransformerModel& model, PartitionScheme scheme,
                     OrderPolicy policy = OrderPolicy::kAdaptive,
                     TransportKind transport = TransportKind::kInMemory);

  // Bring-your-own transport (e.g. a ChaosTransport for fault-injection
  // tests). Must have devices() == scheme devices + 1 (the terminal).
  DistributedDecoder(const TransformerModel& model, PartitionScheme scheme,
                     OrderPolicy policy, std::unique_ptr<Transport> transport);

  // Shuts the workers down (or just joins them if the mesh is poisoned).
  ~DistributedDecoder();

  DistributedDecoder(const DistributedDecoder&) = delete;
  DistributedDecoder& operator=(const DistributedDecoder&) = delete;

  // Distributed prefill: runs the prompt through the partitioned stack once,
  // leaving every device's caches resident, and returns next-token logits
  // [1 x vocab]. Calling prime() again starts a new sequence.
  [[nodiscard]] Tensor prime(std::span<const TokenId> prompt);

  // Appends one token and returns next-token logits; per-step wire bytes are
  // independent of the context length.
  [[nodiscard]] Tensor step(TokenId token);

  // Appends several committed tokens (e.g. an extended prompt) without
  // re-running the prefill; returns the logits after the last one. The
  // single-device counterpart is IncrementalDecoder::extend.
  [[nodiscard]] Tensor extend(std::span<const TokenId> tokens);

  [[nodiscard]] std::size_t position() const noexcept { return position_; }

  // Byte-accurate traffic since construction (worker ids 0..K-1, terminal
  // id K).
  [[nodiscard]] const Transport& fabric() const noexcept {
    return *transport_;
  }
  [[nodiscard]] DeviceId terminal_id() const noexcept {
    return scheme_.devices();
  }
  [[nodiscard]] const PartitionScheme& scheme() const noexcept {
    return scheme_;
  }

  // Attaches a span tracer (nullptr detaches). The terminal emits
  // "decode.prefill" / "decode.step" spans carrying the token index and the
  // step's total wire bytes; workers emit per-layer compute and
  // softmax-merge comm spans on their own tracks, plus a "wait_command"
  // span covering each idle wait. Because that wait span closes when the
  // shutdown command arrives, an attached tracer must outlive the decoder
  // object itself, not just the last request — declare the tracer first.
  //
  // Flow-graph closure caveat: prime()/step() return on the terminal's
  // critical path, while workers off that path may still be draining their
  // last collective receives. Every arrow of a request is only guaranteed
  // matched on the trace once the decoder has been destroyed (or served a
  // later command) — export after teardown if you intend to --validate.
  void set_tracer(obs::Tracer* tracer);

  // Attaches transport.* counters plus the "decode.tokens" counter.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Attaches the live telemetry hub (nullptr detaches). Workers report the
  // time spent serving each command (prefill or step, including collective
  // waits) so the hub can expose per-device utilization; idle waiting
  // between commands does not count as busy.
  void set_telemetry(obs::TelemetryHub* telemetry) noexcept {
    telemetry_.store(telemetry, std::memory_order_release);
  }

  // Attaches the crash-dump flight recorder to the transport (see
  // Transport::set_flight_recorder).
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    transport_->set_flight_recorder(recorder);
  }

  // Per-request receive budget in seconds (default 0: wait forever),
  // threaded through every blocking receive of a prime/step — idle workers
  // always wait without a deadline, so a decoder may sit unused forever.
  void set_recv_timeout(double seconds) noexcept {
    recv_timeout_seconds_ = seconds;
  }

  // Intra-op thread budget for each worker's kernels (default 1; see
  // VoltageRuntime::set_intra_op_threads — bitwise-neutral).
  void set_intra_op_threads(std::size_t n) noexcept {
    intra_op_threads_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  // Precision::kInt8 switches the hot paths to the quantized plane: prefill
  // layer compute runs the int8 stack (quant/quantized_stack.h) and its
  // per-layer all-gathers plus each step's token-row broadcast travel as
  // int8 + per-row scales (net/quant_codec.h), ~4x fewer wire bytes.
  // Attention state stays fp32 (caches, online-softmax merge triples, the
  // final row), so the exact log-sum-exp merge is untouched. Quantizes the
  // model once on first use. Same call contract as set_recv_timeout: call
  // between requests from the calling thread; takes effect from the next
  // prime()/step() (each command carries the precision, so mixing is safe —
  // the caches are fp32 under both planes).
  void set_precision(Precision precision);
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

 private:
  void worker_main(std::size_t i);
  void worker_prefill(std::size_t i, std::size_t n,
                      std::vector<DecodeLayerCache>& caches,
                      const RecvOptions& options, obs::Tracer* tracer,
                      Precision wire);
  void worker_step(std::size_t i, std::size_t t, std::size_t prompt_len,
                   std::vector<DecodeLayerCache>& caches, const Tensor& cmd,
                   const RecvOptions& options, obs::Tracer* tracer,
                   Precision wire);

  void ensure_alive() const;
  void join_workers() noexcept;
  // Terminal failure path: poison, join, report the root cause. Never
  // returns normally; the decoder is dead afterwards.
  [[noreturn]] void fail_request();

  const TransformerModel& model_;
  PartitionScheme scheme_;
  OrderPolicy policy_;
  std::unique_ptr<Transport> transport_;
  std::vector<DeviceId> everyone_;  // workers + terminal (broadcast group)
  std::vector<DeviceId> workers_;   // merge group

  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::TelemetryHub*> telemetry_{nullptr};
  obs::Counter* decode_tokens_ = nullptr;
  std::atomic<std::size_t> intra_op_threads_{1};
  double recv_timeout_seconds_ = 0.0;  // <= 0: no deadline
  Precision precision_ = Precision::kFp32;
  // Built lazily by set_precision(kInt8); workers read it while serving an
  // int8-flagged command, which happens-after the terminal set it (the
  // command broadcast's mailbox handoff orders the accesses).
  std::unique_ptr<QuantizedStack> qstack_;

  std::size_t position_ = 0;  // committed positions (terminal's view)
  bool primed_ = false;
  bool dead_ = false;

  std::vector<std::exception_ptr> errors_;  // one slot per worker
  std::vector<std::thread> threads_;
};

}  // namespace voltage
